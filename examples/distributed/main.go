// Distributed federation: the same protocol as examples/quickstart, but
// over a real TCP boundary — an in-process parameter server plus several
// client processes (goroutines here; see cmd/flserver and cmd/flclient for
// the separate-process binaries). Two of the clients sign-flip their
// gradients; the server defends with SignGuard.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	signguard "github.com/signguard/signguard"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/tensor"
	"github.com/signguard/signguard/internal/transport"
)

const (
	clients = 6
	byz     = 2
	rounds  = 80
	seed    = 1
)

func main() {
	ds, err := signguard.MNISTLike(seed, 2000, 500)
	if err != nil {
		log.Fatal(err)
	}
	model, err := signguard.NewImageCNN(tensor.NewRNG(seed), 1, 8, 8, 6, 32, 10)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := signguard.NewServer(signguard.ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       clients,
		Rounds:        rounds,
		Rule:          signguard.NewSignGuard(seed),
		InitialParams: model.ParamVector(),
		LR:            0.05,
		Momentum:      0.9,
		WeightDecay:   5e-4,
		RoundTimeout:  20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("parameter server on %s, %d clients (%d Byzantine), %d rounds\n",
		addr, clients, byz, rounds)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx); err != nil {
			log.Printf("server: %v", err)
		}
	}()

	parts, err := data.PartitionIID(tensor.NewRNG(seed+2), len(ds.Train), clients)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := runClient(ctx, addr, ds, parts[i], i, i < byz); err != nil {
				log.Printf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if err := model.SetParamVector(srv.FinalParams()); err != nil {
		log.Fatal(err)
	}
	acc, err := signguard.Evaluate(model, ds, ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final global model accuracy with SignGuard: %.2f%%\n", acc)
}

// runClient participates in training with an honest or sign-flipping role.
func runClient(ctx context.Context, addr string, ds *signguard.Dataset, part []int, id int, byzantine bool) error {
	local, err := data.Subset(ds.Train, part)
	if err != nil {
		return err
	}
	sampler, err := data.NewSampler(tensor.NewRNG(seed+100+int64(id)), local)
	if err != nil {
		return err
	}
	model, err := signguard.NewImageCNN(tensor.NewRNG(seed), 1, 8, 8, 6, 32, 10)
	if err != nil {
		return err
	}
	compute := func(round int, params []float64) ([]float64, error) {
		if err := model.SetParamVector(params); err != nil {
			return nil, err
		}
		in, labels, err := fl.BatchInput(ds, sampler.Batch(8))
		if err != nil {
			return nil, err
		}
		model.ZeroGrad()
		if _, _, err := model.LossAndGrad(in, labels); err != nil {
			return nil, err
		}
		g := model.GradVector()
		if byzantine {
			tensor.ScaleInPlace(g, -1) // sign-flip attack
		}
		return g, nil
	}
	role := "honest"
	if byzantine {
		role = "byzantine"
	}
	fmt.Printf("client %d (%s) joining\n", id, role)
	_, err = transport.RunClient(ctx, transport.ClientConfig{
		Addr:    addr,
		ID:      fmt.Sprintf("client-%d-%s", id, role),
		Compute: compute,
	})
	return err
}
