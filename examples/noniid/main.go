// Non-IID federation: reproduce the paper's Fig. 6 protocol on one cell —
// training under the ByzMean attack at three levels of label skew
// (s = 0.3, 0.5, 0.8), comparing SignGuard-Sim against trimmed mean.
// Demonstrates the paper-exact non-IID partitioner of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	signguard "github.com/signguard/signguard"
)

func main() {
	ds, err := signguard.FashionLike(1, 2000, 500)
	if err != nil {
		log.Fatal(err)
	}

	train := func(rule signguard.Rule, s float64) float64 {
		sim, err := signguard.NewSimulation(signguard.SimulationConfig{
			Dataset: ds,
			NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
				return signguard.NewImageCNN(rng, 1, 8, 8, 6, 32, 10)
			},
			Rule:        rule,
			Attack:      signguard.NewByzMeanAttack(),
			Clients:     20,
			NumByz:      4,
			Rounds:      100,
			BatchSize:   8,
			LR:          0.03,
			Momentum:    0.9,
			WeightDecay: 5e-4,
			EvalEvery:   10,
			// The paper's split: s-fraction IID, the rest sorted by label
			// and dealt out as two shards per client.
			NonIID: &signguard.NonIIDConfig{S: s, ShardsPerClient: 2},
			Seed:   1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res.BestAccuracy
	}

	fmt.Println("ByzMean attack, 20% Byzantine, non-IID Fashion analog:")
	fmt.Printf("%-15s %8s %8s %8s\n", "defense", "s=0.3", "s=0.5", "s=0.8")
	for _, r := range []struct {
		name string
		make func() signguard.Rule
	}{
		{"TrMean", func() signguard.Rule { return signguard.NewTrimmedMean(4) }},
		{"SignGuard-Sim", func() signguard.Rule { return signguard.NewSignGuardSim(1) }},
	} {
		fmt.Printf("%-15s", r.name)
		for _, s := range []float64{0.3, 0.5, 0.8} {
			fmt.Printf(" %7.2f%%", train(r.make(), s))
		}
		fmt.Println()
	}
}
