// Quickstart: train a federated model under the "Little is Enough" attack
// with and without SignGuard, and compare. This is the minimal end-to-end
// use of the public API: a dataset analog, a model, an attack, and two
// aggregation rules.
package main

import (
	"fmt"
	"log"
	"math/rand"

	signguard "github.com/signguard/signguard"
)

func main() {
	// A 10-class image dataset analog (see DESIGN.md for how it stands in
	// for MNIST) shared by every run below.
	ds, err := signguard.MNISTLike(1, 2000, 500)
	if err != nil {
		log.Fatal(err)
	}

	train := func(rule signguard.Rule, att signguard.Attack) float64 {
		sim, err := signguard.NewSimulation(signguard.SimulationConfig{
			Dataset: ds,
			NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
				return signguard.NewImageCNN(rng, 1, 8, 8, 6, 32, 10)
			},
			Rule:        rule,
			Attack:      att,
			Clients:     20,
			NumByz:      4, // 20% Byzantine, the paper's default
			Rounds:      100,
			BatchSize:   8,
			LR:          0.03,
			Momentum:    0.9,
			WeightDecay: 5e-4,
			EvalEvery:   10,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res.BestAccuracy
	}

	baseline := train(signguard.NewMean(), signguard.NewNoAttack())
	attacked := train(signguard.NewMean(), signguard.NewLIEAttack(0.3))
	guarded := train(signguard.NewSignGuard(1), signguard.NewLIEAttack(0.3))

	fmt.Println("LIE attack, 20% Byzantine clients:")
	fmt.Printf("  no attack, plain mean:   %6.2f%%\n", baseline)
	fmt.Printf("  under attack, mean:      %6.2f%%   (attack impact %.2f)\n", attacked, baseline-attacked)
	fmt.Printf("  under attack, SignGuard: %6.2f%%   (attack impact %.2f)\n", guarded, baseline-guarded)
}
