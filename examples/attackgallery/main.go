// Attack gallery: run every model-poisoning attack from the paper against
// a fixed defense lineup on the CIFAR analog, printing a mini version of
// the paper's Table I. Demonstrates the full attack and rule surface of
// the public API, including the selection-rate reporting used in Table II.
package main

import (
	"fmt"
	"log"
	"math/rand"

	signguard "github.com/signguard/signguard"
)

func main() {
	ds, err := signguard.CIFARLike(1, 1500, 400)
	if err != nil {
		log.Fatal(err)
	}

	attacks := []struct {
		name string
		make func() signguard.Attack
	}{
		{"NoAttack", signguard.NewNoAttack},
		{"Random", signguard.NewRandomAttack},
		{"Sign-flip", signguard.NewSignFlipAttack},
		{"LIE", func() signguard.Attack { return signguard.NewLIEAttack(0.3) }},
		{"ByzMean", signguard.NewByzMeanAttack},
		{"Min-Max", signguard.NewMinMaxAttack},
		{"Min-Sum", signguard.NewMinSumAttack},
	}
	const (
		clients = 20
		numByz  = 4
	)
	rules := []struct {
		name string
		make func() signguard.Rule
	}{
		{"Mean", signguard.NewMean},
		{"Median", signguard.NewMedian},
		{"Multi-Krum", func() signguard.Rule { return signguard.NewMultiKrum(numByz, clients-numByz) }},
		{"SignGuard-Sim", func() signguard.Rule { return signguard.NewSignGuardSim(1) }},
	}

	fmt.Printf("%-10s", "attack")
	for _, r := range rules {
		fmt.Printf("  %13s", r.name)
	}
	fmt.Println()

	for _, a := range attacks {
		fmt.Printf("%-10s", a.name)
		for _, r := range rules {
			sim, err := signguard.NewSimulation(signguard.SimulationConfig{
				Dataset: ds,
				NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
					return signguard.NewDeepImageCNN(rng, 3, 8, 8, 8, 16, 32, 10)
				},
				Rule:        r.make(),
				Attack:      a.make(),
				Clients:     clients,
				NumByz:      numByz,
				Rounds:      80,
				BatchSize:   8,
				LR:          0.03,
				Momentum:    0.9,
				WeightDecay: 5e-4,
				EvalEvery:   10,
				EvalSamples: 200,
				Seed:        1,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%.1f", res.BestAccuracy)
			if h, m, ok := res.SelectionRates(); ok {
				cell = fmt.Sprintf("%.1f (H%.2f/M%.2f)", res.BestAccuracy, h, m)
			}
			fmt.Printf("  %13s", cell)
		}
		fmt.Println()
	}
}
