package signguard_test

import (
	"math/rand"
	"testing"

	signguard "github.com/signguard/signguard"
)

// TestPublicAPIEndToEnd exercises the façade: dataset → model → attack →
// SignGuard → simulation → evaluation, entirely through the root package.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := signguard.MNISTLike(1, 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := signguard.NewSimulation(signguard.SimulationConfig{
		Dataset: ds,
		NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
			return signguard.NewMLP(rng, ds.FeatureDim(), 16, 10)
		},
		Rule:        signguard.NewSignGuard(1),
		Attack:      signguard.NewLIEAttack(0.3),
		Clients:     10,
		NumByz:      2,
		Rounds:      10,
		BatchSize:   8,
		LR:          0.05,
		Momentum:    0.9,
		WeightDecay: 5e-4,
		EvalEvery:   5,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy <= 0 {
		t.Errorf("best accuracy %v", res.BestAccuracy)
	}
	if _, _, ok := res.SelectionRates(); !ok {
		t.Error("SignGuard should report selection rates through the façade")
	}
}

// TestPublicAPIConstructors sanity-checks every re-exported constructor.
func TestPublicAPIConstructors(t *testing.T) {
	rules := []signguard.Rule{
		signguard.NewMean(),
		signguard.NewTrimmedMean(2),
		signguard.NewMedian(),
		signguard.NewGeoMed(),
		signguard.NewKrum(2),
		signguard.NewMultiKrum(2, 5),
		signguard.NewBulyan(2),
		signguard.NewDnC(2, 1),
		signguard.NewSignSGDMajority(1),
		signguard.NewSignGuard(1),
		signguard.NewSignGuardSim(1),
		signguard.NewSignGuardDist(1),
	}
	for _, r := range rules {
		if r.Name() == "" {
			t.Error("rule with empty name")
		}
	}
	attacks := []signguard.Attack{
		signguard.NewNoAttack(),
		signguard.NewRandomAttack(),
		signguard.NewNoiseAttack(),
		signguard.NewSignFlipAttack(),
		signguard.NewLabelFlipAttack(),
		signguard.NewLIEAttack(0.3),
		signguard.NewByzMeanAttack(),
		signguard.NewMinMaxAttack(),
		signguard.NewMinSumAttack(),
		signguard.NewReverseAttack(10),
		signguard.NewSignKeepingAttack(),
	}
	for _, a := range attacks {
		if a.Name() == "" {
			t.Error("attack with empty name")
		}
	}
	if _, err := signguard.NewTimeVaryingAttack(signguard.DefaultAttackPool(), 5, 1); err != nil {
		t.Errorf("time-varying: %v", err)
	}
	cfg := signguard.DefaultSignGuardConfig()
	if _, err := signguard.NewSignGuardFromConfig(cfg); err != nil {
		t.Errorf("config constructor: %v", err)
	}
}

// Example demonstrates the core workflow: train a federated model under a
// strong model-poisoning attack with SignGuard defending the aggregation.
// (No deterministic output — compiled as documentation.)
func Example() {
	ds, err := signguard.CIFARLike(1, 2000, 500)
	if err != nil {
		panic(err)
	}
	sim, err := signguard.NewSimulation(signguard.SimulationConfig{
		Dataset: ds,
		NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
			return signguard.NewDeepImageCNN(rng, 3, 8, 8, 8, 16, 32, 10)
		},
		Rule:        signguard.NewSignGuardSim(1),
		Attack:      signguard.NewByzMeanAttack(),
		Clients:     50,
		NumByz:      10,
		Rounds:      200,
		BatchSize:   8,
		LR:          0.03,
		Momentum:    0.9,
		WeightDecay: 5e-4,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	honest, malicious, _ := res.SelectionRates()
	_ = honest
	_ = malicious
	_ = res.BestAccuracy
}
