// Command reproduce regenerates the tables and figures of the SignGuard
// paper's evaluation section on the synthetic substrate. Experiments run
// through the campaign engine: cells execute concurrently across -workers,
// and -cache-dir memoizes per-cell results so interrupted or repeated runs
// resume instead of recomputing.
//
// Usage:
//
//	reproduce -exp table1 [-dataset mnist] [-scale bench|standard|full] [-format md|tsv] [-v]
//	reproduce -exp all -scale standard -workers 8 -cache-dir .campaign-cache -out results.md
//
// Experiments: table1, table2, table3, fig2, fig4, fig5, fig6, the
// post-paper scenario axes (subsample, coordfrac, adaptive, batched,
// compression, hostile, serverlearn), and all. -codec stamps a gradient-compression codec onto
// every cell of whichever experiment runs (the codec is cell identity, so
// compressed reruns cache separately).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/experiments"
	"github.com/signguard/signguard/internal/parallel"
)

func main() {
	var (
		expFlag     = flag.String("exp", "table1", "experiment id: table1|table2|table3|fig2|fig4|fig5|fig6|subsample|coordfrac|adaptive|batched|compression|hostile|serverlearn|all")
		datasetFlag = flag.String("dataset", "", "table1 only: restrict to one dataset (mnist|fashion|cifar|agnews)")
		scaleFlag   = flag.String("scale", "bench", "scale preset: bench|standard|full")
		formatFlag  = flag.String("format", "md", "output format: md|tsv")
		outFlag     = flag.String("out", "", "output file (default stdout)")
		seedFlag    = flag.Int64("seed", 1, "experiment seed")
		workersFlag = flag.Int("workers", parallel.Default(), "concurrent experiment cells (default: all CPUs)")
		batchFlag   = flag.Bool("batch-clients", false, "compute client gradients in one stacked batch per simulation worker (byte-identical to the per-client path)")
		codecFlag   = flag.String("codec", "", "gradient-compression codec stamped onto every cell (identity|topk|qsgd|signsgd; empty = the experiment's own codec axis)")
		hyperFlag   = flag.String("codec-hyper", "", "codec hyperparameters as key=value[,key=value], e.g. k=64 (requires -codec)")
		cacheFlag   = flag.String("cache-dir", "", "cell result cache directory (empty = no cache)")
		verbose     = flag.Bool("v", false, "log per-cell progress to stderr")
	)
	flag.Parse()

	if err := run(*expFlag, *datasetFlag, *scaleFlag, *formatFlag, *outFlag, *seedFlag,
		*workersFlag, *batchFlag, *codecFlag, *hyperFlag, *cacheFlag, *verbose); err != nil {
		log.Fatalf("reproduce: %v", err)
	}
}

func run(exp, dataset, scaleName, format, outPath string, seed int64, workers int, batchClients bool, codecName, codecHyper, cacheDir string, verbose bool) error {
	if err := parallel.ValidateWorkers(workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	hyper, err := cliutil.ParseHyper("-codec-hyper", codecHyper)
	if err != nil {
		return err
	}
	if codecName == "" && hyper != nil {
		return fmt.Errorf("-codec-hyper requires -codec")
	}
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return err
	}
	p := experiments.DefaultParams(scale)
	p.Seed = seed

	var logf experiments.Reporter
	if verbose {
		logf = func(format string, args ...any) { log.Printf(format, args...) }
	}
	var store *campaign.Store
	if cacheDir != "" {
		store, err = campaign.OpenStore(cacheDir)
		if err != nil {
			return err
		}
	}
	engine := experiments.NewEngine(workers, store, logf)
	engine.BatchClients = batchClients
	engine.Codec = codecName
	engine.CodecHyper = hyper

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", outPath, err)
		}
		defer f.Close()
		out = f
	}

	emit := func(tables ...*experiments.Table) error {
		for _, t := range tables {
			var err error
			if format == "tsv" {
				err = t.TSV(out)
			} else {
				err = t.Markdown(out)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	defer func() {
		if verbose {
			log.Printf("reproduce: %s done in %v", exp, time.Since(start).Round(time.Second))
		}
	}()

	runTable1 := func() error {
		specs := experiments.Datasets()
		if dataset != "" {
			ds, err := experiments.DatasetByKey(dataset)
			if err != nil {
				return err
			}
			specs = []experiments.DatasetSpec{ds}
		}
		for _, ds := range specs {
			t, err := experiments.Table1(engine, ds, p)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
	runTable2 := func() error {
		t, err := experiments.Table2(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runTable3 := func() error {
		t, err := experiments.Table3(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runFig2 := func() error {
		_, tables, err := experiments.Fig2(engine, p, experiments.Fig2SampleEvery(p))
		if err != nil {
			return err
		}
		return emit(tables...)
	}
	runFig4 := func() error {
		tables, err := experiments.Fig4(engine, p)
		if err != nil {
			return err
		}
		return emit(tables...)
	}
	runFig5 := func() error {
		tables, err := experiments.Fig5(engine, p)
		if err != nil {
			return err
		}
		return emit(tables...)
	}
	runFig6 := func() error {
		tables, err := experiments.Fig6(engine, p)
		if err != nil {
			return err
		}
		return emit(tables...)
	}
	runSubsample := func() error {
		t, err := experiments.Subsample(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runCoordFrac := func() error {
		t, err := experiments.CoordFrac(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runAdaptive := func() error {
		t, err := experiments.Adaptive(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runBatched := func() error {
		t, err := experiments.Batched(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runCompression := func() error {
		t, err := experiments.Compression(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runHostile := func() error {
		t, err := experiments.Hostile(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}
	runServerLearn := func() error {
		t, err := experiments.ServerLearn(engine, p)
		if err != nil {
			return err
		}
		return emit(t)
	}

	switch exp {
	case "table1":
		return runTable1()
	case "table2":
		return runTable2()
	case "table3":
		return runTable3()
	case "fig2":
		return runFig2()
	case "fig4":
		return runFig4()
	case "fig5":
		return runFig5()
	case "fig6":
		return runFig6()
	case "subsample":
		return runSubsample()
	case "coordfrac":
		return runCoordFrac()
	case "adaptive":
		return runAdaptive()
	case "batched":
		return runBatched()
	case "compression":
		return runCompression()
	case "hostile":
		return runHostile()
	case "serverlearn":
		return runServerLearn()
	case "all":
		for _, f := range []func() error{runFig2, runTable1, runTable2, runFig4, runFig5, runFig6, runTable3,
			runSubsample, runCoordFrac, runAdaptive, runBatched, runCompression, runHostile, runServerLearn} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
