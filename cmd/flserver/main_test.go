package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(clients, rounds int, lr float64, timeout time.Duration, buffer int, alpha float64) {
		t.Helper()
		if err := validateFlags(clients, rounds, lr, timeout, buffer, alpha); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	ok(4, 100, 0.05, 30*time.Second, 8, 0.5)
	ok(1, 1, 0.001, time.Millisecond, 1, 0) // minima are all legal

	for _, tc := range []struct {
		name    string
		clients int
		rounds  int
		lr      float64
		timeout time.Duration
		buffer  int
		alpha   float64
		flag    string
	}{
		{"zero clients", 0, 100, 0.05, time.Second, 8, 0.5, "-clients"},
		{"negative clients", -3, 100, 0.05, time.Second, 8, 0.5, "-clients"},
		{"zero rounds", 4, 0, 0.05, time.Second, 8, 0.5, "-rounds"},
		{"zero lr", 4, 100, 0, time.Second, 8, 0.5, "-lr"},
		{"negative lr", 4, 100, -0.1, time.Second, 8, 0.5, "-lr"},
		{"zero timeout", 4, 100, 0.05, 0, 8, 0.5, "-round-timeout"},
		{"negative timeout", 4, 100, 0.05, -time.Second, 8, 0.5, "-round-timeout"},
		{"zero buffer", 4, 100, 0.05, time.Second, 0, 0.5, "-buffer"},
		{"negative alpha", 4, 100, 0.05, time.Second, 8, -0.1, "-alpha"},
	} {
		err := validateFlags(tc.clients, tc.rounds, tc.lr, tc.timeout, tc.buffer, tc.alpha)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
}

func TestBuildRuleRejectsUnknown(t *testing.T) {
	if _, err := buildRule("no-such-rule", 8, 0, 1); err == nil {
		t.Error("unknown rule name accepted")
	}
	for _, name := range []string{"mean", "trmean", "median", "geomed", "krum", "multikrum", "bulyan", "dnc", "signguard"} {
		if _, err := buildRule(name, 8, 1, 1); err != nil {
			t.Errorf("buildRule(%q): %v", name, err)
		}
	}
}
