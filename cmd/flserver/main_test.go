package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/sanitize"
)

func TestValidateFlags(t *testing.T) {
	ok := func(clients, rounds int, lr float64, timeout time.Duration, buffer int, alpha float64) {
		t.Helper()
		if err := validateFlags(clients, rounds, lr, timeout, buffer, alpha); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	ok(4, 100, 0.05, 30*time.Second, 8, 0.5)
	ok(1, 1, 0.001, time.Millisecond, 1, 0) // minima are all legal

	for _, tc := range []struct {
		name    string
		clients int
		rounds  int
		lr      float64
		timeout time.Duration
		buffer  int
		alpha   float64
		flag    string
	}{
		{"zero clients", 0, 100, 0.05, time.Second, 8, 0.5, "-clients"},
		{"negative clients", -3, 100, 0.05, time.Second, 8, 0.5, "-clients"},
		{"zero rounds", 4, 0, 0.05, time.Second, 8, 0.5, "-rounds"},
		{"zero lr", 4, 100, 0, time.Second, 8, 0.5, "-lr"},
		{"negative lr", 4, 100, -0.1, time.Second, 8, 0.5, "-lr"},
		{"zero timeout", 4, 100, 0.05, 0, 8, 0.5, "-round-timeout"},
		{"negative timeout", 4, 100, 0.05, -time.Second, 8, 0.5, "-round-timeout"},
		{"zero buffer", 4, 100, 0.05, time.Second, 0, 0.5, "-buffer"},
		{"negative alpha", 4, 100, 0.05, time.Second, 8, -0.1, "-alpha"},
		{"NaN lr", 4, 100, math.NaN(), time.Second, 8, 0.5, "-lr"},
		{"NaN alpha", 4, 100, 0.05, time.Second, 8, math.NaN(), "-alpha"},
	} {
		err := validateFlags(tc.clients, tc.rounds, tc.lr, tc.timeout, tc.buffer, tc.alpha)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
}

// The -nonfinite-policy flag follows the cliutil error contract: every
// canonical spelling parses, anything else fails naming the flag.
func TestNonFinitePolicyFlag(t *testing.T) {
	for _, name := range sanitize.PolicyNames() {
		if _, err := sanitize.ParsePolicy("-nonfinite-policy", name); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	_, err := sanitize.ParsePolicy("-nonfinite-policy", "ignore")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "-nonfinite-policy") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestBuildRuleRejectsUnknown(t *testing.T) {
	if _, err := buildRule("no-such-rule", 8, 0, 1); err == nil {
		t.Error("unknown rule name accepted")
	}
	for _, name := range []string{"mean", "trmean", "median", "geomed", "krum", "multikrum", "bulyan", "dnc", "signguard"} {
		if _, err := buildRule(name, 8, 1, 1); err != nil {
			t.Errorf("buildRule(%q): %v", name, err)
		}
	}
}
