// Command flserver runs the federated-learning parameter server over TCP:
// it waits for the configured number of clients, coordinates synchronous
// training rounds, applies the selected robust aggregation rule (SignGuard
// by default), and prints the final test accuracy of the global model.
//
// The server owns the dataset definition (test split + model architecture)
// so it can evaluate the trained model; clients generate the same dataset
// from the shared seed and train on their own partition (see cmd/flclient).
//
// Example (three terminals):
//
//	flserver -addr :9000 -clients 4 -rounds 100 -rule signguard
//	flclient -addr :9000 -id 0 -clients 4
//	flclient -addr :9000 -id 1 -clients 4 -byzantine signflip
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/tensor"
	"github.com/signguard/signguard/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "listen address")
		clients = flag.Int("clients", 4, "number of clients to wait for")
		rounds  = flag.Int("rounds", 100, "training rounds")
		ruleStr = flag.String("rule", "signguard", "aggregation rule: mean|trmean|median|geomed|krum|multikrum|bulyan|dnc|signguard|signguard-sim|signguard-dist")
		byz     = flag.Int("byz", 0, "assumed Byzantine count for rules that need it (trmean/krum/bulyan/dnc)")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		seed    = flag.Int64("seed", 1, "shared dataset/model seed (must match clients)")
		timeout = flag.Duration("round-timeout", 30*time.Second, "per-round network timeout")
	)
	flag.Parse()

	if err := run(*addr, *ruleStr, *clients, *rounds, *byz, *lr, *seed, *timeout); err != nil {
		log.Fatalf("flserver: %v", err)
	}
}

// buildRule maps the CLI rule name to an aggregation rule.
func buildRule(name string, n, f int, seed int64) (aggregate.Rule, error) {
	switch name {
	case "mean":
		return aggregate.NewMean(), nil
	case "trmean":
		return aggregate.NewTrimmedMean(f), nil
	case "median":
		return aggregate.NewMedian(), nil
	case "geomed":
		return aggregate.NewGeoMed(), nil
	case "krum":
		return aggregate.NewKrum(f), nil
	case "multikrum":
		return aggregate.NewMultiKrum(f, n-f), nil
	case "bulyan":
		return aggregate.NewBulyan(f), nil
	case "dnc":
		return aggregate.NewDnC(f, seed), nil
	case "signguard":
		return core.NewPlain(seed), nil
	case "signguard-sim":
		return core.NewSim(seed), nil
	case "signguard-dist":
		return core.NewDist(seed), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", name)
	}
}

// sharedModel is the model architecture both server and clients build from
// the shared seed (MNIST-analog CNN).
func sharedModel(seed int64) (nn.Classifier, error) {
	return nn.NewImageCNN(tensor.NewRNG(seed), 1, 8, 8, 6, 32, 10)
}

func run(addr, ruleStr string, clients, rounds, byz int, lr float64, seed int64, timeout time.Duration) error {
	rule, err := buildRule(ruleStr, clients, byz, seed)
	if err != nil {
		return err
	}
	model, err := sharedModel(seed)
	if err != nil {
		return err
	}
	ds, err := data.MNISTLike(seed, 4000, 1000)
	if err != nil {
		return err
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:          addr,
		Clients:       clients,
		Rounds:        rounds,
		Rule:          rule,
		InitialParams: model.ParamVector(),
		LR:            lr,
		Momentum:      0.9,
		WeightDecay:   5e-4,
		RoundTimeout:  timeout,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}
	log.Printf("flserver: listening on %s (rule=%s, clients=%d, rounds=%d)",
		srv.Addr(), rule.Name(), clients, rounds)

	if err := srv.Serve(context.Background()); err != nil {
		return err
	}

	if err := model.SetParamVector(srv.FinalParams()); err != nil {
		return err
	}
	acc, err := fl.Evaluate(model, ds, ds.Test)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "final test accuracy: %.2f%%\n", acc)
	return nil
}
