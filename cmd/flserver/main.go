// Command flserver runs the federated-learning parameter server. It has
// three modes:
//
// Synchronous (default): wait for the configured number of TCP clients,
// coordinate lock-step training rounds, apply the selected robust
// aggregation rule (SignGuard by default), and print the final test
// accuracy of the global model — the paper's setting.
//
// Asynchronous (-async): serve the buffered asynchronous protocol over
// HTTP (internal/asyncfl): clients fetch the versioned model and submit
// gradients whenever they finish, the server aggregates every -buffer
// arrivals under staleness-discounted weights w(s) = 1/(1+s)^alpha with
// the defense filtering each buffer, and training stops after -rounds
// aggregation steps.
//
// Load test (-loadtest): run the in-process load harness
// (internal/asyncfl/loadtest) against the async serving layer — many
// goroutine-cheap simulated clients over real HTTP — and print rounds/s,
// p50/p99 ingest latency, buffer occupancy and model error under the
// configured Byzantine fraction and churn.
//
// The server owns the dataset definition (test split + model architecture)
// so it can evaluate the trained model; clients generate the same dataset
// from the shared seed and train on their own partition (see cmd/flclient).
//
// Examples:
//
//	flserver -addr :9000 -clients 4 -rounds 100 -rule signguard
//	flserver -addr :9000 -async -buffer 8 -alpha 0.5 -rounds 200
//	flserver -addr :9000 -async -codec identity,topk   # accept only these codecs
//	flserver -loadtest -load-clients 100000 -load-byz 0.1
//	flserver -loadtest -codec topk -codec-hyper k=8    # compressed submissions
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/asyncfl"
	"github.com/signguard/signguard/internal/asyncfl/loadtest"
	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/sanitize"
	"github.com/signguard/signguard/internal/tensor"
	"github.com/signguard/signguard/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9000", "listen address")
		clients = flag.Int("clients", 4, "number of clients to wait for (sync mode)")
		rounds  = flag.Int("rounds", 100, "training rounds (sync) / aggregation steps (async)")
		ruleStr = flag.String("rule", "signguard", "aggregation rule: mean|trmean|median|geomed|krum|multikrum|bulyan|dnc|signguard|signguard-sim|signguard-dist")
		byz     = flag.Int("byz", 0, "assumed Byzantine count for rules that need it (trmean/krum/bulyan/dnc)")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		seed    = flag.Int64("seed", 1, "shared dataset/model seed (must match clients)")
		timeout = flag.Duration("round-timeout", 30*time.Second, "per-round network timeout (sync mode)")

		async     = flag.Bool("async", false, "serve the buffered asynchronous HTTP protocol instead of synchronous rounds")
		buffer    = flag.Int("buffer", 8, "async: aggregate every K accepted arrivals")
		alpha     = flag.Float64("alpha", 0.5, "async: staleness-discount exponent of w(s)=1/(1+s)^alpha")
		queueCap  = flag.Int("queue-cap", asyncfl.DefaultQueueCap, "async: per-client update queue bound (drop-oldest beyond)")
		ttl       = flag.Duration("session-ttl", asyncfl.DefaultSessionTTL, "async: client liveness lease lifetime")
		nonFinite = flag.String("nonfinite-policy", sanitize.Reject.String(), "async/loadtest: disposition for updates carrying NaN/±Inf: "+strings.Join(sanitize.PolicyNames(), "|"))

		loadRun     = flag.Bool("loadtest", false, "run the async load harness in-process and exit")
		loadClients = flag.Int("load-clients", 10000, "loadtest: simulated client sessions")
		loadUpdates = flag.Int("load-updates", 2, "loadtest: updates per client")
		loadConc    = flag.Int("load-concurrency", 256, "loadtest: concurrent driver workers")
		loadDim     = flag.Int("load-dim", 64, "loadtest: synthetic model dimensionality")
		loadByz     = flag.Float64("load-byz", 0, "loadtest: Byzantine client fraction")
		loadChurn   = flag.Float64("load-churn", 0, "loadtest: churned client fraction")
		loadHostile = flag.Float64("load-nonfinite", 0, "loadtest: fraction of clients shipping non-finite (NaN-injection) payloads")
		loadRule    = flag.String("load-rule", "", "loadtest: defense in front of the buffer (empty = none)")

		codecStr = flag.String("codec", "", "async: comma-separated accepted codec list advertised to clients (empty = all built-ins); loadtest: compress simulated client submissions with this codec")
		hyperStr = flag.String("codec-hyper", "", "loadtest: codec hyperparameters as key=value[,key=value], e.g. k=8 (requires -codec)")
	)
	flag.Parse()

	if err := validateFlags(*clients, *rounds, *lr, *timeout, *buffer, *alpha); err != nil {
		log.Fatalf("flserver: %v", err)
	}
	if err := cliutil.Fraction("-load-byz", *loadByz); err != nil {
		log.Fatalf("flserver: %v", err)
	}
	if err := cliutil.Fraction("-load-churn", *loadChurn); err != nil {
		log.Fatalf("flserver: %v", err)
	}
	if err := cliutil.Fraction("-load-nonfinite", *loadHostile); err != nil {
		log.Fatalf("flserver: %v", err)
	}
	policy, err := sanitize.ParsePolicy("-nonfinite-policy", *nonFinite)
	if err != nil {
		log.Fatalf("flserver: %v", err)
	}

	switch {
	case *loadRun:
		var wire codec.Codec
		if wire, err = buildLoadCodec(*codecStr, *hyperStr); err == nil {
			err = runLoadtest(*loadRule, *loadClients, *loadUpdates, *loadConc, *loadDim, *buffer, *alpha, *loadByz, *loadChurn, *loadHostile, *seed, wire, policy)
		}
	case *async:
		var accepted []string
		if accepted, err = parseAccepted(*codecStr, *hyperStr); err == nil {
			err = runAsync(*addr, *ruleStr, *buffer, *rounds, *byz, *queueCap, *lr, *alpha, *seed, *ttl, accepted, policy)
		}
	default:
		if *codecStr != "" || *hyperStr != "" {
			err = fmt.Errorf("-codec applies to -async (accepted list) or -loadtest (client codec); the synchronous gob protocol is uncompressed")
		} else {
			err = run(*addr, *ruleStr, *clients, *rounds, *byz, *lr, *seed, *timeout)
		}
	}
	if err != nil {
		log.Fatalf("flserver: %v", err)
	}
}

// validateFlags rejects out-of-range flag values up front with clear
// errors naming the offending flag (internal/cliutil) instead of passing
// them through to fail (or misbehave) deep in the protocol.
func validateFlags(clients, rounds int, lr float64, timeout time.Duration, buffer int, alpha float64) error {
	if err := cliutil.PositiveInt("-clients", clients); err != nil {
		return err
	}
	if err := cliutil.PositiveInt("-rounds", rounds); err != nil {
		return err
	}
	if err := cliutil.PositiveFloat("-lr", lr); err != nil {
		return err
	}
	if err := cliutil.PositiveDuration("-round-timeout", timeout); err != nil {
		return err
	}
	if err := cliutil.PositiveInt("-buffer", buffer); err != nil {
		return err
	}
	return cliutil.NonNegativeFloat("-alpha", alpha)
}

// buildLoadCodec resolves -codec/-codec-hyper in loadtest mode to the
// codec simulated clients compress their submissions with (nil = dense).
func buildLoadCodec(name, hyperStr string) (codec.Codec, error) {
	hyper, err := cliutil.ParseHyper("-codec-hyper", hyperStr)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if hyper != nil {
			return nil, fmt.Errorf("-codec-hyper requires -codec")
		}
		return nil, nil
	}
	c, err := codec.Builtin().Build(name, codec.Params{Hyper: hyper})
	if err != nil {
		return nil, fmt.Errorf("-codec: %w", err)
	}
	return c, nil
}

// parseAccepted resolves -codec in async mode to the accepted-codec list
// the server advertises (nil = every built-in). Decoding is
// hyperparameter-independent, so -codec-hyper has no async meaning.
func parseAccepted(codecStr, hyperStr string) ([]string, error) {
	if hyperStr != "" {
		return nil, fmt.Errorf("-codec-hyper only applies to -loadtest (async decoding is hyperparameter-independent)")
	}
	if codecStr == "" {
		return nil, nil
	}
	var accepted []string
	for _, name := range strings.Split(codecStr, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-codec: empty name in accepted list %q", codecStr)
		}
		accepted = append(accepted, name)
	}
	return accepted, nil
}

// buildRule maps the CLI rule name to an aggregation rule. n is the
// expected gradient-set size the rule aggregates over: the client count in
// sync mode, the buffer size in async mode.
func buildRule(name string, n, f int, seed int64) (aggregate.Rule, error) {
	switch name {
	case "mean":
		return aggregate.NewMean(), nil
	case "trmean":
		return aggregate.NewTrimmedMean(f), nil
	case "median":
		return aggregate.NewMedian(), nil
	case "geomed":
		return aggregate.NewGeoMed(), nil
	case "krum":
		return aggregate.NewKrum(f), nil
	case "multikrum":
		return aggregate.NewMultiKrum(f, n-f), nil
	case "bulyan":
		return aggregate.NewBulyan(f), nil
	case "dnc":
		return aggregate.NewDnC(f, seed), nil
	case "signguard":
		return core.NewPlain(seed), nil
	case "signguard-sim":
		return core.NewSim(seed), nil
	case "signguard-dist":
		return core.NewDist(seed), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", name)
	}
}

// sharedModel is the model architecture both server and clients build from
// the shared seed (MNIST-analog CNN).
func sharedModel(seed int64) (nn.Classifier, error) {
	return nn.NewImageCNN(tensor.NewRNG(seed), 1, 8, 8, 6, 32, 10)
}

func run(addr, ruleStr string, clients, rounds, byz int, lr float64, seed int64, timeout time.Duration) error {
	rule, err := buildRule(ruleStr, clients, byz, seed)
	if err != nil {
		return err
	}
	model, err := sharedModel(seed)
	if err != nil {
		return err
	}
	ds, err := data.MNISTLike(seed, 4000, 1000)
	if err != nil {
		return err
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:          addr,
		Clients:       clients,
		Rounds:        rounds,
		Rule:          rule,
		InitialParams: model.ParamVector(),
		LR:            lr,
		Momentum:      0.9,
		WeightDecay:   5e-4,
		RoundTimeout:  timeout,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}
	log.Printf("flserver: listening on %s (rule=%s, clients=%d, rounds=%d)",
		srv.Addr(), rule.Name(), clients, rounds)

	if err := srv.Serve(context.Background()); err != nil {
		return err
	}

	if err := model.SetParamVector(srv.FinalParams()); err != nil {
		return err
	}
	acc, err := fl.Evaluate(model, ds, ds.Test)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "final test accuracy: %.2f%%\n", acc)
	return nil
}

// runAsync serves the buffered asynchronous protocol until the target
// number of aggregation steps completes, then evaluates the global model.
// accepted is the codec accept-list advertised to clients (nil = every
// built-in codec); policy is the non-finite ingest disposition.
func runAsync(addr, ruleStr string, buffer, steps, byz, queueCap int, lr, alpha float64, seed int64, ttl time.Duration, accepted []string, policy sanitize.Policy) error {
	rule, err := buildRule(ruleStr, buffer, byz, seed)
	if err != nil {
		return err
	}
	model, err := sharedModel(seed)
	if err != nil {
		return err
	}
	ds, err := data.MNISTLike(seed, 4000, 1000)
	if err != nil {
		return err
	}

	agg, err := asyncfl.New(asyncfl.Config{
		InitialParams: model.ParamVector(),
		K:             buffer,
		Alpha:         alpha,
		Rule:          rule,
		LR:            lr,
		Momentum:      0.9,
		WeightDecay:   5e-4,
		QueueCap:      queueCap,
		NonFinite:     policy,
		TargetSteps:   int64(steps),
		SessionTTL:    ttl,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}

	handler, err := transport.NewAsyncCodecHandler(agg, accepted)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("flserver: async serving on %s (rule=%s, buffer=%d, alpha=%v, steps=%d)",
		ln.Addr(), rule.Name(), buffer, alpha, steps)

	select {
	case <-agg.Done():
	case err := <-serveErr:
		return err
	}
	// Linger briefly so clients polling for Done observe the final model
	// before the socket disappears.
	time.Sleep(time.Second)
	if err := httpSrv.Close(); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	st := agg.Stats()
	log.Printf("flserver: async run complete: %d steps, %d arrivals, %d drops, %d rejects (%d non-finite), mean buffer occupancy %.1f",
		st.Steps, st.Arrivals, st.Drops, st.Rejects,
		st.NonFiniteRejects+st.NonFiniteClamps+st.NonFiniteQuarantines, st.MeanOccupancy)
	_, params, _ := agg.Model()
	if err := model.SetParamVector(params); err != nil {
		return err
	}
	acc, err := fl.Evaluate(model, ds, ds.Test)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "final test accuracy: %.2f%%\n", acc)
	return nil
}

// runLoadtest drives the in-process load harness and prints its report.
func runLoadtest(ruleStr string, clients, updates, concurrency, dim, buffer int, alpha, byzFrac, churnFrac, hostileFrac float64, seed int64, wire codec.Codec, policy sanitize.Policy) error {
	var rule aggregate.Rule
	if ruleStr != "" {
		var err error
		if rule, err = buildRule(ruleStr, buffer, 0, seed); err != nil {
			return err
		}
	}
	rep, err := loadtest.Run(loadtest.Config{
		Clients:           clients,
		UpdatesPerClient:  updates,
		Concurrency:       concurrency,
		Dim:               dim,
		K:                 buffer,
		Alpha:             alpha,
		Rule:              rule,
		ByzFraction:       byzFrac,
		ChurnFraction:     churnFrac,
		NonFiniteFraction: hostileFrac,
		NonFinite:         policy,
		Codec:             wire,
		Seed:              seed,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stdout, rep)
	return nil
}
