package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/experiments"
	"github.com/signguard/signguard/internal/sanitize"
)

// gridFlags are the flags shared by run/serve/status/export: they select,
// replicate and filter a campaign's cell grid, and optionally stamp a
// gradient-compression codec onto every cell.
type gridFlags struct {
	name       string
	scale      string
	seed       int64
	seeds      string
	filter     string
	cacheDir   string
	codec      string
	codecHyper string
	nonFinite  string
}

func (g *gridFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&g.name, "name", "all", "campaign name (see 'campaign list')")
	fs.StringVar(&g.scale, "scale", "bench", "scale preset: bench|standard|full")
	fs.Int64Var(&g.seed, "seed", 1, "experiment seed")
	fs.StringVar(&g.seeds, "seeds", "", "comma-separated seed list; replicates every cell per seed (overrides -seed)")
	fs.StringVar(&g.filter, "filter", "", "keep only cells whose ID contains this substring (applied after -seeds replication)")
	fs.StringVar(&g.cacheDir, "cache-dir", ".campaign-cache", "cell result cache directory")
	fs.StringVar(&g.codec, "codec", "", "gradient-compression codec stamped onto every cell (see 'campaign rules'; empty = cells' own codec axis)")
	fs.StringVar(&g.codecHyper, "codec-hyper", "", "codec hyperparameters as key=value[,key=value], e.g. k=64 (requires -codec)")
	fs.StringVar(&g.nonFinite, "nonfinite-policy", "", "non-finite ingest policy stamped onto every cell: "+strings.Join(sanitize.PolicyNames(), "|")+" (empty = legacy diverge-on-NaN)")
}

// parseSeeds parses the -seeds list ("1,2,3").
func parseSeeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: bad seed %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// resolveSpec expands a named campaign at the given scale and seed,
// replicates it across the optional seed list, and applies the ID filter.
// It is the single definition of "which cells do these flags select",
// shared by run/status/export and unit-testable without any flag parsing.
func resolveSpec(name, scaleName string, seed int64, seedList, filter string) (campaign.Spec, error) {
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return campaign.Spec{}, err
	}
	seeds, err := parseSeeds(seedList)
	if err != nil {
		return campaign.Spec{}, err
	}
	p := experiments.DefaultParams(scale)
	p.Seed = seed
	spec, err := experiments.CampaignByName(name, p)
	if err != nil {
		return campaign.Spec{}, err
	}
	spec = campaign.ReplicateSeeds(spec, seeds)
	spec = spec.Filter(filter)
	if len(spec.Cells) == 0 {
		return campaign.Spec{}, fmt.Errorf("campaign %s: no cells match filter %q", name, filter)
	}
	return spec, nil
}

func (g *gridFlags) spec() (campaign.Spec, error) {
	spec, err := resolveSpec(g.name, g.scale, g.seed, g.seeds, g.filter)
	if err != nil {
		return campaign.Spec{}, err
	}
	hyper, err := cliutil.ParseHyper("-codec-hyper", g.codecHyper)
	if err != nil {
		return campaign.Spec{}, err
	}
	if g.codec == "" && hyper != nil {
		return campaign.Spec{}, fmt.Errorf("-codec-hyper requires -codec")
	}
	if g.nonFinite != "" {
		if _, err := sanitize.ParsePolicy("-nonfinite-policy", g.nonFinite); err != nil {
			return campaign.Spec{}, err
		}
	}
	// Codec and non-finite policy are cell identity: stamped cells hash and
	// cache separately from their originals, so run/status/export all see
	// the same grid for the same flags.
	spec = campaign.ApplyCodec(spec, g.codec, hyper)
	return campaign.ApplyNonFinite(spec, g.nonFinite), nil
}

func (g *gridFlags) store() (*campaign.Store, error) {
	return campaign.OpenStore(g.cacheDir)
}

// forEachUniqueCell visits the spec's cells deduplicated by content hash,
// in spec order — the one definition of "which cells a campaign has" that
// status and export share.
func forEachUniqueCell(spec campaign.Spec, visit func(c campaign.Cell, key string) error) error {
	seen := map[string]bool{}
	for _, c := range spec.Cells {
		key, err := c.Key()
		if err != nil {
			return err
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := visit(c, key); err != nil {
			return err
		}
	}
	return nil
}
