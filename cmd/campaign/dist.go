package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/campaign/dist"
	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/experiments"
	"github.com/signguard/signguard/internal/parallel"
)

// cmdServe runs the distributed coordinator: it owns the resolved grid and
// the result store, and hands cells out to 'campaign work' processes over
// the HTTP work-stealing protocol. It exits once every cell is stored.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var g gridFlags
	g.register(fs)
	addr := fs.String("addr", "127.0.0.1:9090", "HTTP listen address for workers")
	ttl := fs.Duration("ttl", dist.DefaultTTL, "lease lifetime; a worker silent this long has its cells requeued")
	linger := fs.Duration("linger", 3*time.Second, "how long to keep serving after completion so idle workers observe Done")
	fs.Parse(args)

	spec, err := g.spec()
	if err != nil {
		return err
	}
	// Fail bad grids at serve time, not on the first worker's join.
	if err := experiments.Registry().Validate(spec); err != nil {
		return fmt.Errorf("campaign %s: %w", spec.Name, err)
	}
	store, err := g.store()
	if err != nil {
		return err
	}

	coord, err := dist.New(dist.Config{
		Spec: spec, Store: store, TTL: *ttl, Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	if coord.Done() {
		log.Printf("%s: every cell is already cached in %s — nothing to serve", spec.Name, store.Dir())
		return nil
	}

	// Bind before waiting so an unusable -addr (port taken, privileged
	// port) fails the command immediately instead of blocking in Wait with
	// the listen error sitting unread.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("%s: coordinator on %s (join with: campaign work -coordinator %s)",
		spec.Name, ln.Addr(), joinHint(ln.Addr()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	waitErr := coord.Wait(ctx)

	// Linger before shutting down so workers idling in their poll loop get
	// one more lease response — the one carrying Done — instead of a
	// connection error against a vanished coordinator.
	if waitErr == nil && *linger > 0 {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if waitErr != nil {
		st := coord.Status()
		return fmt.Errorf("interrupted with %d/%d cells stored — completed cells are cached, re-serve to resume: %w",
			st.Completed+st.CacheHits, st.Total, waitErr)
	}
	st := coord.Status()
	log.Printf("%s: done (%d executed by workers, %d cache hits, %d duplicate uploads)",
		spec.Name, st.Completed, st.CacheHits, st.Duplicates)
	return nil
}

// joinHint renders the worker-facing URL of the bound listener. Wildcard
// listens (-addr :9090) substitute this host's name: "[::]" is not dialable
// from another machine, and the hint exists to be copy-pasted there.
func joinHint(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "localhost"
		if h, err := os.Hostname(); err == nil {
			host = h
		}
	}
	return "http://" + net.JoinHostPort(host, port)
}

// codecPolicy builds the -codec worker guard: a CheckSpec hook refusing
// grids whose cells use any compression codec other than pin. The empty
// spelling and "identity" are one codec (they hash identically), so a
// worker pinned to identity accepts uncompressed grids and vice versa.
func codecPolicy(pin string) func(campaign.Spec) error {
	if pin == "" {
		return nil
	}
	norm := func(name string) string {
		if name == "" {
			return campaign.CodecIdentity
		}
		return name
	}
	pin = norm(pin)
	return func(spec campaign.Spec) error {
		for _, c := range spec.Cells {
			if got := norm(c.Codec); got != pin {
				return fmt.Errorf("cell %s uses codec %s, this worker is pinned to -codec %s", c.ID(), got, pin)
			}
		}
		return nil
	}
}

// cmdWork joins a coordinator and executes leased cells until the campaign
// completes. Any number of work processes, on any hosts that can reach the
// coordinator, share one grid and one result store.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordURL := fs.String("coordinator", "http://127.0.0.1:9090", "coordinator base URL")
	id := fs.String("id", "", "worker name in leases/heartbeats (default: hostname-pid)")
	workers := fs.Int("workers", parallel.Default(), "concurrent cells on this worker (default: all CPUs)")
	batch := fs.Int("batch", 1, "cells leased per request and slot")
	batchClients := fs.Bool("batch-clients", false,
		"compute client gradients in one stacked batch per simulation worker (byte-identical, so uploaded results match any other worker's)")
	poll := fs.Duration("poll", 2*time.Second, "idle wait when every pending cell is leased elsewhere")
	codecPin := fs.String("codec", "", "refuse grids whose cells use any compression codec but this one (operator policy; empty = accept all)")
	verbose := fs.Bool("v", false, "log every finished cell")
	fs.Parse(args)

	if err := parallel.ValidateWorkers(*workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	if err := cliutil.PositiveInt("-batch", *batch); err != nil {
		return err
	}

	// Split the CPUs between cell slots and each cell's in-simulation
	// parallelism, the same division of labor the local engine applies.
	simWorkers := parallel.Default() / *workers
	if simWorkers < 1 {
		simWorkers = 1
	}
	logf := log.Printf
	if !*verbose {
		logf = nil
	}
	w := &dist.Worker{
		URL:       *coordURL,
		ID:        *id,
		Runner:    &campaign.Runner{Registry: experiments.Registry(), SimWorkers: simWorkers, BatchClients: *batchClients},
		Registry:  experiments.Registry(),
		CheckSpec: codecPolicy(*codecPin),
		Slots:     *workers,
		Batch:     *batch,
		Poll:      *poll,
		Logf:      logf,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stats, err := w.Run(ctx)
	if err != nil {
		return fmt.Errorf("worker exiting after %d cells (leases held here will expire and requeue): %w",
			stats.Executed, err)
	}
	log.Printf("worker done in %v: %d cells executed (%d duplicates)",
		stats.Elapsed.Round(time.Second), stats.Executed, stats.Duplicates)
	return nil
}
