// Command campaign drives the experiment-campaign engine directly: it
// expands a named scenario grid (any of the paper's tables/figures, or
// "all"), runs the cells concurrently with content-addressed result
// caching, reports cache status, and exports cached results.
//
// Usage:
//
//	campaign run    -name all -scale standard -workers 8 -cache-dir .campaign-cache [-filter cifar] [-v]
//	campaign serve  -name all -scale standard -cache-dir .campaign-cache -addr :9090
//	campaign work   -coordinator http://host:9090 -workers 8
//	campaign status -name all -scale standard -cache-dir .campaign-cache
//	campaign export -name table1 -scale standard -cache-dir .campaign-cache -format csv -out table1.csv
//	campaign list
//	campaign rules
//
// Runs are resumable: every finished cell is persisted immediately, so an
// interrupted campaign (Ctrl-C) picks up where it left off. A completed
// campaign re-run is pure cache hits — zero recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/experiments"
	"github.com/signguard/signguard/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "serve":
		err = cmdServe(args)
	case "work":
		err = cmdWork(args)
	case "status":
		err = cmdStatus(args)
	case "export":
		err = cmdExport(args)
	case "list":
		err = cmdList()
	case "rules":
		err = cmdRules()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <run|serve|work|status|export|list|rules> [flags]

  run     execute a campaign's cells (concurrent, cached, resumable)
  serve   coordinate a distributed campaign: serve the grid to 'work' processes
          over HTTP work-stealing leases, collecting results into the cache
  work    join a coordinator and execute leased cells on this host
  status  report cached vs pending cells for a campaign (index-backed, O(1) per cell)
  export  emit cached results as CSV/JSON, per cell or aggregated by seed group
  list    list the named campaigns and their cell counts
  rules   list the registered defenses and compression codecs with their
          declared hyperparameters

Campaigns cover the paper's tables and figures plus the scenario axes
(client subsampling, defense hyperparameter sweeps, adaptive attacks);
'campaign list' prints them all.

Common flags: -name, -scale, -seed, -seeds, -cache-dir, -filter.
Run 'campaign <subcommand> -h' for the full flag list.
`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var g gridFlags
	g.register(fs)
	workers := fs.Int("workers", parallel.Default(), "concurrent cells (default: all CPUs)")
	batchClients := fs.Bool("batch-clients", false,
		"compute client gradients in one stacked batch per simulation worker (byte-identical to the per-client path, results stay cache-compatible)")
	verbose := fs.Bool("v", false, "log every finished cell (default: one summary line per 10%)")
	fs.Parse(args)

	if err := parallel.ValidateWorkers(*workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	spec, err := g.spec()
	if err != nil {
		return err
	}
	store, err := g.store()
	if err != nil {
		return err
	}

	// Ctrl-C cancels the run between cells; finished cells are already
	// persisted, so a re-run resumes from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	e := &campaign.Engine{
		Registry:     experiments.Registry(),
		Store:        store,
		Workers:      *workers,
		BatchClients: *batchClients,
		Progress:     progressPrinter(*verbose),
	}
	log.Printf("%s: %d cells, cache %s", spec.Name, len(spec.Cells), store.Dir())
	rep, err := e.Run(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted — completed cells are cached, re-run to resume: %w", err)
		}
		return err
	}
	log.Printf("%s: done in %v (%d executed, %d cache hits)",
		rep.Spec, rep.Elapsed.Round(time.Second), rep.Executed, rep.CacheHits)
	return nil
}

// progressPrinter logs cell completions: every cell when verbose,
// otherwise at ~10% milestones.
func progressPrinter(verbose bool) func(campaign.ProgressEvent) {
	lastMilestone := -1
	return func(ev campaign.ProgressEvent) {
		milestone := ev.Done * 10 / ev.Total
		if !verbose && milestone == lastMilestone && ev.Done != ev.Total {
			return
		}
		lastMilestone = milestone
		state := ev.Duration.Round(time.Millisecond).String()
		if ev.Cached {
			state = "cached"
		}
		line := fmt.Sprintf("%s %d/%d %s (%s)", ev.Spec, ev.Done, ev.Total, ev.Cell.ID(), state)
		if ev.ETA > 0 {
			line += fmt.Sprintf(" eta %v", ev.ETA.Round(time.Second))
		}
		log.Print(line)
	}
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var g gridFlags
	g.register(fs)
	verbose := fs.Bool("v", false, "list every pending cell")
	fs.Parse(args)

	spec, err := g.spec()
	if err != nil {
		return err
	}
	store, err := g.store()
	if err != nil {
		return err
	}

	// Contains answers from the store's index: one index read for the
	// whole grid instead of one file probe per cell.
	var cached, pending int
	err = forEachUniqueCell(spec, func(c campaign.Cell, key string) error {
		if store.Contains(key) {
			cached++
		} else {
			pending++
			if *verbose {
				fmt.Printf("pending  %s\n", c.ID())
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := cached + pending
	fmt.Printf("%s: %d/%d cells cached (%d pending, %.0f%% complete)\n",
		spec.Name, cached, total, pending, 100*float64(cached)/float64(total))
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	var g gridFlags
	g.register(fs)
	format := fs.String("format", "csv", "output format: csv|json (per cell) or group-csv|group-json (seed-group mean/std/95% CI)")
	outPath := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	spec, err := g.spec()
	if err != nil {
		return err
	}
	store, err := g.store()
	if err != nil {
		return err
	}

	var results []*campaign.CellResult
	var missing int
	err = forEachUniqueCell(spec, func(_ campaign.Cell, key string) error {
		res, ok := store.Get(key)
		if !ok {
			missing++
			return nil
		}
		results = append(results, res)
		return nil
	})
	if err != nil {
		return err
	}
	if missing > 0 {
		log.Printf("%d cells not yet cached — run 'campaign run' to compute them", missing)
	}
	if len(results) == 0 {
		return fmt.Errorf("no cached results for campaign %s in %s", spec.Name, store.Dir())
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return campaign.WriteExport(out, *format, results)
}

func cmdList() error {
	p := experiments.DefaultParams(experiments.ScaleStandard)
	for _, name := range experiments.CampaignNames() {
		spec, err := experiments.CampaignByName(name, p)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %4d cells\n", name, len(spec.Cells))
	}
	return nil
}

// cmdRules prints the defense and codec registries — the one listing
// surface for both pluggable-stage catalogs, with the hyperparameter
// names each constructor accepts (usable in RuleHyper / -codec-hyper).
func cmdRules() error {
	defs := experiments.Defenses().Specs()
	fmt.Printf("defenses (%d):\n", len(defs))
	for _, s := range defs {
		printRule(s.Name, s.Hyper)
	}
	codecs := codec.Builtin().Specs()
	fmt.Printf("\ncodecs (%d):\n", len(codecs))
	for _, s := range codecs {
		printRule(s.Name, s.Hyper)
	}
	return nil
}

func printRule(name string, hyper []string) {
	if len(hyper) == 0 {
		fmt.Printf("  %s\n", name)
		return
	}
	fmt.Printf("  %-24s hyper: %s\n", name, strings.Join(hyper, ", "))
}
