package main

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

func TestResolveSpecNames(t *testing.T) {
	cases := []struct {
		name      string
		wantCells int // 0 = only assert non-empty
	}{
		{name: "table2"},
		{name: "subsample", wantCells: 9},
		{name: "coordfrac", wantCells: 10},
		{name: "dncsubdim", wantCells: 6},
		{name: "adaptive", wantCells: 6},
		{name: "batched", wantCells: 6},
		{name: "all"},
	}
	for _, tc := range cases {
		spec, err := resolveSpec(tc.name, "bench", 1, "", "")
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(spec.Cells) == 0 {
			t.Errorf("%s: empty spec", tc.name)
		}
		if tc.wantCells > 0 && len(spec.Cells) != tc.wantCells {
			t.Errorf("%s: %d cells, want %d", tc.name, len(spec.Cells), tc.wantCells)
		}
	}
}

func TestResolveSpecErrors(t *testing.T) {
	cases := []struct {
		name, scale, seeds, filter string
		wantErr                    string
	}{
		{name: "nope", scale: "bench", wantErr: "unknown campaign"},
		{name: "table2", scale: "galactic", wantErr: "unknown scale"},
		{name: "table2", scale: "bench", seeds: "1,x,3", wantErr: "bad seed"},
		{name: "table2", scale: "bench", filter: "no-such-cell", wantErr: "no cells match"},
	}
	for _, tc := range cases {
		_, err := resolveSpec(tc.name, tc.scale, 1, tc.seeds, tc.filter)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("resolveSpec(%+v) error = %v, want %q", tc, err, tc.wantErr)
		}
	}
}

func TestResolveSpecFilterSelection(t *testing.T) {
	full, err := resolveSpec("adaptive", "bench", 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := resolveSpec("adaptive", "bench", 1, "", "Adaptive-Min-Max")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Cells) == 0 || len(filtered.Cells) >= len(full.Cells) {
		t.Fatalf("filter kept %d of %d cells", len(filtered.Cells), len(full.Cells))
	}
	for _, c := range filtered.Cells {
		if !strings.Contains(c.ID(), "Adaptive-Min-Max") {
			t.Errorf("filter leaked cell %s", c.ID())
		}
	}
}

func TestResolveSpecSeedsReplication(t *testing.T) {
	base, err := resolveSpec("table2", "bench", 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resolveSpec("table2", "bench", 1, "2, 3 ,5", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3*len(base.Cells) {
		t.Fatalf("replicated %d cells from %d, want ×3", len(rep.Cells), len(base.Cells))
	}
	seeds := map[int64]int{}
	for _, c := range rep.Cells {
		seeds[c.Params.Seed]++
	}
	for _, want := range []int64{2, 3, 5} {
		if seeds[want] != len(base.Cells) {
			t.Errorf("seed %d appears %d times, want %d", want, seeds[want], len(base.Cells))
		}
	}
	// -filter composes with -seeds (replication first).
	one, err := resolveSpec("table2", "bench", 1, "2,3", "seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Cells) != len(base.Cells) {
		t.Errorf("seed filter kept %d cells, want %d", len(one.Cells), len(base.Cells))
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("")
	if err != nil || got != nil {
		t.Errorf("empty list: %v %v", got, err)
	}
	got, err = parseSeeds("7")
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Errorf("single seed: %v %v", got, err)
	}
	if _, err := parseSeeds("1,,2"); err == nil {
		t.Error("empty element accepted")
	}
	if _, err := parseSeeds("1.5"); err == nil {
		t.Error("float seed accepted")
	}
}

func TestForEachUniqueCellDeduplicates(t *testing.T) {
	spec, err := resolveSpec("table2", "bench", 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	dup := campaign.Spec{Name: spec.Name, Cells: append(append([]campaign.Cell{}, spec.Cells...), spec.Cells...)}
	var visited []string
	if err := forEachUniqueCell(dup, func(c campaign.Cell, key string) error {
		visited = append(visited, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != len(spec.Cells) {
		t.Errorf("visited %d unique cells, want %d", len(visited), len(spec.Cells))
	}
	seen := map[string]bool{}
	for _, k := range visited {
		if seen[k] {
			t.Fatalf("key %s visited twice", k)
		}
		seen[k] = true
	}
}
