// Command benchgate turns the CI benchmark job into a regression gate: it
// parses a `go test -json -bench` stream, extracts every benchmark's
// ns/op — and, when the run used -benchmem, its B/op and allocs/op — and
// compares against a committed baseline (BENCH_BASELINE.json), failing
// when any benchmark regressed on any gated metric by more than the
// threshold — so a performance win, once landed, stays won. Allocation
// metrics use a small absolute floor (1 KiB, 16 allocs) below which
// regressions are ignored: a 2-alloc benchmark tripling to 6 is noise, not
// a leak.
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix and prefixed with their package path, so the same baseline works
// across machines with different core counts. When a stream carries
// several samples of one benchmark (-count), the minimum per metric is
// used — the usual minimum-of-runs noise filter.
//
// Usage:
//
//	benchgate -input BENCH_PR.json -baseline BENCH_BASELINE.json -threshold 0.15
//	benchgate -input stream.json -baseline BENCH_BASELINE.json -write   # (re)create the baseline
//
// The baseline is machine-dependent: regenerate it (`make bench-baseline`)
// when the CI runner class changes, and after landing an intentional
// performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		input     = flag.String("input", "BENCH_PR.json", "`go test -json` benchmark stream to read")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		threshold = flag.Float64("threshold", 0.15, "maximum tolerated regression on any metric (0.15 = +15%)")
		write     = flag.Bool("write", false, "write the parsed results as the new baseline instead of comparing")
		missingOK = flag.Bool("missing-ok", false, "tolerate baseline benchmarks absent from the input stream")
		module    = flag.String("module", "github.com/signguard/signguard", "module prefix stripped from package paths")
	)
	flag.Parse()

	if err := run(*input, *baseline, *module, *threshold, *write, *missingOK); err != nil {
		log.Fatalf("benchgate: %v", err)
	}
}

// Baseline is the committed file format. The allocation maps only hold
// benchmarks whose recorded run reported memory stats (-benchmem or
// b.ReportAllocs).
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps "package.BenchmarkName" (GOMAXPROCS suffix stripped)
	// to the benchmark's ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// BytesPerOp maps the same keys to B/op.
	BytesPerOp map[string]float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp maps the same keys to allocs/op.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// Gating floors for the allocation metrics: baselines below these absolute
// sizes are too small for a ratio threshold to be meaningful.
const (
	bytesFloor  = 1024
	allocsFloor = 16
)

func run(input, baseline, module string, threshold float64, write, missingOK bool) error {
	if threshold <= 0 {
		return fmt.Errorf("-threshold must be positive (got %v)", threshold)
	}
	results, err := parseStream(input, module)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found in %s", input)
	}

	if write {
		out := Baseline{
			Note:        "benchmark ns/op, B/op and allocs/op baseline for the CI regression gate; regenerate with `make bench-baseline` on the machine class that runs the gate",
			NsPerOp:     map[string]float64{},
			BytesPerOp:  map[string]float64{},
			AllocsPerOp: map[string]float64{},
		}
		for name, r := range results {
			out.NsPerOp[name] = r.ns
			if r.hasMem {
				out.BytesPerOp[name] = r.bytes
				out.AllocsPerOp[name] = r.allocs
			}
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baseline, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d benchmarks (%d with allocation stats) to %s\n",
			len(out.NsPerOp), len(out.BytesPerOp), baseline)
		return nil
	}

	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w (run `make bench-baseline` to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baseline, err)
	}
	if len(base.NsPerOp) == 0 {
		return fmt.Errorf("baseline %s holds no benchmarks", baseline)
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	// check gates one metric of one benchmark: a regression only counts
	// when the baseline is above the metric's absolute floor.
	var regressions, missing []string
	improved, checked := 0, 0
	check := func(name, unit string, want, got, floor float64) {
		checked++
		if want < floor {
			return
		}
		delta := (got - want) / want
		switch {
		case delta > threshold:
			regressions = append(regressions,
				fmt.Sprintf("  %s: %.0f -> %.0f %s (%+.1f%%)", name, want, got, unit, 100*delta))
		case delta < -threshold:
			improved++
		}
	}
	for _, name := range names {
		got, ok := results[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		check(name, "ns/op", base.NsPerOp[name], got.ns, 1)
		wantBytes, gateBytes := base.BytesPerOp[name]
		wantAllocs, gateAllocs := base.AllocsPerOp[name]
		if (gateBytes || gateAllocs) && !got.hasMem {
			// The baseline gates allocations but the stream carries none:
			// -benchmem fell off the bench invocation. Treat as missing so
			// the gate cannot silently weaken.
			missing = append(missing, name+" (allocation stats)")
			continue
		}
		if gateBytes {
			check(name, "B/op", wantBytes, got.bytes, bytesFloor)
		}
		if gateAllocs {
			check(name, "allocs/op", wantAllocs, got.allocs, allocsFloor)
		}
	}
	newCount := 0
	for name := range results {
		if _, ok := base.NsPerOp[name]; !ok {
			newCount++
		}
	}

	fmt.Printf("benchgate: %d metrics checked against %s (threshold +%.0f%%): %d regressed, %d improved, %d new benchmarks, %d missing\n",
		checked, baseline, 100*threshold, len(regressions), improved, newCount, len(missing))
	if len(missing) > 0 && !missingOK {
		return fmt.Errorf("baseline benchmarks missing from the input stream (deleted, renamed, or run without -benchmem? regenerate the baseline, or pass -missing-ok):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regressions beyond +%.0f%%:\n%s", 100*threshold, strings.Join(regressions, "\n"))
	}
	return nil
}

// benchResult is one benchmark's parsed metrics; hasMem reports whether
// the result line carried -benchmem columns.
type benchResult struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action  string
	Package string
	Output  string
}

// parseStream extracts "pkg.BenchmarkName" -> metrics from a
// `go test -json` stream. Duplicate samples (-count) keep the minimum of
// each metric independently.
func parseStream(path, module string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	defer f.Close()

	// go test -json can split a benchmark's output across events, so
	// reassemble each package's output before scanning for result lines.
	perPkg := map[string]*strings.Builder{}
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (e.g. make echoes) around the stream.
			continue
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	results := map[string]benchResult{}
	for _, pkg := range pkgs {
		short := strings.TrimPrefix(strings.TrimPrefix(pkg, module), "/")
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			name, r, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			key := name
			if short != "" {
				key = short + "." + name
			}
			old, seen := results[key]
			if !seen {
				results[key] = r
				continue
			}
			if r.ns < old.ns {
				old.ns = r.ns
			}
			if r.hasMem {
				if !old.hasMem || r.bytes < old.bytes {
					old.bytes = r.bytes
				}
				if !old.hasMem || r.allocs < old.allocs {
					old.allocs = r.allocs
				}
				old.hasMem = true
			}
			results[key] = old
		}
	}
	return results, nil
}

// parseBenchLine parses one benchmark result line
// ("BenchmarkFoo/case-8   1   12345 ns/op   64 B/op   2 allocs/op") into
// its normalized name (GOMAXPROCS suffix stripped) and metrics.
func parseBenchLine(line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", benchResult{}, false
	}
	var r benchResult
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.ns = v
			found = true
		case "B/op":
			r.bytes = v
			r.hasMem = true
		case "allocs/op":
			r.allocs = v
			r.hasMem = true
		}
	}
	if !found {
		return "", benchResult{}, false
	}
	return stripProcs(fields[0]), r, true
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name, so
// baselines transfer across machines with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
