// Command benchgate turns the CI benchmark job into a regression gate: it
// parses a `go test -json -bench` stream, extracts every benchmark's
// ns/op, and compares against a committed baseline (BENCH_BASELINE.json),
// failing when any benchmark slowed down by more than the threshold —
// so a performance win, once landed, stays won.
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix and prefixed with their package path, so the same baseline works
// across machines with different core counts. When a stream carries
// several samples of one benchmark (-count), the fastest is used — the
// usual minimum-of-runs noise filter.
//
// Usage:
//
//	benchgate -input BENCH_PR.json -baseline BENCH_BASELINE.json -threshold 0.15
//	benchgate -input stream.json -baseline BENCH_BASELINE.json -write   # (re)create the baseline
//
// The baseline is machine-dependent: regenerate it (`make bench-baseline`)
// when the CI runner class changes, and after landing an intentional
// performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		input     = flag.String("input", "BENCH_PR.json", "`go test -json` benchmark stream to read")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		threshold = flag.Float64("threshold", 0.15, "maximum tolerated ns/op regression (0.15 = +15%)")
		write     = flag.Bool("write", false, "write the parsed results as the new baseline instead of comparing")
		missingOK = flag.Bool("missing-ok", false, "tolerate baseline benchmarks absent from the input stream")
		module    = flag.String("module", "github.com/signguard/signguard", "module prefix stripped from package paths")
	)
	flag.Parse()

	if err := run(*input, *baseline, *module, *threshold, *write, *missingOK); err != nil {
		log.Fatalf("benchgate: %v", err)
	}
}

// Baseline is the committed file format.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps "package.BenchmarkName" (GOMAXPROCS suffix stripped)
	// to the benchmark's ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func run(input, baseline, module string, threshold float64, write, missingOK bool) error {
	if threshold <= 0 {
		return fmt.Errorf("-threshold must be positive (got %v)", threshold)
	}
	results, err := parseStream(input, module)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found in %s", input)
	}

	if write {
		out := Baseline{
			Note:    "benchmark ns/op baseline for the CI regression gate; regenerate with `make bench-baseline` on the machine class that runs the gate",
			NsPerOp: results,
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baseline, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), baseline)
		return nil
	}

	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w (run `make bench-baseline` to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baseline, err)
	}
	if len(base.NsPerOp) == 0 {
		return fmt.Errorf("baseline %s holds no benchmarks", baseline)
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions, missing []string
	improved, checked := 0, 0
	for _, name := range names {
		want := base.NsPerOp[name]
		got, ok := results[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		checked++
		delta := (got - want) / want
		switch {
		case delta > threshold:
			regressions = append(regressions,
				fmt.Sprintf("  %s: %.0f -> %.0f ns/op (%+.1f%%)", name, want, got, 100*delta))
		case delta < -threshold:
			improved++
		}
	}
	newCount := 0
	for name := range results {
		if _, ok := base.NsPerOp[name]; !ok {
			newCount++
		}
	}

	fmt.Printf("benchgate: %d benchmarks checked against %s (threshold +%.0f%%): %d regressed, %d improved, %d new, %d missing\n",
		checked, baseline, 100*threshold, len(regressions), improved, newCount, len(missing))
	if len(missing) > 0 && !missingOK {
		return fmt.Errorf("baseline benchmarks missing from the input stream (deleted or renamed? regenerate the baseline, or pass -missing-ok):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("throughput regressions beyond +%.0f%%:\n%s", 100*threshold, strings.Join(regressions, "\n"))
	}
	return nil
}

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action  string
	Package string
	Output  string
}

// parseStream extracts "pkg.BenchmarkName" -> min ns/op from a
// `go test -json` stream.
func parseStream(path, module string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	defer f.Close()

	// go test -json can split a benchmark's output across events, so
	// reassemble each package's output before scanning for result lines.
	perPkg := map[string]*strings.Builder{}
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (e.g. make echoes) around the stream.
			continue
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	results := map[string]float64{}
	for _, pkg := range pkgs {
		short := strings.TrimPrefix(strings.TrimPrefix(pkg, module), "/")
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			name, ns, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			key := name
			if short != "" {
				key = short + "." + name
			}
			if old, seen := results[key]; !seen || ns < old {
				results[key] = ns
			}
		}
	}
	return results, nil
}

// parseBenchLine parses one benchmark result line
// ("BenchmarkFoo/case-8   1   12345 ns/op   ...") into its normalized
// name (GOMAXPROCS suffix stripped) and ns/op.
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return stripProcs(fields[0]), ns, true
		}
	}
	return "", 0, false
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name, so
// baselines transfer across machines with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
