package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, ns, ok := parseBenchLine("BenchmarkFoo/case=1/workers=2-8 \t       1\t  12345678 ns/op\t 99.5 clients/s")
	if !ok || name != "BenchmarkFoo/case=1/workers=2" || ns != 12345678 {
		t.Fatalf("got %q %v %v", name, ns, ok)
	}
	if _, _, ok := parseBenchLine("ok  \tpkg\t0.5s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkBare-4"); ok {
		t.Error("line without ns/op parsed")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX/sub=a-2":  "BenchmarkX/sub=a",
		"BenchmarkX/n-gram-4": "BenchmarkX/n-gram",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/k-v":      "BenchmarkX/k-v",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeStream fabricates a `go test -json` stream with one benchmark
// result per (package, name, ns) triple.
func writeStream(t *testing.T, path string, entries [][3]string) {
	t.Helper()
	var b strings.Builder
	for _, e := range entries {
		ev := map[string]string{
			"Action":  "output",
			"Package": e[0],
			"Output":  e[1] + "-8 \t 1\t " + e[2] + " ns/op\n",
		}
		buf, _ := json.Marshal(ev)
		b.Write(buf)
		b.WriteByte('\n')
	}
	// Non-JSON noise must be tolerated.
	b.WriteString("make: something echoed\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGateWriteAndCompare(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "base.json")
	baseline := filepath.Join(dir, "BENCH_BASELINE.json")
	mod := "github.com/signguard/signguard"
	writeStream(t, stream, [][3]string{
		{mod + "/internal/fl", "BenchmarkA", "1000000"},
		{mod + "/internal/fl", "BenchmarkA", "900000"}, // -count dupe: min wins
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "2000000"},
	})
	if err := run(stream, baseline, mod, 0.15, true, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	var base Baseline
	raw, _ := os.ReadFile(baseline)
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.NsPerOp["internal/fl.BenchmarkA"] != 900000 {
		t.Fatalf("baseline = %+v, want min of duplicate samples", base.NsPerOp)
	}

	// Within threshold: passes.
	pr := filepath.Join(dir, "pr.json")
	writeStream(t, pr, [][3]string{
		{mod + "/internal/fl", "BenchmarkA", "1000000"}, // +11%
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "1500000"},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}

	// Beyond threshold: fails and names the offender.
	writeStream(t, pr, [][3]string{
		{mod + "/internal/fl", "BenchmarkA", "1100000"}, // +22%
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "2000000"},
	})
	err := run(pr, baseline, mod, 0.15, false, false)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("regression not caught: %v", err)
	}

	// Missing benchmark: fails unless -missing-ok.
	writeStream(t, pr, [][3]string{
		{mod + "/internal/fl", "BenchmarkA", "900000"},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err == nil {
		t.Fatal("missing baseline benchmark tolerated without -missing-ok")
	}
	if err := run(pr, baseline, mod, 0.15, false, true); err != nil {
		t.Fatalf("missing-ok run failed: %v", err)
	}
}

func TestGateErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("\n"), 0o644)
	if err := run(empty, filepath.Join(dir, "b.json"), "m", 0.15, false, false); err == nil {
		t.Error("empty stream accepted")
	}
	stream := filepath.Join(dir, "s.json")
	writeStream(t, stream, [][3]string{{"m/p", "BenchmarkA", "1"}})
	if err := run(stream, filepath.Join(dir, "absent.json"), "m", 0.15, false, false); err == nil {
		t.Error("absent baseline accepted")
	}
	if err := run(stream, filepath.Join(dir, "b.json"), "m", -1, false, false); err == nil {
		t.Error("negative threshold accepted")
	}
}
