package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkFoo/case=1/workers=2-8 \t       1\t  12345678 ns/op\t 99.5 clients/s")
	if !ok || name != "BenchmarkFoo/case=1/workers=2" || r.ns != 12345678 || r.hasMem {
		t.Fatalf("got %q %+v %v", name, r, ok)
	}
	name, r, ok = parseBenchLine("BenchmarkFoo-4 \t 10\t 500 ns/op\t 2.1 clients/s\t 2048 B/op\t 7 allocs/op")
	if !ok || name != "BenchmarkFoo" || r.ns != 500 || !r.hasMem || r.bytes != 2048 || r.allocs != 7 {
		t.Fatalf("benchmem line: got %q %+v %v", name, r, ok)
	}
	if _, _, ok := parseBenchLine("ok  \tpkg\t0.5s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkBare-4"); ok {
		t.Error("line without ns/op parsed")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX/sub=a-2":  "BenchmarkX/sub=a",
		"BenchmarkX/n-gram-4": "BenchmarkX/n-gram",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/k-v":      "BenchmarkX/k-v",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// benchEntry is one fabricated benchmark result; empty mem leaves the
// -benchmem columns off the line.
type benchEntry struct {
	pkg, name, ns string
	mem           string // e.g. "2048 B/op\t 7 allocs/op"
}

// writeStream fabricates a `go test -json` stream with one benchmark
// result per entry.
func writeStream(t *testing.T, path string, entries []benchEntry) {
	t.Helper()
	var b strings.Builder
	for _, e := range entries {
		out := e.name + "-8 \t 1\t " + e.ns + " ns/op"
		if e.mem != "" {
			out += "\t " + e.mem
		}
		ev := map[string]string{
			"Action":  "output",
			"Package": e.pkg,
			"Output":  out + "\n",
		}
		buf, _ := json.Marshal(ev)
		b.Write(buf)
		b.WriteByte('\n')
	}
	// Non-JSON noise must be tolerated.
	b.WriteString("make: something echoed\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGateWriteAndCompare(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "base.json")
	baseline := filepath.Join(dir, "BENCH_BASELINE.json")
	mod := "github.com/signguard/signguard"
	writeStream(t, stream, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", ""},
		{mod + "/internal/fl", "BenchmarkA", "900000", ""}, // -count dupe: min wins
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "2000000", ""},
	})
	if err := run(stream, baseline, mod, 0.15, true, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	var base Baseline
	raw, _ := os.ReadFile(baseline)
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.NsPerOp["internal/fl.BenchmarkA"] != 900000 {
		t.Fatalf("baseline = %+v, want min of duplicate samples", base.NsPerOp)
	}

	// Within threshold: passes.
	pr := filepath.Join(dir, "pr.json")
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", ""}, // +11%
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "1500000", ""},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}

	// Beyond threshold: fails and names the offender.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1100000", ""}, // +22%
		{mod + "/internal/asyncfl/loadtest", "BenchmarkB", "2000000", ""},
	})
	err := run(pr, baseline, mod, 0.15, false, false)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("regression not caught: %v", err)
	}

	// Missing benchmark: fails unless -missing-ok.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "900000", ""},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err == nil {
		t.Fatal("missing baseline benchmark tolerated without -missing-ok")
	}
	if err := run(pr, baseline, mod, 0.15, false, true); err != nil {
		t.Fatalf("missing-ok run failed: %v", err)
	}
}

func TestGateAllocationMetrics(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "base.json")
	baseline := filepath.Join(dir, "BENCH_BASELINE.json")
	mod := "github.com/signguard/signguard"
	writeStream(t, stream, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", "1000000 B/op\t 500 allocs/op"},
		{mod + "/internal/fl", "BenchmarkA", "1100000", "900000 B/op\t 480 allocs/op"}, // per-metric min
		{mod + "/internal/fl", "BenchmarkTiny", "1000", "64 B/op\t 2 allocs/op"},
	})
	if err := run(stream, baseline, mod, 0.15, true, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	var base Baseline
	raw, _ := os.ReadFile(baseline)
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.BytesPerOp["internal/fl.BenchmarkA"] != 900000 || base.AllocsPerOp["internal/fl.BenchmarkA"] != 480 {
		t.Fatalf("baseline allocation stats = %+v / %+v, want per-metric minima", base.BytesPerOp, base.AllocsPerOp)
	}

	pr := filepath.Join(dir, "pr.json")

	// B/op regression beyond threshold fails even with ns/op flat.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", "1100000 B/op\t 480 allocs/op"}, // +22% B/op
		{mod + "/internal/fl", "BenchmarkTiny", "1000", "64 B/op\t 2 allocs/op"},
	})
	err := run(pr, baseline, mod, 0.15, false, false)
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("B/op regression not caught: %v", err)
	}

	// allocs/op regression beyond threshold fails too.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", "900000 B/op\t 600 allocs/op"}, // +25% allocs
		{mod + "/internal/fl", "BenchmarkTiny", "1000", "64 B/op\t 2 allocs/op"},
	})
	err = run(pr, baseline, mod, 0.15, false, false)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocs/op regression not caught: %v", err)
	}

	// Sub-floor baselines are not ratio-gated: 64 B -> 512 B passes.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", "900000 B/op\t 480 allocs/op"},
		{mod + "/internal/fl", "BenchmarkTiny", "1000", "512 B/op\t 12 allocs/op"},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err != nil {
		t.Fatalf("sub-floor allocation growth gated: %v", err)
	}

	// A stream without -benchmem cannot satisfy an allocation-gated
	// baseline: treated as missing.
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1000000", ""},
		{mod + "/internal/fl", "BenchmarkTiny", "1000", ""},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err == nil {
		t.Fatal("stream without allocation stats accepted against allocation-gated baseline")
	}
	if err := run(pr, baseline, mod, 0.15, false, true); err != nil {
		t.Fatalf("missing-ok run without allocation stats failed: %v", err)
	}
}

// TestGateLegacyBaseline: a baseline written before allocation gating
// (ns_per_op only) still gates ns/op and accepts streams with or without
// -benchmem columns.
func TestGateLegacyBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_BASELINE.json")
	legacy := `{"note":"old","ns_per_op":{"internal/fl.BenchmarkA":1000000}}`
	if err := os.WriteFile(baseline, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := "github.com/signguard/signguard"
	pr := filepath.Join(dir, "pr.json")
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1050000", "123456 B/op\t 99 allocs/op"},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err != nil {
		t.Fatalf("legacy baseline with benchmem stream failed: %v", err)
	}
	writeStream(t, pr, []benchEntry{
		{mod + "/internal/fl", "BenchmarkA", "1300000", ""},
	})
	if err := run(pr, baseline, mod, 0.15, false, false); err == nil {
		t.Fatal("ns/op regression not caught against legacy baseline")
	}
}

func TestGateErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("\n"), 0o644)
	if err := run(empty, filepath.Join(dir, "b.json"), "m", 0.15, false, false); err == nil {
		t.Error("empty stream accepted")
	}
	stream := filepath.Join(dir, "s.json")
	writeStream(t, stream, []benchEntry{{"m/p", "BenchmarkA", "1", ""}})
	if err := run(stream, filepath.Join(dir, "absent.json"), "m", 0.15, false, false); err == nil {
		t.Error("absent baseline accepted")
	}
	if err := run(stream, filepath.Join(dir, "b.json"), "m", -1, false, false); err == nil {
		t.Error("negative threshold accepted")
	}
}
