// Command flclient joins a federated training session coordinated by
// flserver. It regenerates the shared dataset from the seed, takes the
// partition matching its client id, and participates honestly — or, with
// -byzantine, misbehaves using one of the local attack strategies
// (the network setting restricts the adversary to non-omniscient attacks:
// sign flipping, scaled reverse, random noise, or label flipping).
//
// With -async it speaks the buffered asynchronous HTTP protocol instead of
// the synchronous gob rounds: fetch the versioned model, compute a
// gradient against it, submit, repeat — no waiting on other clients —
// until the server reports Done (or -updates submissions were accepted).
// -codec compresses each async submission with a gradient codec
// (topk, qsgd, signsgd); the server must advertise the codec as accepted
// or the client fails fast on its first submission.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"maps"
	"slices"
	"strings"

	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/tensor"
	"github.com/signguard/signguard/internal/transport"
)

// localByzModes maps every -byzantine mode to the internal/attack registry
// entry it renders locally. The network setting restricts the adversary to
// the registry subset that needs no cohort visibility (a real client never
// sees the other submissions), which is why omniscient attacks like LIE or
// Min-Max have no mode here. A test pins each value against attack.Builtin
// and each key against the flag usage string, so neither the doc comment
// nor the CLI surface can drift from the registry.
var localByzModes = map[string]string{
	"signflip":  "Sign-flip",
	"reverse":   "Reverse",
	"random":    "Random",
	"labelflip": "Label-flip",
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9000", "server address")
		id       = flag.Int("id", 0, "client id in [0, clients)")
		clients  = flag.Int("clients", 4, "total number of clients (must match server)")
		batch    = flag.Int("batch", 16, "local mini-batch size")
		seed     = flag.Int64("seed", 1, "shared dataset/model seed (must match server)")
		byzStr   = flag.String("byzantine", "", "misbehave: signflip|reverse|random|labelflip (empty = honest)")
		async    = flag.Bool("async", false, "speak the asynchronous HTTP protocol (server must run flserver -async)")
		updates  = flag.Int("updates", 0, "async: stop after this many accepted submissions (0 = until server Done)")
		codecStr = flag.String("codec", "", "async: compress submissions with this codec (identity|topk|qsgd|signsgd; the server must accept it)")
		hyperStr = flag.String("codec-hyper", "", "async: codec hyperparameters as key=value[,key=value], e.g. k=64 (requires -codec)")
	)
	flag.Parse()

	if err := validateFlags(*id, *clients, *batch, *updates); err != nil {
		log.Fatalf("flclient: %v", err)
	}
	if err := validateByzMode(*byzStr); err != nil {
		log.Fatalf("flclient: %v", err)
	}
	wire, err := buildCodec(*codecStr, *hyperStr, *async)
	if err != nil {
		log.Fatalf("flclient: %v", err)
	}
	if err := run(*addr, *id, *clients, *batch, *seed, *byzStr, *async, *updates, wire); err != nil {
		log.Fatalf("flclient: %v", err)
	}
}

// validateFlags rejects out-of-range flag values up front with clear
// errors naming the offending flag (internal/cliutil).
func validateFlags(id, clients, batch, updates int) error {
	if err := cliutil.PositiveInt("-clients", clients); err != nil {
		return err
	}
	if err := cliutil.IndexInRange("-id", id, clients); err != nil {
		return err
	}
	if err := cliutil.PositiveInt("-batch", batch); err != nil {
		return err
	}
	return cliutil.NonNegativeInt("-updates", updates)
}

// validateByzMode rejects unknown -byzantine modes before connecting.
func validateByzMode(mode string) error {
	if mode == "" {
		return nil
	}
	if _, ok := localByzModes[mode]; !ok {
		return fmt.Errorf("unknown -byzantine mode %q (have %s)", mode, strings.Join(slices.Sorted(maps.Keys(localByzModes)), "|"))
	}
	return nil
}

// buildCodec resolves the -codec/-codec-hyper flags to a wire codec
// instance (nil = uncompressed submissions).
func buildCodec(name, hyperStr string, async bool) (codec.Codec, error) {
	hyper, err := cliutil.ParseHyper("-codec-hyper", hyperStr)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if hyper != nil {
			return nil, fmt.Errorf("-codec-hyper requires -codec")
		}
		return nil, nil
	}
	if !async {
		return nil, fmt.Errorf("-codec requires -async (the synchronous gob protocol is uncompressed)")
	}
	c, err := codec.Builtin().Build(name, codec.Params{Hyper: hyper})
	if err != nil {
		return nil, fmt.Errorf("-codec: %w", err)
	}
	return c, nil
}

func run(addr string, id, clients, batch int, seed int64, byzStr string, async bool, updates int, wire codec.Codec) error {
	ds, err := data.MNISTLike(seed, 4000, 1000)
	if err != nil {
		return err
	}
	parts, err := data.PartitionIID(tensor.NewRNG(seed+2), len(ds.Train), clients)
	if err != nil {
		return err
	}
	local, err := data.Subset(ds.Train, parts[id])
	if err != nil {
		return err
	}
	if byzStr == "labelflip" {
		local, err = data.FlipLabels(local, ds.Classes)
		if err != nil {
			return err
		}
	}
	sampler, err := data.NewSampler(tensor.NewRNG(seed+100+int64(id)), local)
	if err != nil {
		return err
	}
	model, err := nn.NewImageCNN(tensor.NewRNG(seed), 1, 8, 8, 6, 32, 10)
	if err != nil {
		return err
	}
	noiseRng := tensor.NewRNG(seed + 500 + int64(id))

	compute := func(round int, params []float64) ([]float64, error) {
		if err := model.SetParamVector(params); err != nil {
			return nil, err
		}
		in, labels, err := fl.BatchInput(ds, sampler.Batch(batch))
		if err != nil {
			return nil, err
		}
		model.ZeroGrad()
		if _, _, err := model.LossAndGrad(in, labels); err != nil {
			return nil, err
		}
		g := model.GradVector()
		switch byzStr {
		case "", "labelflip":
			// labelflip already poisoned the data; gradient is "honest".
		case "signflip":
			tensor.ScaleInPlace(g, -1)
		case "reverse":
			tensor.ScaleInPlace(g, -100)
		case "random":
			g = tensor.RandNormal(noiseRng, len(g), 0, 0.5)
		default:
			return nil, fmt.Errorf("unknown byzantine mode %q", byzStr)
		}
		return g, nil
	}

	mode := "sync"
	if async {
		mode = "async"
	}
	log.Printf("flclient %d: joining %s (%s, %d local examples, byzantine=%q)",
		id, addr, mode, sampler.Size(), byzStr)
	var final []float64
	if async {
		final, err = transport.RunAsyncClient(context.Background(), transport.AsyncClientConfig{
			Addr:       addr,
			ID:         fmt.Sprintf("client-%d", id),
			Compute:    compute,
			MaxUpdates: updates,
			Codec:      wire,
			Rng:        tensor.NewRNG(seed + 900 + int64(id)),
		})
	} else {
		final, err = transport.RunClient(context.Background(), transport.ClientConfig{
			Addr:    addr,
			ID:      fmt.Sprintf("client-%d", id),
			Compute: compute,
		})
	}
	if err != nil {
		return err
	}
	if err := model.SetParamVector(final); err != nil {
		return err
	}
	acc, err := fl.Evaluate(model, ds, ds.Test)
	if err != nil {
		return err
	}
	log.Printf("flclient %d: training finished, local view of final accuracy: %.2f%%", id, acc)
	return nil
}
