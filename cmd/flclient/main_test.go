package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(0, 4, 16, 0); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateFlags(2, 3, 1, 500); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}

	for _, tc := range []struct {
		name                       string
		id, clients, batch, update int
		flag                       string
	}{
		{"zero clients", 0, 0, 16, 0, "-clients"},
		{"negative clients", 0, -1, 16, 0, "-clients"},
		{"negative id", -1, 4, 16, 0, "-id"},
		{"id past range", 4, 4, 16, 0, "-id"},
		{"zero batch", 0, 4, 0, 0, "-batch"},
		{"negative updates", 0, 4, 16, -1, "-updates"},
	} {
		err := validateFlags(tc.id, tc.clients, tc.batch, tc.update)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
}
