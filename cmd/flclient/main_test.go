package main

import (
	"os"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/attack"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(0, 4, 16, 0); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateFlags(2, 3, 1, 500); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}

	for _, tc := range []struct {
		name                       string
		id, clients, batch, update int
		flag                       string
	}{
		{"zero clients", 0, 0, 16, 0, "-clients"},
		{"negative clients", 0, -1, 16, 0, "-clients"},
		{"negative id", -1, 4, 16, 0, "-id"},
		{"id past range", 4, 4, 16, 0, "-id"},
		{"zero batch", 0, 4, 0, 0, "-batch"},
		{"negative updates", 0, 4, 16, -1, "-updates"},
	} {
		err := validateFlags(tc.id, tc.clients, tc.batch, tc.update)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
}

// TestByzModesMatchAttackCatalog pins every -byzantine mode to a real
// internal/attack catalog entry and enforces the network setting's
// constraint: a client renders its attack locally, with no view of the
// cohort and no filtering-feedback channel, so no mode may map to an
// adaptive attack.
func TestByzModesMatchAttackCatalog(t *testing.T) {
	for mode, name := range localByzModes {
		spec, err := attack.SpecByName(name)
		if err != nil {
			t.Errorf("mode %q: %v", mode, err)
			continue
		}
		if spec.Adaptive {
			t.Errorf("mode %q maps to adaptive attack %s — a networked client has no filtering feedback to adapt on", mode, name)
		}
	}
	if err := validateByzMode("definitely-not-a-mode"); err == nil {
		t.Error("unknown mode passed validation")
	}
	if err := validateByzMode(""); err != nil {
		t.Errorf("honest mode rejected: %v", err)
	}
}

// TestByzModesAppearInCLISurface greps this command's own source for each
// mode token: every mode must appear in both the -byzantine usage string
// and the compute switch, so the CLI surface cannot drift from the map the
// catalog test pins.
func TestByzModesAppearInCLISurface(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	for mode := range localByzModes {
		if strings.Count(text, mode) < 2 {
			t.Errorf("mode %q appears fewer than twice in main.go — usage string and compute switch must both carry it", mode)
		}
	}
}
