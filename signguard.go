// Package signguard is the public API of the SignGuard reproduction — a
// from-scratch Go implementation of "Byzantine-robust Federated Learning
// through Collaborative Malicious Gradient Filtering" (Xu, Huang, Song,
// Lan; ICDCS 2022), including the full substrate the paper's evaluation
// rests on: a neural-network training stack, synthetic dataset analogs,
// every attack and baseline defense evaluated, an in-process federated
// simulation engine and a TCP transport.
//
// The package re-exports the library surface a downstream user needs; the
// implementation lives in internal/ packages (one per subsystem). Typical
// use:
//
//	ds, _ := signguard.MNISTLike(1, 4000, 1000)
//	sim, _ := signguard.NewSimulation(signguard.SimulationConfig{
//		Dataset:  ds,
//		NewModel: func(rng *rand.Rand) (signguard.Classifier, error) {
//			return signguard.NewImageCNN(rng, 1, 8, 8, 6, 32, 10)
//		},
//		Rule:    signguard.NewSignGuard(1),
//		Attack:  signguard.NewLIEAttack(0.3),
//		Clients: 50, NumByz: 10, Rounds: 100, BatchSize: 16,
//		LR: 0.1, Momentum: 0.9, WeightDecay: 5e-4, Seed: 1,
//	})
//	result, _ := sim.Run()
//	fmt.Println(result.BestAccuracy)
package signguard

import (
	"context"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/transport"
)

// ---- Core SignGuard framework ----

// SignGuard is the paper's robust aggregation rule (Algorithm 2). Construct
// with NewSignGuard / NewSignGuardSim / NewSignGuardDist, or from a
// SignGuardConfig for full control.
type SignGuard = core.SignGuard

// SignGuardConfig parameterizes a custom SignGuard instance (bounds,
// coordinate fraction, similarity feature, clustering algorithm, component
// toggles for ablations).
type SignGuardConfig = core.Config

// SignGuardReport is the per-round filtering report (trusted set and
// per-filter decisions).
type SignGuardReport = core.Report

// DefaultSignGuardConfig returns the paper's default configuration
// (L=0.1, R=3.0, 10% coordinates, Mean-Shift, all components on).
func DefaultSignGuardConfig() SignGuardConfig { return core.DefaultConfig() }

// NewSignGuardFromConfig builds a SignGuard aggregator from a config.
func NewSignGuardFromConfig(cfg SignGuardConfig) (*SignGuard, error) { return core.New(cfg) }

// NewSignGuard returns plain SignGuard (sign statistics only).
func NewSignGuard(seed int64) *SignGuard { return core.NewPlain(seed) }

// NewSignGuardSim returns SignGuard-Sim (adds the cosine-similarity feature).
func NewSignGuardSim(seed int64) *SignGuard { return core.NewSim(seed) }

// NewSignGuardDist returns SignGuard-Dist (adds the Euclidean-distance feature).
func NewSignGuardDist(seed int64) *SignGuard { return core.NewDist(seed) }

// Similarity feature selectors for SignGuardConfig.
const (
	NoSimilarity       = core.NoSimilarity
	CosineSimilarity   = core.CosineSimilarity
	DistanceSimilarity = core.DistanceSimilarity
)

// Clustering algorithm selectors for SignGuardConfig.
const (
	MeanShiftAlgo = core.MeanShiftAlgo
	KMeansAlgo    = core.KMeansAlgo
)

// ---- Aggregation rules (baseline defenses) ----

// Rule is the gradient aggregation interface every defense implements.
type Rule = aggregate.Rule

// AggregationResult is a rule's per-round output (gradient + selected set).
type AggregationResult = aggregate.Result

// NewMean returns the naive averaging rule (no defense).
func NewMean() Rule { return aggregate.NewMean() }

// NewTrimmedMean returns the coordinate-wise trimmed mean, trimming k per side.
func NewTrimmedMean(k int) Rule { return aggregate.NewTrimmedMean(k) }

// NewMedian returns the coordinate-wise median rule.
func NewMedian() Rule { return aggregate.NewMedian() }

// NewGeoMed returns the geometric-median (Weiszfeld) rule.
func NewGeoMed() Rule { return aggregate.NewGeoMed() }

// NewKrum returns Krum with assumed Byzantine count f.
func NewKrum(f int) Rule { return aggregate.NewKrum(f) }

// NewMultiKrum returns Multi-Krum selecting m gradients.
func NewMultiKrum(f, m int) Rule { return aggregate.NewMultiKrum(f, m) }

// NewBulyan returns Bulyan with assumed Byzantine count f (needs n ≥ 4f+2).
func NewBulyan(f int) Rule { return aggregate.NewBulyan(f) }

// NewDnC returns Divide-and-Conquer spectral filtering.
func NewDnC(f int, seed int64) Rule { return aggregate.NewDnC(f, seed) }

// NewSignSGDMajority returns the signSGD majority-vote rule.
func NewSignSGDMajority(scale float64) Rule { return aggregate.NewSignSGDMajority(scale) }

// ---- Attacks ----

// Attack is the adversary interface: it crafts the Byzantine gradients of a
// round from full knowledge of the honest ones.
type Attack = attack.Attack

// AttackContext is what the adversary observes each round.
type AttackContext = attack.Context

// NewNoAttack returns the honest (no attack) strategy.
func NewNoAttack() Attack { return attack.NewNone() }

// NewRandomAttack returns the Gaussian random-gradient attack.
func NewRandomAttack() Attack { return attack.NewRandom() }

// NewNoiseAttack returns the additive Gaussian noise attack.
func NewNoiseAttack() Attack { return attack.NewNoise() }

// NewSignFlipAttack returns the gradient sign-flipping attack.
func NewSignFlipAttack() Attack { return attack.NewSignFlip() }

// NewLabelFlipAttack returns the label-flipping data-poisoning attack.
func NewLabelFlipAttack() Attack { return attack.NewLabelFlip() }

// NewLIEAttack returns the "A Little Is Enough" attack with factor z
// (z <= 0 derives z_max from Eq. 2 each round).
func NewLIEAttack(z float64) Attack { return attack.NewLIE(z) }

// NewByzMeanAttack returns the paper's ByzMean hybrid attack (Eq. 8).
func NewByzMeanAttack() Attack { return attack.NewByzMean() }

// NewMinMaxAttack returns the Min-Max attack (Eq. 14).
func NewMinMaxAttack() Attack { return attack.NewMinMax() }

// NewMinSumAttack returns the Min-Sum attack (Eq. 15).
func NewMinSumAttack() Attack { return attack.NewMinSum() }

// NewReverseAttack returns the scaled reverse (−r·g) ablation attack.
func NewReverseAttack(scale float64) Attack { return attack.NewReverse(scale) }

// NewSignKeepingAttack returns the adaptive white-box attack (an
// implementation of the paper's future-work discussion): it preserves the
// honest mean's exact sign statistics and norm while shuffling magnitudes
// within each sign class, evading the plain sign filter by construction.
func NewSignKeepingAttack() Attack { return attack.NewSignKeeping() }

// NewTimeVaryingAttack re-draws a strategy from pool every switchEvery
// rounds (Fig. 5's protocol).
func NewTimeVaryingAttack(pool []Attack, switchEvery int, seed int64) (Attack, error) {
	return attack.NewTimeVarying(pool, switchEvery, seed)
}

// DefaultAttackPool returns the Fig. 5 candidate pool (incl. no-attack).
func DefaultAttackPool() []Attack { return attack.DefaultTimeVaryingPool() }

// Adversary is the round-aware attacker interface of the pipeline: its
// Context carries the round index and the previous rounds' filtering
// history when the attack declares it needs them.
type Adversary = attack.Adversary

// AttackObservation is one round's filtering feedback as seen by an
// omniscient adaptive adversary.
type AttackObservation = attack.Observation

// NewAdaptiveMinMaxAttack returns the history-aware Min-Max port: it
// tightens or relaxes its distance constraint from the defense's observed
// filtering decisions.
func NewAdaptiveMinMaxAttack() Adversary { return attack.NewAdaptiveMinMax() }

// ---- Round pipeline ----

// Pipeline overrides individual stages of the engine's five-stage round
// pipeline (Participation → LocalCompute → Adversary → Defense →
// ServerUpdate); zero value = the paper's protocol.
type Pipeline = fl.Pipeline

// Participation selects the clients of each round.
type Participation = fl.Participation

// FullParticipation selects every client every round (the default).
type FullParticipation = fl.FullParticipation

// UniformSubsample selects K distinct clients uniformly at random each
// round, from the participation stage's own RNG stream.
type UniformSubsample = fl.UniformSubsample

// ---- Datasets ----

// Dataset bundles a train/test split with model-facing metadata.
type Dataset = data.Dataset

// Example is one labelled sample (dense features or token sequence).
type Example = data.Example

// MNISTLike returns the MNIST analog dataset (easy 10-class images).
func MNISTLike(seed int64, train, test int) (*Dataset, error) {
	return data.MNISTLike(seed, train, test)
}

// FashionLike returns the Fashion-MNIST analog dataset.
func FashionLike(seed int64, train, test int) (*Dataset, error) {
	return data.FashionLike(seed, train, test)
}

// CIFARLike returns the CIFAR-10 analog dataset (3-channel, hardest).
func CIFARLike(seed int64, train, test int) (*Dataset, error) {
	return data.CIFARLike(seed, train, test)
}

// AGNewsLike returns the AG-News analog text dataset.
func AGNewsLike(seed int64, train, test int) (*Dataset, error) {
	return data.AGNewsLike(seed, train, test)
}

// ---- Models ----

// Classifier is the trainable-model interface (flat parameter and gradient
// vector views over any architecture).
type Classifier = nn.Classifier

// ModelInput is a batch in model-facing form.
type ModelInput = nn.Input

// NewImageCNN builds a conv → pool → FC classifier for c×h×w inputs.
func NewImageCNN(rng *rand.Rand, c, h, w, filters, hidden, classes int) (Classifier, error) {
	return nn.NewImageCNN(rng, c, h, w, filters, hidden, classes)
}

// NewDeepImageCNN builds a two-stage convolutional classifier.
func NewDeepImageCNN(rng *rand.Rand, c, h, w, f1, f2, hidden, classes int) (Classifier, error) {
	return nn.NewDeepImageCNN(rng, c, h, w, f1, f2, hidden, classes)
}

// NewMLP builds a ReLU multi-layer perceptron over the given layer sizes.
func NewMLP(rng *rand.Rand, sizes ...int) (Classifier, error) {
	return nn.NewMLP(rng, sizes...)
}

// NewTextRNN builds the recurrent text classifier (AG-News analog model).
func NewTextRNN(rng *rand.Rand, vocab, embed, hidden, classes int) Classifier {
	return nn.NewTextRNN(rng, vocab, embed, hidden, classes)
}

// ---- Federated simulation ----

// SimulationConfig configures an in-process federated training run.
type SimulationConfig = fl.Config

// Simulation is a configured federated training session.
type Simulation = fl.Simulation

// RunResult summarizes a completed run (best/final accuracy, traces,
// selection rates).
type RunResult = fl.RunResult

// NonIIDConfig selects the paper's non-IID partition.
type NonIIDConfig = fl.NonIID

// NewSimulation prepares a federated training run.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) { return fl.New(cfg) }

// Evaluate returns model accuracy (%) over examples.
func Evaluate(model Classifier, ds *Dataset, examples []Example) (float64, error) {
	return fl.Evaluate(model, ds, examples)
}

// ---- Network transport ----

// ServerConfig configures the TCP parameter server.
type ServerConfig = transport.ServerConfig

// Server is the TCP parameter server (round coordinator).
type Server = transport.Server

// ClientConfig configures a TCP federated client.
type ClientConfig = transport.ClientConfig

// GradientFunc computes a client's per-round gradient for the TCP
// transport (honest or Byzantine).
type GradientFunc = transport.GradientFunc

// NewServer binds and prepares a parameter server.
func NewServer(cfg ServerConfig) (*Server, error) { return transport.NewServer(cfg) }

// RunFederatedClient joins a TCP training session and participates until
// the server broadcasts the final model, which it returns.
func RunFederatedClient(ctx context.Context, cfg ClientConfig) ([]float64, error) {
	return transport.RunClient(ctx, cfg)
}
