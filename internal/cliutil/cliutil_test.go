package cliutil

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Every helper must name the offending flag in its error — the CLI tests
// historically asserted exactly that, and the contract lives here now.
func TestRangeChecksNameTheFlag(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		flag string
	}{
		{"zero positive int", PositiveInt("-clients", 0), "-clients"},
		{"negative positive int", PositiveInt("-clients", -3), "-clients"},
		{"negative non-negative int", NonNegativeInt("-updates", -1), "-updates"},
		{"negative index", IndexInRange("-id", -1, 4), "-id"},
		{"index past range", IndexInRange("-id", 4, 4), "-id"},
		{"zero positive float", PositiveFloat("-lr", 0), "-lr"},
		{"negative positive float", PositiveFloat("-lr", -0.1), "-lr"},
		{"negative non-negative float", NonNegativeFloat("-alpha", -0.1), "-alpha"},
		{"fraction below", Fraction("-load-byz", -0.01), "-load-byz"},
		{"fraction above", Fraction("-load-byz", 1.01), "-load-byz"},
		{"zero duration", PositiveDuration("-round-timeout", 0), "-round-timeout"},
		{"negative duration", PositiveDuration("-round-timeout", -time.Second), "-round-timeout"},
		{"enum miss", Enum("-rule", "no-such-rule", "mean", "signguard"), "-rule"},
		{"NaN finite float", FiniteFloat("-lr", math.NaN()), "-lr"},
		{"Inf finite float", FiniteFloat("-lr", math.Inf(1)), "-lr"},
		{"NaN positive float", PositiveFloat("-lr", math.NaN()), "-lr"},
		{"Inf positive float", PositiveFloat("-lr", math.Inf(1)), "-lr"},
		{"NaN non-negative float", NonNegativeFloat("-alpha", math.NaN()), "-alpha"},
		{"NaN fraction", Fraction("-load-byz", math.NaN()), "-load-byz"},
		{"Inf fraction", Fraction("-load-byz", math.Inf(-1)), "-load-byz"},
	} {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(tc.err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, tc.err, tc.flag)
		}
	}
}

func TestRangeChecksAcceptMinima(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"int minimum", PositiveInt("-clients", 1)},
		{"zero allowed", NonNegativeInt("-updates", 0)},
		{"index low edge", IndexInRange("-id", 0, 4)},
		{"index high edge", IndexInRange("-id", 3, 4)},
		{"small float", PositiveFloat("-lr", 0.001)},
		{"zero float allowed", NonNegativeFloat("-alpha", 0)},
		{"fraction edges low", Fraction("-load-byz", 0)},
		{"fraction edges high", Fraction("-load-byz", 1)},
		{"millisecond timeout", PositiveDuration("-round-timeout", time.Millisecond)},
		{"enum hit", Enum("-rule", "signguard", "mean", "signguard")},
	} {
		if tc.err != nil {
			t.Errorf("%s: valid value rejected: %v", tc.name, tc.err)
		}
	}
}

func TestParseHyper(t *testing.T) {
	h, err := ParseHyper("-codec-hyper", "k=64")
	if err != nil || len(h) != 1 || h["k"] != 64 {
		t.Fatalf("ParseHyper(k=64) = %v, %v", h, err)
	}
	h, err = ParseHyper("-codec-hyper", "levels=4, seed=7.5")
	if err != nil || h["levels"] != 4 || h["seed"] != 7.5 {
		t.Fatalf("ParseHyper(two pairs) = %v, %v", h, err)
	}
	if h, err := ParseHyper("-codec-hyper", ""); err != nil || h != nil {
		t.Fatalf("empty string should parse to nil, got %v, %v", h, err)
	}
	// strconv.ParseFloat parses "NaN" and "Inf", so non-finite values must
	// be refused explicitly — they would poison campaign cell hashes and
	// CSV exports downstream.
	for _, bad := range []string{"k", "=4", "k=", "k=abc", "k=1,k=2",
		"k=NaN", "k=nan", "k=Inf", "k=-Inf", "k=+inf", "k=1,trim=NaN"} {
		if _, err := ParseHyper("-codec-hyper", bad); err == nil {
			t.Errorf("ParseHyper(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "-codec-hyper") {
			t.Errorf("ParseHyper(%q) error %q does not name the flag", bad, err)
		}
	}
}

func TestFormatHyperRoundTrip(t *testing.T) {
	in := map[string]float64{"levels": 4, "k": 64}
	s := FormatHyper(in)
	if s != "k=64,levels=4" {
		t.Fatalf("FormatHyper = %q, want sorted k=64,levels=4", s)
	}
	back, err := ParseHyper("-x", s)
	if err != nil || len(back) != 2 || back["k"] != 64 || back["levels"] != 4 {
		t.Fatalf("round trip = %v, %v", back, err)
	}
	if FormatHyper(nil) != "" {
		t.Error("FormatHyper(nil) not empty")
	}
}
