// Package cliutil is the flag-validation vocabulary shared by the
// command-line tools (cmd/flserver, cmd/flclient, cmd/campaign,
// cmd/reproduce): range checks that reject out-of-range flag values up
// front with errors naming the offending flag, instead of passing them
// through to fail (or misbehave) deep inside the protocol. Every helper
// takes the flag's user-facing name ("-clients") and includes it verbatim
// in the error, so a failing invocation reads like the usage line that
// fixes it.
package cliutil

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FiniteFloat requires v to be neither NaN nor ±Inf. flag.Float64 and
// strconv.ParseFloat happily parse "NaN" and "Inf", and a non-finite value
// poisons everything it touches downstream (campaign cell hashes, CSV
// exports, gradient math), so flags that feed numbers into the pipeline
// reject them at the door.
func FiniteFloat(flag string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s must be finite (got %v)", flag, v)
	}
	return nil
}

// PositiveInt requires v >= 1.
func PositiveInt(flag string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be >= 1 (got %d)", flag, v)
	}
	return nil
}

// NonNegativeInt requires v >= 0.
func NonNegativeInt(flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d)", flag, v)
	}
	return nil
}

// IndexInRange requires v in [0, n) — a client id against a fleet size.
func IndexInRange(flag string, v, n int) error {
	if v < 0 || v >= n {
		return fmt.Errorf("%s %d out of [0, %d)", flag, v, n)
	}
	return nil
}

// PositiveFloat requires v > 0 and finite (NaN fails every comparison, so
// each float validator screens it explicitly).
func PositiveFloat(flag string, v float64) error {
	if err := FiniteFloat(flag, v); err != nil {
		return err
	}
	if v <= 0 {
		return fmt.Errorf("%s must be positive (got %v)", flag, v)
	}
	return nil
}

// NonNegativeFloat requires v >= 0 and finite.
func NonNegativeFloat(flag string, v float64) error {
	if err := FiniteFloat(flag, v); err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (got %v)", flag, v)
	}
	return nil
}

// Fraction requires v in [0, 1]. NaN is caught explicitly: it fails both
// range comparisons, so without the finite screen `-byz-fraction NaN`
// would validate.
func Fraction(flag string, v float64) error {
	if err := FiniteFloat(flag, v); err != nil {
		return err
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("%s must be in [0, 1] (got %v)", flag, v)
	}
	return nil
}

// PositiveDuration requires d > 0.
func PositiveDuration(flag string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%s must be positive (got %v)", flag, d)
	}
	return nil
}

// Enum requires v to be one of allowed ("" is rejected like any other
// non-member; callers treating empty as "unset" should skip the check).
func Enum(flag, v string, allowed ...string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("%s: unknown value %q (want %s)", flag, v, strings.Join(allowed, "|"))
}

// ParseHyper parses a "key=value,key=value" hyperparameter flag
// ("k=64" / "levels=4,seed=7") into the map form the registries take.
// An empty string is no hyperparameters (nil map).
func ParseHyper(flag, s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return nil, fmt.Errorf("%s: bad hyperparameter %q (want key=value)", flag, pair)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value in %q: %v", flag, pair, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// ParseFloat accepts "NaN" and "Inf"; a non-finite hyper poisons
			// campaign cell hashes and CSV exports, so refuse it here.
			return nil, fmt.Errorf("%s: non-finite value in %q (hyperparameters must be finite)", flag, pair)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("%s: duplicate hyperparameter %q", flag, k)
		}
		out[k] = f
	}
	return out, nil
}

// FormatHyper renders a hyperparameter map deterministically
// ("k=64,levels=4", keys sorted) — the inverse of ParseHyper, for logs
// and listings.
func FormatHyper(h map[string]float64) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, h[k])
	}
	return strings.Join(parts, ",")
}
