package aggregate

import (
	"fmt"
	"math/rand"

	"github.com/signguard/signguard/internal/cluster"
	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// FLAME is the clustering defense of Nguyen et al. (USENIX Sec'22),
// simplified to the gradient setting: direction-normalize every update
// (cosine geometry), cluster the directions with k-means, keep the largest
// cluster as the benign majority, clip the kept updates to their median
// norm, average, and add Gaussian noise calibrated to the clipping bound
// (std = Sigma·bound; Sigma 0 disables the noise term).
type FLAME struct {
	// Clusters is the k-means cluster count (default 2: benign vs outlier).
	Clusters int
	// Sigma scales the calibrated noise: the additive noise per coordinate
	// is N(0, (Sigma·S)²) with S the median-norm clipping bound.
	Sigma float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int

	// rng drives the k-means++ seeding and the noise draws. Both consume it
	// sequentially regardless of the worker count.
	rng *rand.Rand
}

var (
	_ Rule          = (*FLAME)(nil)
	_ WorkersSetter = (*FLAME)(nil)
)

// NewFLAME returns a FLAME rule with k clusters and noise scale sigma,
// seeded deterministically.
func NewFLAME(k int, sigma float64, seed int64) *FLAME {
	return &FLAME{Clusters: k, Sigma: sigma, rng: tensor.NewRNG(seed)}
}

// Name implements Rule.
func (*FLAME) Name() string { return "FLAME" }

// SetWorkers implements WorkersSetter.
func (f *FLAME) SetWorkers(n int) { f.Workers = n }

// Aggregate implements Rule.
func (f *FLAME) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	k := f.Clusters
	if k < 1 {
		k = 2
	}
	if f.rng == nil {
		f.rng = tensor.NewRNG(0)
	}
	workers := parallel.Resolve(f.Workers)

	// Unit-normalize so k-means' Euclidean geometry matches cosine
	// distance: ‖u−v‖² = 2(1−cos(u,v)) on the unit sphere. Zero-norm
	// updates stay at the origin (no direction to compare).
	unit := make([][]float64, len(grads))
	parallel.For(workers, len(grads), func(_, start, end int) {
		for i := start; i < end; i++ {
			u := tensor.Clone(grads[i])
			if n := tensor.Norm(u); n > 0 {
				tensor.ScaleInPlace(u, 1/n)
			}
			unit[i] = u
		}
	})

	// The clusterer consumes the rule's RNG sequentially (k-means++
	// restarts), so clustering is identical for any worker count. Hostile
	// buffers surface as ErrNonFinitePoints — an error, never NaN output.
	res, err := cluster.NewKMeans(k).Cluster(f.rng, unit)
	if err != nil {
		return nil, fmt.Errorf("aggregate: FLAME clustering: %w", err)
	}

	// The benign majority is the largest cluster; ties resolve to the
	// lowest cluster index for determinism.
	major := 0
	for c, size := range res.Sizes {
		if size > res.Sizes[major] {
			major = c
		}
	}
	kept := make([]int, 0, len(grads))
	for i, label := range res.Labels {
		if label == major {
			kept = append(kept, i)
		}
	}

	// Clip the admitted updates to their median norm, then average.
	norms := make([]float64, len(kept))
	for j, i := range kept {
		norms[j] = tensor.Norm(grads[i])
	}
	bound, err := stats.Median(norms)
	if err != nil {
		return nil, err
	}
	clipped := make([][]float64, len(kept))
	parallel.For(workers, len(kept), func(_, start, end int) {
		for j := start; j < end; j++ {
			c := tensor.Clone(grads[kept[j]])
			tensor.ClipNorm(c, bound)
			clipped[j] = c
		}
	})
	g, err := tensor.MeanWorkers(clipped, workers)
	if err != nil {
		return nil, err
	}

	// Calibrated noise: std proportional to the clipping bound, drawn
	// sequentially from the rule's own RNG stream.
	if std := f.Sigma * bound; std > 0 {
		for j := range g {
			g[j] += std * f.rng.NormFloat64()
		}
	}
	return &Result{Gradient: g, Selected: kept}, nil
}
