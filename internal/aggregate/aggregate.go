// Package aggregate implements the gradient aggregation rules (GARs) that
// the paper compares SignGuard against: plain Mean, coordinate-wise
// Trimmed-Mean and Median (Yin et al.), geometric median, Krum/Multi-Krum
// (Blanchard et al.), Bulyan (El Mhamdi et al.), Divide-and-Conquer
// (Shejwalkar & Houmansadr) and signSGD majority vote (Bernstein et al.).
//
// Every rule consumes the per-client flat gradient vectors of one round and
// produces a single aggregated gradient plus, when the rule performs
// explicit client selection, the indices of the gradients it kept — the
// signal used to compute the paper's Table II selection rates.
package aggregate

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/tensor"
)

// ErrNoGradients is returned when a rule receives an empty gradient set.
var ErrNoGradients = errors.New("aggregate: no gradients")

// Result is the outcome of one aggregation round.
type Result struct {
	// Gradient is the aggregated global gradient.
	Gradient []float64
	// Selected lists the indices of the input gradients the rule chose to
	// aggregate, when the rule performs whole-gradient selection. It is nil
	// for coordinate-wise rules (Mean, TrMean, Median, GeoMed, signSGD)
	// where per-client attribution is not meaningful.
	Selected []int
}

// Rule is a gradient aggregation rule. Implementations must not retain or
// mutate the input gradient slices.
type Rule interface {
	// Name returns a short stable identifier (used in reports and tables).
	Name() string
	// Aggregate combines the per-client gradients of one round.
	Aggregate(grads [][]float64) (*Result, error)
}

// WorkersSetter is implemented by rules whose hot inner loops parallelize
// across a worker pool. The contract is strict: the worker count changes
// wall-clock time only — aggregation output must be byte-identical for any
// value (see internal/parallel for the reduction discipline).
type WorkersSetter interface {
	// SetWorkers bounds the rule's kernel parallelism (0 = automatic,
	// 1 = sequential).
	SetWorkers(n int)
}

// SetWorkers configures r to use n workers if it supports parallel
// kernels, recursing into wrappers (e.g. NormClip). Rules without parallel
// kernels are left untouched.
func SetWorkers(r Rule, n int) {
	if ws, ok := r.(WorkersSetter); ok {
		ws.SetWorkers(n)
	}
}

// validate checks the common preconditions: a non-empty set of equal-length
// vectors. It returns the dimensionality.
func validate(grads [][]float64) (int, error) {
	if len(grads) == 0 {
		return 0, ErrNoGradients
	}
	d := len(grads[0])
	if d == 0 {
		return 0, errors.New("aggregate: zero-dimensional gradients")
	}
	for i, g := range grads {
		if len(g) != d {
			return 0, fmt.Errorf("%w: gradient %d has %d dims, want %d", tensor.ErrDimensionMismatch, i, len(g), d)
		}
	}
	return d, nil
}

// Mean is the naive (non-robust) averaging rule — the paper's no-defense
// baseline.
type Mean struct {
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*Mean)(nil)
var _ WorkersSetter = (*Mean)(nil)

// NewMean returns the plain averaging rule.
func NewMean() *Mean { return &Mean{} }

// Name implements Rule.
func (*Mean) Name() string { return "Mean" }

// SetWorkers implements WorkersSetter.
func (m *Mean) SetWorkers(n int) { m.Workers = n }

// Aggregate returns the element-wise average of all gradients.
func (m *Mean) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	g, err := tensor.MeanWorkers(grads, parallel.Resolve(m.Workers))
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g, Selected: allIndices(len(grads))}, nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
