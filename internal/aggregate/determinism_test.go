package aggregate

import (
	"fmt"
	"math"
	"testing"
)

// newRules builds one instance of every parallelizable rule at the given
// worker count, on a fixed-seed cohort of n=41 gradients. The sizes are
// chosen so every rule's preconditions hold: Krum needs n >= 2F+3 (41 >=
// 19), Bulyan needs n >= 4F+2 (41 >= 38) and DnC must not remove all
// gradients. DnC instances are freshly seeded per worker count so the
// coordinate-subsampling RNG streams match.
func newRules(workers int) []Rule {
	dnc := NewDnC(8, 77)
	dnc.SubDim = 97 // force actual subsampling below d
	rules := []Rule{
		&MultiKrum{F: 8, M: 1},
		&MultiKrum{F: 8, M: 5},
		&Bulyan{F: 9},
		dnc,
		&GeoMed{MaxIter: 100, Tol: 1e-8},
		&TrimmedMean{K: 5},
		&Median{},
		&Mean{},
		&SignSGDMajority{Scale: 1},
		NewNormClip(&GeoMed{MaxIter: 100, Tol: 1e-8}, 0),
	}
	for _, r := range rules {
		SetWorkers(r, workers)
	}
	return rules
}

// sameBits reports whether a and b are bit-for-bit identical float slices
// (distinguishing +0/-0 and any NaN payloads — stricter than ==).
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The repo-wide parallelism contract: for every rule, any Workers value
// produces byte-identical output — same gradient bits, same selection.
func TestAggregationByteIdenticalAcrossWorkers(t *testing.T) {
	grads := honestSet(123, 41, 257, 0.1, 1.3)
	// A few adversarial-looking outliers so selection rules actually filter.
	for j := range grads[3] {
		grads[3][j] = 40 + float64(j%5)
	}
	for j := range grads[17] {
		grads[17][j] = -35.5
	}

	baselines := newRules(1)
	base := make([]*Result, len(baselines))
	for ri, r := range baselines {
		res, err := r.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s (workers=1): %v", r.Name(), err)
		}
		base[ri] = res
	}

	for _, workers := range []int{2, 7} {
		rules := newRules(workers)
		for ri, r := range rules {
			t.Run(fmt.Sprintf("%s/workers=%d", r.Name(), workers), func(t *testing.T) {
				res, err := r.Aggregate(grads)
				if err != nil {
					t.Fatalf("Aggregate: %v", err)
				}
				if !sameBits(res.Gradient, base[ri].Gradient) {
					t.Errorf("gradient not byte-identical to the workers=1 run")
				}
				if !sameInts(res.Selected, base[ri].Selected) {
					t.Errorf("selection differs: %v vs %v", res.Selected, base[ri].Selected)
				}
			})
		}
	}
}

// Repeated parallel runs of the same rule instance set must agree with
// themselves: no run-to-run scheduling effect may leak into the output.
func TestAggregationParallelRunToRunStable(t *testing.T) {
	grads := honestSet(321, 41, 129, -0.2, 0.9)
	first := make([]*Result, 0)
	for _, r := range newRules(7) {
		res, err := r.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		first = append(first, res)
	}
	for trial := 0; trial < 3; trial++ {
		for ri, r := range newRules(7) {
			res, err := r.Aggregate(grads)
			if err != nil {
				t.Fatalf("%s: %v", r.Name(), err)
			}
			if !sameBits(res.Gradient, first[ri].Gradient) {
				t.Errorf("%s: trial %d diverged from the first parallel run", r.Name(), trial)
			}
		}
	}
}

// The Scores slice feeding Multi-Krum's ranking must itself be
// byte-identical, not just the final argsort winners.
func TestKrumScoresByteIdenticalAcrossWorkers(t *testing.T) {
	grads := honestSet(55, 33, 64, 0, 1)
	base, err := (&MultiKrum{F: 6, M: 1, Workers: 1}).Scores(grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		got, err := (&MultiKrum{F: 6, M: 1, Workers: workers}).Scores(grads)
		if err != nil {
			t.Fatal(err)
		}
		if !sameBits(got, base) {
			t.Errorf("workers=%d: scores not byte-identical", workers)
		}
	}
}

// SetWorkers must reach rules wrapped in NormClip.
func TestSetWorkersRecursesIntoWrappers(t *testing.T) {
	inner := &GeoMed{}
	nc := NewNormClip(inner, 0)
	SetWorkers(nc, 5)
	if nc.Workers != 5 || inner.Workers != 5 {
		t.Errorf("SetWorkers(NormClip, 5): wrapper=%d inner=%d", nc.Workers, inner.Workers)
	}
	// Rules without parallel kernels are a no-op, not a panic.
	SetWorkers(ruleWithoutWorkers{}, 3)
}

type ruleWithoutWorkers struct{}

func (ruleWithoutWorkers) Name() string                           { return "static" }
func (ruleWithoutWorkers) Aggregate([][]float64) (*Result, error) { return nil, nil }
