package aggregate

import (
	"math"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// MedianOfMeans is the median-of-means neighborhood filter of FedPG-BR (Fan
// et al., NeurIPS'21): with a distance threshold r, the candidate set S
// holds every gradient with a strict majority of the cohort within r; the
// MoM center μ is the member of S closest to S's mean; the survivors are
// all gradients within r of μ, and the aggregate is their average. An
// empty candidate set degrades to plain averaging (the filter has no
// majority to anchor on). Radius 0 derives the threshold from the data as
// the median pairwise distance.
type MedianOfMeans struct {
	// Radius is the neighborhood threshold r (0 = median pairwise
	// distance of the round's gradients).
	Radius float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var (
	_ Rule          = (*MedianOfMeans)(nil)
	_ WorkersSetter = (*MedianOfMeans)(nil)
)

// NewMedianOfMeans returns a MoM filter with the given radius (0 = median
// pairwise distance).
func NewMedianOfMeans(radius float64) *MedianOfMeans {
	return &MedianOfMeans{Radius: radius}
}

// Name implements Rule.
func (*MedianOfMeans) Name() string { return "MoM" }

// SetWorkers implements WorkersSetter.
func (m *MedianOfMeans) SetWorkers(n int) { m.Workers = n }

// Aggregate implements Rule.
func (m *MedianOfMeans) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	workers := parallel.Resolve(m.Workers)
	dist, err := stats.PairwiseDistancesWorkers(grads, workers)
	if err != nil {
		return nil, err
	}

	radius := m.Radius
	if radius <= 0 {
		// Data-derived default: the median of the strict upper-triangle
		// pairwise distances (every gradient is trivially within 0 of
		// itself, so self-distances would only dilute the estimate).
		pairs := make([]float64, 0, n*(n-1)/2)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, dist[i][j])
			}
		}
		if len(pairs) == 0 {
			// A single gradient is its own aggregate.
			return &Result{Gradient: tensor.Clone(grads[0]), Selected: []int{0}}, nil
		}
		radius, err = stats.Median(pairs)
		if err != nil {
			return nil, err
		}
	}

	// Candidate set S: gradients with a strict cohort majority within the
	// threshold (the point itself counts, as in the reference algorithm).
	candidates := neighborhoodMajority(dist, radius)
	if len(candidates) == 0 {
		// No anchor: degrade to the plain mean of everyone.
		g, err := tensor.MeanWorkers(grads, workers)
		if err != nil {
			return nil, err
		}
		return &Result{Gradient: g, Selected: allIndices(n)}, nil
	}

	// μ = the member of S closest to mean(S) — the median-of-means center.
	sGrads := make([][]float64, len(candidates))
	for j, i := range candidates {
		sGrads[j] = grads[i]
	}
	meanS, err := tensor.MeanWorkers(sGrads, workers)
	if err != nil {
		return nil, err
	}
	center, best := -1, math.Inf(1)
	for _, i := range candidates {
		d, err := tensor.Distance(grads[i], meanS)
		if err != nil {
			return nil, err
		}
		if d < best {
			center, best = i, d
		}
	}
	if center < 0 {
		// Every candidate sat at a non-finite distance from the mean: the
		// buffer is hostile beyond anchoring.
		return nil, ErrNonFiniteAggregate
	}

	// Survivors: everything within the threshold of μ.
	survivors := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if dist[i][center] <= radius {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		// Unreachable with a finite radius (μ is within 0 of itself), but a
		// NaN radius from a hostile buffer lands here.
		return nil, ErrNonFiniteAggregate
	}
	kept := make([][]float64, len(survivors))
	for j, i := range survivors {
		kept[j] = grads[i]
	}
	g, err := tensor.MeanWorkers(kept, workers)
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g, Selected: survivors}, nil
}

// neighborhoodMajority returns the indices whose row of the distance matrix
// has a strict majority of entries (self included) within radius.
func neighborhoodMajority(dist [][]float64, radius float64) []int {
	n := len(dist)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		neighbors := 0
		for j := 0; j < n; j++ {
			if dist[i][j] <= radius {
				neighbors++
			}
		}
		if 2*neighbors > n {
			out = append(out, i)
		}
	}
	return out
}
