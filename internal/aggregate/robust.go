package aggregate

import (
	"fmt"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// TrimmedMean is the coordinate-wise trimmed mean of Yin et al. (ICML'18):
// per coordinate, drop the K smallest and K largest values and average the
// rest. K is normally set to the (assumed known) number of Byzantine
// clients — an advantage the paper grants the baselines but that SignGuard
// does not need.
type TrimmedMean struct {
	// K is the per-side trim count; the rule requires n > 2K.
	K int
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*TrimmedMean)(nil)
var _ WorkersSetter = (*TrimmedMean)(nil)

// NewTrimmedMean returns a trimmed-mean rule trimming k from each side.
func NewTrimmedMean(k int) *TrimmedMean { return &TrimmedMean{K: k} }

// Name implements Rule.
func (*TrimmedMean) Name() string { return "TrMean" }

// SetWorkers implements WorkersSetter.
func (t *TrimmedMean) SetWorkers(n int) { t.Workers = n }

// Aggregate implements Rule.
func (t *TrimmedMean) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	if t.K < 0 || len(grads) <= 2*t.K {
		return nil, fmt.Errorf("aggregate: TrMean needs n > 2K (n=%d, K=%d)", len(grads), t.K)
	}
	g, err := stats.CoordinateTrimmedMeanWorkers(grads, t.K, parallel.Resolve(t.Workers))
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g}, nil
}

// Median is the coordinate-wise median rule of Yin et al.
type Median struct {
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*Median)(nil)
var _ WorkersSetter = (*Median)(nil)

// NewMedian returns the coordinate-wise median rule.
func NewMedian() *Median { return &Median{} }

// Name implements Rule.
func (*Median) Name() string { return "Median" }

// SetWorkers implements WorkersSetter.
func (m *Median) SetWorkers(n int) { m.Workers = n }

// Aggregate implements Rule.
func (m *Median) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	g, err := stats.CoordinateMedianWorkers(grads, parallel.Resolve(m.Workers))
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g}, nil
}

// GeoMed approximates the geometric median — the point minimizing the sum
// of Euclidean distances to all gradients — with Weiszfeld's algorithm.
type GeoMed struct {
	// MaxIter bounds the Weiszfeld iterations (default 100).
	MaxIter int
	// Tol is the movement threshold for convergence (default 1e-8).
	Tol float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*GeoMed)(nil)
var _ WorkersSetter = (*GeoMed)(nil)

// NewGeoMed returns a geometric-median rule with default settings.
func NewGeoMed() *GeoMed { return &GeoMed{MaxIter: 100, Tol: 1e-8} }

// Name implements Rule.
func (*GeoMed) Name() string { return "GeoMed" }

// SetWorkers implements WorkersSetter.
func (g *GeoMed) SetWorkers(n int) { g.Workers = n }

// Aggregate implements Rule.
func (g *GeoMed) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := g.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	workers := parallel.Resolve(g.Workers)
	// Weiszfeld: start at the mean, iterate inverse-distance reweighting.
	x, err := tensor.MeanWorkers(grads, workers)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(grads))
	// Per-worker coincidence flags, OR-merged after each join: a boolean
	// union is insensitive to chunk boundaries.
	hit := make([]bool, workers)
	for it := 0; it < maxIter; it++ {
		for i := range hit {
			hit[i] = false
		}
		parallel.For(workers, len(grads), func(wk, start, end int) {
			for i := start; i < end; i++ {
				dist, err := tensor.Distance(x, grads[i])
				if err != nil { // unreachable: dims validated above
					panic(err)
				}
				if dist < 1e-12 {
					// Current estimate coincides with a data point;
					// Weiszfeld's weight is singular there. Nudge with a
					// tiny epsilon.
					dist = 1e-12
					hit[wk] = true
				}
				w[i] = 1 / dist
			}
		})
		var coincident bool
		for _, h := range hit {
			coincident = coincident || h
		}
		next, err := tensor.WeightedMeanWorkers(grads, w, workers)
		if err != nil {
			return nil, err
		}
		move, err := tensor.Distance(next, x)
		if err != nil {
			return nil, err
		}
		x = next
		if move < tol || coincident {
			break
		}
	}
	return &Result{Gradient: x}, nil
}

// SignSGDMajority aggregates only the signs of the gradients (Bernstein et
// al.): the output coordinate is the majority sign, with magnitude Scale.
type SignSGDMajority struct {
	// Scale is the magnitude applied to the majority sign (default 1).
	Scale float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*SignSGDMajority)(nil)
var _ WorkersSetter = (*SignSGDMajority)(nil)

// NewSignSGDMajority returns the sign majority-vote rule.
func NewSignSGDMajority(scale float64) *SignSGDMajority {
	if scale <= 0 {
		scale = 1
	}
	return &SignSGDMajority{Scale: scale}
}

// Name implements Rule.
func (*SignSGDMajority) Name() string { return "SignSGD" }

// SetWorkers implements WorkersSetter.
func (s *SignSGDMajority) SetWorkers(n int) { s.Workers = n }

// Aggregate implements Rule.
func (s *SignSGDMajority) Aggregate(grads [][]float64) (*Result, error) {
	d, err := validate(grads)
	if err != nil {
		return nil, err
	}
	out := make([]float64, d)
	parallel.For(parallel.Resolve(s.Workers), d, func(_, start, end int) {
		for j := start; j < end; j++ {
			var vote float64
			for _, g := range grads {
				switch {
				case g[j] > 0:
					vote++
				case g[j] < 0:
					vote--
				}
			}
			switch {
			case vote > 0:
				out[j] = s.Scale
			case vote < 0:
				out[j] = -s.Scale
			}
		}
	})
	return &Result{Gradient: out}, nil
}

// NormClip scales each gradient to at most the given bound before
// delegating to an inner rule. A non-positive bound means "use the median
// norm of the round's gradients", the clipping rule SignGuard uses.
type NormClip struct {
	Inner Rule
	Bound float64
	// Workers bounds the clipping parallelism and is forwarded to the
	// inner rule (0 = automatic, 1 = sequential); the output is
	// byte-identical for any value.
	Workers int
}

var _ Rule = (*NormClip)(nil)
var _ WorkersSetter = (*NormClip)(nil)

// NewNormClip wraps inner with norm clipping at bound (<= 0 for median).
func NewNormClip(inner Rule, bound float64) *NormClip {
	return &NormClip{Inner: inner, Bound: bound}
}

// Name implements Rule.
func (n *NormClip) Name() string { return "NormClip+" + n.Inner.Name() }

// SetWorkers implements WorkersSetter, forwarding to the inner rule.
func (n *NormClip) SetWorkers(w int) {
	n.Workers = w
	SetWorkers(n.Inner, w)
}

// Aggregate implements Rule.
func (n *NormClip) Aggregate(grads [][]float64) (*Result, error) {
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	workers := parallel.Resolve(n.Workers)
	bound := n.Bound
	if bound <= 0 {
		norms := make([]float64, len(grads))
		parallel.For(workers, len(grads), func(_, start, end int) {
			for i := start; i < end; i++ {
				norms[i] = tensor.Norm(grads[i])
			}
		})
		med, err := stats.Median(norms)
		if err != nil {
			return nil, err
		}
		bound = med
	}
	clipped := make([][]float64, len(grads))
	parallel.For(workers, len(grads), func(_, start, end int) {
		for i := start; i < end; i++ {
			c := tensor.Clone(grads[i])
			tensor.ClipNorm(c, bound)
			clipped[i] = c
		}
	})
	return n.Inner.Aggregate(clipped)
}
