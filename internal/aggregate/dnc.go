package aggregate

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/tensor"
)

// DnC implements Divide-and-Conquer spectral filtering (Shejwalkar &
// Houmansadr, NDSS'21). Each iteration subsamples a random block of
// coordinates, centers the subsampled gradients, computes their dominant
// right singular vector by power iteration, scores every gradient by its
// squared projection onto that direction, and discards the C·F
// highest-scoring gradients. The final trusted set is the intersection
// across iterations, aggregated by plain averaging.
type DnC struct {
	// F is the assumed Byzantine count.
	F int
	// NIters is the number of filtering iterations (default 3).
	NIters int
	// SubDim is the number of coordinates sampled per iteration
	// (default min(d, 10000)).
	SubDim int
	// C scales how many gradients are discarded per iteration: C·F
	// (default 1).
	C float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value. The coordinate
	// subsampling RNG is consumed on the serial path only, so it is
	// untouched by the worker count.
	Workers int

	rng *rand.Rand
}

var _ Rule = (*DnC)(nil)
var _ WorkersSetter = (*DnC)(nil)

// NewDnC returns a DnC rule with the given Byzantine count and defaults,
// seeded for deterministic coordinate subsampling.
func NewDnC(f int, seed int64) *DnC {
	return &DnC{F: f, NIters: 3, SubDim: 10000, C: 1, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Rule.
func (*DnC) Name() string { return "DnC" }

// SetWorkers implements WorkersSetter.
func (a *DnC) SetWorkers(n int) { a.Workers = n }

// Aggregate implements Rule.
func (a *DnC) Aggregate(grads [][]float64) (*Result, error) {
	n := len(grads)
	d, err := validate(grads)
	if err != nil {
		return nil, err
	}
	remove := int(a.C * float64(a.F))
	if remove < 0 {
		return nil, fmt.Errorf("aggregate: DnC removal count %d invalid", remove)
	}
	if remove >= n {
		return nil, fmt.Errorf("aggregate: DnC would remove all %d gradients (C·F=%d)", n, remove)
	}
	iters := a.NIters
	if iters <= 0 {
		iters = 3
	}
	subDim := a.SubDim
	if subDim <= 0 || subDim > d {
		subDim = d
	}
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(1))
	}
	workers := parallel.Resolve(a.Workers)

	good := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		good[i] = true
	}
	for it := 0; it < iters; it++ {
		coords := tensor.SampleIndices(a.rng, d, subDim)
		sub := tensor.NewMatrix(n, subDim)
		// Sub-matrix rows gather independent coordinates per gradient.
		parallel.For(workers, n, func(_, start, end int) {
			for i := start; i < end; i++ {
				row := sub.Row(i)
				g := grads[i]
				for j, c := range coords {
					row[j] = g[c]
				}
			}
		})
		sub.CenterRowsWorkers(workers)
		v := sub.TopSingularVectorWorkers(50, 1e-9, workers)
		scores := make([]float64, n)
		// Each score is one sequential dot product of the gradient's own
		// centered row with the singular direction.
		parallel.For(workers, n, func(_, start, end int) {
			for i := start; i < end; i++ {
				p, err := tensor.Dot(sub.Row(i), v)
				if err != nil { // unreachable: row and v share subDim
					panic(err)
				}
				scores[i] = p * p
			}
		})
		// Keep the n - remove lowest-scoring gradients this iteration.
		order := argsort(scores)
		keep := make(map[int]bool, n-remove)
		for _, idx := range order[:n-remove] {
			keep[idx] = true
		}
		for i := range good {
			if !keep[i] {
				delete(good, i)
			}
		}
	}
	if len(good) == 0 {
		return nil, fmt.Errorf("aggregate: DnC filtered out every gradient")
	}
	selected := make([]int, 0, len(good))
	for i := range good {
		selected = append(selected, i)
	}
	sort.Ints(selected)
	chosen := make([][]float64, len(selected))
	for i, idx := range selected {
		chosen[i] = grads[idx]
	}
	g, err := tensor.MeanWorkers(chosen, workers)
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g, Selected: selected}, nil
}
