package aggregate

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// ErrNonFiniteAggregate marks an aggregation whose output carried NaN or
// ±Inf coordinates. Callers that treat divergence as a terminal training
// state rather than a failure (the fl engine's ErrDiverged semantics) match
// it with errors.Is and translate accordingly; serving layers treat it as a
// skipped step like any other rule error.
var ErrNonFiniteAggregate = errors.New("aggregate: non-finite aggregate")

// FiniteGuard wraps a Rule and enforces the output contract every consumer
// of an aggregate relies on: the result gradient is finite. Rules are
// hardened individually against hostile buffers, but the guard makes the
// guarantee structural — a defense added tomorrow cannot silently fold NaN
// into the model because it forgot an edge case. The zero value is not
// usable; wrap with Guard.
type FiniteGuard struct {
	// Rule is the wrapped aggregation rule.
	Rule Rule
}

var (
	_ Rule          = (*FiniteGuard)(nil)
	_ WorkersSetter = (*FiniteGuard)(nil)
)

// Guard wraps r in a FiniteGuard. Wrapping an existing guard is a no-op
// (idempotent), so registry layering cannot stack redundant checks.
func Guard(r Rule) Rule {
	if r == nil {
		return nil
	}
	if _, ok := r.(*FiniteGuard); ok {
		return r
	}
	return &FiniteGuard{Rule: r}
}

// Name implements Rule: the guard is transparent in reports and tables.
func (g *FiniteGuard) Name() string { return g.Rule.Name() }

// SetWorkers implements WorkersSetter, forwarding into the wrapped rule.
func (g *FiniteGuard) SetWorkers(n int) {
	if ws, ok := g.Rule.(WorkersSetter); ok {
		ws.SetWorkers(n)
	}
}

// Unwrap returns the wrapped rule, for callers that need the concrete type
// (e.g. SignGuard's LastReport).
func (g *FiniteGuard) Unwrap() Rule { return g.Rule }

// Unwrap strips a FiniteGuard from r, if present — the inverse of Guard for
// callers reaching for a rule's concrete type.
func Unwrap(r Rule) Rule {
	if g, ok := r.(*FiniteGuard); ok {
		return g.Rule
	}
	return r
}

// Aggregate implements Rule: it delegates and verifies the output is
// finite, returning an error wrapping ErrNonFiniteAggregate otherwise.
func (g *FiniteGuard) Aggregate(grads [][]float64) (*Result, error) {
	res, err := g.Rule.Aggregate(grads)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("%w: rule %s returned no result", ErrNonFiniteAggregate, g.Rule.Name())
	}
	if !tensor.AllFinite(res.Gradient) {
		return nil, fmt.Errorf("%w: rule %s", ErrNonFiniteAggregate, g.Rule.Name())
	}
	return res, nil
}
