package aggregate

import (
	"fmt"
	"math"
	"sort"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// MultiKrum implements Krum and Multi-Krum (Blanchard et al., NeurIPS'17).
// Each gradient is scored by the sum of squared distances to its n-F-2
// nearest neighbours; the M lowest-scoring gradients are selected and
// averaged (M=1 recovers plain Krum). F is the assumed number of Byzantine
// clients.
type MultiKrum struct {
	// F is the assumed Byzantine count.
	F int
	// M is the number of gradients selected and averaged (>= 1).
	M int
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*MultiKrum)(nil)
var _ WorkersSetter = (*MultiKrum)(nil)

// NewKrum returns plain Krum (selects a single gradient).
func NewKrum(f int) *MultiKrum { return &MultiKrum{F: f, M: 1} }

// NewMultiKrum returns Multi-Krum selecting m gradients.
func NewMultiKrum(f, m int) *MultiKrum { return &MultiKrum{F: f, M: m} }

// Name implements Rule.
func (k *MultiKrum) Name() string {
	if k.M <= 1 {
		return "Krum"
	}
	return "Multi-Krum"
}

// SetWorkers implements WorkersSetter.
func (k *MultiKrum) SetWorkers(n int) { k.Workers = n }

// Scores returns the Krum score of every gradient (exported for analysis
// and tests). Lower is "more trusted".
func (k *MultiKrum) Scores(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	// Krum needs n >= 2F+3 so that n-F-2 >= F+1 neighbours exist.
	if n < 2*k.F+3 {
		return nil, fmt.Errorf("aggregate: Krum needs n >= 2F+3 (n=%d, F=%d)", n, k.F)
	}
	workers := parallel.Resolve(k.Workers)
	dists, err := stats.PairwiseDistancesWorkers(grads, workers)
	if err != nil {
		return nil, err
	}
	closest := n - k.F - 2
	scores := make([]float64, n)
	// Each gradient's score depends only on its own distance row, so the
	// rows parallelize freely; every row keeps its sequential sort+sum.
	parallel.For(workers, n, func(_, start, end int) {
		row := make([]float64, 0, n-1)
		for i := start; i < end; i++ {
			row = row[:0]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				row = append(row, dists[i][j]*dists[i][j])
			}
			sort.Float64s(row)
			var s float64
			for _, d2 := range row[:closest] {
				s += d2
			}
			scores[i] = s
		}
	})
	return scores, nil
}

// Aggregate implements Rule.
func (k *MultiKrum) Aggregate(grads [][]float64) (*Result, error) {
	scores, err := k.Scores(grads)
	if err != nil {
		return nil, err
	}
	m := k.M
	if m < 1 {
		m = 1
	}
	if m > len(grads) {
		m = len(grads)
	}
	order := argsort(scores)
	selected := append([]int(nil), order[:m]...)
	sort.Ints(selected)
	chosen := make([][]float64, len(selected))
	for i, idx := range selected {
		chosen[i] = grads[idx]
	}
	g, err := tensor.MeanWorkers(chosen, parallel.Resolve(k.Workers))
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g, Selected: selected}, nil
}

// Bulyan implements El Mhamdi et al. (ICML'18): it first builds a selection
// set of θ = n - 2F gradients by repeatedly applying Krum, then aggregates
// them with a coordinate-wise "beta-trimmed" mean around the median, using
// β = θ - 2F values per coordinate.
type Bulyan struct {
	// F is the assumed Byzantine count.
	F int
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int
}

var _ Rule = (*Bulyan)(nil)
var _ WorkersSetter = (*Bulyan)(nil)

// NewBulyan returns a Bulyan rule assuming f Byzantine clients.
func NewBulyan(f int) *Bulyan { return &Bulyan{F: f} }

// Name implements Rule.
func (*Bulyan) Name() string { return "Bulyan" }

// SetWorkers implements WorkersSetter.
func (b *Bulyan) SetWorkers(n int) { b.Workers = n }

// krumCand is one candidate of a Bulyan selection iteration: its position
// in the remaining list and its Krum score.
type krumCand struct {
	li    int
	score float64
}

// Aggregate implements Rule.
func (b *Bulyan) Aggregate(grads [][]float64) (*Result, error) {
	n := len(grads)
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	theta := n - 2*b.F
	beta := theta - 2*b.F
	if theta < 1 || beta < 1 {
		return nil, fmt.Errorf("aggregate: Bulyan needs n >= 4F+2 (n=%d, F=%d)", n, b.F)
	}
	workers := parallel.Resolve(b.Workers)

	// Selection stage: repeatedly pick the Krum winner among the remaining
	// gradients. The pairwise distances are computed once and reused across
	// the theta selection iterations — the gradients never change, only the
	// candidate set shrinks. When the remainder becomes too small for
	// Krum's n >= 2F+3 requirement we fall back to the smallest total
	// distance to the remaining set, which preserves the spirit of the
	// selection while remaining well-defined.
	dists, err := stats.PairwiseDistancesWorkers(grads, workers)
	if err != nil {
		return nil, err
	}
	remaining := allIndices(n)
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		closest := len(remaining) - b.F - 2
		useKrum := closest >= 1 && len(remaining) >= 2*b.F+3
		// Candidate scores are independent of each other, so they chunk
		// across workers; the merge is an argmin whose first-wins tie-break
		// matches the sequential scan, for any chunk boundaries.
		best := parallel.Reduce(workers, len(remaining),
			func(_, start, end int) krumCand {
				row := make([]float64, 0, len(remaining))
				chunkBest := krumCand{li: start, score: math.Inf(1)}
				for li := start; li < end; li++ {
					i := remaining[li]
					row = row[:0]
					for _, j := range remaining {
						if j == i {
							continue
						}
						row = append(row, dists[i][j]*dists[i][j])
					}
					var score float64
					if useKrum {
						sort.Float64s(row)
						for _, d2 := range row[:closest] {
							score += d2
						}
					} else {
						for _, d2 := range row {
							score += d2
						}
					}
					if score < chunkBest.score {
						chunkBest = krumCand{li: li, score: score}
					}
				}
				return chunkBest
			},
			func(a, c krumCand) krumCand {
				if c.score < a.score {
					return c
				}
				return a
			},
		)
		selected = append(selected, remaining[best.li])
		remaining = append(remaining[:best.li], remaining[best.li+1:]...)
	}
	sort.Ints(selected)

	// Aggregation stage: per coordinate, average the beta values closest to
	// the median of the selected gradients. Coordinates are independent, so
	// they chunk across workers with per-worker scratch buffers.
	d := len(grads[0])
	out := make([]float64, d)
	parallel.For(workers, d, func(_, start, end int) {
		col := make([]float64, theta)
		vd := make([]valDist, theta)
		for j := start; j < end; j++ {
			for i, idx := range selected {
				col[i] = grads[idx][j]
			}
			med, err := stats.Median(col)
			if err != nil { // unreachable: theta >= 1
				panic(err)
			}
			for i, v := range col {
				vd[i] = valDist{v: v, dist: math.Abs(v - med)}
			}
			sort.Slice(vd, func(a, c int) bool { return vd[a].dist < vd[c].dist })
			var s float64
			for i := 0; i < beta; i++ {
				s += vd[i].v
			}
			out[j] = s / float64(beta)
		}
	})
	return &Result{Gradient: out, Selected: selected}, nil
}

// valDist pairs a coordinate value with its distance to the column median.
type valDist struct {
	v, dist float64
}

// argsort returns the indices that would sort xs ascending.
func argsort(xs []float64) []int {
	idx := allIndices(len(xs))
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}
