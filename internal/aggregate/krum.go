package aggregate

import (
	"fmt"
	"math"
	"sort"

	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// MultiKrum implements Krum and Multi-Krum (Blanchard et al., NeurIPS'17).
// Each gradient is scored by the sum of squared distances to its n-F-2
// nearest neighbours; the M lowest-scoring gradients are selected and
// averaged (M=1 recovers plain Krum). F is the assumed number of Byzantine
// clients.
type MultiKrum struct {
	// F is the assumed Byzantine count.
	F int
	// M is the number of gradients selected and averaged (>= 1).
	M int
}

var _ Rule = (*MultiKrum)(nil)

// NewKrum returns plain Krum (selects a single gradient).
func NewKrum(f int) *MultiKrum { return &MultiKrum{F: f, M: 1} }

// NewMultiKrum returns Multi-Krum selecting m gradients.
func NewMultiKrum(f, m int) *MultiKrum { return &MultiKrum{F: f, M: m} }

// Name implements Rule.
func (k *MultiKrum) Name() string {
	if k.M <= 1 {
		return "Krum"
	}
	return "Multi-Krum"
}

// Scores returns the Krum score of every gradient (exported for analysis
// and tests). Lower is "more trusted".
func (k *MultiKrum) Scores(grads [][]float64) ([]float64, error) {
	n := len(grads)
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	// Krum needs n >= 2F+3 so that n-F-2 >= F+1 neighbours exist.
	if n < 2*k.F+3 {
		return nil, fmt.Errorf("aggregate: Krum needs n >= 2F+3 (n=%d, F=%d)", n, k.F)
	}
	dists, err := stats.PairwiseDistances(grads)
	if err != nil {
		return nil, err
	}
	closest := n - k.F - 2
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row = append(row, dists[i][j]*dists[i][j])
		}
		sort.Float64s(row)
		var s float64
		for _, d2 := range row[:closest] {
			s += d2
		}
		scores[i] = s
	}
	return scores, nil
}

// Aggregate implements Rule.
func (k *MultiKrum) Aggregate(grads [][]float64) (*Result, error) {
	scores, err := k.Scores(grads)
	if err != nil {
		return nil, err
	}
	m := k.M
	if m < 1 {
		m = 1
	}
	if m > len(grads) {
		m = len(grads)
	}
	order := argsort(scores)
	selected := append([]int(nil), order[:m]...)
	sort.Ints(selected)
	chosen := make([][]float64, len(selected))
	for i, idx := range selected {
		chosen[i] = grads[idx]
	}
	g, err := tensor.Mean(chosen)
	if err != nil {
		return nil, err
	}
	return &Result{Gradient: g, Selected: selected}, nil
}

// Bulyan implements El Mhamdi et al. (ICML'18): it first builds a selection
// set of θ = n - 2F gradients by repeatedly applying Krum, then aggregates
// them with a coordinate-wise "beta-trimmed" mean around the median, using
// β = θ - 2F values per coordinate.
type Bulyan struct {
	// F is the assumed Byzantine count.
	F int
}

var _ Rule = (*Bulyan)(nil)

// NewBulyan returns a Bulyan rule assuming f Byzantine clients.
func NewBulyan(f int) *Bulyan { return &Bulyan{F: f} }

// Name implements Rule.
func (*Bulyan) Name() string { return "Bulyan" }

// Aggregate implements Rule.
func (b *Bulyan) Aggregate(grads [][]float64) (*Result, error) {
	n := len(grads)
	if _, err := validate(grads); err != nil {
		return nil, err
	}
	theta := n - 2*b.F
	beta := theta - 2*b.F
	if theta < 1 || beta < 1 {
		return nil, fmt.Errorf("aggregate: Bulyan needs n >= 4F+2 (n=%d, F=%d)", n, b.F)
	}

	// Selection stage: repeatedly pick the Krum winner among the remaining
	// gradients. The pairwise distances are computed once and reused across
	// the theta selection iterations — the gradients never change, only the
	// candidate set shrinks. When the remainder becomes too small for
	// Krum's n >= 2F+3 requirement we fall back to the smallest total
	// distance to the remaining set, which preserves the spirit of the
	// selection while remaining well-defined.
	dists, err := stats.PairwiseDistances(grads)
	if err != nil {
		return nil, err
	}
	remaining := allIndices(n)
	selected := make([]int, 0, theta)
	row := make([]float64, 0, n)
	for len(selected) < theta {
		bestLocal, bestScore := 0, math.Inf(1)
		closest := len(remaining) - b.F - 2
		for li, i := range remaining {
			row = row[:0]
			for _, j := range remaining {
				if j == i {
					continue
				}
				row = append(row, dists[i][j]*dists[i][j])
			}
			var score float64
			if closest >= 1 && len(remaining) >= 2*b.F+3 {
				sort.Float64s(row)
				for _, d2 := range row[:closest] {
					score += d2
				}
			} else {
				for _, d2 := range row {
					score += d2
				}
			}
			if score < bestScore {
				bestLocal, bestScore = li, score
			}
		}
		selected = append(selected, remaining[bestLocal])
		remaining = append(remaining[:bestLocal], remaining[bestLocal+1:]...)
	}
	sort.Ints(selected)

	// Aggregation stage: per coordinate, average the beta values closest to
	// the median of the selected gradients.
	d := len(grads[0])
	out := make([]float64, d)
	col := make([]float64, theta)
	type valDist struct {
		v, dist float64
	}
	vd := make([]valDist, theta)
	for j := 0; j < d; j++ {
		for i, idx := range selected {
			col[i] = grads[idx][j]
		}
		med, err := stats.Median(col)
		if err != nil {
			return nil, err
		}
		for i, v := range col {
			vd[i] = valDist{v: v, dist: math.Abs(v - med)}
		}
		sort.Slice(vd, func(a, c int) bool { return vd[a].dist < vd[c].dist })
		var s float64
		for i := 0; i < beta; i++ {
			s += vd[i].v
		}
		out[j] = s / float64(beta)
	}
	return &Result{Gradient: out, Selected: selected}, nil
}

// argsort returns the indices that would sort xs ascending.
func argsort(xs []float64) []int {
	idx := allIndices(len(xs))
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}
