package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/tensor"
)

// honestSet builds n gradients clustered around center with the given
// per-coordinate spread.
func honestSet(seed int64, n, d int, center, spread float64) [][]float64 {
	rng := tensor.NewRNG(seed)
	out := make([][]float64, n)
	for i := range out {
		g := make([]float64, d)
		for j := range g {
			g[j] = center + spread*rng.NormFloat64()
		}
		out[i] = g
	}
	return out
}

func TestMeanRule(t *testing.T) {
	grads := [][]float64{{1, 2}, {3, 4}}
	res, err := NewMean().Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(res.Gradient, []float64{2, 3}, 1e-12) {
		t.Errorf("Mean = %v", res.Gradient)
	}
	if len(res.Selected) != 2 {
		t.Errorf("Mean selected %v", res.Selected)
	}
	if _, err := NewMean().Aggregate(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := NewMean().Aggregate([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("accepted ragged input")
	}
}

func TestTrimmedMeanResistsOutliers(t *testing.T) {
	grads := [][]float64{{1}, {2}, {3}, {1e9}, {-1e9}}
	res, err := NewTrimmedMean(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gradient[0]-2) > 1e-9 {
		t.Errorf("TrMean = %v, want 2", res.Gradient[0])
	}
	if _, err := NewTrimmedMean(3).Aggregate(grads); err == nil {
		t.Error("accepted K too large")
	}
}

func TestMedianResistsMinorityOutliers(t *testing.T) {
	grads := [][]float64{{1, -5}, {2, -4}, {3, -3}, {1e9, 1e9}}
	res, err := NewMedian().Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gradient[0] > 10 || res.Gradient[1] > 0 {
		t.Errorf("Median = %v dominated by outlier", res.Gradient)
	}
}

func TestGeoMedMinimizesDistanceSum(t *testing.T) {
	grads := honestSet(1, 15, 4, 1.0, 0.5)
	res, err := NewGeoMed().Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	sumTo := func(x []float64) float64 {
		var s float64
		for _, g := range grads {
			d, _ := tensor.Distance(x, g)
			s += d
		}
		return s
	}
	got := sumTo(res.Gradient)
	mean, _ := tensor.Mean(grads)
	if got > sumTo(mean)+1e-6 {
		t.Errorf("geometric median (%v) worse than the mean (%v)", got, sumTo(mean))
	}
	// Perturbing the solution should not improve it (local optimality).
	for dim := 0; dim < 4; dim++ {
		for _, delta := range []float64{0.05, -0.05} {
			probe := tensor.Clone(res.Gradient)
			probe[dim] += delta
			if sumTo(probe) < got-1e-6 {
				t.Errorf("perturbation improves GeoMed objective: %v < %v", sumTo(probe), got)
			}
		}
	}
}

func TestGeoMedResistsOutlier(t *testing.T) {
	grads := honestSet(2, 20, 3, 0, 0.1)
	grads = append(grads, []float64{1e6, 1e6, 1e6})
	res, err := NewGeoMed().Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm(res.Gradient) > 10 {
		t.Errorf("GeoMed dragged to %v by one outlier", tensor.Norm(res.Gradient))
	}
}

func TestKrumSelectsFromInputs(t *testing.T) {
	grads := honestSet(3, 12, 5, 0, 1)
	k := NewKrum(2)
	res, err := k.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("Krum selected %d gradients", len(res.Selected))
	}
	found := false
	for _, g := range grads {
		if tensor.Equal(res.Gradient, g, 0) {
			found = true
			break
		}
	}
	if !found {
		t.Error("Krum output is not one of its inputs")
	}
}

func TestKrumRejectsFarOutliers(t *testing.T) {
	grads := honestSet(4, 10, 4, 0, 0.2)
	// Two colluding outliers far away.
	grads = append(grads, []float64{50, 50, 50, 50}, []float64{50, 50, 50, 51})
	res, err := NewMultiKrum(2, 8).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range res.Selected {
		if idx >= 10 {
			t.Errorf("Multi-Krum selected outlier %d", idx)
		}
	}
	if _, err := NewKrum(5).Aggregate(grads[:5]); err == nil {
		t.Error("Krum accepted n < 2F+3")
	}
}

func TestBulyanBounds(t *testing.T) {
	grads := honestSet(5, 18, 6, 1, 0.5)
	res, err := NewBulyan(3).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	// Output must lie in the coordinate-wise envelope of the inputs.
	for j := 0; j < 6; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, g := range grads {
			lo = math.Min(lo, g[j])
			hi = math.Max(hi, g[j])
		}
		if res.Gradient[j] < lo-1e-9 || res.Gradient[j] > hi+1e-9 {
			t.Errorf("Bulyan coordinate %d = %v outside [%v, %v]", j, res.Gradient[j], lo, hi)
		}
	}
	if len(res.Selected) != 18-2*3 {
		t.Errorf("Bulyan selected %d, want θ = %d", len(res.Selected), 18-2*3)
	}
	if _, err := NewBulyan(5).Aggregate(grads); err == nil {
		t.Error("Bulyan accepted n < 4F+2")
	}
}

func TestBulyanRejectsColludingOutliers(t *testing.T) {
	grads := honestSet(6, 16, 4, 0, 0.3)
	for i := 0; i < 3; i++ {
		grads = append(grads, []float64{30, 30, 30, 30})
	}
	res, err := NewBulyan(3).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm(res.Gradient) > 5 {
		t.Errorf("Bulyan aggregate norm %v pulled by outliers", tensor.Norm(res.Gradient))
	}
}

func TestDnCFiltersSpectralOutliers(t *testing.T) {
	// Honest gradients near zero; 4 colluders displaced along a common
	// direction — exactly the structure DnC's top singular vector finds.
	grads := honestSet(7, 20, 30, 0, 0.5)
	dir := tensor.RandUnitVector(tensor.NewRNG(8), 30)
	for i := 0; i < 4; i++ {
		bad := tensor.Scale(dir, 25)
		grads = append(grads, bad)
	}
	d := NewDnC(4, 99)
	res, err := d.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range res.Selected {
		if idx >= 20 {
			t.Errorf("DnC kept colluder %d", idx)
		}
	}
	if tensor.Norm(res.Gradient) > 3 {
		t.Errorf("DnC aggregate norm %v", tensor.Norm(res.Gradient))
	}
}

func TestDnCValidation(t *testing.T) {
	grads := honestSet(9, 4, 5, 0, 1)
	d := NewDnC(4, 1)
	if _, err := d.Aggregate(grads); err == nil {
		t.Error("DnC accepted removing all gradients")
	}
}

func TestSignSGDMajority(t *testing.T) {
	grads := [][]float64{{1, -1, 0}, {2, -2, 0}, {-3, 3, 0}}
	res, err := NewSignSGDMajority(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(res.Gradient, []float64{1, -1, 0}, 0) {
		t.Errorf("SignSGD = %v", res.Gradient)
	}
}

func TestNormClipWrapper(t *testing.T) {
	grads := [][]float64{{3, 4}, {0.3, 0.4}, {0.6, 0.8}}
	nc := NewNormClip(NewMean(), 0) // bound = median norm = 1
	res, err := nc.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	// First gradient (norm 5) clips to norm 1 → (0.6, 0.8).
	want := []float64{(0.6 + 0.3 + 0.6) / 3, (0.8 + 0.4 + 0.8) / 3}
	if !tensor.Equal(res.Gradient, want, 1e-9) {
		t.Errorf("NormClip mean = %v, want %v", res.Gradient, want)
	}
	if nc.Name() == "" {
		t.Error("empty name")
	}
}

// Property: Mean, Median and TrimmedMean are permutation invariant.
func TestPermutationInvarianceQuick(t *testing.T) {
	rules := []Rule{NewMean(), NewMedian(), NewTrimmedMean(2)}
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		grads := honestSet(seed, 9, 4, 0, 1)
		perm := rng.Perm(len(grads))
		shuffled := make([][]float64, len(grads))
		for i, p := range perm {
			shuffled[p] = grads[i]
		}
		for _, r := range rules {
			a, err := r.Aggregate(grads)
			if err != nil {
				return false
			}
			b, err := r.Aggregate(shuffled)
			if err != nil {
				return false
			}
			if !tensor.Equal(a.Gradient, b.Gradient, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: coordinate-wise rules stay inside the input envelope.
func TestEnvelopeQuick(t *testing.T) {
	rules := []Rule{NewMean(), NewMedian(), NewTrimmedMean(1), NewGeoMed()}
	f := func(seed int64) bool {
		grads := honestSet(seed, 7, 3, 0, 2)
		for _, r := range rules {
			res, err := r.Aggregate(grads)
			if err != nil {
				return false
			}
			for j := 0; j < 3; j++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, g := range grads {
					lo = math.Min(lo, g[j])
					hi = math.Max(hi, g[j])
				}
				if res.Gradient[j] < lo-1e-6 || res.Gradient[j] > hi+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: with all-identical gradients every rule returns that gradient.
func TestConsensusFixedPointQuick(t *testing.T) {
	rules := []Rule{NewMean(), NewMedian(), NewTrimmedMean(2), NewGeoMed(), NewMultiKrum(2, 3), NewBulyan(2)}
	f := func(raw [4]float64, nRaw uint8) bool {
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
			raw[i] = math.Mod(raw[i], 1e3)
		}
		n := 12 + int(nRaw%5)
		grads := make([][]float64, n)
		for i := range grads {
			grads[i] = tensor.Clone(raw[:])
		}
		for _, r := range rules {
			res, err := r.Aggregate(grads)
			if err != nil {
				return false
			}
			if !tensor.Equal(res.Gradient, raw[:], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDnCDeterministicWithSameSeed(t *testing.T) {
	grads := honestSet(31, 15, 40, 0.2, 1)
	a, err := NewDnC(3, 42).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDnC(3, 42).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(a.Gradient, b.Gradient, 0) {
		t.Error("identically-seeded DnC runs disagree")
	}
	if len(a.Selected) != len(b.Selected) {
		t.Error("identically-seeded DnC selections disagree")
	}
}

func TestMultiKrumSelectionCount(t *testing.T) {
	grads := honestSet(32, 20, 8, 0, 1)
	res, err := NewMultiKrum(4, 12).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 12 {
		t.Errorf("Multi-Krum selected %d, want 12", len(res.Selected))
	}
	// Selected indices must be unique and sorted.
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i] <= res.Selected[i-1] {
			t.Fatalf("selection not strictly increasing: %v", res.Selected)
		}
	}
}

func TestGeoMedWeiszfeldSingularity(t *testing.T) {
	// Many coincident points: Weiszfeld's weights are singular at a data
	// point; the implementation must not NaN.
	grads := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	res, err := NewGeoMed().Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllFinite(res.Gradient) {
		t.Fatalf("GeoMed produced non-finite output: %v", res.Gradient)
	}
	// The majority point is the geometric median here.
	if d, _ := tensor.Distance(res.Gradient, []float64{1, 1}); d > 0.1 {
		t.Errorf("GeoMed = %v, want ≈ (1,1)", res.Gradient)
	}
}
