package aggregate

import (
	"fmt"
	"testing"
)

// benchGrads builds a fixed-seed cohort: n gradients of dimension d with a
// 20% block of displaced outliers, so the selection rules do real work.
func benchGrads(n, d int) [][]float64 {
	grads := honestSet(42, n, d, 0, 1)
	for i := 0; i < n/5; i++ {
		for j := range grads[i] {
			grads[i][j] += 8
		}
	}
	return grads
}

// benchCohorts spans the paper-relevant cohort sizes; benchWorkers spans
// the scaling axis the CI benchmark job tracks.
var (
	benchCohorts = []int{50, 200, 500}
	benchWorkers = []int{1, 2, 4, 8}
)

func benchRule(b *testing.B, dim int, mk func(n, workers int) Rule) {
	for _, n := range benchCohorts {
		grads := benchGrads(n, dim)
		for _, w := range benchWorkers {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				rule := mk(n, w)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := rule.Aggregate(grads); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkKrum(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &MultiKrum{F: n / 5, M: 1, Workers: w}
	})
}

func BenchmarkMultiKrum(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &MultiKrum{F: n / 5, M: n / 2, Workers: w}
	})
}

func BenchmarkBulyan(b *testing.B) {
	benchRule(b, 500, func(n, w int) Rule {
		// Bulyan needs n >= 4F+2; F = n/5 leaves θ = 3n/5 selection rounds.
		return &Bulyan{F: n / 5, Workers: w}
	})
}

func BenchmarkDnC(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		dnc := NewDnC(n/5, 7)
		dnc.Workers = w
		return dnc
	})
}

func BenchmarkGeoMed(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &GeoMed{MaxIter: 100, Tol: 1e-8, Workers: w}
	})
}

func BenchmarkTrimmedMean(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &TrimmedMean{K: n / 5, Workers: w}
	})
}

func BenchmarkMedian(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &Median{Workers: w}
	})
}

func BenchmarkFLTrust(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		rule := &FLTrust{Root: 100, Workers: w}
		// The server gradient the engine would install each round: the
		// honest direction, so the trust weighting does real work against
		// the displaced outlier block.
		rule.SetServerGradient(benchGrads(n, 2000)[n-1])
		return rule
	})
}

func BenchmarkFLAME(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		rule := NewFLAME(2, 0.001, 42)
		rule.Workers = w
		return rule
	})
}

func BenchmarkMoM(b *testing.B) {
	benchRule(b, 2000, func(n, w int) Rule {
		return &MedianOfMeans{Workers: w}
	})
}

// BenchmarkPairwiseDistancesViaKrumScores isolates the shared distance
// matrix kernel through its dominant consumer.
func BenchmarkKrumScores(b *testing.B) {
	const n, d = 200, 2000
	grads := benchGrads(n, d)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			k := &MultiKrum{F: n / 5, M: 1, Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.Scores(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
