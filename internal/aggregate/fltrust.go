package aggregate

import (
	"errors"
	"math"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// ServerLearner is implemented by rules that aggregate against a server-side
// reference gradient computed on a small root dataset each round (Cao et
// al.'s FLTrust family). The fl engine detects the interface (through
// aggregate.Unwrap, since registry-built rules arrive guarded), provisions a
// root dataset of RootSize examples on the server, and calls
// SetServerGradient with a fresh root gradient before every Aggregate.
type ServerLearner interface {
	// RootSize returns the number of root-dataset examples the rule wants
	// the server to hold.
	RootSize() int
	// SetServerGradient installs the round's reference gradient. The rule
	// must not mutate it.
	SetServerGradient(g []float64)
}

// ErrNoServerGradient is returned by a ServerLearner rule asked to
// aggregate before any reference gradient was installed.
var ErrNoServerGradient = errors.New("aggregate: no server gradient installed")

// FLTrust is the server-learning defense of Cao et al. (NDSS'21): the
// server computes its own gradient g₀ on a small root dataset, scores every
// client update by the clipped cosine similarity TSᵢ = max(0, cos(gᵢ, g₀))
// (scores at or below Clip are zeroed), rescales each trusted update to the
// reference norm ‖g₀‖, and averages with the trust scores as weights. A
// round in which no client earns trust yields the zero update.
type FLTrust struct {
	// Root is the root-dataset size the server samples (RootSize()).
	Root int
	// Clip is the trust-score floor: cosine similarities at or below Clip
	// contribute nothing (0 = the canonical ReLU cut at zero).
	Clip float64
	// Workers bounds the kernel parallelism (0 = automatic, 1 = sequential);
	// the output is byte-identical for any value.
	Workers int

	server []float64
}

var (
	_ Rule          = (*FLTrust)(nil)
	_ WorkersSetter = (*FLTrust)(nil)
	_ ServerLearner = (*FLTrust)(nil)
)

// NewFLTrust returns an FLTrust rule with root-dataset size root and trust
// floor clip.
func NewFLTrust(root int, clip float64) *FLTrust {
	return &FLTrust{Root: root, Clip: clip}
}

// Name implements Rule.
func (*FLTrust) Name() string { return "FLTrust" }

// SetWorkers implements WorkersSetter.
func (f *FLTrust) SetWorkers(n int) { f.Workers = n }

// RootSize implements ServerLearner.
func (f *FLTrust) RootSize() int { return f.Root }

// SetServerGradient implements ServerLearner.
func (f *FLTrust) SetServerGradient(g []float64) { f.server = g }

// Aggregate implements Rule.
func (f *FLTrust) Aggregate(grads [][]float64) (*Result, error) {
	d, err := validate(grads)
	if err != nil {
		return nil, err
	}
	if f.server == nil {
		return nil, ErrNoServerGradient
	}
	if len(f.server) != d {
		return nil, tensor.ErrDimensionMismatch
	}
	refNorm := tensor.Norm(f.server)
	workers := parallel.Resolve(f.Workers)

	// Per-client trust scores and rescale factors: each entry depends only
	// on its own gradient and the shared reference, so the parallel split is
	// trivially worker-count independent.
	trust := make([]float64, len(grads))
	rescale := make([]float64, len(grads))
	parallel.For(workers, len(grads), func(_, start, end int) {
		for i := start; i < end; i++ {
			cos, err := stats.CosineSimilarity(grads[i], f.server)
			if err != nil || math.IsNaN(cos) {
				continue // zero trust
			}
			if cos > f.Clip {
				trust[i] = cos
				if n := tensor.Norm(grads[i]); n > 0 {
					rescale[i] = refNorm / n
				}
			}
		}
	})

	var total float64
	selected := make([]int, 0, len(grads))
	weights := make([]float64, len(grads))
	for i, ts := range trust {
		if ts > 0 {
			selected = append(selected, i)
			weights[i] = ts * rescale[i]
			total += ts
		}
	}
	if total == 0 || !tensor.AllFinite(weights) {
		// No client earned trust (or the scores overflowed): FLTrust applies
		// the zero update rather than guessing.
		return &Result{Gradient: make([]float64, d), Selected: selected}, nil
	}
	// The FLTrust aggregate is Σ TSᵢ·rescaleᵢ·gᵢ / Σ TSᵢ. WeightedMean
	// normalizes by its own weight sum, so pre-divide the weights by the
	// trust total and undo WeightedMean's normalizer afterwards.
	for i := range weights {
		weights[i] /= total
	}
	wsum := weightSum(weights)
	if wsum == 0 {
		// Every trusted update had zero norm: nothing to apply.
		return &Result{Gradient: make([]float64, d), Selected: selected}, nil
	}
	g, err := tensor.WeightedMeanWorkers(grads, weights, workers)
	if err != nil {
		return nil, err
	}
	tensor.ScaleInPlace(g, wsum)
	return &Result{Gradient: g, Selected: selected}, nil
}

// weightSum is the plain sequential sum WeightedMean normalizes by.
func weightSum(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s
}
