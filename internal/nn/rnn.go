package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/tensor"
)

// TextRNN is a recurrent text classifier: an embedding table feeding a
// simple tanh RNN whose hidden states are mean-pooled and projected to
// class logits. It is the analog of the paper's TextRNN (a bi-LSTM) for the
// AG-News task, sized to be trainable in pure Go while producing gradients
// with the same structure: sparse embedding rows plus dense recurrent and
// output blocks.
//
// Training runs through one time-major batched kernel (lossAndGradKernel):
// per step t, the active rows' embeddings are gathered into a stacked
// matrix and the whole tile advances through H_t = tanh(bh + E_t·Wxhᵀ +
// H_{t-1}·Whhᵀ) with the exact matmul kernels. LossAndGrad is that kernel
// over a single segment and BatchedLossAndGrad de-interleaves per-segment
// gradients from the same pass, so the batched path is byte-identical to
// the per-client one by construction — every per-segment accumulation
// touches only that segment's rows, in the same order either way.
type TextRNN struct {
	Vocab, Embed, Hidden, Classes int

	emb  *Param // Vocab x Embed
	wxh  *Param // Hidden x Embed
	whh  *Param // Hidden x Hidden
	bh   *Param // Hidden
	wout *Param // Classes x Hidden
	bout *Param // Classes

	params []*Param
}

var _ Classifier = (*TextRNN)(nil)
var _ BatchClassifier = (*TextRNN)(nil)
var _ WorkspaceBatchClassifier = (*TextRNN)(nil)

// NewTextRNN builds a TextRNN with Xavier-uniform initialization.
func NewTextRNN(rng *rand.Rand, vocab, embed, hidden, classes int) *TextRNN {
	m := &TextRNN{
		Vocab: vocab, Embed: embed, Hidden: hidden, Classes: classes,
		emb:  newParam("rnn.embedding", vocab*embed),
		wxh:  newParam("rnn.wxh", hidden*embed),
		whh:  newParam("rnn.whh", hidden*hidden),
		bh:   newParam("rnn.bh", hidden),
		wout: newParam("rnn.wout", classes*hidden),
		bout: newParam("rnn.bout", classes),
	}
	initUniform(rng, m.emb.W, math.Sqrt(3.0/float64(embed)))
	initUniform(rng, m.wxh.W, math.Sqrt(6.0/float64(embed+hidden)))
	initUniform(rng, m.whh.W, math.Sqrt(6.0/float64(2*hidden)))
	initUniform(rng, m.wout.W, math.Sqrt(6.0/float64(hidden+classes)))
	m.params = []*Param{m.emb, m.wxh, m.whh, m.bh, m.wout, m.bout}
	return m
}

func initUniform(rng *rand.Rand, w []float64, bound float64) {
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * bound
	}
}

// NumParams returns the total number of trainable scalars.
func (m *TextRNN) NumParams() int { return countParams(m.params) }

// ParamVector returns a flat copy of all parameters.
func (m *TextRNN) ParamVector() []float64 { return flattenParams(m.params) }

// SetParamVector overwrites all parameters from a flat vector.
func (m *TextRNN) SetParamVector(v []float64) error { return unflattenInto(m.params, v) }

// GradVector returns a flat copy of all accumulated gradients.
func (m *TextRNN) GradVector() []float64 { return flattenGrads(m.params) }

// ZeroGrad clears the accumulated gradients.
func (m *TextRNN) ZeroGrad() { zeroGrads(m.params) }

// validateTokens checks every sequence is non-empty and in-vocab, and
// returns the maximum sequence length.
func (m *TextRNN) validateTokens(tokens [][]int) (int, error) {
	tmax := 0
	for r, seq := range tokens {
		if len(seq) == 0 {
			return 0, fmt.Errorf("nn: TextRNN received empty token sequence (row %d)", r)
		}
		for _, tok := range seq {
			if tok < 0 || tok >= m.Vocab {
				return 0, fmt.Errorf("%w: token %d out of vocab [0,%d)", ErrShape, tok, m.Vocab)
			}
		}
		if len(seq) > tmax {
			tmax = len(seq)
		}
	}
	return tmax, nil
}

// stepView is the (rows, cols) view over time step t of a time-major
// (Tmax*rows, cols) buffer: step t occupies rows [t*rows, (t+1)*rows).
func stepView(m *tensor.Matrix, t, rows int) tensor.Matrix {
	return tensor.Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[t*rows*m.Cols : (t+1)*rows*m.Cols]}
}

// rnnSink indexes the per-segment gradient views in m.params order.
const (
	rnnEmb = iota
	rnnWxh
	rnnWhh
	rnnBh
	rnnWout
	rnnBout
)

// lossAndGradKernel is the shared time-major forward/backward pass.
// sinks[s] holds the six gradient buffers (m.params order) that segment
// s's gradient terms accumulate into; every accumulation into sinks[s]
// touches only rows [bounds[s], bounds[s+1]), in row-ascending order per
// time step, so a segment's result depends only on its own rows — the
// property that makes LossAndGrad (one segment) and BatchedLossAndGrad
// (many) byte-identical on the same rows.
//
// Rows whose sequence has ended at step t ("inactive" rows) carry stale
// values in the stacked embedding/hidden buffers; they contribute nothing
// because (a) every forward read of row r stops at len(tokens[r]) and (b)
// the backward delta matrix keeps inactive rows at exactly 0, which the
// kernels' zero-skip treats as absent terms.
func (m *TextRNN) lossAndGradKernel(ws *Workspace, tokens [][]int, labels []int, bounds []int, sinks [][][]float64) ([]float64, []int, error) {
	rows := len(tokens)
	tmax, err := m.validateTokens(tokens)
	if err != nil {
		return nil, nil, err
	}
	wxhM := &tensor.Matrix{Rows: m.Hidden, Cols: m.Embed, Data: m.wxh.W}
	whhM := &tensor.Matrix{Rows: m.Hidden, Cols: m.Hidden, Data: m.whh.W}
	woutM := &tensor.Matrix{Rows: m.Classes, Cols: m.Hidden, Data: m.wout.W}

	embs := ws.matrix(wsHead, wsEmbeds, tmax*rows, m.Embed)
	hs := ws.matrix(wsHead, wsHidden, tmax*rows, m.Hidden)
	pooled := ws.matrixZeroed(wsHead, wsPooled, rows, m.Hidden)
	logits := ws.matrix(wsHead, wsLogits, rows, m.Classes)

	// Forward: per step, gather active embeddings and advance the whole
	// tile through one stacked matmul pair. Inactive rows compute garbage
	// (stale embeddings) that no active output ever reads — every kernel
	// here is row-independent.
	for t := 0; t < tmax; t++ {
		eT := stepView(embs, t, rows)
		hT := stepView(hs, t, rows)
		for r, seq := range tokens {
			if t >= len(seq) {
				continue
			}
			copy(eT.Row(r), m.emb.W[seq[t]*m.Embed:(seq[t]+1)*m.Embed])
		}
		for r := 0; r < rows; r++ {
			copy(hT.Row(r), m.bh.W)
		}
		if err := tensor.MulABTInto(&hT, &eT, wxhM); err != nil {
			return nil, nil, err
		}
		if t > 0 {
			hPrev := stepView(hs, t-1, rows)
			if err := tensor.MulABTInto(&hT, &hPrev, whhM); err != nil {
				return nil, nil, err
			}
		}
		for i, v := range hT.Data {
			hT.Data[i] = math.Tanh(v)
		}
		for r, seq := range tokens {
			if t >= len(seq) {
				continue
			}
			pr := pooled.Row(r)
			for i, hv := range hT.Row(r) {
				pr[i] += hv
			}
		}
	}
	for r, seq := range tokens {
		invT := 1.0 / float64(len(seq))
		pr := pooled.Row(r)
		for i := range pr {
			pr[i] *= invT
		}
	}
	for r := 0; r < rows; r++ {
		copy(logits.Row(r), m.bout.W)
	}
	if err := tensor.MulABTInto(logits, pooled, woutM); err != nil {
		return nil, nil, err
	}

	lossGrad := ws.matrix(wsHead, wsLossGrad, rows, m.Classes)
	losses, correct, err := softmaxCrossEntropySegmentedInto(lossGrad, logits, labels, bounds)
	if err != nil {
		return nil, nil, err
	}

	// Backward. Output head first: per segment, bias then weight — each
	// restricted to the segment's rows.
	segs := len(bounds) - 1
	for s := 0; s < segs; s++ {
		lo, hi := bounds[s], bounds[s+1]
		accumBias(lossGrad, sinks[s][rnnBout], lo, hi)
		gm := tensor.Matrix{Rows: m.Classes, Cols: m.Hidden, Data: sinks[s][rnnWout]}
		if err := tensor.MulATBRangeInto(&gm, lossGrad, pooled, lo, hi); err != nil {
			return nil, nil, err
		}
	}

	// dPooled = G·Wout, then scaled once per row by 1/T_r: the product is
	// the constant per-step addend of the recurrent carry.
	dpooled := ws.matrixZeroed(wsHead, wsDPooled, rows, m.Hidden)
	if err := tensor.MatMulInto(dpooled, lossGrad, woutM); err != nil {
		return nil, nil, err
	}
	for r, seq := range tokens {
		invT := 1.0 / float64(len(seq))
		pr := dpooled.Row(r)
		for i := range pr {
			pr[i] *= invT
		}
	}

	// dh carries the gradient flowing into h_t from the future; da is the
	// pre-tanh delta. Both start (and inactive rows stay) at exactly 0, so
	// the zero-skip kernels see inactive rows as absent.
	dh := ws.matrixZeroed(wsHead, wsDH, rows, m.Hidden)
	da := ws.matrixZeroed(wsHead, wsDA, rows, m.Hidden)
	for t := tmax - 1; t >= 0; t-- {
		hT := stepView(hs, t, rows)
		eT := stepView(embs, t, rows)
		for r, seq := range tokens {
			if t >= len(seq) {
				continue
			}
			dhr, dar, dpr, hr := dh.Row(r), da.Row(r), dpooled.Row(r), hT.Row(r)
			for i := range dhr {
				dhr[i] += dpr[i]
				hv := hr[i]
				dar[i] = dhr[i] * (1 - hv*hv)
				dhr[i] = 0
			}
		}
		for s := 0; s < segs; s++ {
			lo, hi := bounds[s], bounds[s+1]
			accumBias(da, sinks[s][rnnBh], lo, hi)
			gwx := tensor.Matrix{Rows: m.Hidden, Cols: m.Embed, Data: sinks[s][rnnWxh]}
			if err := tensor.MulATBRangeInto(&gwx, da, &eT, lo, hi); err != nil {
				return nil, nil, err
			}
			embG := sinks[s][rnnEmb]
			for r := lo; r < hi; r++ {
				if t >= len(tokens[r]) {
					continue
				}
				dEmb := embG[tokens[r][t]*m.Embed : (tokens[r][t]+1)*m.Embed]
				for i, g := range da.Row(r) {
					if g == 0 {
						continue
					}
					wx := m.wxh.W[i*m.Embed : (i+1)*m.Embed]
					for j, wv := range wx {
						dEmb[j] += g * wv
					}
				}
			}
			if t > 0 {
				hPrev := stepView(hs, t-1, rows)
				gwh := tensor.Matrix{Rows: m.Hidden, Cols: m.Hidden, Data: sinks[s][rnnWhh]}
				if err := tensor.MulATBRangeInto(&gwh, da, &hPrev, lo, hi); err != nil {
					return nil, nil, err
				}
			}
		}
		if t > 0 {
			// Carry Whhᵀ·da into the previous step; inactive rows have
			// da = 0 and are skipped.
			if err := tensor.MatMulInto(dh, da, whhM); err != nil {
				return nil, nil, err
			}
		}
	}
	return losses, correct, nil
}

// LossAndGrad runs forward + backward-through-time over the batch,
// accumulating gradients into the model parameters. It is the batched
// kernel over a single segment, so per-client results agree bitwise with
// the batched engine's per-segment de-interleaving.
func (m *TextRNN) LossAndGrad(in Input, labels []int) (float64, int, error) {
	if in.Tokens == nil {
		return 0, 0, errors.New("nn: TextRNN requires token input")
	}
	if len(in.Tokens) != len(labels) {
		return 0, 0, fmt.Errorf("%w: %d sequences vs %d labels", ErrShape, len(in.Tokens), len(labels))
	}
	if len(labels) == 0 {
		return 0, 0, errors.New("nn: TextRNN on empty batch")
	}
	sinks := [][][]float64{{m.emb.Grad, m.wxh.Grad, m.whh.Grad, m.bh.Grad, m.wout.Grad, m.bout.Grad}}
	losses, correct, err := m.lossAndGradKernel(nil, in.Tokens, labels, []int{0, len(labels)}, sinks)
	if err != nil {
		return 0, 0, err
	}
	return losses[0], correct[0], nil
}

// BatchedLossAndGrad implements BatchClassifier for the text model: one
// time-major pass over the stacked tile with per-segment gradient
// de-interleaving. It does not touch the model's own accumulated
// gradients.
func (m *TextRNN) BatchedLossAndGrad(in Input, labels []int, bounds []int) ([]SegmentGrad, error) {
	return m.BatchedLossAndGradWs(nil, in, labels, bounds)
}

// BatchedLossAndGradWs is BatchedLossAndGrad through a per-worker
// Workspace arena (see FeedForward.BatchedLossAndGradWs for the contract:
// scratch is arena-backed, the returned gradients are fresh).
func (m *TextRNN) BatchedLossAndGradWs(ws *Workspace, in Input, labels []int, bounds []int) ([]SegmentGrad, error) {
	if in.Tokens == nil {
		return nil, errors.New("nn: TextRNN requires token input")
	}
	if len(in.Tokens) != len(labels) {
		return nil, fmt.Errorf("%w: %d sequences vs %d labels", ErrShape, len(in.Tokens), len(labels))
	}
	if err := validateBounds(bounds, len(in.Tokens)); err != nil {
		return nil, err
	}
	segs := len(bounds) - 1
	total := m.NumParams()
	flat := make([]float64, segs*total)
	scaffold := ws.gradScaffold(1)
	sinks := segGradViews(scaffold, 0, flat, total, segs, 0, m.params)
	losses, correct, err := m.lossAndGradKernel(ws, in.Tokens, labels, bounds, sinks)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentGrad, segs)
	for s := range out {
		out[s] = SegmentGrad{Loss: losses[s], Correct: correct[s], Grad: flat[s*total : (s+1)*total : (s+1)*total]}
	}
	return out, nil
}

// Predict returns the argmax class for each token sequence.
func (m *TextRNN) Predict(in Input) ([]int, error) {
	if in.Tokens == nil {
		return nil, errors.New("nn: TextRNN requires token input")
	}
	out := make([]int, len(in.Tokens))
	h := make([]float64, m.Hidden)
	hPrev := make([]float64, m.Hidden)
	pooled := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	for s, seq := range in.Tokens {
		if len(seq) == 0 {
			return nil, errors.New("nn: TextRNN received empty token sequence")
		}
		for i := range hPrev {
			hPrev[i] = 0
		}
		for i := range pooled {
			pooled[i] = 0
		}
		for t, tok := range seq {
			if tok < 0 || tok >= m.Vocab {
				return nil, fmt.Errorf("%w: token %d out of vocab [0,%d)", ErrShape, tok, m.Vocab)
			}
			e := m.emb.W[tok*m.Embed : (tok+1)*m.Embed]
			for i := 0; i < m.Hidden; i++ {
				a := m.bh.W[i]
				wx := m.wxh.W[i*m.Embed : (i+1)*m.Embed]
				for j, ev := range e {
					a += wx[j] * ev
				}
				if t > 0 {
					wh := m.whh.W[i*m.Hidden : (i+1)*m.Hidden]
					for j, hv := range hPrev {
						a += wh[j] * hv
					}
				}
				h[i] = math.Tanh(a)
			}
			copy(hPrev, h)
			for i, hv := range h {
				pooled[i] += hv
			}
		}
		invT := 1.0 / float64(len(seq))
		for i := range pooled {
			pooled[i] *= invT
		}
		for c := 0; c < m.Classes; c++ {
			w := m.wout.W[c*m.Hidden : (c+1)*m.Hidden]
			sum := m.bout.W[c]
			for i, pv := range pooled {
				sum += w[i] * pv
			}
			logits[c] = sum
		}
		out[s] = Argmax(logits)
	}
	return out, nil
}
