package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// TextRNN is a recurrent text classifier: an embedding table feeding a
// simple tanh RNN whose hidden states are mean-pooled and projected to
// class logits. It is the analog of the paper's TextRNN (a bi-LSTM) for the
// AG-News task, sized to be trainable in pure Go while producing gradients
// with the same structure: sparse embedding rows plus dense recurrent and
// output blocks.
type TextRNN struct {
	Vocab, Embed, Hidden, Classes int

	emb  *Param // Vocab x Embed
	wxh  *Param // Hidden x Embed
	whh  *Param // Hidden x Hidden
	bh   *Param // Hidden
	wout *Param // Classes x Hidden
	bout *Param // Classes

	params []*Param
}

var _ Classifier = (*TextRNN)(nil)

// NewTextRNN builds a TextRNN with Xavier-uniform initialization.
func NewTextRNN(rng *rand.Rand, vocab, embed, hidden, classes int) *TextRNN {
	m := &TextRNN{
		Vocab: vocab, Embed: embed, Hidden: hidden, Classes: classes,
		emb:  newParam("rnn.embedding", vocab*embed),
		wxh:  newParam("rnn.wxh", hidden*embed),
		whh:  newParam("rnn.whh", hidden*hidden),
		bh:   newParam("rnn.bh", hidden),
		wout: newParam("rnn.wout", classes*hidden),
		bout: newParam("rnn.bout", classes),
	}
	initUniform(rng, m.emb.W, math.Sqrt(3.0/float64(embed)))
	initUniform(rng, m.wxh.W, math.Sqrt(6.0/float64(embed+hidden)))
	initUniform(rng, m.whh.W, math.Sqrt(6.0/float64(2*hidden)))
	initUniform(rng, m.wout.W, math.Sqrt(6.0/float64(hidden+classes)))
	m.params = []*Param{m.emb, m.wxh, m.whh, m.bh, m.wout, m.bout}
	return m
}

func initUniform(rng *rand.Rand, w []float64, bound float64) {
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * bound
	}
}

// NumParams returns the total number of trainable scalars.
func (m *TextRNN) NumParams() int { return countParams(m.params) }

// ParamVector returns a flat copy of all parameters.
func (m *TextRNN) ParamVector() []float64 { return flattenParams(m.params) }

// SetParamVector overwrites all parameters from a flat vector.
func (m *TextRNN) SetParamVector(v []float64) error { return unflattenInto(m.params, v) }

// GradVector returns a flat copy of all accumulated gradients.
func (m *TextRNN) GradVector() []float64 { return flattenGrads(m.params) }

// ZeroGrad clears the accumulated gradients.
func (m *TextRNN) ZeroGrad() { zeroGrads(m.params) }

// rnnTrace stores the per-step activations needed for backprop through time.
type rnnTrace struct {
	tokens []int
	embeds [][]float64 // T x Embed
	hs     [][]float64 // T x Hidden (post-tanh)
	pooled []float64   // Hidden
	logits []float64   // Classes
}

// forwardSample runs the RNN over one token sequence.
func (m *TextRNN) forwardSample(tokens []int) (*rnnTrace, error) {
	if len(tokens) == 0 {
		return nil, errors.New("nn: TextRNN received empty token sequence")
	}
	tr := &rnnTrace{
		tokens: tokens,
		embeds: make([][]float64, len(tokens)),
		hs:     make([][]float64, len(tokens)),
		pooled: make([]float64, m.Hidden),
		logits: make([]float64, m.Classes),
	}
	hPrev := make([]float64, m.Hidden)
	for t, tok := range tokens {
		if tok < 0 || tok >= m.Vocab {
			return nil, fmt.Errorf("%w: token %d out of vocab [0,%d)", ErrShape, tok, m.Vocab)
		}
		e := m.emb.W[tok*m.Embed : (tok+1)*m.Embed]
		tr.embeds[t] = e
		h := make([]float64, m.Hidden)
		for i := 0; i < m.Hidden; i++ {
			a := m.bh.W[i]
			wx := m.wxh.W[i*m.Embed : (i+1)*m.Embed]
			for j, ev := range e {
				a += wx[j] * ev
			}
			wh := m.whh.W[i*m.Hidden : (i+1)*m.Hidden]
			for j, hv := range hPrev {
				a += wh[j] * hv
			}
			h[i] = math.Tanh(a)
		}
		tr.hs[t] = h
		hPrev = h
		for i, hv := range h {
			tr.pooled[i] += hv
		}
	}
	invT := 1.0 / float64(len(tokens))
	for i := range tr.pooled {
		tr.pooled[i] *= invT
	}
	for c := 0; c < m.Classes; c++ {
		w := m.wout.W[c*m.Hidden : (c+1)*m.Hidden]
		s := m.bout.W[c]
		for i, pv := range tr.pooled {
			s += w[i] * pv
		}
		tr.logits[c] = s
	}
	return tr, nil
}

// backwardSample backpropagates dLogits through one sample's trace.
func (m *TextRNN) backwardSample(tr *rnnTrace, dlogits []float64) {
	T := len(tr.tokens)
	dpooled := make([]float64, m.Hidden)
	for c, g := range dlogits {
		if g == 0 {
			continue
		}
		m.bout.Grad[c] += g
		w := m.wout.W[c*m.Hidden : (c+1)*m.Hidden]
		gw := m.wout.Grad[c*m.Hidden : (c+1)*m.Hidden]
		for i, pv := range tr.pooled {
			gw[i] += g * pv
			dpooled[i] += g * w[i]
		}
	}
	invT := 1.0 / float64(T)
	dh := make([]float64, m.Hidden) // gradient flowing into h_t from the future
	da := make([]float64, m.Hidden)
	for t := T - 1; t >= 0; t-- {
		h := tr.hs[t]
		for i := range dh {
			dh[i] += dpooled[i] * invT
			da[i] = dh[i] * (1 - h[i]*h[i])
		}
		var hPrev []float64
		if t > 0 {
			hPrev = tr.hs[t-1]
		}
		e := tr.embeds[t]
		tok := tr.tokens[t]
		dEmb := m.emb.Grad[tok*m.Embed : (tok+1)*m.Embed]
		// Reset dh for the next (earlier) step; accumulate Whhᵀ·da into it.
		for i := range dh {
			dh[i] = 0
		}
		for i, g := range da {
			if g == 0 {
				continue
			}
			m.bh.Grad[i] += g
			wx := m.wxh.W[i*m.Embed : (i+1)*m.Embed]
			gwx := m.wxh.Grad[i*m.Embed : (i+1)*m.Embed]
			for j, ev := range e {
				gwx[j] += g * ev
				dEmb[j] += g * wx[j]
			}
			if hPrev != nil {
				wh := m.whh.W[i*m.Hidden : (i+1)*m.Hidden]
				gwh := m.whh.Grad[i*m.Hidden : (i+1)*m.Hidden]
				for j, hv := range hPrev {
					gwh[j] += g * hv
					dh[j] += g * wh[j]
				}
			}
		}
	}
}

// LossAndGrad runs forward + backward-through-time over the batch.
func (m *TextRNN) LossAndGrad(in Input, labels []int) (float64, int, error) {
	if in.Tokens == nil {
		return 0, 0, errors.New("nn: TextRNN requires token input")
	}
	if len(in.Tokens) != len(labels) {
		return 0, 0, fmt.Errorf("%w: %d sequences vs %d labels", ErrShape, len(in.Tokens), len(labels))
	}
	if len(labels) == 0 {
		return 0, 0, errors.New("nn: TextRNN on empty batch")
	}
	var loss float64
	var correct int
	invN := 1.0 / float64(len(labels))
	for s, tokens := range in.Tokens {
		tr, err := m.forwardSample(tokens)
		if err != nil {
			return 0, 0, err
		}
		y := labels[s]
		if y < 0 || y >= m.Classes {
			return 0, 0, fmt.Errorf("%w: label %d out of [0,%d)", ErrShape, y, m.Classes)
		}
		// Stable log-softmax on the single logit row.
		maxv := tr.logits[0]
		for _, v := range tr.logits[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range tr.logits {
			sum += math.Exp(v - maxv)
		}
		logZ := maxv + math.Log(sum)
		loss += (logZ - tr.logits[y]) * invN
		if Argmax(tr.logits) == y {
			correct++
		}
		dlogits := make([]float64, m.Classes)
		for c, v := range tr.logits {
			dlogits[c] = math.Exp(v-logZ) * invN
		}
		dlogits[y] -= invN
		m.backwardSample(tr, dlogits)
	}
	return loss, correct, nil
}

// Predict returns the argmax class for each token sequence.
func (m *TextRNN) Predict(in Input) ([]int, error) {
	if in.Tokens == nil {
		return nil, errors.New("nn: TextRNN requires token input")
	}
	out := make([]int, len(in.Tokens))
	for s, tokens := range in.Tokens {
		tr, err := m.forwardSample(tokens)
		if err != nil {
			return nil, err
		}
		out[s] = Argmax(tr.logits)
	}
	return out, nil
}
