package nn

import (
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// SGD is a stochastic gradient descent optimizer over flat parameter
// vectors, with classical momentum and decoupled L2 weight decay — the
// configuration used by the paper (momentum 0.9, weight decay 5e-4). It is
// applied at the server on the robustly-aggregated gradient, which in the
// paper's synchronous full-participation setting is equivalent to each
// client applying it locally to the same broadcast gradient.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step updates params in place given the gradient: it folds weight decay
// into the gradient, advances the momentum buffer and applies the update.
func (o *SGD) Step(params, grad []float64) error {
	if len(params) != len(grad) {
		return fmt.Errorf("%w: SGD.Step %d params vs %d grads", tensor.ErrDimensionMismatch, len(params), len(grad))
	}
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	} else if len(o.velocity) != len(params) {
		return fmt.Errorf("%w: SGD.Step velocity has %d entries, want %d", tensor.ErrDimensionMismatch, len(o.velocity), len(params))
	}
	for i := range params {
		g := grad[i] + o.WeightDecay*params[i]
		o.velocity[i] = o.Momentum*o.velocity[i] + g
		params[i] -= o.LR * o.velocity[i]
	}
	return nil
}

// Reset clears the momentum buffer.
func (o *SGD) Reset() { o.velocity = nil }
