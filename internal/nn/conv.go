package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW-flattened batch rows, implemented
// with im2col. Stride is fixed at 1; Pad controls zero padding.
type Conv2D struct {
	InC, InH, InW int // input shape per sample
	OutC          int // number of filters
	K             int // square kernel size
	Pad           int // zero padding on each side

	OutH, OutW int

	weight *Param // OutC x (InC*K*K), row-major
	bias   *Param // OutC

	// fast selects the reassociated (non-bitwise) reduction loops; see
	// FeedForward.SetFastKernels.
	fast bool

	lastInput *tensor.Matrix
	// lastCols stacks every sample's im2col columns into one matrix:
	// sample n's (InC*K*K) rows start at n*InC*K*K. One buffer for the
	// whole tile replaces the per-sample matrix allocations that used to
	// dominate the allocation profile.
	lastCols *tensor.Matrix
}

var _ Layer = (*Conv2D)(nil)
var _ segmentedLayer = (*Conv2D)(nil)
var _ arenaLayer = (*Conv2D)(nil)

// NewConv2D builds a stride-1 convolution layer with He-uniform init.
func NewConv2D(rng *rand.Rand, inC, inH, inW, outC, k, pad int) (*Conv2D, error) {
	outH := inH + 2*pad - k + 1
	outW := inW + 2*pad - k + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("%w: Conv2D output %dx%d non-positive", ErrShape, outH, outW)
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Pad: pad,
		OutH: outH, OutW: outW,
		weight: newParam(fmt.Sprintf("conv%dx%dx%d.weight", outC, inC, k), outC*inC*k*k),
		bias:   newParam(fmt.Sprintf("conv%dx%dx%d.bias", outC, inC, k), outC),
	}
	fanIn := float64(inC * k * k)
	bound := math.Sqrt(6.0 / fanIn)
	for i := range c.weight.W {
		c.weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return c, nil
}

// OutputSize returns the flattened per-sample output length OutC*OutH*OutW.
func (c *Conv2D) OutputSize() int { return c.OutC * c.OutH * c.OutW }

func (c *Conv2D) setFastKernels(on bool) { c.fast = on }

// im2colInto unrolls one CHW sample into rows [rowOff, rowOff+InC*K*K) of
// cols. Every element of those rows is written — positions that fall in the
// zero padding get an explicit 0, the value the old allocate-per-sample
// implementation inherited from the zeroed allocation — so a stale arena
// buffer produces byte-identical columns.
func (c *Conv2D) im2colInto(cols *tensor.Matrix, rowOff int, sample []float64) {
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ki := 0; ki < c.K; ki++ {
			for kj := 0; kj < c.K; kj++ {
				rowIdx := (ch*c.K+ki)*c.K + kj
				row := cols.Row(rowOff + rowIdx)
				for oi := 0; oi < c.OutH; oi++ {
					si := oi - c.Pad + ki
					seg := row[oi*c.OutW : (oi+1)*c.OutW]
					if si < 0 || si >= c.InH {
						for p := range seg {
							seg[p] = 0
						}
						continue
					}
					src := sample[chOff+si*c.InW:]
					for oj := range seg {
						sj := oj - c.Pad + kj
						if sj < 0 || sj >= c.InW {
							seg[oj] = 0
						} else {
							seg[oj] = src[sj]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a (InC*K*K) x (OutH*OutW) gradient back into a CHW sample.
func (c *Conv2D) col2im(cols *tensor.Matrix, sample []float64) {
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ki := 0; ki < c.K; ki++ {
			for kj := 0; kj < c.K; kj++ {
				rowIdx := (ch*c.K+ki)*c.K + kj
				row := cols.Row(rowIdx)
				for oi := 0; oi < c.OutH; oi++ {
					si := oi - c.Pad + ki
					if si < 0 || si >= c.InH {
						continue
					}
					for oj := 0; oj < c.OutW; oj++ {
						sj := oj - c.Pad + kj
						if sj < 0 || sj >= c.InW {
							continue
						}
						sample[chOff+si*c.InW+sj] += row[oi*c.OutW+oj]
					}
				}
			}
		}
	}
}

// Forward convolves each sample in the batch.
func (c *Conv2D) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return c.forwardWs(nil, 0, x)
}

// forwardWs is Forward with optional workspace buffers for the output and
// the stacked im2col columns (both fully overwritten).
func (c *Conv2D) forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != c.InC*c.InH*c.InW {
		return nil, fmt.Errorf("%w: Conv2D expects %d inputs, got %d", ErrShape, c.InC*c.InH*c.InW, x.Cols)
	}
	c.lastInput = x
	colRows := c.InC * c.K * c.K
	spatial := c.OutH * c.OutW
	cols := ws.matrix(id, wsCols, x.Rows*colRows, spatial)
	c.lastCols = cols
	out := ws.matrix(id, wsFwd, x.Rows, c.OutputSize())
	for n := 0; n < x.Rows; n++ {
		base := n * colRows
		c.im2colInto(cols, base, x.Row(n))
		oRow := out.Row(n)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.weight.W[oc*colRows : (oc+1)*colRows]
			b := c.bias.W[oc]
			dst := oRow[oc*spatial : (oc+1)*spatial]
			for p := range dst {
				dst[p] = b
			}
			if c.fast {
				forwardAccFast(dst, w, cols, base)
				continue
			}
			for r, wv := range w {
				if wv == 0 {
					continue
				}
				src := cols.Row(base + r)
				for p, sv := range src {
					dst[p] += wv * sv
				}
			}
		}
	}
	return out, nil
}

// forwardAccFast accumulates the filter response with four im2col rows per
// pass: one load/store of dst buys four multiply-adds. Grouping the four
// products before the add reassociates the sum — non-bitwise, fast mode
// only. base is the sample's first row in the stacked columns matrix.
func forwardAccFast(dst, w []float64, cols *tensor.Matrix, base int) {
	r := 0
	for ; r+4 <= len(w); r += 4 {
		w0, w1, w2, w3 := w[r], w[r+1], w[r+2], w[r+3]
		s0, s1, s2, s3 := cols.Row(base+r), cols.Row(base+r+1), cols.Row(base+r+2), cols.Row(base+r+3)
		for p := range dst {
			dst[p] += ((w0*s0[p] + w1*s1[p]) + w2*s2[p]) + w3*s3[p]
		}
	}
	for ; r < len(w); r++ {
		wv := w[r]
		if wv == 0 {
			continue
		}
		src := cols.Row(base + r)
		for p, sv := range src {
			dst[p] += wv * sv
		}
	}
}

// Backward accumulates filter/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	return c.backwardWs(nil, 0, grad)
}

// backwardWs is Backward with optional workspace buffers.
func (c *Conv2D) backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error) {
	return c.backward(ws, id, grad, nil, func(int) (w, b []float64) { return c.weight.Grad, c.bias.Grad })
}

// backwardSegmented implements segmentedLayer: one backward pass over the
// whole batch, with each sample's parameter gradients accumulated into the
// buffers of the row segment it belongs to. Samples are visited in
// ascending order, so segment s's buffers are byte-identical to a
// standalone Backward over rows [bounds[s], bounds[s+1]).
func (c *Conv2D) backwardSegmented(ws *Workspace, id int, grad *tensor.Matrix, bounds []int, segGrads [][][]float64) (*tensor.Matrix, error) {
	return c.backward(ws, id, grad, bounds, func(s int) (w, b []float64) { return segGrads[s][0], segGrads[s][1] })
}

// backward is the shared gradient computation. sink maps a segment index
// to the filter and bias gradient buffers; bounds is nil for the
// unsegmented path (one segment spanning the batch).
func (c *Conv2D) backward(ws *Workspace, id int, grad *tensor.Matrix, bounds []int, sink func(s int) (w, b []float64)) (*tensor.Matrix, error) {
	if c.lastInput == nil {
		return nil, fmt.Errorf("nn: Conv2D.Backward before Forward")
	}
	if grad.Rows != c.lastInput.Rows || grad.Cols != c.OutputSize() {
		return nil, fmt.Errorf("%w: Conv2D.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, c.lastInput.Rows, c.OutputSize())
	}
	// dX is accumulated into by col2im: zeroed checkout required.
	dx := ws.matrixZeroed(id, wsDX, c.lastInput.Rows, c.lastInput.Cols)
	spatial := c.OutH * c.OutW
	colRows := c.InC * c.K * c.K
	// dcols is zeroed per sample inside the loop, so a stale checkout is
	// fine.
	dcols := ws.matrix(id, wsDCols, colRows, spatial)
	seg := 0
	gw, bg := sink(0)
	for n := 0; n < grad.Rows; n++ {
		if bounds != nil {
			for n >= bounds[seg+1] {
				seg++
				gw, bg = sink(seg)
			}
		}
		base := n * colRows
		gRow := grad.Row(n)
		for i := range dcols.Data {
			dcols.Data[i] = 0
		}
		for oc := 0; oc < c.OutC; oc++ {
			g := gRow[oc*spatial : (oc+1)*spatial]
			// Bias gradient: sum over spatial positions.
			bg[oc] += sumReduce(g, c.fast)
			w := c.weight.W[oc*colRows : (oc+1)*colRows]
			gwoc := gw[oc*colRows : (oc+1)*colRows]
			for r := 0; r < colRows; r++ {
				src := c.lastCols.Row(base + r)
				drow := dcols.Row(r)
				wv := w[r]
				if c.fast {
					gwoc[r] += tensor.DotFast(g, src)
					if wv != 0 {
						for p, gv := range g {
							drow[p] += gv * wv
						}
					}
					continue
				}
				var wgrad float64
				for p, gv := range g {
					wgrad += gv * src[p]
					drow[p] += gv * wv
				}
				gwoc[r] += wgrad
			}
		}
		c.col2im(dcols, dx.Row(n))
	}
	return dx, nil
}

// sumReduce sums v: sequentially (bit-stable) or with the shared
// reassociated fast reduction (tensor.SumFast).
func sumReduce(v []float64, fast bool) float64 {
	if fast {
		return tensor.SumFast(v)
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Params returns the filter weights and biases.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// MaxPool2D is a non-overlapping max pooling layer over CHW-flattened rows.
type MaxPool2D struct {
	C, H, W int // input shape per sample
	Size    int // pooling window (and stride)

	OutH, OutW int

	// lastArgmax holds every sample's argmax input index per output cell in
	// one flat buffer: sample n's indices start at n*OutputSize().
	lastArgmax []int
	inRows     int
}

var _ Layer = (*MaxPool2D)(nil)
var _ arenaLayer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a pooling layer. H and W must be divisible by size.
func NewMaxPool2D(c, h, w, size int) (*MaxPool2D, error) {
	if size <= 0 || h%size != 0 || w%size != 0 {
		return nil, fmt.Errorf("%w: MaxPool2D size %d does not divide %dx%d", ErrShape, size, h, w)
	}
	return &MaxPool2D{C: c, H: h, W: w, Size: size, OutH: h / size, OutW: w / size}, nil
}

// OutputSize returns the flattened per-sample output length.
func (p *MaxPool2D) OutputSize() int { return p.C * p.OutH * p.OutW }

// Forward takes the max over each pooling window.
func (p *MaxPool2D) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return p.forwardWs(nil, 0, x)
}

// forwardWs is Forward with optional workspace buffers (output and argmax
// are fully overwritten).
func (p *MaxPool2D) forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != p.C*p.H*p.W {
		return nil, fmt.Errorf("%w: MaxPool2D expects %d inputs, got %d", ErrShape, p.C*p.H*p.W, x.Cols)
	}
	p.inRows = x.Rows
	p.lastArgmax = ws.intSlice(id, wsArgmax, x.Rows*p.OutputSize())
	out := ws.matrix(id, wsFwd, x.Rows, p.OutputSize())
	for n := 0; n < x.Rows; n++ {
		sample := x.Row(n)
		oRow := out.Row(n)
		argmax := p.lastArgmax[n*p.OutputSize() : (n+1)*p.OutputSize()]
		if p.Size == 2 {
			p.forward2x2(sample, oRow, argmax)
			continue
		}
		for c := 0; c < p.C; c++ {
			chOff := c * p.H * p.W
			for oi := 0; oi < p.OutH; oi++ {
				for oj := 0; oj < p.OutW; oj++ {
					best := math.Inf(-1)
					bestIdx := -1
					for di := 0; di < p.Size; di++ {
						for dj := 0; dj < p.Size; dj++ {
							idx := chOff + (oi*p.Size+di)*p.W + (oj*p.Size + dj)
							if v := sample[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					outIdx := (c*p.OutH+oi)*p.OutW + oj
					oRow[outIdx] = best
					argmax[outIdx] = bestIdx
				}
			}
		}
	}
	return out, nil
}

// forward2x2 is the unrolled pooling pass for the ubiquitous 2x2 window:
// the four candidates are compared in the exact (di,dj) order of the
// generic loop — same strict-greater tie-breaking, same argmax — so the
// specialization is byte-identical, only branch- and index-cheaper.
func (p *MaxPool2D) forward2x2(sample, oRow []float64, argmax []int) {
	for c := 0; c < p.C; c++ {
		chOff := c * p.H * p.W
		for oi := 0; oi < p.OutH; oi++ {
			top := chOff + 2*oi*p.W
			bot := top + p.W
			outBase := (c*p.OutH + oi) * p.OutW
			for oj := 0; oj < p.OutW; oj++ {
				i0 := top + 2*oj
				i2 := bot + 2*oj
				// Start from -Inf like the generic loop so NaN candidates
				// lose every strict-greater comparison identically.
				best, bestIdx := math.Inf(-1), -1
				if v := sample[i0]; v > best {
					best, bestIdx = v, i0
				}
				if v := sample[i0+1]; v > best {
					best, bestIdx = v, i0+1
				}
				if v := sample[i2]; v > best {
					best, bestIdx = v, i2
				}
				if v := sample[i2+1]; v > best {
					best, bestIdx = v, i2+1
				}
				oRow[outBase+oj] = best
				argmax[outBase+oj] = bestIdx
			}
		}
	}
}

// Backward routes each output gradient to its argmax input position.
func (p *MaxPool2D) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	return p.backwardWs(nil, 0, grad)
}

// backwardWs is Backward with an optional workspace buffer (dX is an
// accumulation target: zeroed checkout).
func (p *MaxPool2D) backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error) {
	if p.lastArgmax == nil {
		return nil, fmt.Errorf("nn: MaxPool2D.Backward before Forward")
	}
	if grad.Rows != p.inRows || grad.Cols != p.OutputSize() {
		return nil, fmt.Errorf("%w: MaxPool2D.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, p.inRows, p.OutputSize())
	}
	dx := ws.matrixZeroed(id, wsDX, p.inRows, p.C*p.H*p.W)
	for n := 0; n < grad.Rows; n++ {
		gRow := grad.Row(n)
		dRow := dx.Row(n)
		argmax := p.lastArgmax[n*p.OutputSize() : (n+1)*p.OutputSize()]
		for outIdx, inIdx := range argmax {
			dRow[inIdx] += gRow[outIdx]
		}
	}
	return dx, nil
}

// Params returns nil: pooling is parameter-free.
func (p *MaxPool2D) Params() []*Param { return nil }
