package nn

// The batched local-compute path: several clients' minibatches, all taken
// at the same parameter vector, are stacked along the batch dimension and
// trained in ONE forward/backward pass per layer; the per-client gradients
// are then de-interleaved from the row segments. Correctness rests on two
// structural facts of this library:
//
//   - Every layer's forward pass and input gradient are row-independent:
//     sample i's activations and dX row depend only on row i. Stacking
//     rows therefore reproduces each client's activations bit for bit.
//   - Parameter gradients are per-row sums. Accumulating a contiguous row
//     segment's terms in ascending row order — which segmentedLayer
//     implementations guarantee — is the exact float addition sequence the
//     standalone per-client backward performs.
//
// Together these make BatchedLossAndGrad byte-identical (Float64bits) to
// looping LossAndGrad over the segments, for any segmentation. The
// explicitly opt-in fast mode (SetFastKernels) trades that bit-identity
// for reassociated reduction kernels.
//
// The ...Ws variants additionally thread a per-worker Workspace arena
// through every layer, so a steady-state tile pass checks out cached
// buffers instead of allocating: the only remaining allocations are the
// per-client gradient vectors themselves, which escape into the round
// pipeline and therefore must stay fresh.

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// SegmentGrad is one row segment's (client's) share of a batched
// forward/backward pass.
type SegmentGrad struct {
	// Loss is the segment's mean cross-entropy loss.
	Loss float64
	// Correct counts the segment's correct argmax predictions.
	Correct int
	// Grad is the segment's flat parameter gradient, laid out exactly like
	// GradVector.
	Grad []float64
}

// BatchClassifier is implemented by models that can compute per-client
// gradients from one stacked batch. bounds holds len(segments)+1 ascending
// row offsets (bounds[0] = 0, bounds[len-1] = batch rows); segment s spans
// rows [bounds[s], bounds[s+1]) and every segment must be non-empty. The
// result is byte-identical to calling LossAndGrad per segment.
type BatchClassifier interface {
	Classifier
	BatchedLossAndGrad(in Input, labels []int, bounds []int) ([]SegmentGrad, error)
}

// WorkspaceBatchClassifier is a BatchClassifier whose batched pass can run
// through a reusable per-worker Workspace arena. Passing a nil Workspace is
// equivalent to BatchedLossAndGrad; passing a warm one eliminates the
// scratch-matrix allocations without changing a single output bit.
type WorkspaceBatchClassifier interface {
	BatchClassifier
	BatchedLossAndGradWs(ws *Workspace, in Input, labels []int, bounds []int) ([]SegmentGrad, error)
}

// FastKernels is implemented by models whose layers can switch to the
// reassociated (non-bitwise) fast kernels.
type FastKernels interface {
	SetFastKernels(on bool)
}

// arenaLayer is implemented by layers whose forward/backward can check
// scratch buffers out of a Workspace. id is the layer's index in its model,
// which namespaces the arena keys; a nil Workspace falls back to fresh
// allocation, so Forward(x) ≡ forwardWs(nil, 0, x).
type arenaLayer interface {
	Layer
	forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error)
	backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error)
}

// segmentedLayer is implemented by parameter-carrying layers that can
// segment their parameter gradients by row range in a single backward
// pass: segGrads[s][k] receives the gradient of Params()[k] accumulated
// over rows [bounds[s], bounds[s+1]) alone, byte-identical to a standalone
// Backward over that segment.
type segmentedLayer interface {
	Layer
	backwardSegmented(ws *Workspace, id int, grad *tensor.Matrix, bounds []int, segGrads [][][]float64) (*tensor.Matrix, error)
}

// fastKernelLayer is implemented by layers with a fast-kernel toggle.
type fastKernelLayer interface {
	setFastKernels(on bool)
}

// validateBounds checks a segmentation against a batch of the given row
// count: ascending offsets from 0 to rows with no empty segment.
func validateBounds(bounds []int, rows int) error {
	if len(bounds) < 2 {
		return fmt.Errorf("%w: segmentation needs >= 2 bounds, got %d", ErrShape, len(bounds))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != rows {
		return fmt.Errorf("%w: segmentation [%d..%d] does not cover %d rows",
			ErrShape, bounds[0], bounds[len(bounds)-1], rows)
	}
	for s := 0; s+1 < len(bounds); s++ {
		if bounds[s] >= bounds[s+1] {
			return fmt.Errorf("%w: empty or descending segment %d: [%d,%d)", ErrShape, s, bounds[s], bounds[s+1])
		}
	}
	return nil
}

var _ BatchClassifier = (*FeedForward)(nil)
var _ WorkspaceBatchClassifier = (*FeedForward)(nil)
var _ FastKernels = (*FeedForward)(nil)

// SetFastKernels toggles the fast reduction kernels (unrolled independent
// accumulators) in every layer that supports them. Fast kernels
// reassociate floating-point sums: results agree with the exact kernels to
// normal float64 accuracy but are NOT bit-identical, so the toggle is
// opt-in and off by default. It affects every subsequent pass on this
// model — training and inference alike.
func (ff *FeedForward) SetFastKernels(on bool) {
	for _, l := range ff.layers {
		if f, ok := l.(fastKernelLayer); ok {
			f.setFastKernels(on)
		}
	}
}

// BatchedLossAndGrad implements BatchClassifier: one forward and one
// backward pass per layer over the stacked batch, de-interleaving
// per-segment losses, prediction counts and flat parameter gradients. It
// does not touch the model's own accumulated gradients (ZeroGrad /
// GradVector state is unaffected).
func (ff *FeedForward) BatchedLossAndGrad(in Input, labels []int, bounds []int) ([]SegmentGrad, error) {
	return ff.BatchedLossAndGradWs(nil, in, labels, bounds)
}

// BatchedLossAndGradWs is BatchedLossAndGrad through a per-worker
// Workspace arena: every activation, im2col and delta buffer is checked
// out of ws instead of allocated. The returned gradients are NOT
// arena-backed — they escape into the round pipeline (adversary, defense,
// hooks may retain them), so they are freshly allocated every call.
func (ff *FeedForward) BatchedLossAndGradWs(ws *Workspace, in Input, labels []int, bounds []int) ([]SegmentGrad, error) {
	if in.Dense == nil {
		return nil, errors.New("nn: FeedForward requires dense input")
	}
	if err := validateBounds(bounds, in.Dense.Rows); err != nil {
		return nil, err
	}
	logits, err := ff.forwardWs(ws, in.Dense)
	if err != nil {
		return nil, err
	}
	grad := ws.matrix(wsHead, wsLossGrad, logits.Rows, logits.Cols)
	losses, correct, err := softmaxCrossEntropySegmentedInto(grad, logits, labels, bounds)
	if err != nil {
		return nil, err
	}

	// One flat gradient vector per segment, in GradVector layout; each
	// layer's params get per-segment sub-slice views at their flat offsets.
	segs := len(bounds) - 1
	total := ff.NumParams()
	flat := make([]float64, segs*total)
	out := make([]SegmentGrad, segs)
	for s := range out {
		out[s] = SegmentGrad{Loss: losses[s], Correct: correct[s], Grad: flat[s*total : (s+1)*total : (s+1)*total]}
	}
	scaffold := ws.gradScaffold(len(ff.layers))
	off := 0
	for li, l := range ff.layers {
		params := l.Params()
		if len(params) == 0 {
			scaffold[li] = nil
			continue
		}
		segGradViews(scaffold, li, flat, total, segs, off, params)
		for _, p := range params {
			off += len(p.W)
		}
	}

	for i := len(ff.layers) - 1; i >= 0; i-- {
		l := ff.layers[i]
		if len(l.Params()) == 0 {
			// Parameter-free layers have nothing to segment; their input
			// gradient is row-independent already.
			if al, ok := l.(arenaLayer); ok {
				grad, err = al.backwardWs(ws, i, grad)
			} else {
				grad, err = l.Backward(grad)
			}
		} else if sl, ok := l.(segmentedLayer); ok {
			grad, err = sl.backwardSegmented(ws, i, grad, bounds, scaffold[i])
		} else {
			return nil, fmt.Errorf("nn: layer %d (%T) does not support batched per-client gradients", i, l)
		}
		if err != nil {
			return nil, fmt.Errorf("layer %d backward: %w", i, err)
		}
	}
	return out, nil
}
