package nn

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// FeedForward is a sequential stack of layers with a softmax cross-entropy
// head. It implements Classifier over dense inputs and covers the paper's
// CNN and MLP image models.
type FeedForward struct {
	layers []Layer
	params []*Param
}

var _ Classifier = (*FeedForward)(nil)

// NewFeedForward assembles a sequential classifier from the given layers.
func NewFeedForward(layers ...Layer) *FeedForward {
	ff := &FeedForward{layers: layers}
	for _, l := range layers {
		ff.params = append(ff.params, l.Params()...)
	}
	return ff
}

// NumParams returns the total number of trainable scalars.
func (ff *FeedForward) NumParams() int { return countParams(ff.params) }

// ParamVector returns a flat copy of all parameters.
func (ff *FeedForward) ParamVector() []float64 { return flattenParams(ff.params) }

// SetParamVector overwrites all parameters from a flat vector.
func (ff *FeedForward) SetParamVector(v []float64) error { return unflattenInto(ff.params, v) }

// GradVector returns a flat copy of all accumulated gradients.
func (ff *FeedForward) GradVector() []float64 { return flattenGrads(ff.params) }

// ZeroGrad clears the accumulated gradients.
func (ff *FeedForward) ZeroGrad() { zeroGrads(ff.params) }

// forward runs the stack on a dense batch.
func (ff *FeedForward) forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return ff.forwardWs(nil, x)
}

// forwardWs runs the stack with layer scratch buffers checked out of the
// workspace (each layer's index namespaces its arena keys).
func (ff *FeedForward) forwardWs(ws *Workspace, x *tensor.Matrix) (*tensor.Matrix, error) {
	var err error
	for i, l := range ff.layers {
		if al, ok := l.(arenaLayer); ok {
			x, err = al.forwardWs(ws, i, x)
		} else {
			x, err = l.Forward(x)
		}
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return x, nil
}

// LossAndGrad runs forward + backward over the batch, accumulating
// gradients into the layer parameters.
func (ff *FeedForward) LossAndGrad(in Input, labels []int) (float64, int, error) {
	if in.Dense == nil {
		return 0, 0, errors.New("nn: FeedForward requires dense input")
	}
	logits, err := ff.forward(in.Dense)
	if err != nil {
		return 0, 0, err
	}
	loss, grad, correct, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		return 0, 0, err
	}
	for i := len(ff.layers) - 1; i >= 0; i-- {
		grad, err = ff.layers[i].Backward(grad)
		if err != nil {
			return 0, 0, fmt.Errorf("layer %d backward: %w", i, err)
		}
	}
	return loss, correct, nil
}

// Predict returns the argmax class per sample.
func (ff *FeedForward) Predict(in Input) ([]int, error) {
	if in.Dense == nil {
		return nil, errors.New("nn: FeedForward requires dense input")
	}
	logits, err := ff.forward(in.Dense)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = Argmax(logits.Row(i))
	}
	return out, nil
}
