package nn

import (
	"fmt"
	"math/rand"
)

// This file is the model zoo: constructors for the architectures used by
// the reproduction experiments. The paper trains a 3-conv/2-FC CNN on
// MNIST and Fashion-MNIST, ResNet-18 on CIFAR-10 and a bi-LSTM TextRNN on
// AG-News; here each is replaced by a reduced-scale analog with the same
// family of layers (convolutions + pooling + dense for images, an
// embedding + recurrence + dense head for text) sized so that pure-Go
// training of the full attack/defense sweeps stays tractable. DESIGN.md
// discusses why this substitution preserves the evaluation's shape.

// NewImageCNN builds a small convolutional classifier for c×h×w inputs:
// conv(3x3, pad 1) → ReLU → maxpool(2) → FC → ReLU → FC → ReLU → FC logits.
// The two hidden dense layers matter for the reproduction: deeper stacks
// propagate the parameter bias injected by model-poisoning attacks
// multiplicatively, which is what makes the paper's attacks destructive.
func NewImageCNN(rng *rand.Rand, c, h, w, filters, hidden, classes int) (*FeedForward, error) {
	conv, err := NewConv2D(rng, c, h, w, filters, 3, 1)
	if err != nil {
		return nil, fmt.Errorf("nn: building image CNN: %w", err)
	}
	pool, err := NewMaxPool2D(filters, conv.OutH, conv.OutW, 2)
	if err != nil {
		return nil, fmt.Errorf("nn: building image CNN: %w", err)
	}
	return NewFeedForward(
		conv,
		NewReLU(),
		pool,
		NewLinear(rng, pool.OutputSize(), hidden),
		NewReLU(),
		NewLinear(rng, hidden, hidden),
		NewReLU(),
		NewLinear(rng, hidden, classes),
	), nil
}

// NewDeepImageCNN builds a two-stage convolutional classifier:
// [conv → ReLU → pool] ×2 → FC → ReLU → FC logits. This is the CIFAR-10
// analog (the paper uses ResNet-18 there).
func NewDeepImageCNN(rng *rand.Rand, c, h, w, f1, f2, hidden, classes int) (*FeedForward, error) {
	conv1, err := NewConv2D(rng, c, h, w, f1, 3, 1)
	if err != nil {
		return nil, fmt.Errorf("nn: building deep image CNN: %w", err)
	}
	pool1, err := NewMaxPool2D(f1, conv1.OutH, conv1.OutW, 2)
	if err != nil {
		return nil, fmt.Errorf("nn: building deep image CNN: %w", err)
	}
	conv2, err := NewConv2D(rng, f1, pool1.OutH, pool1.OutW, f2, 3, 1)
	if err != nil {
		return nil, fmt.Errorf("nn: building deep image CNN: %w", err)
	}
	pool2, err := NewMaxPool2D(f2, conv2.OutH, conv2.OutW, 2)
	if err != nil {
		return nil, fmt.Errorf("nn: building deep image CNN: %w", err)
	}
	return NewFeedForward(
		conv1,
		NewReLU(),
		pool1,
		conv2,
		NewReLU(),
		pool2,
		NewLinear(rng, pool2.OutputSize(), hidden),
		NewReLU(),
		NewLinear(rng, hidden, hidden),
		NewReLU(),
		NewLinear(rng, hidden, classes),
	), nil
}

// NewMLP builds a multi-layer perceptron with ReLU activations between the
// given layer sizes; sizes must contain at least the input and output
// widths.
func NewMLP(rng *rand.Rand, sizes ...int) (*FeedForward, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: NewMLP needs at least [in, out] sizes, got %v", ErrShape, sizes)
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewLinear(rng, sizes[i], sizes[i+1]))
		if i+2 < len(sizes) {
			layers = append(layers, NewReLU())
		}
	}
	return NewFeedForward(layers...), nil
}

// NewLogistic builds a linear (softmax regression) classifier.
func NewLogistic(rng *rand.Rand, in, classes int) *FeedForward {
	return NewFeedForward(NewLinear(rng, in, classes))
}
