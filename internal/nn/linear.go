package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/tensor"
)

// Linear is a fully-connected layer: y = xWᵀ + b, with x an (N, In) batch,
// W an (Out, In) weight matrix and b a length-Out bias.
type Linear struct {
	In, Out int
	weight  *Param // Out*In, row-major (out, in)
	bias    *Param // Out

	lastInput *tensor.Matrix
}

var _ Layer = (*Linear)(nil)

// NewLinear builds a Linear layer with He-uniform initialization, which
// pairs well with the ReLU activations used throughout the model zoo.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		weight: newParam(fmt.Sprintf("linear%dx%d.weight", out, in), out*in),
		bias:   newParam(fmt.Sprintf("linear%dx%d.bias", out, in), out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.weight.W {
		l.weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return l
}

// Forward computes the affine transform for a batch.
func (l *Linear) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != l.In {
		return nil, fmt.Errorf("%w: Linear expects %d inputs, got %d", ErrShape, l.In, x.Cols)
	}
	l.lastInput = x
	out := tensor.NewMatrix(x.Rows, l.Out)
	for i := 0; i < x.Rows; i++ {
		xi := x.Row(i)
		oi := out.Row(i)
		for o := 0; o < l.Out; o++ {
			w := l.weight.W[o*l.In : (o+1)*l.In]
			s := l.bias.W[o]
			for j, xv := range xi {
				s += w[j] * xv
			}
			oi[o] = s
		}
	}
	return out, nil
}

// Backward accumulates dW and db and returns dX.
func (l *Linear) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if l.lastInput == nil {
		return nil, fmt.Errorf("nn: Linear.Backward before Forward")
	}
	if grad.Cols != l.Out || grad.Rows != l.lastInput.Rows {
		return nil, fmt.Errorf("%w: Linear.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, l.lastInput.Rows, l.Out)
	}
	x := l.lastInput
	dx := tensor.NewMatrix(x.Rows, l.In)
	for i := 0; i < x.Rows; i++ {
		xi := x.Row(i)
		gi := grad.Row(i)
		di := dx.Row(i)
		for o := 0; o < l.Out; o++ {
			g := gi[o]
			if g == 0 {
				continue
			}
			l.bias.Grad[o] += g
			w := l.weight.W[o*l.In : (o+1)*l.In]
			gw := l.weight.Grad[o*l.In : (o+1)*l.In]
			for j, xv := range xi {
				gw[j] += g * xv
				di[j] += g * w[j]
			}
		}
	}
	return dx, nil
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }
