package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/tensor"
)

// Linear is a fully-connected layer: y = xWᵀ + b, with x an (N, In) batch,
// W an (Out, In) weight matrix and b a length-Out bias.
type Linear struct {
	In, Out int
	weight  *Param // Out*In, row-major (out, in)
	bias    *Param // Out

	// fast selects the reassociated (non-bitwise) tensor kernels; see
	// FeedForward.SetFastKernels.
	fast bool

	lastInput *tensor.Matrix
}

var _ Layer = (*Linear)(nil)
var _ segmentedLayer = (*Linear)(nil)
var _ arenaLayer = (*Linear)(nil)

// NewLinear builds a Linear layer with He-uniform initialization, which
// pairs well with the ReLU activations used throughout the model zoo.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		weight: newParam(fmt.Sprintf("linear%dx%d.weight", out, in), out*in),
		bias:   newParam(fmt.Sprintf("linear%dx%d.bias", out, in), out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.weight.W {
		l.weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return l
}

// weightMatrix returns the (Out, In) matrix view over the flat weights —
// no copy, shared backing array.
func (l *Linear) weightMatrix() *tensor.Matrix {
	return &tensor.Matrix{Rows: l.Out, Cols: l.In, Data: l.weight.W}
}

func (l *Linear) setFastKernels(on bool) { l.fast = on }

// Forward computes the affine transform for a batch: the output starts at
// the bias and accumulates xWᵀ through the tensor kernels (exact kernel by
// default — byte-identical to a sequential per-row dot product).
func (l *Linear) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return l.forwardWs(nil, 0, x)
}

// forwardWs is Forward with an optional workspace buffer: every output row
// is seeded from the bias before the kernel accumulates, so a stale arena
// buffer is fully overwritten.
func (l *Linear) forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != l.In {
		return nil, fmt.Errorf("%w: Linear expects %d inputs, got %d", ErrShape, l.In, x.Cols)
	}
	l.lastInput = x
	out := ws.matrix(id, wsFwd, x.Rows, l.Out)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), l.bias.W)
	}
	var err error
	if l.fast {
		err = tensor.MulABTFastInto(out, x, l.weightMatrix())
	} else {
		err = tensor.MulABTInto(out, x, l.weightMatrix())
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// accumBias folds grad rows [r0,r1) into the bias gradient buffer: rows
// ascending, skipping zero terms — the association (and negative-zero
// behavior) of the original fused backward loop.
func accumBias(grad *tensor.Matrix, bg []float64, r0, r1 int) {
	for i := r0; i < r1; i++ {
		for o, g := range grad.Row(i) {
			if g == 0 {
				continue
			}
			bg[o] += g
		}
	}
}

// Backward accumulates dW and db and returns dX.
func (l *Linear) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	return l.backwardWs(nil, 0, grad)
}

// backwardWs is Backward with an optional workspace buffer for dX.
func (l *Linear) backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error) {
	return l.backward(ws, id, grad, func(int) (w, b []float64) { return l.weight.Grad, l.bias.Grad }, nil)
}

// backwardSegmented implements segmentedLayer: parameter gradients land in
// per-segment buffers instead of the shared Grad tensors, accumulated over
// each segment's rows in the same ascending order the sequential
// per-segment backward would use — so segment s's buffers are
// byte-identical to a standalone Backward over rows [bounds[s],
// bounds[s+1]).
func (l *Linear) backwardSegmented(ws *Workspace, id int, grad *tensor.Matrix, bounds []int, segGrads [][][]float64) (*tensor.Matrix, error) {
	return l.backward(ws, id, grad, func(s int) (w, b []float64) { return segGrads[s][0], segGrads[s][1] }, bounds)
}

// backward is the shared dW/db/dX computation. sink maps a segment index
// to the weight and bias gradient buffers; bounds is nil for the unsegmented
// path (one segment spanning every row).
func (l *Linear) backward(ws *Workspace, id int, grad *tensor.Matrix, sink func(s int) (w, b []float64), bounds []int) (*tensor.Matrix, error) {
	if l.lastInput == nil {
		return nil, fmt.Errorf("nn: Linear.Backward before Forward")
	}
	if grad.Cols != l.Out || grad.Rows != l.lastInput.Rows {
		return nil, fmt.Errorf("%w: Linear.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, l.lastInput.Rows, l.Out)
	}
	x := l.lastInput
	if bounds == nil {
		bounds = []int{0, x.Rows}
	}
	for s := 0; s+1 < len(bounds); s++ {
		wg, bg := sink(s)
		accumBias(grad, bg, bounds[s], bounds[s+1])
		wm := &tensor.Matrix{Rows: l.Out, Cols: l.In, Data: wg}
		if err := tensor.MulATBRangeInto(wm, grad, x, bounds[s], bounds[s+1]); err != nil {
			return nil, err
		}
	}
	// dX is an accumulation target (MatMulInto adds into it), so the arena
	// checkout must be explicitly zeroed.
	dx := ws.matrixZeroed(id, wsDX, x.Rows, l.In)
	if err := tensor.MatMulInto(dx, grad, l.weightMatrix()); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }
