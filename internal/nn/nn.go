// Package nn is a small, dependency-free neural-network library built for
// the SignGuard reproduction. The paper trains CNNs on image data and a
// recurrent text classifier with SGD + momentum; Go has no mature deep
// learning stack, so this package provides the pieces those experiments
// need: dense, convolutional, pooling and recurrent layers with exact
// backpropagation (verified against numerical gradients in the tests),
// softmax cross-entropy loss, and flat parameter/gradient vector views —
// the representation the attacks and robust aggregation rules operate on.
package nn

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// ErrShape is returned when an input does not match a layer's expectations.
var ErrShape = errors.New("nn: shape mismatch")

// Param is one named tensor of trainable weights together with its
// accumulated gradient. Layers expose their parameters through this type so
// models can be flattened into the single gradient vector exchanged with
// the parameter server.
type Param struct {
	Name string
	W    []float64
	Grad []float64
}

// newParam allocates a parameter of size n.
func newParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), Grad: make([]float64, n)}
}

// Layer is a differentiable transformation over a batch matrix
// (rows = samples). Forward must be called before Backward within a step.
// Backward receives dLoss/dOutput and returns dLoss/dInput while
// accumulating parameter gradients.
type Layer interface {
	Forward(x *tensor.Matrix) (*tensor.Matrix, error)
	Backward(grad *tensor.Matrix) (*tensor.Matrix, error)
	Params() []*Param
}

// Input is a batch of examples for a Classifier. Exactly one of Dense or
// Tokens is set, depending on the model family.
type Input struct {
	// Dense holds one flattened feature row per sample (image models).
	Dense *tensor.Matrix
	// Tokens holds one token-id sequence per sample (text models).
	Tokens [][]int
}

// Len returns the number of samples in the input.
func (in Input) Len() int {
	if in.Dense != nil {
		return in.Dense.Rows
	}
	return len(in.Tokens)
}

// Classifier is the model abstraction the federated-learning engine trains:
// any multi-class model exposing flat parameter and gradient vectors.
type Classifier interface {
	// NumParams returns the total number of trainable scalars.
	NumParams() int
	// ParamVector returns a copy of all parameters as one flat vector.
	ParamVector() []float64
	// SetParamVector overwrites all parameters from a flat vector.
	SetParamVector(v []float64) error
	// GradVector returns a copy of all accumulated gradients, flattened.
	GradVector() []float64
	// ZeroGrad clears the accumulated gradients.
	ZeroGrad()
	// LossAndGrad runs a forward and backward pass over the batch,
	// accumulating gradients. It returns the mean loss and the number of
	// correctly classified samples.
	LossAndGrad(in Input, labels []int) (loss float64, correct int, err error)
	// Predict returns the argmax class for each sample.
	Predict(in Input) ([]int, error)
}

// flattenParams copies every parameter tensor into one vector.
func flattenParams(params []*Param) []float64 {
	var total int
	for _, p := range params {
		total += len(p.W)
	}
	out := make([]float64, 0, total)
	for _, p := range params {
		out = append(out, p.W...)
	}
	return out
}

// flattenGrads copies every gradient tensor into one vector.
func flattenGrads(params []*Param) []float64 {
	var total int
	for _, p := range params {
		total += len(p.Grad)
	}
	out := make([]float64, 0, total)
	for _, p := range params {
		out = append(out, p.Grad...)
	}
	return out
}

// unflattenInto writes the flat vector v back into the parameter tensors.
func unflattenInto(params []*Param, v []float64) error {
	var total int
	for _, p := range params {
		total += len(p.W)
	}
	if len(v) != total {
		return fmt.Errorf("%w: SetParamVector got %d values, model has %d", ErrShape, len(v), total)
	}
	off := 0
	for _, p := range params {
		copy(p.W, v[off:off+len(p.W)])
		off += len(p.W)
	}
	return nil
}

// zeroGrads clears every gradient tensor.
func zeroGrads(params []*Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// countParams sums the parameter tensor sizes.
func countParams(params []*Param) int {
	var total int
	for _, p := range params {
		total += len(p.W)
	}
	return total
}

// Argmax returns the index of the largest value in row.
func Argmax(row []float64) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
