package nn

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// batchedTestModel builds a small ImageCNN — conv, pool, three dense
// layers — the architecture the batched engine targets.
func batchedTestModel(t *testing.T) *FeedForward {
	t.Helper()
	m, err := NewImageCNN(tensor.NewRNG(3), 1, 8, 8, 4, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// randomBatch fills a dense batch and labels from a seeded RNG.
func randomBatch(rows, cols, classes int, seed int64) (*tensor.Matrix, []int) {
	rng := tensor.NewRNG(seed)
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

// perSegmentReference computes each segment's gradient through the
// per-client path: ZeroGrad + LossAndGrad + GradVector per segment.
func perSegmentReference(t *testing.T, m *FeedForward, x *tensor.Matrix, labels []int, bounds []int) []SegmentGrad {
	t.Helper()
	out := make([]SegmentGrad, len(bounds)-1)
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		seg := &tensor.Matrix{Rows: hi - lo, Cols: x.Cols, Data: x.Data[lo*x.Cols : hi*x.Cols]}
		m.ZeroGrad()
		loss, correct, err := m.LossAndGrad(Input{Dense: seg}, labels[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		out[s] = SegmentGrad{Loss: loss, Correct: correct, Grad: m.GradVector()}
	}
	m.ZeroGrad()
	return out
}

// assertSegmentsBitIdentical compares batched output against the
// per-segment reference down to Float64bits.
func assertSegmentsBitIdentical(t *testing.T, want, got []SegmentGrad) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("segment count %d, want %d", len(got), len(want))
	}
	for s := range want {
		if math.Float64bits(want[s].Loss) != math.Float64bits(got[s].Loss) {
			t.Errorf("segment %d loss %v, want %v (bitwise)", s, got[s].Loss, want[s].Loss)
		}
		if want[s].Correct != got[s].Correct {
			t.Errorf("segment %d correct %d, want %d", s, got[s].Correct, want[s].Correct)
		}
		if len(want[s].Grad) != len(got[s].Grad) {
			t.Fatalf("segment %d grad len %d, want %d", s, len(got[s].Grad), len(want[s].Grad))
		}
		for j := range want[s].Grad {
			if math.Float64bits(want[s].Grad[j]) != math.Float64bits(got[s].Grad[j]) {
				t.Fatalf("segment %d grad[%d] = %v, want %v (bitwise)", s, j, got[s].Grad[j], want[s].Grad[j])
			}
		}
	}
}

// TestBatchedLossAndGradBitIdentical: one stacked pass must de-interleave
// the exact per-client gradients, including unequal segment sizes and a
// single-sample segment.
func TestBatchedLossAndGradBitIdentical(t *testing.T) {
	m := batchedTestModel(t)
	cases := map[string][]int{
		"equal":       {0, 4, 8, 12},
		"unequal":     {0, 3, 4, 9, 12},
		"single-row":  {0, 1, 12},
		"one-segment": {0, 12},
	}
	x, labels := randomBatch(12, 64, 5, 7)
	for name, bounds := range cases {
		t.Run(name, func(t *testing.T) {
			want := perSegmentReference(t, m, x, labels, bounds)
			got, err := m.BatchedLossAndGrad(Input{Dense: x}, labels, bounds)
			if err != nil {
				t.Fatal(err)
			}
			assertSegmentsBitIdentical(t, want, got)
		})
	}
}

// TestBatchedLossAndGradLeavesGradState: the batched path must not disturb
// the model's own accumulated gradients.
func TestBatchedLossAndGradLeavesGradState(t *testing.T) {
	m := batchedTestModel(t)
	x, labels := randomBatch(6, 64, 5, 9)
	m.ZeroGrad()
	if _, err := m.BatchedLossAndGrad(Input{Dense: x}, labels, []int{0, 3, 6}); err != nil {
		t.Fatal(err)
	}
	for i, g := range m.GradVector() {
		if g != 0 {
			t.Fatalf("grad[%d] = %v after batched pass, want untouched zero", i, g)
		}
	}
}

// TestBatchedLossAndGradRejectsBadInput covers the segmentation and input
// validation.
func TestBatchedLossAndGradRejectsBadInput(t *testing.T) {
	m := batchedTestModel(t)
	x, labels := randomBatch(6, 64, 5, 11)
	bad := map[string][]int{
		"nil":        nil,
		"one-bound":  {0},
		"no-cover":   {0, 4},
		"empty-seg":  {0, 3, 3, 6},
		"descending": {0, 4, 2, 6},
		"offset":     {1, 6},
	}
	for name, bounds := range bad {
		if _, err := m.BatchedLossAndGrad(Input{Dense: x}, labels, bounds); err == nil {
			t.Errorf("%s bounds accepted", name)
		}
	}
	if _, err := m.BatchedLossAndGrad(Input{Tokens: [][]int{{1}}}, []int{0}, []int{0, 1}); err == nil {
		t.Error("token input accepted by dense batched path")
	}
	if _, err := m.BatchedLossAndGrad(Input{Dense: x}, labels[:3], []int{0, 6}); err == nil {
		t.Error("label/row mismatch accepted")
	}
}

// TestFastKernelsApproximate: the fast mode reassociates sums, so it must
// agree with the exact path to float64 accuracy without being required to
// match bitwise.
func TestFastKernelsApproximate(t *testing.T) {
	exact := batchedTestModel(t)
	fast := batchedTestModel(t)
	fast.SetFastKernels(true)
	x, labels := randomBatch(10, 64, 5, 13)
	bounds := []int{0, 4, 10}
	a, err := exact.BatchedLossAndGrad(Input{Dense: x}, labels, bounds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fast.BatchedLossAndGrad(Input{Dense: x}, labels, bounds)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	for s := range a {
		if d := math.Abs(a[s].Loss - b[s].Loss); d > tol*(1+math.Abs(a[s].Loss)) {
			t.Errorf("segment %d fast loss drifted by %g", s, d)
		}
		for j := range a[s].Grad {
			if d := math.Abs(a[s].Grad[j] - b[s].Grad[j]); d > tol*(1+math.Abs(a[s].Grad[j])) {
				t.Fatalf("segment %d grad[%d] fast drift %g", s, j, d)
			}
		}
	}
	// Toggling back restores the exact kernels bit for bit.
	fast.SetFastKernels(false)
	c, err := fast.BatchedLossAndGrad(Input{Dense: x}, labels, bounds)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsBitIdentical(t, a, c)
}

// TestSoftmaxCrossEntropySegmentedMatches pins the segmented loss against
// per-segment calls of the scalar version.
func TestSoftmaxCrossEntropySegmentedMatches(t *testing.T) {
	logits, labels := randomBatch(9, 5, 5, 17)
	bounds := []int{0, 2, 3, 9}
	losses, grad, correct, err := SoftmaxCrossEntropySegmented(logits, labels, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		seg := &tensor.Matrix{Rows: hi - lo, Cols: logits.Cols, Data: logits.Data[lo*logits.Cols : hi*logits.Cols]}
		wantLoss, wantGrad, wantCorrect, err := SoftmaxCrossEntropy(seg, labels[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(wantLoss) != math.Float64bits(losses[s]) {
			t.Errorf("segment %d loss %v, want %v", s, losses[s], wantLoss)
		}
		if wantCorrect != correct[s] {
			t.Errorf("segment %d correct %d, want %d", s, correct[s], wantCorrect)
		}
		for i := 0; i < wantGrad.Rows; i++ {
			for j, v := range wantGrad.Row(i) {
				if math.Float64bits(v) != math.Float64bits(grad.At(lo+i, j)) {
					t.Fatalf("segment %d grad (%d,%d) mismatch", s, i, j)
				}
			}
		}
	}
}
