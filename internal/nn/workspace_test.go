package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// bitsEqual compares two float slices by math.Float64bits and reports the
// first mismatch.
func bitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x (%v vs %v)",
				what, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// randTokens draws n variable-length in-vocab sequences; lengths cycle
// through 1..maxLen so single-token rows and the ragged tail are always
// exercised.
func randTokens(rng *rand.Rand, n, maxLen, vocab int) [][]int {
	tokens := make([][]int, n)
	for i := range tokens {
		l := 1 + (i*5)%maxLen
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(vocab)
		}
		tokens[i] = seq
	}
	return tokens
}

// TestTextRNNBatchedMatchesPerClient: the batched time-major RNN kernel
// must de-interleave per-segment gradients byte-identical to running
// LossAndGrad on each segment alone — including one-row segments and
// ragged sequence lengths.
func TestTextRNNBatchedMatchesPerClient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewTextRNN(rng, 50, 6, 9, 4)
	tokens := randTokens(rng, 10, 13, 50)
	labels := make([]int, len(tokens))
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	bounds := []int{0, 1, 4, 8, 10} // includes a one-row segment

	segs, err := m.BatchedLossAndGrad(Input{Tokens: tokens}, labels, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		m.ZeroGrad()
		loss, correct, err := m.LossAndGrad(Input{Tokens: tokens[lo:hi]}, labels[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(loss) != math.Float64bits(segs[s].Loss) {
			t.Errorf("segment %d loss %v vs batched %v", s, loss, segs[s].Loss)
		}
		if correct != segs[s].Correct {
			t.Errorf("segment %d correct %d vs batched %d", s, correct, segs[s].Correct)
		}
		bitsEqual(t, "segment gradient", segs[s].Grad, m.GradVector())
	}
}

// TestTextRNNRejectsBadInput pins the batched kernel's validation: empty
// sequences, out-of-vocab tokens and malformed bounds must error, not
// corrupt state.
func TestTextRNNRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewTextRNN(rng, 10, 4, 5, 3)
	if _, err := m.BatchedLossAndGrad(Input{Tokens: [][]int{{}}}, []int{0}, []int{0, 1}); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := m.BatchedLossAndGrad(Input{Tokens: [][]int{{11}}}, []int{0}, []int{0, 1}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := m.BatchedLossAndGrad(Input{Tokens: [][]int{{1}, {2}}}, []int{0, 1}, []int{0, 1}); err == nil {
		t.Error("non-covering bounds accepted")
	}
	if _, err := m.BatchedLossAndGrad(Input{Dense: tensor.NewMatrix(1, 4)}, []int{0}, []int{0, 1}); err == nil {
		t.Error("dense input accepted by text model")
	}
}

// workspaceModels builds the model/input pairs the reuse tests sweep: the
// CNN stack (conv, pool, relu, linear layers) and the text RNN.
func workspaceBatch(t *testing.T, rng *rand.Rand, rows int) (*tensor.Matrix, []int) {
	t.Helper()
	x := tensor.NewMatrix(rows, 36)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	return x, labels
}

// TestWorkspaceReuseBitwise: passes through a warm arena — including shape
// changes in between, which leave stale buffers of other sizes in the map —
// must stay byte-identical to the allocation-per-pass path.
func TestWorkspaceReuseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cnn, err := NewImageCNN(rng, 1, 6, 6, 3, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	xA, labelsA := workspaceBatch(t, rng, 10)
	boundsA := []int{0, 4, 10}
	xB, labelsB := workspaceBatch(t, rng, 3)
	boundsB := []int{0, 1, 2, 3} // one-row tiles

	refA, err := cnn.BatchedLossAndGrad(Input{Dense: xA}, labelsA, boundsA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := cnn.BatchedLossAndGrad(Input{Dense: xB}, labelsB, boundsB)
	if err != nil {
		t.Fatal(err)
	}

	check := func(pass string, got, want []SegmentGrad) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d segments vs %d", pass, len(got), len(want))
		}
		for s := range got {
			if math.Float64bits(got[s].Loss) != math.Float64bits(want[s].Loss) {
				t.Errorf("%s: segment %d loss %v vs %v", pass, s, got[s].Loss, want[s].Loss)
			}
			if got[s].Correct != want[s].Correct {
				t.Errorf("%s: segment %d correct %d vs %d", pass, s, got[s].Correct, want[s].Correct)
			}
			bitsEqual(t, pass+" gradient", got[s].Grad, want[s].Grad)
		}
	}

	// Alternate shapes through one arena: A, B, A, B, A. Every pass must
	// reproduce the fresh-allocation result exactly.
	ws := NewWorkspace()
	for i := 0; i < 5; i++ {
		if i%2 == 0 {
			got, err := cnn.BatchedLossAndGradWs(ws, Input{Dense: xA}, labelsA, boundsA)
			if err != nil {
				t.Fatal(err)
			}
			check("warm pass A", got, refA)
		} else {
			got, err := cnn.BatchedLossAndGradWs(ws, Input{Dense: xB}, labelsB, boundsB)
			if err != nil {
				t.Fatal(err)
			}
			check("warm pass B", got, refB)
		}
	}
}

// TestWorkspaceReuseBitwiseText is TestWorkspaceReuseBitwise for the RNN:
// alternating max sequence lengths re-keys the time-major buffers, and the
// stale long-run buffers must never leak into a short-run pass.
func TestWorkspaceReuseBitwiseText(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewTextRNN(rng, 30, 5, 7, 4)
	tokA := randTokens(rng, 8, 12, 30)
	tokB := randTokens(rng, 5, 3, 30)
	labA, labB := make([]int, 8), make([]int, 5)
	for i := range labA {
		labA[i] = rng.Intn(4)
	}
	for i := range labB {
		labB[i] = rng.Intn(4)
	}
	bndA, bndB := []int{0, 3, 8}, []int{0, 5}

	refA, err := m.BatchedLossAndGrad(Input{Tokens: tokA}, labA, bndA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := m.BatchedLossAndGrad(Input{Tokens: tokB}, labB, bndB)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	for i := 0; i < 4; i++ {
		gotA, err := m.BatchedLossAndGradWs(ws, Input{Tokens: tokA}, labA, bndA)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := m.BatchedLossAndGradWs(ws, Input{Tokens: tokB}, labB, bndB)
		if err != nil {
			t.Fatal(err)
		}
		for s := range gotA {
			bitsEqual(t, "text warm pass A", gotA[s].Grad, refA[s].Grad)
		}
		for s := range gotB {
			bitsEqual(t, "text warm pass B", gotB[s].Grad, refB[s].Grad)
		}
	}
}

// TestWorkspaceSteadyStateAllocs: a warm arena reduces the hot tile path to
// the allocations that must escape (the per-segment gradient vectors and
// their slice headers) plus a handful of fixed-size closures — an order of
// magnitude below the allocation-per-pass path.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cnn, err := NewImageCNN(rng, 1, 6, 6, 3, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, labels := workspaceBatch(t, rng, 12)
	bounds := []int{0, 4, 8, 12}

	ws := NewWorkspace()
	if _, err := cnn.BatchedLossAndGradWs(ws, Input{Dense: x}, labels, bounds); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(20, func() {
		if _, err := cnn.BatchedLossAndGradWs(ws, Input{Dense: x}, labels, bounds); err != nil {
			t.Fatal(err)
		}
	})
	cold := testing.AllocsPerRun(20, func() {
		if _, err := cnn.BatchedLossAndGrad(Input{Dense: x}, labels, bounds); err != nil {
			t.Fatal(err)
		}
	})
	// The warm bound is intentionally loose in absolute terms (escaping
	// gradient storage, loss/correct slices, parallel closures) but tight
	// relative to cold: regressing a single per-layer buffer back to
	// allocation-per-pass multiplies it.
	if warm > 24 {
		t.Errorf("warm arena pass makes %.0f allocations, want <= 24", warm)
	}
	if warm > cold/4 {
		t.Errorf("warm pass allocates %.0f vs cold %.0f; arena is not amortizing", warm, cold)
	}
}
