package nn

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	lastInput *tensor.Matrix
}

var _ Layer = (*ReLU)(nil)
var _ arenaLayer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the rectifier.
func (r *ReLU) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return r.forwardWs(nil, 0, x)
}

// forwardWs is Forward with an optional workspace buffer. The else branch
// writes an explicit +0.0 — the value a fresh zeroed matrix holds — so a
// stale arena buffer produces byte-identical output.
func (r *ReLU) forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error) {
	r.lastInput = x
	out := ws.matrix(id, wsFwd, x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Backward gates the incoming gradient by the activation mask.
func (r *ReLU) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	return r.backwardWs(nil, 0, grad)
}

// backwardWs is Backward with an optional workspace buffer (fully
// overwritten, like forwardWs).
func (r *ReLU) backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error) {
	if r.lastInput == nil {
		return nil, fmt.Errorf("nn: ReLU.Backward before Forward")
	}
	if grad.Rows != r.lastInput.Rows || grad.Cols != r.lastInput.Cols {
		return nil, fmt.Errorf("%w: ReLU.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, r.lastInput.Rows, r.lastInput.Cols)
	}
	dx := ws.matrix(id, wsDX, grad.Rows, grad.Cols)
	for i, v := range r.lastInput.Data {
		if v > 0 {
			dx.Data[i] = grad.Data[i]
		} else {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Params returns nil: activations are parameter-free.
func (r *ReLU) Params() []*Param { return nil }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	lastOutput *tensor.Matrix
}

var _ Layer = (*Tanh)(nil)
var _ arenaLayer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (t *Tanh) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return t.forwardWs(nil, 0, x)
}

// forwardWs is Forward with an optional workspace buffer (every element is
// overwritten, so a stale buffer is fine).
func (t *Tanh) forwardWs(ws *Workspace, id int, x *tensor.Matrix) (*tensor.Matrix, error) {
	out := ws.matrix(id, wsFwd, x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.lastOutput = out
	return out, nil
}

// Backward multiplies the incoming gradient by 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	return t.backwardWs(nil, 0, grad)
}

// backwardWs is Backward with an optional workspace buffer.
func (t *Tanh) backwardWs(ws *Workspace, id int, grad *tensor.Matrix) (*tensor.Matrix, error) {
	if t.lastOutput == nil {
		return nil, fmt.Errorf("nn: Tanh.Backward before Forward")
	}
	if grad.Rows != t.lastOutput.Rows || grad.Cols != t.lastOutput.Cols {
		return nil, fmt.Errorf("%w: Tanh.Backward got (%d,%d), want (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, t.lastOutput.Rows, t.lastOutput.Cols)
	}
	dx := ws.matrix(id, wsDX, grad.Rows, grad.Cols)
	for i, y := range t.lastOutput.Data {
		dx.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return dx, nil
}

// Params returns nil: activations are parameter-free.
func (t *Tanh) Params() []*Param { return nil }
