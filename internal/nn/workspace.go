package nn

// Workspace is a reusable scratch arena for the batched forward/backward
// path. The profiles that motivated it showed tensor.NewMatrix churn at 76%
// of allocation volume and runtime zeroing (memclr) at ~20% of CPU: every
// tile pass rebuilt every activation, im2col and delta matrix from scratch.
// A Workspace caches those buffers keyed by (layer, slot, shape), so a
// steady-state tile re-checks out the same memory pass after pass.
//
// Ownership rules (see docs/ARCHITECTURE.md "Workspace arenas"):
//
//   - One Workspace per worker, never shared: buffers are reused with no
//     synchronization, so concurrent passes through one arena would race.
//   - One model per Workspace: keys are (layer id, slot, shape), which are
//     only unique within a single model's layer stack.
//   - Buffers are only valid for the duration of one pass. Results that
//     outlive the pass (per-client gradients handed to the round pipeline)
//     are never arena-backed — they stay freshly allocated.
//
// Determinism contract: a checked-out buffer may hold stale values from the
// previous pass, so every checkout site either fully overwrites the buffer
// (forward activations, im2col columns, loss gradients — see matrix) or
// explicitly zeroes it first because the kernel accumulates into it (input
// gradients — see matrixZeroed). Explicit zeroing writes the same +0.0 a
// fresh allocation holds, so arena passes are byte-identical
// (math.Float64bits) to allocation-per-pass ones; the golden trace tests pin
// that equivalence.
//
// All methods tolerate a nil receiver by falling back to fresh allocation,
// so the same layer code serves both the arena path and the plain
// Forward/Backward API.

import "github.com/signguard/signguard/internal/tensor"

// wsSlot distinguishes the buffers a single layer checks out: a layer may
// need several same-shaped matrices alive at once (e.g. forward output and
// input gradient), so the shape alone cannot be the key.
type wsSlot uint8

const (
	wsFwd      wsSlot = iota // forward output activations
	wsDX                     // input gradient (accumulated: zeroed checkout)
	wsCols                   // stacked im2col columns, all samples of the tile
	wsDCols                  // per-sample im2col gradient scratch
	wsArgmax                 // max-pool argmax indices
	wsLossGrad               // softmax cross-entropy gradient
	wsEmbeds                 // RNN: gathered embedding rows, time-major
	wsHidden                 // RNN: hidden states, time-major
	wsPooled                 // RNN: mean-pooled hidden states (accumulated)
	wsDPooled                // RNN: pooled-state gradient (accumulated)
	wsDH                     // RNN: recurrent gradient carry (accumulated)
	wsDA                     // RNN: pre-activation gradient (zeroed: inactive rows must stay 0)
	wsLogits                 // RNN: class logits
)

// wsHead is the layer id used for model-head buffers (loss gradient, RNN
// state) that do not belong to any layer index.
const wsHead = -1

// wsKey identifies one cached buffer. Shape is part of the key, so a tail
// tile with fewer rows gets its own (persistent) buffers instead of
// corrupting the full-tile ones.
type wsKey struct {
	layer      int
	slot       wsSlot
	rows, cols int
}

// Workspace is the per-worker scratch arena. The zero value is not usable;
// construct with NewWorkspace. A nil *Workspace is valid everywhere and
// means "allocate fresh" (the non-arena path).
type Workspace struct {
	mats map[wsKey]*tensor.Matrix
	ints map[wsKey][]int

	// scaffold caches the [layer][segment][param] gradient-view structure
	// of the batched backward pass; only the leaf slice headers are
	// rewritten per pass (they point into the pass's fresh flat gradient).
	scaffold [][][][]float64
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{
		mats: make(map[wsKey]*tensor.Matrix),
		ints: make(map[wsKey][]int),
	}
}

// matrix checks out the (layer, slot) buffer of the given shape. The
// contents are STALE — whatever the previous pass left — so callers must
// fully overwrite every element they read. With a nil receiver it returns a
// fresh zeroed matrix, which satisfies the same contract.
func (ws *Workspace) matrix(layer int, slot wsSlot, rows, cols int) *tensor.Matrix {
	if ws == nil {
		return tensor.NewMatrix(rows, cols)
	}
	k := wsKey{layer: layer, slot: slot, rows: rows, cols: cols}
	m, ok := ws.mats[k]
	if !ok {
		m = tensor.NewMatrix(rows, cols)
		ws.mats[k] = m
	}
	return m
}

// matrixZeroed is matrix with an explicit zero fill, for buffers the
// kernels accumulate into: the zeroing is the same +0.0 state a fresh
// allocation starts from, so results stay byte-identical to the
// allocation-per-pass path.
func (ws *Workspace) matrixZeroed(layer int, slot wsSlot, rows, cols int) *tensor.Matrix {
	if ws == nil {
		return tensor.NewMatrix(rows, cols)
	}
	m := ws.matrix(layer, slot, rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// intSlice checks out an integer scratch buffer (stale contents, same
// full-overwrite contract as matrix).
func (ws *Workspace) intSlice(layer int, slot wsSlot, n int) []int {
	if ws == nil {
		return make([]int, n)
	}
	k := wsKey{layer: layer, slot: slot, rows: n}
	s, ok := ws.ints[k]
	if !ok {
		s = make([]int, n)
		ws.ints[k] = s
	}
	return s
}

// gradScaffold returns the cached [layer][...] gradient-view scaffold,
// (re)sized to the given layer count. Callers rebuild the inner
// per-segment/per-param levels only when their lengths changed and rewrite
// the leaf slice headers every pass.
func (ws *Workspace) gradScaffold(layers int) [][][][]float64 {
	if ws == nil || len(ws.scaffold) != layers {
		s := make([][][][]float64, layers)
		if ws != nil {
			ws.scaffold = s
		}
		return s
	}
	return ws.scaffold
}

// segGradViews fills (and returns) scaffold[layer]: per-segment slices of
// per-parameter gradient views into flat, where segment s's views cover
// flat[s*total+off ... ) at the layer's parameter offsets. Only structure
// that changed shape is reallocated; leaf headers are always rewritten.
func segGradViews(scaffold [][][][]float64, layer int, flat []float64, total, segs, off int, params []*Param) [][][]float64 {
	rows := scaffold[layer]
	if len(rows) != segs {
		rows = make([][][]float64, segs)
		scaffold[layer] = rows
	}
	for s := 0; s < segs; s++ {
		views := rows[s]
		if len(views) != len(params) {
			views = make([][]float64, len(params))
			rows[s] = views
		}
		o := s*total + off
		for k, p := range params {
			// Full three-index slice: the segments share one backing
			// array, so capping each view keeps a consumer's append from
			// silently overwriting the next client's gradient.
			views[k] = flat[o : o+len(p.W) : o+len(p.W)]
			o += len(p.W)
		}
	}
	return rows
}
