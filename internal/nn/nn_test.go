package nn

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// lossAt evaluates the mean loss of the model at its current parameters
// without keeping gradients.
func lossAt(t *testing.T, m Classifier, in Input, labels []int) float64 {
	t.Helper()
	m.ZeroGrad()
	loss, _, err := m.LossAndGrad(in, labels)
	if err != nil {
		t.Fatalf("LossAndGrad: %v", err)
	}
	return loss
}

// checkNumericalGradient verifies backprop against central finite
// differences on a sample of coordinates.
func checkNumericalGradient(t *testing.T, m Classifier, in Input, labels []int) {
	t.Helper()
	m.ZeroGrad()
	if _, _, err := m.LossAndGrad(in, labels); err != nil {
		t.Fatalf("LossAndGrad: %v", err)
	}
	analytic := m.GradVector()
	params := m.ParamVector()

	const eps = 1e-5
	rng := tensor.NewRNG(42)
	n := len(params)
	checks := 60
	if n < checks {
		checks = n
	}
	idx := tensor.SampleIndices(rng, n, checks)
	var maxRel float64
	for _, i := range idx {
		orig := params[i]
		params[i] = orig + eps
		if err := m.SetParamVector(params); err != nil {
			t.Fatal(err)
		}
		up := lossAt(t, m, in, labels)
		params[i] = orig - eps
		if err := m.SetParamVector(params); err != nil {
			t.Fatal(err)
		}
		down := lossAt(t, m, in, labels)
		params[i] = orig
		numeric := (up - down) / (2 * eps)
		denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic[i]))
		rel := math.Abs(numeric-analytic[i]) / denom
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 1e-4 {
			t.Errorf("coordinate %d: analytic %.8g vs numeric %.8g (rel %.3g)", i, analytic[i], numeric, rel)
		}
	}
	if err := m.SetParamVector(params); err != nil {
		t.Fatal(err)
	}
	t.Logf("max relative gradient error: %.3g over %d coords", maxRel, checks)
}

func denseBatch(rng interface{ NormFloat64() float64 }, n, d int) *tensor.Matrix {
	m := tensor.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestLinearGradient(t *testing.T) {
	rng := tensor.NewRNG(1)
	model := NewFeedForward(NewLinear(rng, 5, 4), NewReLU(), NewLinear(rng, 4, 3))
	in := Input{Dense: denseBatch(rng, 6, 5)}
	labels := []int{0, 1, 2, 0, 1, 2}
	checkNumericalGradient(t, model, in, labels)
}

func TestTanhGradient(t *testing.T) {
	rng := tensor.NewRNG(2)
	model := NewFeedForward(NewLinear(rng, 4, 6), NewTanh(), NewLinear(rng, 6, 3))
	in := Input{Dense: denseBatch(rng, 5, 4)}
	labels := []int{2, 0, 1, 1, 0}
	checkNumericalGradient(t, model, in, labels)
}

func TestConvGradient(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv, err := NewConv2D(rng, 2, 6, 6, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D(3, conv.OutH, conv.OutW, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewFeedForward(conv, NewReLU(), pool, NewLinear(rng, pool.OutputSize(), 4))
	in := Input{Dense: denseBatch(rng, 4, 2*6*6)}
	labels := []int{0, 3, 1, 2}
	checkNumericalGradient(t, model, in, labels)
}

func TestImageCNNGradient(t *testing.T) {
	rng := tensor.NewRNG(4)
	model, err := NewImageCNN(rng, 1, 8, 8, 4, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Dense: denseBatch(rng, 3, 64)}
	labels := []int{7, 0, 4}
	checkNumericalGradient(t, model, in, labels)
}

func TestTextRNNGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	model := NewTextRNN(rng, 20, 6, 8, 4)
	in := Input{Tokens: [][]int{{1, 5, 2, 7}, {0, 19, 3, 3}, {4, 4, 4, 4}}}
	labels := []int{0, 3, 2}
	checkNumericalGradient(t, model, in, labels)
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits, _ := tensor.FromRows([][]float64{{10, 0, 0}, {0, 10, 0}})
	loss, grad, correct, err := SoftmaxCrossEntropy(logits, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if correct != 2 {
		t.Errorf("correct = %d", correct)
	}
	if loss > 1e-3 {
		t.Errorf("confident correct predictions should have near-zero loss, got %v", loss)
	}
	// Gradient rows sum to zero (softmax minus one-hot property).
	for i := 0; i < grad.Rows; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("gradient row %d sums to %v", i, s)
		}
	}
	if _, _, _, err := SoftmaxCrossEntropy(logits, []int{0}); err == nil {
		t.Error("accepted mismatched labels")
	}
	if _, _, _, err := SoftmaxCrossEntropy(logits, []int{0, 9}); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(6)
	model, err := NewMLP(rng, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := model.ParamVector()
	if len(v) != model.NumParams() {
		t.Fatalf("ParamVector length %d != NumParams %d", len(v), model.NumParams())
	}
	want := make([]float64, len(v))
	copy(want, v)
	for i := range v {
		v[i] = float64(i)
	}
	if err := model.SetParamVector(v); err != nil {
		t.Fatal(err)
	}
	got := model.ParamVector()
	if !tensor.Equal(got, v, 0) {
		t.Error("SetParamVector/ParamVector round trip mismatch")
	}
	if err := model.SetParamVector(want[:3]); err == nil {
		t.Error("accepted short parameter vector")
	}
}

func TestZeroGrad(t *testing.T) {
	rng := tensor.NewRNG(7)
	model, err := NewMLP(rng, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Dense: denseBatch(rng, 2, 3)}
	if _, _, err := model.LossAndGrad(in, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tensor.Norm(model.GradVector()) == 0 {
		t.Fatal("gradient should be non-zero after a backward pass")
	}
	model.ZeroGrad()
	if tensor.Norm(model.GradVector()) != 0 {
		t.Error("ZeroGrad left non-zero gradients")
	}
}

func TestGradAccumulation(t *testing.T) {
	rng := tensor.NewRNG(8)
	model, err := NewMLP(rng, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Dense: denseBatch(rng, 2, 3)}
	labels := []int{0, 1}
	model.ZeroGrad()
	if _, _, err := model.LossAndGrad(in, labels); err != nil {
		t.Fatal(err)
	}
	g1 := model.GradVector()
	if _, _, err := model.LossAndGrad(in, labels); err != nil {
		t.Fatal(err)
	}
	g2 := model.GradVector()
	if !tensor.Equal(g2, tensor.Scale(g1, 2), 1e-9) {
		t.Error("gradients should accumulate across backward passes")
	}
}

func TestPredict(t *testing.T) {
	rng := tensor.NewRNG(9)
	model, err := NewMLP(rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Dense: denseBatch(rng, 4, 2)}
	preds, err := model.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 4 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for _, p := range preds {
		if p < 0 || p >= 3 {
			t.Errorf("prediction %d out of range", p)
		}
	}
	if _, err := model.Predict(Input{Tokens: [][]int{{1}}}); err == nil {
		t.Error("FeedForward accepted token input")
	}
}

func TestTextRNNInputValidation(t *testing.T) {
	rng := tensor.NewRNG(10)
	model := NewTextRNN(rng, 10, 4, 4, 3)
	if _, _, err := model.LossAndGrad(Input{Dense: tensor.NewMatrix(1, 4)}, []int{0}); err == nil {
		t.Error("TextRNN accepted dense input")
	}
	if _, _, err := model.LossAndGrad(Input{Tokens: [][]int{{99}}}, []int{0}); err == nil {
		t.Error("accepted out-of-vocab token")
	}
	if _, _, err := model.LossAndGrad(Input{Tokens: [][]int{{}}}, []int{0}); err == nil {
		t.Error("accepted empty sequence")
	}
	if _, _, err := model.LossAndGrad(Input{Tokens: [][]int{{1}}}, []int{9}); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSGDStep(t *testing.T) {
	opt := NewSGD(0.1, 0, 0)
	params := []float64{1, 1}
	if err := opt.Step(params, []float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(params, []float64{0.9, 1.1}, 1e-12) {
		t.Errorf("params = %v", params)
	}
	if err := opt.Step(params, []float64{1}); err == nil {
		t.Error("accepted mismatched gradient")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt := NewSGD(1, 0.5, 0)
	params := []float64{0}
	grad := []float64{1}
	// v1=1 → p=-1; v2=1.5 → p=-2.5
	opt.Step(params, grad)
	opt.Step(params, grad)
	if math.Abs(params[0]+2.5) > 1e-12 {
		t.Errorf("params after 2 momentum steps = %v, want -2.5", params[0])
	}
	opt.Reset()
	opt2 := NewSGD(1, 0.5, 0)
	p2 := []float64{0}
	opt2.Step(p2, grad)
	if p2[0] != -1 {
		t.Errorf("fresh optimizer first step = %v", p2[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	opt := NewSGD(1, 0, 0.1)
	params := []float64{10}
	opt.Step(params, []float64{0})
	// g = 0 + 0.1*10 = 1 → p = 10 - 1 = 9.
	if math.Abs(params[0]-9) > 1e-12 {
		t.Errorf("weight decay step = %v, want 9", params[0])
	}
}

func TestModelZooShapes(t *testing.T) {
	rng := tensor.NewRNG(11)
	if _, err := NewMLP(rng, 4); err == nil {
		t.Error("NewMLP accepted a single size")
	}
	deep, err := NewDeepImageCNN(rng, 3, 8, 8, 4, 8, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if deep.NumParams() == 0 {
		t.Error("deep CNN has no parameters")
	}
	in := Input{Dense: denseBatch(rng, 2, 192)}
	if _, _, err := deep.LossAndGrad(in, []int{0, 9}); err != nil {
		t.Errorf("deep CNN forward/backward: %v", err)
	}
	if _, err := NewConv2D(rng, 1, 2, 2, 1, 5, 0); err == nil {
		t.Error("Conv2D accepted kernel larger than padded input")
	}
	if _, err := NewMaxPool2D(1, 5, 5, 2); err == nil {
		t.Error("MaxPool2D accepted non-dividing size")
	}
}

func TestLogisticTrainsOnSeparableData(t *testing.T) {
	rng := tensor.NewRNG(12)
	model := NewLogistic(rng, 2, 2)
	opt := NewSGD(0.5, 0.9, 0)
	// Two linearly separable blobs.
	x := tensor.NewMatrix(40, 2)
	labels := make([]int, 40)
	for i := 0; i < 40; i++ {
		cls := i % 2
		offset := -2.0
		if cls == 1 {
			offset = 2.0
		}
		x.Set(i, 0, offset+0.3*rng.NormFloat64())
		x.Set(i, 1, offset+0.3*rng.NormFloat64())
		labels[i] = cls
	}
	in := Input{Dense: x}
	params := model.ParamVector()
	for step := 0; step < 100; step++ {
		if err := model.SetParamVector(params); err != nil {
			t.Fatal(err)
		}
		model.ZeroGrad()
		if _, _, err := model.LossAndGrad(in, labels); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(params, model.GradVector()); err != nil {
			t.Fatal(err)
		}
	}
	if err := model.SetParamVector(params); err != nil {
		t.Fatal(err)
	}
	preds, err := model.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if correct < 38 {
		t.Errorf("logistic regression only classified %d/40 separable points", correct)
	}
}
