package nn

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of a batch of
// logits against integer labels, along with dLoss/dLogits and the number of
// correct argmax predictions. The gradient is already divided by the batch
// size, so downstream layers accumulate a mean gradient.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix, correct int, err error) {
	if logits.Rows == 0 {
		return 0, nil, 0, fmt.Errorf("nn: SoftmaxCrossEntropy on empty batch")
	}
	losses, grad, corrects, err := SoftmaxCrossEntropySegmented(logits, labels, []int{0, logits.Rows})
	if err != nil {
		return 0, nil, 0, err
	}
	return losses[0], grad, corrects[0], nil
}

// SoftmaxCrossEntropySegmented is SoftmaxCrossEntropy over a segmented
// batch: segment s spans logit rows [bounds[s], bounds[s+1]) and gets its
// own mean loss, correct count and per-segment 1/n gradient scaling — as
// if each segment had been a separate batch. Row i's gradient depends only
// on row i and its segment's size, so the result is byte-identical to
// running the unsegmented function per segment.
func SoftmaxCrossEntropySegmented(logits *tensor.Matrix, labels []int, bounds []int) (losses []float64, grad *tensor.Matrix, correct []int, err error) {
	grad = tensor.NewMatrix(logits.Rows, logits.Cols)
	losses, correct, err = softmaxCrossEntropySegmentedInto(grad, logits, labels, bounds)
	if err != nil {
		return nil, nil, nil, err
	}
	return losses, grad, correct, nil
}

// softmaxCrossEntropySegmentedInto is SoftmaxCrossEntropySegmented writing
// the gradient into a caller-provided matrix. Every gradient row is fully
// overwritten, so a stale workspace buffer yields byte-identical results.
func softmaxCrossEntropySegmentedInto(grad, logits *tensor.Matrix, labels []int, bounds []int) (losses []float64, correct []int, err error) {
	if logits.Rows != len(labels) {
		return nil, nil, fmt.Errorf("%w: %d logit rows vs %d labels", ErrShape, logits.Rows, len(labels))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		return nil, nil, fmt.Errorf("%w: loss grad buffer (%d,%d) vs logits (%d,%d)",
			ErrShape, grad.Rows, grad.Cols, logits.Rows, logits.Cols)
	}
	if err := validateBounds(bounds, logits.Rows); err != nil {
		return nil, nil, err
	}
	segs := len(bounds) - 1
	losses = make([]float64, segs)
	correct = make([]int, segs)
	for s := 0; s < segs; s++ {
		invN := 1.0 / float64(bounds[s+1]-bounds[s])
		for i := bounds[s]; i < bounds[s+1]; i++ {
			row := logits.Row(i)
			y := labels[i]
			if y < 0 || y >= logits.Cols {
				return nil, nil, fmt.Errorf("%w: label %d out of [0,%d)", ErrShape, y, logits.Cols)
			}
			// Numerically stable log-softmax.
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(v - maxv)
			}
			logZ := maxv + math.Log(sum)
			losses[s] += (logZ - row[y]) * invN
			gRow := grad.Row(i)
			for c, v := range row {
				p := math.Exp(v - logZ)
				gRow[c] = p * invN
			}
			gRow[y] -= invN
			if Argmax(row) == y {
				correct[s]++
			}
		}
	}
	return losses, correct, nil
}
