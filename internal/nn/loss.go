package nn

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of a batch of
// logits against integer labels, along with dLoss/dLogits and the number of
// correct argmax predictions. The gradient is already divided by the batch
// size, so downstream layers accumulate a mean gradient.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix, correct int, err error) {
	if logits.Rows != len(labels) {
		return 0, nil, 0, fmt.Errorf("%w: %d logit rows vs %d labels", ErrShape, logits.Rows, len(labels))
	}
	if logits.Rows == 0 {
		return 0, nil, 0, fmt.Errorf("nn: SoftmaxCrossEntropy on empty batch")
	}
	grad = tensor.NewMatrix(logits.Rows, logits.Cols)
	invN := 1.0 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			return 0, nil, 0, fmt.Errorf("%w: label %d out of [0,%d)", ErrShape, y, logits.Cols)
		}
		// Numerically stable log-softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logZ := maxv + math.Log(sum)
		loss += (logZ - row[y]) * invN
		gRow := grad.Row(i)
		for c, v := range row {
			p := math.Exp(v - logZ)
			gRow[c] = p * invN
		}
		gRow[y] -= invN
		if Argmax(row) == y {
			correct++
		}
	}
	return loss, grad, correct, nil
}
