package sanitize

import (
	"math"
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"reject", Reject},
		{"clamp", Clamp},
		{"quarantine", Quarantine},
	} {
		got, err := ParsePolicy("-nonfinite-policy", tc.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
		if !got.Valid() {
			t.Fatalf("Policy %v not Valid()", got)
		}
	}
}

func TestParsePolicyRejectsUnknownNamingFlag(t *testing.T) {
	_, err := ParsePolicy("-nonfinite-policy", "ignore")
	if err == nil {
		t.Fatal("ParsePolicy accepted unknown value")
	}
	if want := "-nonfinite-policy"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the flag %q", err, want)
	}
}

func TestScreenClean(t *testing.T) {
	g := []float64{1, -2, 0.5}
	for _, p := range []Policy{Reject, Clamp, Quarantine} {
		if v := Screen(g, p); v != Clean {
			t.Fatalf("Screen(finite, %v) = %v, want Clean", p, v)
		}
	}
}

func TestScreenReject(t *testing.T) {
	g := []float64{1, math.NaN(), 3}
	if v := Screen(g, Reject); v != Rejected {
		t.Fatalf("Screen = %v, want Rejected", v)
	}
	if !math.IsNaN(g[1]) {
		t.Fatal("Reject must not mutate the gradient")
	}
}

func TestScreenClampRepairs(t *testing.T) {
	g := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2}
	if v := Screen(g, Clamp); v != Clamped {
		t.Fatalf("Screen = %v, want Clamped", v)
	}
	want := []float64{0, ClampLimit, -ClampLimit, 2}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("g[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestScreenQuarantine(t *testing.T) {
	g := []float64{math.Inf(1)}
	if v := Screen(g, Quarantine); v != Quarantined {
		t.Fatalf("Screen = %v, want Quarantined", v)
	}
	if !math.IsInf(g[0], 1) {
		t.Fatal("Quarantine must not mutate the gradient")
	}
}

// Unknown (zero) policy behaves as Reject — the fail-safe direction.
func TestScreenZeroPolicyRejects(t *testing.T) {
	if v := Screen([]float64{math.NaN()}, 0); v != Rejected {
		t.Fatalf("Screen with zero policy = %v, want Rejected", v)
	}
}
