// Package sanitize is the hostile-input validation vocabulary of the
// serving and simulation layers: a fast finiteness check over submitted
// gradient vectors with a configurable disposition policy. A single
// Byzantine client can ship NaN or ±Inf coordinates for free — the cheapest
// real-world poisoning attack — and a value that reaches the aggregation
// kernels poisons norms, pairwise distances and clustering inertia
// downstream. Every ingest surface (the async serving path, the `/asyncfl/v1`
// decode path, the synchronous round pipeline) screens through this package
// so the policy names, semantics and counters stay consistent across the
// stack.
package sanitize

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// Policy selects what happens to a gradient carrying NaN or ±Inf
// coordinates. The zero value is not a valid policy; ingest surfaces choose
// their own default (the serving layer rejects, the simulation pipeline
// keeps its historical diverged-run semantics).
type Policy int

const (
	// Reject refuses the whole update: the submitter is told, nothing
	// enters the buffer. The safe default for untrusted ingest.
	Reject Policy = iota + 1
	// Clamp repairs the vector in place: NaN becomes 0, ±Inf saturates to
	// ±ClampLimit. The update then proceeds as if it had been finite —
	// useful when dropping a whole gradient over one flipped bit is too
	// aggressive.
	Clamp
	// Quarantine accepts the update for accounting but withholds it from
	// aggregation — the operator sees who sends garbage without the
	// garbage touching the model.
	Quarantine
)

// ClampLimit is the saturation magnitude the Clamp policy substitutes for
// ±Inf. It is far inside the range where squared pairwise distances stay
// finite (see fl.gradientHealthy's 1e140 bound).
const ClampLimit = 1e100

// String returns the canonical flag-value spelling of the policy.
func (p Policy) String() string {
	switch p {
	case Reject:
		return "reject"
	case Clamp:
		return "clamp"
	case Quarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Valid reports whether p is one of the declared policies.
func (p Policy) Valid() bool {
	return p == Reject || p == Clamp || p == Quarantine
}

// PolicyNames lists the canonical policy spellings, for flag usage strings.
func PolicyNames() []string {
	return []string{Reject.String(), Clamp.String(), Quarantine.String()}
}

// ParsePolicy maps a flag value to its Policy. The error names the
// offending flag verbatim, following the cliutil error contract.
func ParsePolicy(flag, s string) (Policy, error) {
	switch s {
	case "reject":
		return Reject, nil
	case "clamp":
		return Clamp, nil
	case "quarantine":
		return Quarantine, nil
	default:
		return 0, fmt.Errorf("%s: unknown policy %q (want reject|clamp|quarantine)", flag, s)
	}
}

// Verdict is the outcome of screening one gradient.
type Verdict int

const (
	// Clean: the gradient was finite; no policy applied.
	Clean Verdict = iota
	// Rejected: the gradient carried non-finite values and the policy
	// refuses it.
	Rejected
	// Clamped: non-finite coordinates were repaired in place; the gradient
	// may now be used.
	Clamped
	// Quarantined: the gradient is accepted for accounting but must not be
	// aggregated.
	Quarantined
)

// Screen checks g for non-finite coordinates and applies the policy. Clamp
// mutates g in place (callers on ingest paths screen their own copy, never
// a caller-owned slice). A finite gradient always returns Clean regardless
// of policy.
func Screen(g []float64, p Policy) Verdict {
	if tensor.AllFinite(g) {
		return Clean
	}
	switch p {
	case Clamp:
		clampInPlace(g)
		return Clamped
	case Quarantine:
		return Quarantined
	default:
		return Rejected
	}
}

// clampInPlace repairs non-finite coordinates: NaN → 0 (no directional
// information survives a NaN), ±Inf → ±ClampLimit (the direction is kept,
// the magnitude saturates).
func clampInPlace(g []float64) {
	for i, x := range g {
		switch {
		case math.IsNaN(x):
			g[i] = 0
		case math.IsInf(x, 1):
			g[i] = ClampLimit
		case math.IsInf(x, -1):
			g[i] = -ClampLimit
		}
	}
}
