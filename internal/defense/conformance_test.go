package defense_test

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/conformance"
	"github.com/signguard/signguard/internal/defense"
)

// TestDefenseConformance runs the registry-wide contract over every builtin
// defense: byte-identical aggregation for any worker count, finite-or-error
// behavior on hostile buffers, and CLI-compatible hyperparameter
// declarations with undeclared names rejected.
func TestDefenseConformance(t *testing.T) {
	reg := defense.Builtin()
	for _, name := range reg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := conformance.CheckDefenseWorkerDeterminism(reg, name, 11); err != nil {
				t.Errorf("worker determinism: %v", err)
			}
			if err := conformance.CheckDefenseHostileInputs(reg, name, 13); err != nil {
				t.Errorf("hostile inputs: %v", err)
			}
			if err := conformance.CheckDefenseHyperDeclaration(reg, name); err != nil {
				t.Errorf("hyper declaration: %v", err)
			}
		})
	}
}

// workerLeaky violates the determinism contract on purpose: its aggregate
// depends on the worker count.
type workerLeaky struct{ workers int }

func (r *workerLeaky) Name() string     { return "Leaky" }
func (r *workerLeaky) SetWorkers(n int) { r.workers = n }

func (r *workerLeaky) Aggregate(grads [][]float64) (*aggregate.Result, error) {
	g := make([]float64, len(grads[0]))
	g[0] = float64(r.workers)
	return &aggregate.Result{Gradient: g}, nil
}

// TestConformanceCatchesWorkerNondeterminism is the test of the test: a
// rule whose output leaks its worker count must fail the determinism check.
func TestConformanceCatchesWorkerNondeterminism(t *testing.T) {
	reg := defense.NewRegistry()
	if err := reg.Register(defense.Spec{Name: "Leaky", Build: func(defense.Params) (aggregate.Rule, error) {
		return &workerLeaky{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	err := conformance.CheckDefenseWorkerDeterminism(reg, "Leaky", 11)
	if err == nil {
		t.Fatal("worker-dependent rule passed the determinism check")
	}
	if !strings.Contains(err.Error(), "workers") {
		t.Errorf("unhelpful determinism error: %v", err)
	}
}

// TestConformanceCatchesHyperViolations is the test of the test: a declared
// hyperparameter name that cannot survive the CLI's key=value,key=value
// syntax must fail the declaration check.
func TestConformanceCatchesHyperViolations(t *testing.T) {
	mean := func(defense.Params) (aggregate.Rule, error) { return aggregate.NewMean(), nil }
	for _, bad := range []string{"no=equals", "no,commas", ""} {
		reg := defense.NewRegistry()
		if err := reg.Register(defense.Spec{Name: "Bad", Hyper: []string{bad}, Build: mean}); err != nil {
			t.Fatal(err)
		}
		if err := conformance.CheckDefenseHyperDeclaration(reg, "Bad"); err == nil {
			t.Errorf("hyper name %q passed the declaration check", bad)
		}
	}
}
