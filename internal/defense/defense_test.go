package defense

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/tensor"
)

func TestBuiltinNamesOrder(t *testing.T) {
	want := []string{
		"Mean", "TrMean", "Median", "GeoMed", "Multi-Krum", "Bulyan",
		"DnC", "SignGuard", "SignGuard-Sim", "SignGuard-Dist",
		"FLTrust", "FLAME", "MoM",
	}
	got := Builtin().Names()
	if len(got) != len(want) {
		t.Fatalf("Builtin has %d defenses, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBuiltinConstructorsBuildAndAggregate(t *testing.T) {
	reg := Builtin()
	rng := tensor.NewRNG(3)
	grads := make([][]float64, 12)
	for i := range grads {
		grads[i] = tensor.RandNormal(rng, 40, 0, 1)
	}
	for _, name := range reg.Names() {
		rule, err := reg.Build(name, Params{N: 12, F: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if rule.Name() != name {
			t.Errorf("%s: rule reports name %q", name, rule.Name())
		}
		if sl, ok := aggregate.Unwrap(rule).(aggregate.ServerLearner); ok {
			// Server-learning rules aggregate against a root-data reference
			// gradient the engine installs each round.
			sl.SetServerGradient(grads[0])
		}
		res, err := rule.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s: aggregate: %v", name, err)
		}
		if len(res.Gradient) != 40 {
			t.Errorf("%s: aggregate dimension %d", name, len(res.Gradient))
		}
	}
}

func TestBuildUnknownDefense(t *testing.T) {
	if _, err := Builtin().Build("NoSuchDefense", Params{N: 10, F: 2}); err == nil {
		t.Fatal("unknown defense accepted")
	}
}

func TestBuildRejectsUndeclaredHyper(t *testing.T) {
	_, err := Builtin().Build("Mean", Params{N: 10, F: 2, Hyper: map[string]float64{"coord_fraction": 0.5}})
	if err == nil || !strings.Contains(err.Error(), "coord_fraction") {
		t.Fatalf("undeclared hyperparameter not rejected: %v", err)
	}
	// Typo on a defense that does declare hypers.
	_, err = Builtin().Build("SignGuard", Params{N: 10, F: 2, Hyper: map[string]float64{"coordfraction": 0.5}})
	if err == nil {
		t.Fatal("misspelled hyperparameter accepted")
	}
}

func TestSignGuardHyperApplied(t *testing.T) {
	rule, err := Builtin().Build("SignGuard", Params{
		N: 10, F: 2, Seed: 9,
		Hyper: map[string]float64{"coord_fraction": 0.37, "upper_bound": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := aggregate.Unwrap(rule).(*core.SignGuard); !ok {
		t.Fatalf("SignGuard entry built a %T", aggregate.Unwrap(rule))
	}
	// An out-of-range hyperparameter must surface the core validation.
	if _, err := Builtin().Build("SignGuard", Params{
		N: 10, F: 2, Hyper: map[string]float64{"coord_fraction": 1.5},
	}); err == nil {
		t.Fatal("coord_fraction 1.5 accepted")
	}
}

func TestDnCHyperApplied(t *testing.T) {
	rule, err := Builtin().Build("DnC", Params{N: 10, F: 2, Seed: 4, Hyper: map[string]float64{"subdim": 123}})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := aggregate.Unwrap(rule).(*aggregate.DnC)
	if !ok {
		t.Fatalf("DnC entry built a %T", aggregate.Unwrap(rule))
	}
	if d.SubDim != 123 {
		t.Errorf("SubDim = %d, want 123", d.SubDim)
	}
	// Default preserved when the hyperparameter is absent.
	rule, err = Builtin().Build("DnC", Params{N: 10, F: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := aggregate.Unwrap(rule).(*aggregate.DnC); d.SubDim != 2000 {
		t.Errorf("default SubDim = %d, want 2000", d.SubDim)
	}
}

func TestKrumBulyanCapAssumedF(t *testing.T) {
	// n=8, f=4 violates both rules' preconditions; the builders must cap.
	reg := Builtin()
	rng := tensor.NewRNG(8)
	grads := make([][]float64, 8)
	for i := range grads {
		grads[i] = tensor.RandNormal(rng, 10, 0, 1)
	}
	for _, name := range []string{"Multi-Krum", "Bulyan"} {
		rule, err := reg.Build(name, Params{N: 8, F: 4, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := rule.Aggregate(grads); err != nil {
			t.Errorf("%s with capped f failed: %v", name, err)
		}
	}
}

func TestRegisterReplacesKeepingOrder(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{Name: "A", Build: func(Params) (aggregate.Rule, error) { return aggregate.NewMean(), nil }}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "B", Build: func(Params) (aggregate.Rule, error) { return aggregate.NewMean(), nil }}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "A", Build: func(Params) (aggregate.Rule, error) { return aggregate.NewMedian(), nil }}); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("order after re-register: %v", names)
	}
	rule, err := r.Build("A", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rule.Name() != "Median" {
		t.Errorf("re-registered spec not used: built %s", rule.Name())
	}
	if err := r.Register(Spec{Name: "", Build: nil}); err == nil {
		t.Error("empty spec accepted")
	}
}
