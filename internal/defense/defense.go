// Package defense is the unified defense registry of the reproduction: one
// catalog mapping defense names to constructors with typed hyperparameters,
// covering the paper's own SignGuard variants (internal/core) and every
// baseline gradient aggregation rule (internal/aggregate).
//
// Before this package, SignGuard reached the engine only by masquerading as
// an aggregate.Rule through ad-hoc closure tables in internal/experiments.
// Now a single Registry is consumed uniformly by the campaign engine, the
// experiments harness and both CLIs, and defense hyperparameters
// (SignGuard's coordinate fraction, DnC's subsampling dimension, ...) are
// plain named values — which makes hyperparameter sweeps ordinary grid
// axes.
package defense

import (
	"fmt"
	"sort"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/core"
)

// Params is the typed constructor input of every defense: the cohort
// geometry the paper grants the baselines plus optional named
// hyperparameters.
type Params struct {
	// N is the number of gradients submitted per round, F the Byzantine
	// count granted to the baselines (SignGuard ignores it).
	N, F int
	// Seed drives any randomness inside the defense.
	Seed int64
	// Hyper holds optional defense-specific hyperparameters by name.
	// Absent keys fall back to the defense's default; unknown keys are
	// rejected by Registry.Build so a typo cannot silently run defaults.
	Hyper map[string]float64
}

// hyper returns the named hyperparameter or def when absent.
func (p Params) hyper(name string, def float64) float64 {
	if v, ok := p.Hyper[name]; ok {
		return v
	}
	return def
}

// Spec declares one registered defense.
type Spec struct {
	// Name is the stable registry key (the paper's table row label).
	Name string
	// Hyper lists the hyperparameter names the constructor accepts.
	Hyper []string
	// Build constructs a fresh instance for one training run.
	Build func(p Params) (aggregate.Rule, error)
}

// Registry is an ordered name → defense catalog. The zero value is
// unusable; use NewRegistry or Builtin.
type Registry struct {
	order []string
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]Spec{}}
}

// Register adds a defense spec. Re-registering a name replaces the spec
// but keeps its original position, so presentation order stays stable.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("defense: spec with empty name")
	}
	if s.Build == nil {
		return fmt.Errorf("defense: %s has no constructor", s.Name)
	}
	if _, ok := r.specs[s.Name]; !ok {
		r.order = append(r.order, s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// mustRegister is Register for the package's own statically-valid specs.
func (r *Registry) mustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Names returns the registered defense names in registration order (the
// paper's Table I row order for Builtin).
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.specs[name]
	return ok
}

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("defense: unknown defense %q", name)
	}
	return s, nil
}

// Specs returns the registered specs in registration order — the listing
// surface behind `campaign rules`, shared with the codec registry.
func (r *Registry) Specs() []Spec {
	out := make([]Spec, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.specs[name])
	}
	return out
}

// Build constructs the named defense. Hyperparameter keys not declared by
// the spec are an error: a sweep axis that silently fell back to defaults
// would corrupt a whole grid.
//
// Every built rule is wrapped in an aggregate.FiniteGuard: whatever a
// defense does with a hostile buffer, a non-finite aggregate surfaces as an
// error (wrapping aggregate.ErrNonFiniteAggregate) instead of poisoning the
// model. Callers needing the concrete rule type unwrap with
// aggregate.Unwrap.
func (r *Registry) Build(name string, p Params) (aggregate.Rule, error) {
	s, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := checkHyper(s, p.Hyper); err != nil {
		return nil, err
	}
	rule, err := s.Build(p)
	if err != nil {
		return nil, err
	}
	return aggregate.Guard(rule), nil
}

// ValidateHyper checks that name is registered and accepts every given
// hyperparameter, without building anything — the pre-flight check grid
// validation runs before a sweep starts.
func (r *Registry) ValidateHyper(name string, hyper map[string]float64) error {
	s, err := r.Lookup(name)
	if err != nil {
		return err
	}
	return checkHyper(s, hyper)
}

// checkHyper rejects hyperparameter names the spec does not declare.
func checkHyper(s Spec, hyper map[string]float64) error {
	if len(hyper) == 0 {
		return nil
	}
	declared := map[string]bool{}
	for _, h := range s.Hyper {
		declared[h] = true
	}
	var bad []string
	for k := range hyper {
		if !declared[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("defense: %s does not accept hyperparameter(s) %v (accepts %v)", s.Name, bad, s.Hyper)
	}
	return nil
}

// signGuardConfig assembles a core.Config from Params and the shared
// SignGuard hyperparameters.
func signGuardConfig(p Params, sim core.Similarity) core.Config {
	cfg := core.DefaultConfig()
	cfg.Similarity = sim
	cfg.Seed = p.Seed
	cfg.CoordFraction = p.hyper("coord_fraction", cfg.CoordFraction)
	cfg.LowerBound = p.hyper("lower_bound", cfg.LowerBound)
	cfg.UpperBound = p.hyper("upper_bound", cfg.UpperBound)
	return cfg
}

// signGuardHyper is the hyperparameter set shared by the three SignGuard
// variants.
var signGuardHyper = []string{"coord_fraction", "lower_bound", "upper_bound"}

// Builtin returns the registry of the paper's ten Table I defenses, in row
// order, followed by the related-work families beyond the paper's table:
// FLTrust server learning, FLAME-style clustering and the median-of-means
// neighborhood filter. Callers may extend the returned registry freely
// (e.g. the Table III ablation variants); each call returns a fresh copy.
func Builtin() *Registry {
	r := NewRegistry()
	r.mustRegister(Spec{Name: "Mean", Build: func(Params) (aggregate.Rule, error) {
		return aggregate.NewMean(), nil
	}})
	r.mustRegister(Spec{Name: "TrMean", Hyper: []string{"trim"}, Build: func(p Params) (aggregate.Rule, error) {
		return aggregate.NewTrimmedMean(int(p.hyper("trim", float64(p.F)))), nil
	}})
	r.mustRegister(Spec{Name: "Median", Build: func(Params) (aggregate.Rule, error) {
		return aggregate.NewMedian(), nil
	}})
	r.mustRegister(Spec{Name: "GeoMed", Build: func(Params) (aggregate.Rule, error) {
		return aggregate.NewGeoMed(), nil
	}})
	r.mustRegister(Spec{Name: "Multi-Krum", Build: func(p Params) (aggregate.Rule, error) {
		// Krum needs n >= 2F+3; cap the assumed F for small cohorts with
		// large Byzantine fractions, as implementations do.
		f := p.F
		if maxF := (p.N - 3) / 2; f > maxF {
			f = maxF
		}
		if f < 0 {
			f = 0
		}
		return aggregate.NewMultiKrum(f, p.N-f), nil
	}})
	r.mustRegister(Spec{Name: "Bulyan", Build: func(p Params) (aggregate.Rule, error) {
		// Bulyan requires n >= 4f+2; cap the assumed f like the original
		// implementation does for large Byzantine fractions.
		f := p.F
		if maxF := (p.N - 2) / 4; f > maxF {
			f = maxF
		}
		return aggregate.NewBulyan(f), nil
	}})
	r.mustRegister(Spec{Name: "DnC", Hyper: []string{"subdim", "niters"}, Build: func(p Params) (aggregate.Rule, error) {
		d := aggregate.NewDnC(p.F, p.Seed)
		// Subsample fewer coordinates than the reference default: our
		// models are orders of magnitude smaller than ResNet-18, and the
		// sweep budget is dominated by the power iteration.
		d.SubDim = int(p.hyper("subdim", 2000))
		d.NIters = int(p.hyper("niters", float64(d.NIters)))
		return d, nil
	}})
	r.mustRegister(Spec{Name: "SignGuard", Hyper: signGuardHyper, Build: func(p Params) (aggregate.Rule, error) {
		return core.New(signGuardConfig(p, core.NoSimilarity))
	}})
	r.mustRegister(Spec{Name: "SignGuard-Sim", Hyper: signGuardHyper, Build: func(p Params) (aggregate.Rule, error) {
		return core.New(signGuardConfig(p, core.CosineSimilarity))
	}})
	r.mustRegister(Spec{Name: "SignGuard-Dist", Hyper: signGuardHyper, Build: func(p Params) (aggregate.Rule, error) {
		return core.New(signGuardConfig(p, core.DistanceSimilarity))
	}})
	r.mustRegister(Spec{Name: "FLTrust", Hyper: []string{"root_size", "clip"}, Build: func(p Params) (aggregate.Rule, error) {
		root := int(p.hyper("root_size", 100))
		if root < 1 {
			return nil, fmt.Errorf("defense: FLTrust root_size %d must be >= 1", root)
		}
		clip := p.hyper("clip", 0)
		if clip < 0 || clip >= 1 {
			return nil, fmt.Errorf("defense: FLTrust clip %v out of [0, 1)", clip)
		}
		return aggregate.NewFLTrust(root, clip), nil
	}})
	r.mustRegister(Spec{Name: "FLAME", Hyper: []string{"clusters", "sigma"}, Build: func(p Params) (aggregate.Rule, error) {
		k := int(p.hyper("clusters", 2))
		if k < 1 {
			return nil, fmt.Errorf("defense: FLAME clusters %d must be >= 1", k)
		}
		sigma := p.hyper("sigma", 0)
		if sigma < 0 {
			return nil, fmt.Errorf("defense: FLAME sigma %v must be >= 0", sigma)
		}
		return aggregate.NewFLAME(k, sigma, p.Seed), nil
	}})
	r.mustRegister(Spec{Name: "MoM", Hyper: []string{"radius"}, Build: func(p Params) (aggregate.Rule, error) {
		radius := p.hyper("radius", 0)
		if radius < 0 {
			return nil, fmt.Errorf("defense: MoM radius %v must be >= 0 (0 = median pairwise distance)", radius)
		}
		return aggregate.NewMedianOfMeans(radius), nil
	}})
	return r
}
