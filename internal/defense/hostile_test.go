package defense

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/tensor"
)

// hostileBuffers enumerates the non-finite corruption shapes a Byzantine
// client can ship: one NaN coordinate, a fully-NaN vector, ±Inf spikes, a
// majority-hostile cohort, and an all-hostile buffer.
func hostileBuffers(n, d int) map[string][][]float64 {
	fresh := func(seed int64) [][]float64 {
		rng := tensor.NewRNG(seed)
		grads := make([][]float64, n)
		for i := range grads {
			grads[i] = tensor.RandNormal(rng, d, 0, 1)
		}
		return grads
	}
	bufs := map[string][][]float64{}

	b := fresh(1)
	b[0][d/2] = math.NaN()
	bufs["one-nan-coord"] = b

	b = fresh(2)
	for j := range b[1] {
		b[1][j] = math.NaN()
	}
	bufs["full-nan-vector"] = b

	b = fresh(3)
	b[2][0] = math.Inf(1)
	b[3][d-1] = math.Inf(-1)
	bufs["inf-spikes"] = b

	b = fresh(4)
	for i := 0; i < n/2+1; i++ {
		for j := 0; j < d; j += 3 {
			b[i][j] = math.NaN()
		}
	}
	bufs["majority-sparse-nan"] = b

	b = fresh(5)
	for i := range b {
		for j := range b[i] {
			b[i][j] = math.Inf(1 - 2*(j%2))
		}
	}
	bufs["all-inf"] = b

	return bufs
}

// The acceptance-criteria property: every registered defense, fed a hostile
// buffer, either returns an error or a fully finite aggregate — never a
// panic, never NaN folded into the model.
func TestEveryDefenseFiniteOrErrorOnHostileBuffers(t *testing.T) {
	const n, d = 12, 48
	reg := Builtin()
	for _, name := range reg.Names() {
		for shape, grads := range hostileBuffers(n, d) {
			rule, err := reg.Build(name, Params{N: n, F: 2, Seed: 7})
			if err != nil {
				t.Fatalf("%s: build: %v", name, err)
			}
			res, err := func() (res *aggregate.Result, err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s on %s: panicked: %v", name, shape, r)
					}
				}()
				return rule.Aggregate(grads)
			}()
			if err != nil {
				continue // refusing the buffer satisfies the property
			}
			if res == nil {
				t.Fatalf("%s on %s: nil result with nil error", name, shape)
			}
			if !tensor.AllFinite(res.Gradient) {
				t.Errorf("%s on %s: non-finite aggregate", name, shape)
			}
		}
	}
}

// The guard is load-bearing, not decorative: a rule that emits NaN must be
// converted into ErrNonFiniteAggregate by the registry wrapper.
func TestRegistryGuardsRuleOutput(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{Name: "evil", Build: func(Params) (aggregate.Rule, error) {
		return nanRule{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	rule, err := r.Build("evil", Params{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rule.Aggregate([][]float64{{1, 2}})
	if !errors.Is(err, aggregate.ErrNonFiniteAggregate) {
		t.Fatalf("guard let a NaN aggregate through: err=%v", err)
	}
}

type nanRule struct{}

func (nanRule) Name() string { return "evil" }
func (nanRule) Aggregate(grads [][]float64) (*aggregate.Result, error) {
	return &aggregate.Result{Gradient: []float64{math.NaN()}}, nil
}

// FuzzDefenseAggregate drives arbitrary bit patterns — hostile floats
// included — through every registered defense and asserts the same
// finite-or-error property the deterministic test pins.
func FuzzDefenseAggregate(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	seedBuf := make([]byte, 6*4*8)
	f.Add(seedBuf, uint8(7))
	nan := make([]byte, 8*4*8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan, uint8(2))
	names := Builtin().Names()
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		const d = 4
		vals := len(data) / 8
		n := vals / d
		if n < 1 {
			return
		}
		if n > 24 {
			n = 24 // bound the O(n²·d) rules per exec
		}
		grads := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				off := (i*d + j) * 8
				row[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			}
			grads[i] = row
		}
		name := names[int(which)%len(names)]
		rule, err := Builtin().Build(name, Params{N: n, F: n / 4, Seed: 11})
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		res, err := rule.Aggregate(grads)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatalf("%s: nil result with nil error", name)
		}
		if !tensor.AllFinite(res.Gradient) {
			t.Fatalf("%s: non-finite aggregate from fuzz buffer", name)
		}
	})
}
