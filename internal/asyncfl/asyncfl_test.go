package asyncfl

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/tensor"
)

// --- staleness weighting edge cases ---------------------------------------

func TestWeightFresh(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 3} {
		if w := Weight(0, alpha); w != 1 {
			t.Errorf("Weight(0, %v) = %v, want exactly 1", alpha, w)
		}
	}
}

func TestWeightAlphaZeroIsUniform(t *testing.T) {
	for _, s := range []int{0, 1, 7, 1000} {
		if w := Weight(s, 0); w != 1 {
			t.Errorf("Weight(%d, 0) = %v, want exactly 1", s, w)
		}
	}
}

func TestWeightVeryStaleVanishes(t *testing.T) {
	prev := math.Inf(1)
	for _, s := range []int{1, 10, 100, 10000, 1 << 30} {
		w := Weight(s, 1.5)
		if w <= 0 || w >= 1 {
			t.Fatalf("Weight(%d, 1.5) = %v, want in (0, 1)", s, w)
		}
		if w >= prev {
			t.Fatalf("Weight not monotonically decreasing at s=%d: %v >= %v", s, w, prev)
		}
		prev = w
	}
	if w := Weight(1<<30, 1.5); w > 1e-12 {
		t.Errorf("very stale weight %v, want ~0", w)
	}
}

func TestWeightedMergeAlphaZeroIsPlainMean(t *testing.T) {
	rng := tensor.NewRNG(7)
	grads := make([][]float64, 5)
	stale := make([]int, 5)
	for i := range grads {
		grads[i] = tensor.RandNormal(rng, 16, 0, 1)
		stale[i] = i * 3 // staleness must be irrelevant at alpha = 0
	}
	got, err := WeightedMerge(grads, stale, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The reference mean accumulates in the same order with the same
	// normalization (sum of unit weights), so equality is bitwise.
	want := make([]float64, 16)
	for _, g := range grads {
		for j, v := range g {
			want[j] += v
		}
	}
	for j := range want {
		want[j] *= 1.0 / 5.0
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("coordinate %d: got %v want %v (not byte-identical)", j, got[j], want[j])
		}
	}
}

func TestWeightedMergeDiscountsStale(t *testing.T) {
	// One fresh gradient pointing at +1, one very stale at -1: the merge
	// must land near +1, not near 0.
	grads := [][]float64{{1}, {-1}}
	got, err := WeightedMerge(grads, []int{0, 1000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 0.99 {
		t.Fatalf("stale gradient dominated the merge: %v", got[0])
	}
}

func TestWeightedMergeErrors(t *testing.T) {
	if _, err := WeightedMerge(nil, nil, 1); err == nil {
		t.Error("empty buffer: want error")
	}
	if _, err := WeightedMerge([][]float64{{1}}, []int{0, 1}, 1); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := WeightedMerge([][]float64{{1}, {1, 2}}, []int{0, 0}, 1); err == nil {
		t.Error("dim mismatch: want error")
	}
}

// --- aggregator core -------------------------------------------------------

func testConfig(dim, k int) Config {
	return Config{
		InitialParams: make([]float64, dim),
		K:             k,
		Alpha:         0.5,
		LR:            0.1,
		SessionTTL:    -1, // no expiry unless the test wants it
	}
}

func TestStepEveryKArrivals(t *testing.T) {
	cfg := testConfig(4, 3)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := []float64{1, 1, 1, 1}
	for i := 0; i < 2; i++ {
		res, err := a.Submit(Update{Client: fmt.Sprintf("c%d", i), Version: 0, Grad: g})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted || res.Stepped {
			t.Fatalf("arrival %d: res = %+v, want accepted without step", i, res)
		}
	}
	res, err := a.Submit(Update{Client: "c2", Version: 0, Grad: g})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stepped || res.Version != 1 {
		t.Fatalf("third arrival: res = %+v, want Stepped at version 1", res)
	}
	st := a.Stats()
	if st.Steps != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v, want 1 step, empty buffer", st)
	}
	hist := a.History()
	if len(hist) != 1 || hist[0].Buffer != 3 || hist[0].Kept != 3 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestAlphaZeroStepIsPlainBufferedMean(t *testing.T) {
	dim := 8
	cfg := testConfig(dim, 4)
	cfg.Alpha = 0
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	grads := make([][]float64, 4)
	for i := range grads {
		grads[i] = tensor.RandNormal(rng, dim, 0, 1)
		if _, err := a.Submit(Update{Client: fmt.Sprintf("c%d", i), Version: 0, Grad: grads[i]}); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := WeightedMerge(grads, make([]int, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, dim)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	if err := opt.Step(want, mean); err != nil {
		t.Fatal(err)
	}
	_, got, _ := a.Model()
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("coordinate %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestDropOldestAndBackpressure(t *testing.T) {
	cfg := testConfig(1, 100) // K high: no steps interfere
	cfg.QueueCap = 2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := a.Submit(Update{Client: "c", Version: 0, Grad: []float64{1}})
	if r1.Dropped || !r1.Accepted {
		t.Fatalf("first submit: %+v", r1)
	}
	r2, _ := a.Submit(Update{Client: "c", Version: 0, Grad: []float64{2}})
	if !r2.Backpressure {
		t.Fatalf("queue at cap should signal backpressure: %+v", r2)
	}
	r3, _ := a.Submit(Update{Client: "c", Version: 0, Grad: []float64{3}})
	if !r3.Dropped || !r3.Backpressure || !r3.Accepted {
		t.Fatalf("overflow should drop-oldest and stay accepted: %+v", r3)
	}
	st := a.Stats()
	if st.Drops != 1 || st.Buffered != 2 {
		t.Fatalf("stats = %+v, want 1 drop, 2 buffered", st)
	}
}

func TestRejectsFutureAndTooStale(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.MaxStaleness = 3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Submit(Update{Client: "c", Version: 5, Grad: []float64{1}})
	if err != nil || res.Accepted {
		t.Fatalf("future-versioned update must be refused: %+v, %v", res, err)
	}
	// Run steps until version 4 so staleness of a version-0 update is 4 > 3.
	for v := 0; v < 4; v++ {
		for i := 0; i < 2; i++ {
			if _, err := a.Submit(Update{Client: fmt.Sprintf("h%d", i), Version: v, Grad: []float64{1}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err = a.Submit(Update{Client: "c", Version: 0, Grad: []float64{1}})
	if err != nil || !res.TooStale || res.Accepted {
		t.Fatalf("staleness 4 > MaxStaleness 3 must be refused: %+v, %v", res, err)
	}
	if st := a.Stats(); st.Rejects != 2 {
		t.Fatalf("stats = %+v, want 2 rejects", st)
	}
}

func TestGradientDimMismatch(t *testing.T) {
	a, err := New(testConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(Update{Client: "c", Grad: []float64{1}}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestTargetStepsDone(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.TargetSteps = 2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Submit(Update{Client: "c", Version: i, Grad: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-a.Done():
	default:
		t.Fatal("Done channel not closed after TargetSteps")
	}
	res, err := a.Submit(Update{Client: "c", Version: 2, Grad: []float64{1}})
	if err != nil || res.Accepted || !res.Done {
		t.Fatalf("submit after done: %+v, %v", res, err)
	}
}

func TestSelectingDefenseFiltersBuffer(t *testing.T) {
	// Krum over a 5-update buffer with one wild outlier: the outlier must
	// not survive into the staleness-weighted merge.
	dim := 8
	cfg := testConfig(dim, 5)
	cfg.Rule = aggregate.NewMultiKrum(1, 3)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	for i := 0; i < 4; i++ {
		g := tensor.RandNormal(rng, dim, 1, 0.01)
		if _, err := a.Submit(Update{Client: fmt.Sprintf("h%d", i), Version: 0, Grad: g}); err != nil {
			t.Fatal(err)
		}
	}
	evil := make([]float64, dim)
	for j := range evil {
		evil[j] = -1e6
	}
	if _, err := a.Submit(Update{Client: "byz", Version: 0, Grad: evil}); err != nil {
		t.Fatal(err)
	}
	hist := a.History()
	if len(hist) != 1 || hist[0].Kept >= hist[0].Buffer {
		t.Fatalf("history = %+v, want a filtered step", hist)
	}
	_, params, _ := a.Model()
	for j, p := range params {
		// An SGD step against a ~+1 mean gradient moves params negative;
		// the 1e6 outlier surviving would fling them hugely positive.
		if p > 0.5 || p < -0.5 {
			t.Fatalf("param %d = %v, outlier reached the model", j, p)
		}
	}
}

func TestCoordinatewiseDefenseUsesOwnAggregate(t *testing.T) {
	// Median yields no Selected set; the step must use its aggregate
	// directly (staleness weighting inapplicable).
	cfg := testConfig(1, 3)
	cfg.Rule = aggregate.NewMedian()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1, 100, 2} {
		if _, err := a.Submit(Update{Client: fmt.Sprintf("c%d", i), Version: 0, Grad: []float64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	_, params, _ := a.Model()
	want := -cfg.LR * 2 // median of {1, 100, 2}
	if math.Abs(params[0]-want) > 1e-12 {
		t.Fatalf("params = %v, want %v (median step)", params[0], want)
	}
}

func TestSessionExpiryPurgesQueue(t *testing.T) {
	clock := time.Unix(0, 0)
	cfg := testConfig(1, 100)
	cfg.SessionTTL = time.Minute
	cfg.Now = func() time.Time { return clock }
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Submit(Update{Client: "ghost", Version: 0, Grad: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := a.Submit(Update{Client: "live", Version: 0, Grad: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.PurgedUpdates != 3 || st.Buffered != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want ghost's 3 updates purged", st)
	}
}

func TestHeartbeatKeepsSessionAlive(t *testing.T) {
	clock := time.Unix(0, 0)
	cfg := testConfig(1, 100)
	cfg.SessionTTL = time.Minute
	cfg.Now = func() time.Time { return clock }
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(Update{Client: "c", Version: 0, Grad: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clock = clock.Add(30 * time.Second)
		a.Heartbeat("c")
	}
	if st := a.Stats(); st.Expired != 0 || st.Buffered != 1 {
		t.Fatalf("stats = %+v, heartbeats should have kept the session", st)
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(2, 2)
	cases := []func(*Config){
		func(c *Config) { c.InitialParams = nil },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.QueueCap = -1 },
		func(c *Config) { c.MaxStaleness = -1 },
		func(c *Config) { c.ReorderWindow = -1 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// --- deterministic mode: byte-identical across interleavings ---------------

// buildSchedule returns a fixed seeded arrival schedule: updates carry
// dense Seq positions, all computed against version 0 (their staleness
// grows as steps land between them).
func buildSchedule(n, dim, clients int, seed int64) []Update {
	rng := tensor.NewRNG(seed)
	sched := make([]Update, n)
	for i := range sched {
		sched[i] = Update{
			Client:  fmt.Sprintf("c%d", i%clients),
			Version: 0,
			Seq:     int64(i),
			Grad:    tensor.RandNormal(rng, dim, 0, 1),
		}
	}
	return sched
}

// runSchedule executes the schedule under the given submission plan and
// returns the final params and history.
func runSchedule(t *testing.T, sched []Update, submit func(*Aggregator)) ([]float64, []StepSummary) {
	t.Helper()
	cfg := testConfig(len(sched[0].Grad), 5)
	cfg.Deterministic = true
	cfg.Alpha = 0.7
	cfg.SessionTTL = -1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submit(a)
	_, params, _ := a.Model()
	return params, a.History()
}

func TestDeterministicAcrossInterleavings(t *testing.T) {
	sched := buildSchedule(60, 12, 6, 42)

	// Interleaving 1: sequential, in schedule order.
	p1, h1 := runSchedule(t, sched, func(a *Aggregator) {
		for _, u := range sched {
			if _, err := a.Submit(u); err != nil {
				t.Error(err)
			}
		}
	})

	// Interleaving 2: four concurrent goroutines, each submitting a
	// strided quarter of the schedule in its own order.
	p2, h2 := runSchedule(t, sched, func(a *Aggregator) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(sched); i += 4 {
					if _, err := a.Submit(sched[i]); err != nil {
						t.Error(err)
					}
				}
			}(w)
		}
		wg.Wait()
	})

	// Interleaving 3: fully reversed delivery — everything parks in the
	// reorder buffer until Seq 0 arrives last and the whole schedule
	// drains in one call.
	p3, h3 := runSchedule(t, sched, func(a *Aggregator) {
		for i := len(sched) - 1; i >= 0; i-- {
			if _, err := a.Submit(sched[i]); err != nil {
				t.Error(err)
			}
		}
	})

	for name, p := range map[string][]float64{"strided-concurrent": p2, "reversed": p3} {
		if len(p) != len(p1) {
			t.Fatalf("%s: param length mismatch", name)
		}
		for j := range p1 {
			if math.Float64bits(p[j]) != math.Float64bits(p1[j]) {
				t.Fatalf("%s: coordinate %d differs: %v vs %v (not byte-identical)", name, j, p[j], p1[j])
			}
		}
	}
	for name, h := range map[string][]StepSummary{"strided-concurrent": h2, "reversed": h3} {
		if len(h) != len(h1) {
			t.Fatalf("%s: %d steps vs %d", name, len(h), len(h1))
		}
		for i := range h1 {
			if h[i] != h1[i] {
				t.Fatalf("%s: step %d summary differs: %+v vs %+v", name, i, h[i], h1[i])
			}
		}
	}
}

func TestDeterministicRejectsDuplicateAndPastSeq(t *testing.T) {
	cfg := testConfig(1, 10)
	cfg.Deterministic = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(Update{Client: "c", Seq: 0, Grad: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(Update{Client: "c", Seq: 0, Grad: []float64{1}}); err == nil {
		t.Fatal("re-submitting an applied seq must error")
	}
	if _, err := a.Submit(Update{Client: "c", Seq: 2, Grad: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(Update{Client: "c", Seq: 2, Grad: []float64{1}}); err == nil {
		t.Fatal("duplicate parked seq must error")
	}
}

// TestDeterministicReorderWindowBounded: a client skipping far ahead in the
// schedule must be refused, not parked — an unbounded reorder buffer is a
// memory hole a malicious or buggy submitter can grow forever.
func TestDeterministicReorderWindowBounded(t *testing.T) {
	cfg := testConfig(1, 10)
	cfg.Deterministic = true
	cfg.ReorderWindow = 4
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seq 3 is the furthest parkable position (window 4, next is 0).
	if res, err := a.Submit(Update{Client: "c", Seq: 3, Grad: []float64{1}}); err != nil || !res.Held {
		t.Fatalf("in-window seq refused: res=%+v err=%v", res, err)
	}
	if _, err := a.Submit(Update{Client: "c", Seq: 4, Grad: []float64{1}}); err == nil {
		t.Fatal("seq beyond the reorder window must be refused")
	}
	// Filling the gap drains everything, sliding the window forward.
	for seq := int64(0); seq < 3; seq++ {
		if _, err := a.Submit(Update{Client: "c", Seq: seq, Grad: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := a.Submit(Update{Client: "c", Seq: 4, Grad: []float64{1}}); err != nil || !res.Accepted {
		t.Fatalf("seq 4 after window slid: res=%+v err=%v", res, err)
	}
}

// TestDeterministicParkedPurgedOnExpiry: a parked update whose session
// expires is abandoned — and its schedule position must still drain, not
// wedge every later position behind the hole.
func TestDeterministicParkedPurgedOnExpiry(t *testing.T) {
	clock := time.Unix(0, 0)
	cfg := testConfig(1, 100)
	cfg.Deterministic = true
	cfg.SessionTTL = time.Minute
	cfg.Now = func() time.Time { return clock }
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "ghost" parks seq 1 and goes silent; seq 0 never arrives from it.
	if res, err := a.Submit(Update{Client: "ghost", Seq: 1, Grad: []float64{1}}); err != nil || !res.Held {
		t.Fatalf("park: res=%+v err=%v", res, err)
	}
	clock = clock.Add(2 * time.Minute)
	// "live" submits seq 0: ghost expired, its parked seq 1 is abandoned,
	// and the drain walks straight through the tombstone.
	if res, err := a.Submit(Update{Client: "live", Seq: 0, Grad: []float64{2}}); err != nil || !res.Accepted {
		t.Fatalf("seq 0: res=%+v err=%v", res, err)
	}
	if res, err := a.Submit(Update{Client: "live", Seq: 2, Grad: []float64{3}}); err != nil || !res.Accepted {
		t.Fatalf("seq 2 wedged behind abandoned position: res=%+v err=%v", res, err)
	}
	st := a.Stats()
	if st.PurgedUpdates != 1 || st.Arrivals != 2 {
		t.Fatalf("stats = %+v, want ghost's parked update purged and two arrivals", st)
	}
}

// --- session table ---------------------------------------------------------

func TestSessionTableSweepSorted(t *testing.T) {
	clock := time.Unix(0, 0)
	st := NewSessionTable(time.Minute, func() time.Time { return clock })
	for _, id := range []string{"b", "a", "c"} {
		st.Touch(id)
	}
	clock = clock.Add(2 * time.Minute)
	gone := st.Sweep()
	if len(gone) != 3 || gone[0] != "a" || gone[1] != "b" || gone[2] != "c" {
		t.Fatalf("sweep = %v, want sorted [a b c]", gone)
	}
	if st.Alive() != 0 || st.Expired() != 3 {
		t.Fatalf("alive %d expired %d", st.Alive(), st.Expired())
	}
}

func TestSessionTableZeroTTLNeverExpires(t *testing.T) {
	clock := time.Unix(0, 0)
	st := NewSessionTable(0, func() time.Time { return clock })
	st.Touch("c")
	clock = clock.Add(1000 * time.Hour)
	if gone := st.Sweep(); len(gone) != 0 {
		t.Fatalf("zero TTL expired %v", gone)
	}
}
