package asyncfl

import (
	"sort"
	"sync"
	"time"
)

// SessionTable tracks client liveness with TTL leases, the same discipline
// the distributed campaign coordinator applies to workers
// (internal/campaign/dist → campaign.Queue): any message from a client
// renews its lease, a client that stays silent past the TTL is presumed
// gone, and expiry is observed lazily on the next sweep — no background
// timer goroutine, so tests drive churn with a fake clock instead of
// sleeping.
//
// All methods are safe for concurrent use.
type SessionTable struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time

	expiry  map[string]time.Time
	expired int64 // total sessions ever expired
}

// NewSessionTable builds a table whose leases last ttl (0 disables expiry —
// every session lives forever). now supplies the clock (nil = time.Now);
// it is injectable for the same reason campaign.Queue's is: churn tests
// advance a fake clock instead of sleeping.
func NewSessionTable(ttl time.Duration, now func() time.Time) *SessionTable {
	if now == nil {
		now = time.Now
	}
	return &SessionTable{
		ttl:    ttl,
		now:    now,
		expiry: map[string]time.Time{},
	}
}

// Touch registers id if unknown and renews its lease either way, then
// sweeps the table. It returns the ids whose leases expired during the
// sweep (sorted, so callers purge state in a deterministic order) and
// whether id was already known before the call.
func (t *SessionTable) Touch(id string) (expired []string, known bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, known = t.expiry[id]
	if t.ttl > 0 {
		t.expiry[id] = t.now().Add(t.ttl)
	} else {
		t.expiry[id] = time.Time{}
	}
	return t.sweepLocked(id), known
}

// Sweep expires every overdue session and returns their ids (sorted).
func (t *SessionTable) Sweep() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sweepLocked("")
}

// sweepLocked removes sessions past their expiry, never touching keep
// (the session being renewed). Callers hold t.mu.
func (t *SessionTable) sweepLocked(keep string) []string {
	if t.ttl == 0 {
		return nil
	}
	now := t.now()
	var gone []string
	for id, exp := range t.expiry {
		if id != keep && now.After(exp) {
			gone = append(gone, id)
		}
	}
	sort.Strings(gone)
	for _, id := range gone {
		delete(t.expiry, id)
	}
	t.expired += int64(len(gone))
	return gone
}

// Alive returns the number of live sessions (without sweeping, so the
// count may include sessions that would expire on the next Touch).
func (t *SessionTable) Alive() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.expiry)
}

// Expired returns the total number of sessions that have ever expired.
func (t *SessionTable) Expired() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expired
}
