// Package loadtest drives the asynchronous serving layer (internal/asyncfl
// behind the internal/transport HTTP protocol) with large fleets of
// goroutine-cheap simulated clients over real HTTP sockets, and reports
// the serving metrics that matter at scale: aggregation rounds/s, accepted
// updates/s, p50/p99 update-ingest latency, mean buffer occupancy, and
// model quality under a configurable Byzantine fraction and client churn.
//
// Clients train a synthetic strongly-convex task — the gradient at params
// p is p minus a hidden optimum plus per-client noise — so a 100k-client
// run costs microseconds of compute per update and the final RMS distance
// to the optimum is an exact model-quality readout: honest traffic drives
// it toward 0, unfiltered Byzantine traffic (sign-flipped, scaled
// gradients) drives it away, and a defense in front of the buffer keeps
// it shrinking. Client sessions are state machines driven by a bounded
// worker pool, so 100k+ sessions cost a struct each, not a stack each,
// and socket reuse comes from one shared pooled HTTP client.
package loadtest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/asyncfl"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/sanitize"
	"github.com/signguard/signguard/internal/tensor"
	"github.com/signguard/signguard/internal/transport"
)

// Config describes one load run.
type Config struct {
	// Clients is the number of simulated client sessions (required).
	Clients int
	// UpdatesPerClient is how many updates each honest client submits
	// (default 2; churned clients always stop after 1).
	UpdatesPerClient int
	// Concurrency bounds the driver worker pool — how many client
	// sessions are in flight at once (default 256).
	Concurrency int
	// Dim is the synthetic model dimensionality (default 64).
	Dim int
	// K is the aggregation buffer size (default 32); Alpha the staleness
	// exponent (default 0.5); QueueCap the per-client queue bound
	// (default asyncfl.DefaultQueueCap).
	K        int
	Alpha    float64
	QueueCap int
	// Rule, when non-nil, filters each buffer before the merge.
	Rule aggregate.Rule
	// Codec, when non-nil, compresses every client's submissions through
	// this wire format (each session encodes with its own RNG stream, so
	// stochastic codecs stay per-client deterministic).
	Codec codec.Codec
	// LR is the server learning rate (default 0.05).
	LR float64
	// ByzFraction of clients submit sign-flipped, 5x-scaled gradients.
	ByzFraction float64
	// NonFiniteFraction of clients are hostile in the non-finite sense:
	// every submission is a qsgd payload whose finite Scale amplifies to
	// +Inf on decode — the wire shape of the NaN-injection attack (JSON
	// cannot carry a literal NaN). The server must refuse each one with
	// HTTP 400 and count it in Stats.NonFiniteRejects.
	NonFiniteFraction float64
	// NonFinite is the aggregator's ingest disposition for updates carrying
	// NaN/±Inf (zero = the asyncfl default, sanitize.Reject).
	NonFinite sanitize.Policy
	// ChurnFraction of clients vanish after one update without ever
	// heartbeating again — their sessions expire and queued updates are
	// purged once SessionTTL passes.
	ChurnFraction float64
	// SessionTTL is the liveness lease lifetime (default 30s).
	SessionTTL time.Duration
	// Seed drives the optimum, the per-client noise, and nothing else.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.Clients < 1 {
		return fmt.Errorf("loadtest: %d clients invalid", c.Clients)
	}
	if c.ByzFraction < 0 || c.ByzFraction > 1 {
		return fmt.Errorf("loadtest: byzantine fraction %v invalid", c.ByzFraction)
	}
	if c.ChurnFraction < 0 || c.ChurnFraction > 1 {
		return fmt.Errorf("loadtest: churn fraction %v invalid", c.ChurnFraction)
	}
	if c.NonFiniteFraction < 0 || c.NonFiniteFraction > 1 {
		return fmt.Errorf("loadtest: non-finite fraction %v invalid", c.NonFiniteFraction)
	}
	if c.UpdatesPerClient == 0 {
		c.UpdatesPerClient = 2
	}
	if c.UpdatesPerClient < 1 {
		return fmt.Errorf("loadtest: %d updates per client invalid", c.UpdatesPerClient)
	}
	if c.Concurrency == 0 {
		c.Concurrency = 256
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("loadtest: concurrency %d invalid", c.Concurrency)
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.K == 0 {
		c.K = 32
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Second
	}
	return nil
}

// Report is the outcome of one load run.
type Report struct {
	// Fleet composition.
	Clients   int
	Byzantine int
	Churned   int
	Hostile   int
	// Ingest volume: accepted updates, server-side drops/rejects/purges.
	Updates int64
	Drops   int64
	Rejects int64
	Purged  int64
	Expired int64
	// NonFiniteRejects counts hostile non-finite submissions the server
	// refused (Stats.NonFiniteRejects: wire-level decode refusals plus
	// buffer-screen rejections).
	NonFiniteRejects int64
	// Aggregation progress.
	Steps    int64
	Duration time.Duration
	// RoundsPerSec is aggregation steps per second; IngestPerSec accepted
	// updates per second.
	RoundsPerSec float64
	IngestPerSec float64
	// IngestP50 / IngestP99 are client-observed submit round-trip
	// latencies.
	IngestP50 time.Duration
	IngestP99 time.Duration
	// MeanBufferOccupancy is the buffer population averaged over arrivals.
	MeanBufferOccupancy float64
	// IngestBytes is the total wire size of accepted updates;
	// BytesPerUpdate the mean. Under a lossy codec both drop well below
	// the dense-float64 volume of the same fleet.
	IngestBytes    int64
	BytesPerUpdate float64
	// InitialError / FinalError are RMS distances from the global model to
	// the synthetic optimum before and after the run — the model-quality
	// readout. ErrorReduction is 1 - Final/Initial (1 = fully converged,
	// <= 0 = the attack won).
	InitialError   float64
	FinalError     float64
	ErrorReduction float64
}

// String renders the report as the flserver -loadtest summary block.
func (r *Report) String() string {
	return fmt.Sprintf(`loadtest: %d clients (%d byzantine, %d churned, %d hostile), %d updates accepted in %v
  throughput   %.1f rounds/s (%d aggregation steps), %.0f updates/s ingested
  ingest p50   %v
  ingest p99   %v
  ingest bytes %d (%.0f B/update)
  buffer       mean occupancy %.1f, drops %d, rejects %d, purged %d (expired sessions %d)
  hostile      non-finite submissions refused %d
  model error  %.4f -> %.4f (reduction %.1f%%)`,
		r.Clients, r.Byzantine, r.Churned, r.Hostile, r.Updates, r.Duration.Round(time.Millisecond),
		r.RoundsPerSec, r.Steps, r.IngestPerSec,
		r.IngestP50, r.IngestP99,
		r.IngestBytes, r.BytesPerUpdate,
		r.MeanBufferOccupancy, r.Drops, r.Rejects, r.Purged, r.Expired,
		r.NonFiniteRejects,
		r.InitialError, r.FinalError, 100*r.ErrorReduction)
}

// spread reports whether index i belongs to the evenly-spread subset of
// size count out of n (Bresenham spreading, so e.g. Byzantine clients are
// interleaved with honest ones rather than clustered at the front of the
// fleet).
func spread(i, count, n int) bool {
	if count <= 0 {
		return false
	}
	return (int64(i)*int64(count))%int64(n) < int64(count)
}

// roles assigns client i its fleet role. Roles are mutually exclusive with
// Byzantine taking precedence over churn over hostile, and each uses a
// shifted Bresenham spread so the categories interleave across the fleet.
func roles(cfg *Config, i int) (isByz, isChurn, isHostile bool) {
	n := cfg.Clients
	isByz = spread(i, int(cfg.ByzFraction*float64(n)), n)
	isChurn = !isByz && spread(i+1, int(cfg.ChurnFraction*float64(n)), n)
	isHostile = !isByz && !isChurn && spread(i+2, int(cfg.NonFiniteFraction*float64(n)), n)
	return
}

// rmsError is the root-mean-square distance between params and optimum.
func rmsError(params, optimum []float64) float64 {
	var sum float64
	for i := range params {
		d := params[i] - optimum[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(params)))
}

// Run executes one load run: it starts a real HTTP server over a fresh
// aggregator, drives the whole fleet through it, and reports.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := tensor.NewRNG(cfg.Seed)
	optimum := tensor.RandNormal(rng, cfg.Dim, 0, 1)
	initial := make([]float64, cfg.Dim) // zeros: RMS error = |optimum| RMS

	agg, err := asyncfl.New(asyncfl.Config{
		InitialParams: initial,
		K:             cfg.K,
		Alpha:         cfg.Alpha,
		Rule:          cfg.Rule,
		LR:            cfg.LR,
		QueueCap:      cfg.QueueCap,
		NonFinite:     cfg.NonFinite,
		SessionTTL:    cfg.SessionTTL,
	})
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loadtest: listen: %w", err)
	}
	srv := &http.Server{Handler: transport.NewAsyncHandler(agg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()

	// One pooled HTTP client for the whole fleet: sessions are cheap
	// structs, sockets are reused, and in-flight requests are bounded by
	// the worker pool — 100k sessions never means 100k file descriptors.
	shared := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	base := "http://" + ln.Addr().String()

	byzCount, churnCount, hostileCount := 0, 0, 0
	lats := make([][]time.Duration, cfg.Concurrency)
	var firstErr atomic.Value
	var accepted atomic.Int64

	logf("loadtest: driving %d clients (%d workers) at %s", cfg.Clients, cfg.Concurrency, base)
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if err := runClient(&cfg, base, shared, optimum, i, &lats[w], &accepted); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}
	for i := 0; i < cfg.Clients; i++ {
		switch isByz, isChurn, isHostile := roles(&cfg, i); {
		case isByz:
			byzCount++
		case isChurn:
			churnCount++
		case isHostile:
			hostileCount++
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	duration := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	if err := srv.Close(); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return nil, err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}

	st := agg.Stats()
	_, params, _ := agg.Model()
	rep := &Report{
		Clients:             cfg.Clients,
		Byzantine:           byzCount,
		Churned:             churnCount,
		Hostile:             hostileCount,
		Updates:             accepted.Load(),
		Drops:               st.Drops,
		Rejects:             st.Rejects,
		NonFiniteRejects:    st.NonFiniteRejects,
		Purged:              st.PurgedUpdates,
		Expired:             st.Expired,
		Steps:               st.Steps,
		Duration:            duration,
		RoundsPerSec:        float64(st.Steps) / duration.Seconds(),
		IngestPerSec:        float64(accepted.Load()) / duration.Seconds(),
		IngestP50:           pct(0.50),
		IngestP99:           pct(0.99),
		MeanBufferOccupancy: st.MeanOccupancy,
		IngestBytes:         st.IngestBytes,
		InitialError:        rmsError(initial, optimum),
		FinalError:          rmsError(params, optimum),
	}
	if rep.InitialError > 0 {
		rep.ErrorReduction = 1 - rep.FinalError/rep.InitialError
	}
	if rep.Updates > 0 {
		rep.BytesPerUpdate = float64(rep.IngestBytes) / float64(rep.Updates)
	}
	logf("%s", rep)
	return rep, nil
}

// runClient simulates one client session end to end: fetch-compute-submit
// in a loop, recording each submit's round-trip latency (submitting also
// registers and renews the session's liveness lease). Byzantine clients
// submit sign-flipped 5x gradients; churned clients stop after one update
// and never renew again, so their lease expires.
func runClient(cfg *Config, base string, httpc *http.Client, optimum []float64, i int, lats *[]time.Duration, accepted *atomic.Int64) error {
	isByz, isChurn, isHostile := roles(cfg, i)
	updates := cfg.UpdatesPerClient
	if isChurn {
		updates = 1
	}
	c := &transport.AsyncClient{
		Base: base,
		ID:   fmt.Sprintf("c%07d", i),
		HTTP: httpc,
	}
	ctx := context.Background()
	if isHostile {
		return runHostileClient(ctx, cfg, c, i, updates, lats)
	}
	noise := tensor.NewRNG(cfg.Seed + 7919*int64(i+1))
	grad := make([]float64, len(optimum))
	for u := 0; u < updates; u++ {
		model, err := c.Model(ctx)
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
		if model.Done {
			return nil
		}
		for j := range grad {
			g := model.Params[j] - optimum[j] + 0.1*noise.NormFloat64()
			if isByz {
				g = -5 * g
			}
			grad[j] = g
		}
		t0 := time.Now()
		var res asyncfl.SubmitResult
		if cfg.Codec == nil {
			res, err = c.Submit(ctx, model.Version, 0, grad)
		} else {
			// The noise RNG doubles as the codec stream: both are
			// per-session, so encoding stays deterministic per client.
			enc, encErr := cfg.Codec.Encode(grad, noise)
			if encErr != nil {
				return fmt.Errorf("client %d: codec %s: %w", i, cfg.Codec.Name(), encErr)
			}
			res, err = c.SubmitEncoded(ctx, model.Version, 0, enc)
		}
		lat := time.Since(t0)
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
		*lats = append(*lats, lat)
		if res.Accepted {
			accepted.Add(1)
		}
		if res.Done {
			return nil
		}
	}
	return nil
}

// runHostileClient simulates one non-finite attacker: every submission is a
// qsgd payload whose finite Scale amplifies to +Inf on decode — the wire
// shape of the NaN-injection attack. The server must refuse each one with
// HTTP 400; an accepted hostile payload, or any other failure shape, aborts
// the run.
func runHostileClient(ctx context.Context, cfg *Config, c *transport.AsyncClient, i, updates int, lats *[]time.Duration) error {
	hostile := codec.Encoded{Codec: codec.QSGD, Dim: cfg.Dim, Scale: 1e308, Levels: 1, Q: make([]int8, cfg.Dim)}
	for j := range hostile.Q {
		hostile.Q[j] = 127
	}
	for u := 0; u < updates; u++ {
		model, err := c.Model(ctx)
		if err != nil {
			return fmt.Errorf("hostile client %d: %w", i, err)
		}
		if model.Done {
			return nil
		}
		t0 := time.Now()
		_, err = c.SubmitEncoded(ctx, model.Version, 0, hostile)
		lat := time.Since(t0)
		if err == nil {
			return fmt.Errorf("hostile client %d: non-finite payload was accepted", i)
		}
		if !strings.Contains(err.Error(), "400") {
			return fmt.Errorf("hostile client %d: %w", i, err)
		}
		*lats = append(*lats, lat)
	}
	return nil
}
