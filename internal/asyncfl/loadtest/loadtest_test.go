package loadtest

import (
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/core"
)

// TestLoadHarnessCI is the scaled-down CI variant of the 100k run: a few
// thousand clients over real HTTP, finishing comfortably inside the
// 60-second budget while exercising the full metric surface.
func TestLoadHarnessCI(t *testing.T) {
	clients := 5000
	if testing.Short() {
		clients = 1500
	}
	rep, err := Run(Config{
		Clients:          clients,
		UpdatesPerClient: 2,
		Concurrency:      128,
		Dim:              32,
		K:                32,
		ByzFraction:      0.1,
		ChurnFraction:    0.05,
		Seed:             1,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps < 10 {
		t.Fatalf("report %+v: too few aggregation steps", rep)
	}
	if rep.RoundsPerSec <= 0 || rep.IngestP99 <= 0 || rep.IngestP50 > rep.IngestP99 {
		t.Fatalf("report %+v: broken latency/throughput metrics", rep)
	}
	if rep.Byzantine == 0 || rep.Churned == 0 {
		t.Fatalf("report %+v: fleet composition not exercised", rep)
	}
	if rep.MeanBufferOccupancy <= 0 {
		t.Fatalf("report %+v: buffer occupancy not tracked", rep)
	}
	// 10% reversed-and-scaled traffic shrinks the effective step but does
	// not flip its sign: even undefended, the model must still converge.
	if rep.ErrorReduction < 0.5 {
		t.Fatalf("report %+v: model failed to converge", rep)
	}
	if rep.Updates < int64(clients) {
		t.Fatalf("report %+v: fewer accepted updates than clients", rep)
	}
}

// TestLoadHarnessDefenseBeatsAttack runs the same heavily-attacked fleet
// undefended and behind SignGuard: the Byzantine majority-scale traffic
// must wreck the undefended model and be filtered by the defense.
func TestLoadHarnessDefenseBeatsAttack(t *testing.T) {
	base := Config{
		Clients:          800,
		UpdatesPerClient: 2,
		Concurrency:      64,
		Dim:              32,
		K:                16,
		ByzFraction:      0.3,
		Seed:             3,
	}
	undefended, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	defended := base
	defended.Rule = core.NewPlain(3)
	withRule, err := Run(defended)
	if err != nil {
		t.Fatal(err)
	}
	// 30% of clients submitting -5x gradients flips the mean's sign:
	// undefended the error must grow, defended it must shrink.
	if undefended.ErrorReduction > 0 {
		t.Fatalf("undefended run converged under a sign-flipping majority scale attack: %+v", undefended)
	}
	if withRule.ErrorReduction < 0.5 {
		t.Fatalf("SignGuard-defended run failed to converge: %+v", withRule)
	}
}

// TestLoadHarnessCodecReducesIngest runs the same defended, heavily-attacked
// fleet over the dense wire format and over topk: compression must cut the
// ingested byte volume while the defense still beats the attack.
func TestLoadHarnessCodecReducesIngest(t *testing.T) {
	base := Config{
		Clients:          800,
		UpdatesPerClient: 2,
		Concurrency:      64,
		Dim:              32,
		K:                16,
		ByzFraction:      0.3,
		Rule:             core.NewPlain(3),
		Seed:             3,
	}
	dense, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	compressed := base
	compressed.Codec = codec.TopKCodec{K: 8}
	topk, err := Run(compressed)
	if err != nil {
		t.Fatal(err)
	}
	if dense.IngestBytes <= 0 || topk.IngestBytes <= 0 {
		t.Fatalf("ingest bytes not tracked: dense %d, topk %d", dense.IngestBytes, topk.IngestBytes)
	}
	if topk.BytesPerUpdate >= dense.BytesPerUpdate/2 {
		t.Fatalf("topk shipped %.0f B/update, dense %.0f — compression not reflected in ingest accounting",
			topk.BytesPerUpdate, dense.BytesPerUpdate)
	}
	// Quality survives the lossy wire: the defense still filters the -5x
	// traffic and the model still converges.
	if topk.ErrorReduction < 0.5 {
		t.Fatalf("defended run under topk failed to converge: %+v", topk)
	}
}

// TestLoadHarnessHostileClients mixes non-finite attackers into a defended
// fleet: every hostile submission must be refused and counted, and the
// honest majority must still converge through the SignGuard defense.
func TestLoadHarnessHostileClients(t *testing.T) {
	rep, err := Run(Config{
		Clients:           600,
		UpdatesPerClient:  2,
		Concurrency:       64,
		Dim:               32,
		K:                 16,
		NonFiniteFraction: 0.2,
		Rule:              core.NewPlain(3),
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hostile == 0 {
		t.Fatalf("report %+v: no hostile clients in a 20%% hostile fleet", rep)
	}
	if rep.NonFiniteRejects < int64(rep.Hostile) {
		t.Fatalf("report %+v: %d hostile clients submitted but only %d non-finite rejections counted",
			rep, rep.Hostile, rep.NonFiniteRejects)
	}
	if rep.ErrorReduction < 0.5 {
		t.Fatalf("report %+v: honest majority failed to converge under non-finite attack", rep)
	}
}

// TestLoadHarnessChurnExpiry uses a TTL shorter than the run so churned
// clients' sessions actually expire and their queued updates are purged.
func TestLoadHarnessChurnExpiry(t *testing.T) {
	rep, err := Run(Config{
		Clients:          400,
		UpdatesPerClient: 3,
		Concurrency:      8, // slow drivers: the run outlives the TTL
		Dim:              16,
		K:                5000, // above total arrivals: queued updates linger
		QueueCap:         8,
		ChurnFraction:    0.5,
		SessionTTL:       50 * time.Millisecond,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired == 0 {
		t.Fatalf("report %+v: no sessions expired despite churn and a short TTL", rep)
	}
	if rep.Purged == 0 {
		t.Fatalf("report %+v: expiry purged no queued updates", rep)
	}
}

func TestLoadConfigValidation(t *testing.T) {
	bad := []Config{
		{Clients: 0},
		{Clients: 10, ByzFraction: 1.5},
		{Clients: 10, ChurnFraction: -0.1},
		{Clients: 10, UpdatesPerClient: -1},
		{Clients: 10, Concurrency: -2},
		{Clients: 10, NonFiniteFraction: 2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// TestLoadHarness100k is the headline run: 100k client sessions over real
// HTTP. It is too heavy for every `go test ./...` invocation, so it is
// opt-in: ASYNCFL_LOAD_CLIENTS=100000 go test -run 100k -v ./internal/asyncfl/loadtest
func TestLoadHarness100k(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("ASYNCFL_LOAD_CLIENTS"))
	if n < 1 {
		t.Skip("set ASYNCFL_LOAD_CLIENTS (e.g. 100000) to run the full-scale load test")
	}
	rep, err := Run(Config{
		Clients:          n,
		UpdatesPerClient: 2,
		Concurrency:      512,
		Dim:              64,
		K:                64,
		ByzFraction:      0.1,
		ChurnFraction:    0.05,
		SessionTTL:       10 * time.Second,
		Seed:             1,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.ErrorReduction < 0.5 {
		t.Fatalf("report %+v: model failed to converge at scale", rep)
	}
}

// BenchmarkAsyncLoad is the async load bench of the CI BENCH gate and
// `make profile`: one compact load run per iteration, reporting ingest
// and aggregation throughput.
func BenchmarkAsyncLoad(b *testing.B) {
	var updates, steps int64
	var secs float64
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{
			Clients:          400,
			UpdatesPerClient: 2,
			Concurrency:      64,
			Dim:              32,
			K:                16,
			ByzFraction:      0.1,
			Seed:             int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		updates += rep.Updates
		steps += rep.Steps
		secs += rep.Duration.Seconds()
	}
	b.ReportMetric(float64(updates)/secs, "updates/s")
	b.ReportMetric(float64(steps)/secs, "rounds/s")
}
