package asyncfl

import (
	"errors"
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// Weight returns the staleness discount w(s) = 1/(1+s)^alpha applied to an
// update computed s model versions ago. s = 0 (an update against the
// current model) always weighs exactly 1, alpha = 0 degenerates to the
// plain buffered mean (every update weighs 1 regardless of staleness), and
// large s drives the weight toward 0 — a stale straggler contributes, but
// barely. This is the polynomial discount of FedBuff-style buffered
// asynchronous aggregation; discounting stale contributions is the
// asynchronous cousin of server-side trust weighting.
func Weight(staleness int, alpha float64) float64 {
	if staleness <= 0 {
		return 1
	}
	return math.Pow(1+float64(staleness), -alpha)
}

// WeightedMerge combines the given gradients into their staleness-weighted
// average: sum(w_i * g_i) / sum(w_i) with w_i = Weight(staleness[i],
// alpha). Accumulation walks the inputs in the given order with a single
// sequential accumulator per coordinate, so the result is byte-determined
// by the input order — the determinism contract the buffered aggregate
// inherits (docs/ARCHITECTURE.md).
func WeightedMerge(grads [][]float64, staleness []int, alpha float64) ([]float64, error) {
	if len(grads) == 0 {
		return nil, errors.New("asyncfl: empty merge buffer")
	}
	if len(staleness) != len(grads) {
		return nil, fmt.Errorf("asyncfl: %d staleness values for %d gradients", len(staleness), len(grads))
	}
	dim := len(grads[0])
	out := make([]float64, dim)
	var wsum float64
	for i, g := range grads {
		if len(g) != dim {
			return nil, fmt.Errorf("asyncfl: gradient %d has %d dims, want %d", i, len(g), dim)
		}
		w := Weight(staleness[i], alpha)
		wsum += w
		for j, v := range g {
			out[j] += w * v
		}
	}
	inv := 1 / wsum
	for j := range out {
		out[j] *= inv
	}
	if !tensor.AllFinite(out) {
		// A single NaN coordinate in any input — or a sum overflowing to
		// ±Inf — poisons the merged average; callers must get an error, not
		// a hostile aggregate (the optimizer would fold it into the model).
		return nil, errors.New("asyncfl: non-finite staleness-weighted merge")
	}
	return out, nil
}
