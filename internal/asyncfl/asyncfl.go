// Package asyncfl is the buffered asynchronous federated-learning serving
// core: a FedBuff-style aggregator that accepts gradient updates
// continuously, tags each with the model version it was computed against,
// buffers them in bounded per-client queues (drop-oldest, with a
// backpressure signal to the submitter), and performs an aggregation step
// every K accepted arrivals. Each step first lets a registered defense
// (internal/defense — SignGuard, Krum, DnC, ...) filter the drained buffer,
// then merges the survivors under staleness-discounted weights
// w(s) = 1/(1+s)^alpha and applies a server-side SGD step, bumping the
// model version.
//
// This departs from the paper's synchronous setting on purpose: the defense
// no longer sees a synchronized cohort but a staleness-skewed buffer, and
// the staleness discount plays the role the server's trust weighting plays
// in server-learning defenses. The synchronous protocol (internal/transport
// Server/RunClient) is untouched; the async protocol rides the same package
// as an HTTP layer over this core.
//
// Client liveness reuses the TTL-lease/heartbeat discipline of the
// distributed campaign coordinator (internal/campaign/dist): any message
// renews a session's lease, silent clients expire on the next sweep and
// their queued updates are purged — churn never wedges the buffer.
//
// Determinism: every mutation happens under one lock in arrival order, and
// the buffered merge accumulates in arrival order, so a fixed arrival
// schedule yields byte-identical aggregates. Config.Deterministic makes
// that schedule explicit: updates carry a global sequence number and the
// aggregator applies them in sequence order no matter how concurrent
// submitters interleave — the property the interleaving tests assert
// without a single sleep.
package asyncfl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/sanitize"
	"github.com/signguard/signguard/internal/tensor"
)

// Defaults for Config fields left zero.
const (
	// DefaultQueueCap bounds each client's update queue.
	DefaultQueueCap = 4
	// DefaultSessionTTL is the liveness lease lifetime.
	DefaultSessionTTL = time.Minute
	// DefaultReorderWindow bounds how far ahead of the next schedule
	// position a deterministic-mode update may park.
	DefaultReorderWindow = 1 << 14
)

// Config describes a buffered asynchronous aggregator.
type Config struct {
	// InitialParams is the starting global parameter vector (required).
	InitialParams []float64
	// K triggers an aggregation step every K accepted arrivals (required,
	// >= 1). The step drains every queued update — usually exactly K, fewer
	// when drop-oldest evicted some, at least one always, so a single
	// hyperactive client bounded by QueueCap cannot stall aggregation.
	K int
	// Alpha is the staleness-discount exponent of w(s) = 1/(1+s)^alpha.
	// 0 degenerates to the plain buffered mean; must not be negative.
	Alpha float64
	// Rule, when non-nil, filters each drained buffer before the
	// staleness-weighted merge: rules that select gradients (SignGuard,
	// Krum, DnC, ...) have only their survivors merged; coordinate-wise
	// rules without a selection (Mean, Median, ...) replace the merge with
	// their own aggregate, since per-client staleness cannot be attributed
	// through them. nil merges the whole buffer.
	Rule aggregate.Rule
	// LR / Momentum / WeightDecay configure the server-side SGD step.
	LR          float64
	Momentum    float64
	WeightDecay float64
	// QueueCap bounds each client's queue (0 = DefaultQueueCap). A full
	// queue drops its oldest update and reports backpressure to the
	// submitter.
	QueueCap int
	// MaxStaleness, when > 0, rejects updates staler than this many
	// versions outright instead of merging them at a tiny weight.
	MaxStaleness int
	// NonFinite is the ingest screen's disposition for updates carrying
	// NaN or ±Inf coordinates (see internal/sanitize). The zero value
	// defaults to sanitize.Reject: untrusted ingest never lets a
	// non-finite value reach the buffer unscreened.
	NonFinite sanitize.Policy
	// TargetSteps, when > 0, marks the aggregator Done after that many
	// aggregation steps; further submits are refused. 0 runs forever.
	TargetSteps int64
	// SessionTTL is the liveness lease lifetime (0 = DefaultSessionTTL;
	// negative disables expiry).
	SessionTTL time.Duration
	// Deterministic makes updates carry an explicit global sequence number
	// (Update.Seq, 0-based, dense): the aggregator holds out-of-order
	// arrivals and applies everything in sequence order, so any concurrent
	// interleaving of a fixed schedule produces byte-identical aggregates.
	Deterministic bool
	// ReorderWindow bounds the deterministic reorder buffer: an update
	// whose Seq is ReorderWindow or more positions ahead of the next
	// schedule position is refused instead of parked, so a client cannot
	// grow the buffer without limit by skipping ahead (0 =
	// DefaultReorderWindow; ignored outside deterministic mode).
	ReorderWindow int
	// Now supplies the liveness clock (nil = time.Now); injectable so
	// churn tests expire sessions by advancing a fake clock.
	Now func() time.Time
	// Logf, when non-nil, receives step and churn events.
	Logf func(format string, args ...any)
}

func (c *Config) validate() error {
	switch {
	case len(c.InitialParams) == 0:
		return errors.New("asyncfl: Config.InitialParams is required")
	case c.K < 1:
		return fmt.Errorf("asyncfl: buffer size K = %d invalid (need >= 1)", c.K)
	case c.Alpha < 0:
		return fmt.Errorf("asyncfl: staleness exponent alpha = %v invalid (need >= 0)", c.Alpha)
	case c.LR <= 0:
		return fmt.Errorf("asyncfl: learning rate %v invalid", c.LR)
	case c.QueueCap < 0:
		return fmt.Errorf("asyncfl: queue capacity %d invalid", c.QueueCap)
	case c.MaxStaleness < 0:
		return fmt.Errorf("asyncfl: max staleness %d invalid", c.MaxStaleness)
	case c.ReorderWindow < 0:
		return fmt.Errorf("asyncfl: reorder window %d invalid", c.ReorderWindow)
	case c.NonFinite != 0 && !c.NonFinite.Valid():
		return fmt.Errorf("asyncfl: unknown non-finite policy %d", int(c.NonFinite))
	}
	return nil
}

// Update is one client contribution.
type Update struct {
	// Client identifies the submitting session.
	Client string
	// Version is the model version the gradient was computed against.
	Version int
	// Seq is the update's position in the global arrival schedule
	// (deterministic mode only, 0-based and dense; ignored otherwise).
	Seq int64
	// Grad is the flat gradient vector.
	Grad []float64
	// WireBytes is the size this update occupied on the wire (the encoded
	// form under the client's codec). 0 means unreported: the ingest
	// accounting falls back to the dense float64 size of Grad.
	WireBytes int
}

// SubmitResult tells the submitter what happened to its update.
type SubmitResult struct {
	// Accepted reports the update entered the buffer.
	Accepted bool
	// Held reports a deterministic-mode update parked until its
	// predecessors in the schedule arrive (it will be applied then).
	Held bool
	// TooStale reports a rejection by Config.MaxStaleness.
	TooStale bool
	// Dropped reports this client's oldest queued update was evicted to
	// make room — the drop-oldest half of backpressure.
	Dropped bool
	// Backpressure reports the client's queue is at capacity after this
	// submit: the client should fetch a fresh model before submitting
	// again rather than pile up doomed updates.
	Backpressure bool
	// Stepped reports this arrival triggered an aggregation step.
	Stepped bool
	// NonFinite reports the update carried NaN or ±Inf coordinates. Under
	// the Clamp policy it was repaired and accepted; under Reject or
	// Quarantine it was withheld from the buffer.
	NonFinite bool
	// Staleness is the update's age in model versions at submit time.
	Staleness int
	// Version is the current model version after processing — when it
	// exceeds the submitted version, a fetch is due.
	Version int
	// Done reports training reached Config.TargetSteps.
	Done bool
}

// StepSummary records one aggregation step.
type StepSummary struct {
	// Step is the 1-based step index; Version the model version it
	// produced.
	Step    int64
	Version int
	// Buffer is the number of updates drained; Kept how many survived the
	// defense filter.
	Buffer int
	Kept   int
	// MeanStaleness / MaxStaleness describe the drained buffer's age.
	MeanStaleness float64
	MaxStaleness  int
}

// Stats snapshots the aggregator's counters.
type Stats struct {
	Version    int
	Steps      int64
	Arrivals   int64 // accepted updates
	Buffered   int   // updates currently queued
	Drops      int64 // evictions by drop-oldest
	Rejects    int64 // refused updates (stale, future-versioned, done)
	RuleErrors int64 // steps skipped because the defense errored
	// Non-finite ingest accounting: how many updates the screen rejected,
	// repaired in place, or quarantined (see Config.NonFinite).
	NonFiniteRejects     int64
	NonFiniteClamps      int64
	NonFiniteQuarantines int64
	EmptySelects         int64 // steps skipped because the defense kept nothing
	AliveSessions        int
	Expired              int64 // sessions ever expired
	PurgedUpdates        int64 // queued updates discarded by session expiry
	// MeanOccupancy is the buffer population averaged over accepted
	// arrivals — how full the buffer runs in steady state.
	MeanOccupancy float64
	// IngestBytes is the total wire size of accepted updates (each
	// update's reported WireBytes, dense size when unreported).
	IngestBytes int64
	Done        bool
}

// entry is one buffered update.
type entry struct {
	client  string
	version int
	seq     int64 // server-assigned arrival number: the drain order
	grad    []float64
}

// Aggregator is the buffered asynchronous serving core. Create one with
// New; it is safe for concurrent use.
type Aggregator struct {
	cfg      Config
	queueCap int
	sessions *SessionTable

	mu      sync.Mutex
	params  []float64
	opt     *nn.SGD
	version int
	done    bool
	doneCh  chan struct{}

	queues   map[string][]entry
	buffered int
	arrival  int64 // next server-assigned arrival number
	sinceK   int   // accepted arrivals since the last step
	seqNext  int64 // deterministic mode: next schedule position to apply
	// reorder parks out-of-order deterministic-mode updates by schedule
	// position; a nil entry is a tombstone for a position abandoned by
	// session expiry, which the drain loop skips instead of wedging on.
	reorder    map[int64]*Update
	reorderWin int64

	steps                int64
	ingestBytes          int64
	drops                int64
	rejects              int64
	ruleErrors           int64
	emptySelects         int64
	nonFiniteRejects     int64
	nonFiniteClamps      int64
	nonFiniteQuarantines int64
	purged               int64
	occSum               int64
	occN                 int64
	history              []StepSummary
}

// New builds an aggregator from cfg.
func New(cfg Config) (*Aggregator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.NonFinite == 0 {
		cfg.NonFinite = sanitize.Reject
	}
	if cfg.ReorderWindow == 0 {
		cfg.ReorderWindow = DefaultReorderWindow
	}
	ttl := cfg.SessionTTL
	if ttl == 0 {
		ttl = DefaultSessionTTL
	} else if ttl < 0 {
		ttl = 0 // SessionTable: 0 disables expiry
	}
	params := make([]float64, len(cfg.InitialParams))
	copy(params, cfg.InitialParams)
	return &Aggregator{
		cfg:        cfg,
		queueCap:   cfg.QueueCap,
		sessions:   NewSessionTable(ttl, cfg.Now),
		params:     params,
		opt:        nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
		doneCh:     make(chan struct{}),
		queues:     map[string][]entry{},
		reorder:    map[int64]*Update{},
		reorderWin: int64(cfg.ReorderWindow),
	}, nil
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Submit offers one update to the buffer. It renews the client's liveness
// lease, purges queues of any session that expired meanwhile, enqueues the
// update (evicting the client's oldest when its queue is full), and — every
// K accepted arrivals — runs an aggregation step inline before returning.
// The returned SubmitResult carries the backpressure signals the transport
// relays to the client. Submitting to a Done aggregator is refused.
func (a *Aggregator) Submit(u Update) (SubmitResult, error) {
	if len(u.Grad) != len(a.cfg.InitialParams) {
		return SubmitResult{}, fmt.Errorf("asyncfl: client %q sent %d-dim gradient, want %d",
			u.Client, len(u.Grad), len(a.cfg.InitialParams))
	}
	expired, _ := a.sessions.Touch(u.Client)

	a.mu.Lock()
	defer a.mu.Unlock()
	a.purgeLocked(expired)

	if !a.cfg.Deterministic {
		return a.applyLocked(u), nil
	}

	// Deterministic mode: park the update and drain every consecutive
	// schedule position that is now available, returning the caller's own
	// outcome once its turn comes.
	if u.Seq < a.seqNext {
		return SubmitResult{}, fmt.Errorf("asyncfl: schedule position %d already applied (next is %d)", u.Seq, a.seqNext)
	}
	if u.Seq >= a.seqNext+a.reorderWin {
		return SubmitResult{}, fmt.Errorf("asyncfl: schedule position %d too far ahead of %d (reorder window %d)",
			u.Seq, a.seqNext, a.reorderWin)
	}
	if _, dup := a.reorder[u.Seq]; dup {
		return SubmitResult{}, fmt.Errorf("asyncfl: duplicate schedule position %d", u.Seq)
	}
	a.reorder[u.Seq] = &u
	res := SubmitResult{Held: true, Version: a.version, Done: a.done}
	for {
		next, ok := a.reorder[a.seqNext]
		if !ok {
			break
		}
		delete(a.reorder, a.seqNext)
		a.seqNext++
		if next == nil {
			continue // position abandoned by session expiry
		}
		r := a.applyLocked(*next)
		if next.Seq == u.Seq {
			res = r
		}
	}
	return res, nil
}

// NoteNonFiniteReject accounts a hostile update refused before it ever
// reached Submit: the transport calls it when a codec decode refuses a
// payload that carries — or amplifies to — NaN/±Inf, so wire-level
// non-finite traffic shows up in the same Stats counters as the buffer
// screen's rejections. Like any other client message it renews the
// session's liveness lease.
func (a *Aggregator) NoteNonFiniteReject(client string) {
	expired, _ := a.sessions.Touch(client)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.purgeLocked(expired)
	a.nonFiniteRejects++
	a.rejects++
}

// Heartbeat renews a session lease without contributing an update (an idle
// client staying live) and purges whatever expired meanwhile. It returns
// the current model version and done state.
func (a *Aggregator) Heartbeat(client string) (version int, done bool) {
	expired, _ := a.sessions.Touch(client)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.purgeLocked(expired)
	return a.version, a.done
}

// purgeLocked discards the queued updates of expired sessions. Callers
// hold a.mu.
func (a *Aggregator) purgeLocked(expired []string) {
	for _, id := range expired {
		if q := a.queues[id]; len(q) > 0 {
			a.buffered -= len(q)
			a.purged += int64(len(q))
			a.logf("asyncfl: session %s expired, %d queued updates purged", id, len(q))
			delete(a.queues, id)
		}
	}
	if len(expired) == 0 || len(a.reorder) == 0 {
		return
	}
	// Deterministic mode: tombstone (don't delete) the parked updates of
	// expired sessions so their schedule positions still drain — removing
	// the key outright would wedge every later position behind the hole.
	gone := make(map[string]bool, len(expired))
	for _, id := range expired {
		gone[id] = true
	}
	for seq, u := range a.reorder {
		if u != nil && gone[u.Client] {
			a.reorder[seq] = nil
			a.purged++
			a.logf("asyncfl: session %s expired, parked schedule position %d abandoned", u.Client, seq)
		}
	}
}

// applyLocked runs the accept/enqueue/step path for one update. Callers
// hold a.mu.
func (a *Aggregator) applyLocked(u Update) SubmitResult {
	res := SubmitResult{Version: a.version, Done: a.done}
	if a.done {
		a.rejects++
		return res
	}
	s := a.version - u.Version
	res.Staleness = s
	if s < 0 {
		a.rejects++
		return res // gradient against a future model: refused
	}
	if a.cfg.MaxStaleness > 0 && s > a.cfg.MaxStaleness {
		a.rejects++
		res.TooStale = true
		return res
	}

	// Ingest screen: copy first so the Clamp repair never mutates the
	// caller's (or a parked deterministic-mode update's) slice, then screen
	// the copy. Reject and Quarantine consume the arrival — in
	// deterministic mode its schedule position has already drained — but
	// nothing hostile enters the buffer.
	g := make([]float64, len(u.Grad))
	copy(g, u.Grad)
	switch sanitize.Screen(g, a.cfg.NonFinite) {
	case sanitize.Rejected:
		a.nonFiniteRejects++
		a.rejects++
		res.NonFinite = true
		return res
	case sanitize.Quarantined:
		// Accepted for accounting (the operator sees who ships garbage via
		// the counter and ingest bytes) but withheld from aggregation.
		a.nonFiniteQuarantines++
		a.ingestBytes += int64(wireBytes(u))
		res.NonFinite = true
		return res
	case sanitize.Clamped:
		a.nonFiniteClamps++
		res.NonFinite = true
	}

	q := a.queues[u.Client]
	if len(q) >= a.queueCap {
		// Drop-oldest: the evicted update already counted as an arrival,
		// so the step cadence is unaffected; the submitter learns via
		// Dropped that it is outrunning the aggregator.
		copy(q, q[1:])
		q = q[:len(q)-1]
		a.buffered--
		a.drops++
		res.Dropped = true
	}
	q = append(q, entry{client: u.Client, version: u.Version, seq: a.arrival, grad: g})
	a.arrival++
	a.queues[u.Client] = q
	a.buffered++
	a.ingestBytes += int64(wireBytes(u))
	res.Accepted = true
	res.Backpressure = len(q) >= a.queueCap

	a.sinceK++
	a.occSum += int64(a.buffered)
	a.occN++
	if a.sinceK >= a.cfg.K {
		a.stepLocked()
		a.sinceK = 0
		res.Stepped = true
		res.Version = a.version
		res.Done = a.done
	}
	return res
}

// stepLocked drains the whole buffer in arrival order, filters it through
// the defense, merges the survivors under staleness weights, and applies
// the server SGD step. Callers hold a.mu.
func (a *Aggregator) stepLocked() {
	buf := make([]entry, 0, a.buffered)
	for _, q := range a.queues {
		buf = append(buf, q...)
	}
	// Arrival order, not map order: the merge accumulates sequentially, so
	// this sort is what makes the aggregate byte-determined by the
	// schedule.
	sortEntries(buf)
	for c := range a.queues {
		delete(a.queues, c)
	}
	a.buffered = 0
	if len(buf) == 0 {
		return
	}

	grads := make([][]float64, len(buf))
	staleness := make([]int, len(buf))
	sum, max := 0, 0
	for i, e := range buf {
		grads[i] = e.grad
		s := a.version - e.version
		staleness[i] = s
		sum += s
		if s > max {
			max = s
		}
	}

	kept := len(buf)
	mergeGrads, mergeStale := grads, staleness
	var merged []float64
	if a.cfg.Rule != nil {
		res, err := a.cfg.Rule.Aggregate(grads)
		if err != nil {
			// A failing defense must not default to an undefended mean:
			// discard the buffer and skip the step.
			a.ruleErrors++
			a.logf("asyncfl: defense %s failed on %d-update buffer: %v (step skipped)", a.cfg.Rule.Name(), len(buf), err)
			return
		}
		if res.Selected != nil {
			if len(res.Selected) == 0 {
				a.emptySelects++
				a.logf("asyncfl: defense %s kept nothing of %d-update buffer (step skipped)", a.cfg.Rule.Name(), len(buf))
				return
			}
			kept = len(res.Selected)
			mergeGrads = make([][]float64, kept)
			mergeStale = make([]int, kept)
			for i, idx := range res.Selected {
				mergeGrads[i] = grads[idx]
				mergeStale[i] = staleness[idx]
			}
		} else {
			// Coordinate-wise rule: its aggregate is the merge; staleness
			// cannot be attributed per client through it.
			merged = res.Gradient
		}
	}
	if merged == nil {
		var err error
		merged, err = WeightedMerge(mergeGrads, mergeStale, a.cfg.Alpha)
		if err != nil {
			a.ruleErrors++
			a.logf("asyncfl: merge failed: %v (step skipped)", err)
			return
		}
	}
	if !tensor.AllFinite(merged) {
		// Defense-in-depth behind the ingest screen: a clamped-but-huge
		// buffer can still overflow the staleness-weighted merge, and a
		// caller-supplied rule is not necessarily output-guarded. A
		// non-finite merge must never reach the optimizer.
		a.ruleErrors++
		a.logf("asyncfl: non-finite merged aggregate from %d-update buffer (step skipped)", len(buf))
		return
	}
	if err := a.opt.Step(a.params, merged); err != nil {
		a.ruleErrors++
		a.logf("asyncfl: optimizer step failed: %v", err)
		return
	}
	a.steps++
	a.version++
	a.history = append(a.history, StepSummary{
		Step:          a.steps,
		Version:       a.version,
		Buffer:        len(buf),
		Kept:          kept,
		MeanStaleness: float64(sum) / float64(len(buf)),
		MaxStaleness:  max,
	})
	if a.cfg.TargetSteps > 0 && a.steps >= a.cfg.TargetSteps && !a.done {
		a.done = true
		close(a.doneCh)
		a.logf("asyncfl: target of %d steps reached at version %d", a.cfg.TargetSteps, a.version)
	}
}

// wireBytes is the ingest-accounting size of one update: its reported
// encoded size, falling back to the dense float64 size when unreported.
func wireBytes(u Update) int {
	if u.WireBytes != 0 {
		return u.WireBytes
	}
	return 8 * len(u.Grad)
}

// sortEntries orders buffer entries by arrival number (insertion sort: the
// per-client queues are already sorted runs and buffers are small).
func sortEntries(buf []entry) {
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].seq < buf[j-1].seq; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
}

// Dim returns the model dimension every submitted gradient must match.
// The dimension is fixed at construction, so no lock is needed.
func (a *Aggregator) Dim() int { return len(a.cfg.InitialParams) }

// Model returns the current version and a copy of the global parameters,
// plus whether training is done.
func (a *Aggregator) Model() (version int, params []float64, done bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.params))
	copy(out, a.params)
	return a.version, out, a.done
}

// Done returns a channel closed when TargetSteps aggregation steps have
// completed.
func (a *Aggregator) Done() <-chan struct{} { return a.doneCh }

// History returns the per-step summaries recorded so far.
func (a *Aggregator) History() []StepSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]StepSummary(nil), a.history...)
}

// Stats snapshots the aggregator's counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Version:              a.version,
		Steps:                a.steps,
		Arrivals:             a.arrival,
		Buffered:             a.buffered,
		Drops:                a.drops,
		Rejects:              a.rejects,
		RuleErrors:           a.ruleErrors,
		EmptySelects:         a.emptySelects,
		NonFiniteRejects:     a.nonFiniteRejects,
		NonFiniteClamps:      a.nonFiniteClamps,
		NonFiniteQuarantines: a.nonFiniteQuarantines,
		AliveSessions:        a.sessions.Alive(),
		Expired:              a.sessions.Expired(),
		PurgedUpdates:        a.purged,
		IngestBytes:          a.ingestBytes,
		Done:                 a.done,
	}
	if a.occN > 0 {
		st.MeanOccupancy = float64(a.occSum) / float64(a.occN)
	}
	return st
}
