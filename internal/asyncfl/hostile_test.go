package asyncfl

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/sanitize"
	"github.com/signguard/signguard/internal/tensor"
)

func hostileAggregator(t *testing.T, dim int, policy sanitize.Policy) *Aggregator {
	t.Helper()
	agg, err := New(Config{
		InitialParams: make([]float64, dim),
		K:             2,
		Alpha:         0.5,
		LR:            0.1,
		NonFinite:     policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func nanGrad(dim, at int) []float64 {
	g := make([]float64, dim)
	for i := range g {
		g[i] = 0.1
	}
	g[at] = math.NaN()
	return g
}

// The default policy (zero Config.NonFinite) is Reject: a NaN update never
// enters the buffer, the counter increments, the model stays finite.
func TestSubmitRejectsNonFiniteByDefault(t *testing.T) {
	agg := hostileAggregator(t, 4, 0)
	res, err := agg.Submit(Update{Client: "evil", Grad: nanGrad(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !res.NonFinite {
		t.Fatalf("NaN update: Accepted=%v NonFinite=%v, want refused+flagged", res.Accepted, res.NonFinite)
	}
	st := agg.Stats()
	if st.NonFiniteRejects != 1 {
		t.Errorf("NonFiniteRejects = %d, want 1", st.NonFiniteRejects)
	}
	if st.Buffered != 0 || st.Arrivals != 0 {
		t.Errorf("hostile update reached the buffer: %+v", st)
	}
	if _, params, _ := agg.Model(); !tensor.AllFinite(params) {
		t.Error("model went non-finite")
	}
}

// Clamp repairs the copy and accepts; the caller's slice must stay exactly
// as submitted (the transport may reuse or log it).
func TestSubmitClampRepairsCopyNotCaller(t *testing.T) {
	agg := hostileAggregator(t, 4, sanitize.Clamp)
	g := []float64{1, math.Inf(1), math.NaN(), -2}
	res, err := agg.Submit(Update{Client: "c", Grad: g})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || !res.NonFinite {
		t.Fatalf("clamped update: Accepted=%v NonFinite=%v, want accepted+flagged", res.Accepted, res.NonFinite)
	}
	if !math.IsInf(g[1], 1) || !math.IsNaN(g[2]) {
		t.Error("Submit mutated the caller's gradient slice")
	}
	st := agg.Stats()
	if st.NonFiniteClamps != 1 {
		t.Errorf("NonFiniteClamps = %d, want 1", st.NonFiniteClamps)
	}
	if st.Buffered != 1 {
		t.Errorf("Buffered = %d, want 1 (clamped update enters the buffer)", st.Buffered)
	}
}

// Quarantine withholds the update from the buffer but accounts its wire
// bytes, so the operator can see who ships garbage.
func TestSubmitQuarantineWithholdsButAccounts(t *testing.T) {
	agg := hostileAggregator(t, 4, sanitize.Quarantine)
	res, err := agg.Submit(Update{Client: "c", Grad: nanGrad(4, 0), WireBytes: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !res.NonFinite {
		t.Fatalf("quarantined update: Accepted=%v NonFinite=%v", res.Accepted, res.NonFinite)
	}
	st := agg.Stats()
	if st.NonFiniteQuarantines != 1 {
		t.Errorf("NonFiniteQuarantines = %d, want 1", st.NonFiniteQuarantines)
	}
	if st.Buffered != 0 {
		t.Errorf("Buffered = %d, want 0", st.Buffered)
	}
	if st.IngestBytes != 99 {
		t.Errorf("IngestBytes = %d, want 99 (quarantine accounts the wire cost)", st.IngestBytes)
	}
}

// Under sustained NaN bombardment interleaved with honest traffic, steps
// keep happening on the honest updates alone and the model stays finite —
// the serving-layer half of the crash-chain regression.
func TestHostileTrafficDoesNotWedgeSteps(t *testing.T) {
	agg := hostileAggregator(t, 8, sanitize.Reject)
	honest := make([]float64, 8)
	for i := range honest {
		honest[i] = 0.01 * float64(i+1)
	}
	for i := 0; i < 20; i++ {
		if _, err := agg.Submit(Update{Client: "evil", Grad: nanGrad(8, i%8)}); err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Submit(Update{Client: "honest", Grad: honest}); err != nil {
			t.Fatal(err)
		}
	}
	st := agg.Stats()
	if st.NonFiniteRejects != 20 {
		t.Errorf("NonFiniteRejects = %d, want 20", st.NonFiniteRejects)
	}
	if st.Steps == 0 {
		t.Error("no aggregation steps despite 20 honest arrivals")
	}
	if _, params, _ := agg.Model(); !tensor.AllFinite(params) {
		t.Error("model went non-finite under hostile traffic")
	}
}

// The staleness-weighted merge itself must refuse non-finite inputs: it is
// the last stop before the optimizer for library callers that bypass
// Submit's screen (or feed a clamped-but-overflowing buffer).
func TestWeightedMergeNonFiniteRegression(t *testing.T) {
	grads := [][]float64{
		{1, 2, 3},
		{4, math.NaN(), 6},
	}
	out, err := WeightedMerge(grads, []int{0, 1}, 0.5)
	if err == nil && !tensor.AllFinite(out) {
		t.Fatalf("WeightedMerge produced a non-finite merge without error: %v", out)
	}
}

// A buffer of clamped-to-the-limit gradients can overflow the merge sum to
// +Inf; the step must be skipped rather than fold Inf into the model.
func TestStepSkipsNonFiniteMerge(t *testing.T) {
	agg := hostileAggregator(t, 2, sanitize.Clamp)
	huge := []float64{math.MaxFloat64, math.MaxFloat64}
	for i := 0; i < 2; i++ {
		if _, err := agg.Submit(Update{Client: "c", Grad: huge}); err != nil {
			t.Fatal(err)
		}
	}
	st := agg.Stats()
	if st.Steps != 0 {
		_, params, _ := agg.Model()
		if !tensor.AllFinite(params) {
			t.Fatal("overflowing merge reached the model")
		}
	}
	if _, params, _ := agg.Model(); !tensor.AllFinite(params) {
		t.Error("model went non-finite")
	}
}

// Deterministic mode: a rejected hostile update must still consume its
// schedule position, or one NaN would wedge every later position forever.
func TestDeterministicRejectConsumesSchedulePosition(t *testing.T) {
	agg, err := New(Config{
		InitialParams: make([]float64, 4),
		K:             2,
		LR:            0.1,
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Submit(Update{Client: "evil", Seq: 0, Grad: nanGrad(4, 1)}); err != nil {
		t.Fatal(err)
	}
	honest := []float64{1, 2, 3, 4}
	res, err := agg.Submit(Update{Client: "honest", Seq: 1, Grad: honest})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("position 1 did not apply after the hostile position 0 drained: %+v", res)
	}
	if st := agg.Stats(); st.NonFiniteRejects != 1 {
		t.Errorf("NonFiniteRejects = %d, want 1", st.NonFiniteRejects)
	}
}
