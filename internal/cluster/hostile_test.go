package cluster

import (
	"errors"
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// A single NaN coordinate used to make every restart's inertia NaN, leave
// best == nil, and return (nil, nil) — the crash vector behind the
// SignGuard filter nil-deref. Cluster must now return an error, never a
// nil result with a nil error.
func TestKMeansNonFinitePointErrors(t *testing.T) {
	pts := twoBlobs(3, 10, 5)
	pts[4][1] = math.NaN()
	res, err := NewKMeans(2).Cluster(tensor.NewRNG(1), pts)
	if err == nil {
		t.Fatalf("Cluster accepted a NaN point: res=%v", res)
	}
	if !errors.Is(err, ErrNonFinitePoints) {
		t.Fatalf("error %v is not ErrNonFinitePoints", err)
	}
	if res != nil {
		t.Fatalf("Cluster returned non-nil result %v alongside error", res)
	}
}

func TestKMeansInfPointErrors(t *testing.T) {
	pts := twoBlobs(4, 8, 4)
	pts[0][0] = math.Inf(1)
	if _, err := NewKMeans(2).Cluster(tensor.NewRNG(1), pts); !errors.Is(err, ErrNonFinitePoints) {
		t.Fatalf("Cluster with +Inf point: err=%v, want ErrNonFinitePoints", err)
	}
}

// K > n is clamped to n (each point its own cluster); Centers and Sizes
// both have the clamped length. This pins the documented behavior.
func TestKMeansClampsKAbovePointCount(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	res, err := NewKMeans(7).Cluster(tensor.NewRNG(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != len(pts) {
		t.Fatalf("len(Centers) = %d, want clamped K = %d", len(res.Centers), len(pts))
	}
	if len(res.Sizes) != len(res.Centers) {
		t.Fatalf("len(Sizes) = %d != len(Centers) = %d", len(res.Sizes), len(res.Centers))
	}
	if len(res.Labels) != len(pts) {
		t.Fatalf("len(Labels) = %d, want %d", len(res.Labels), len(pts))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("Sizes sum to %d, want %d", total, len(pts))
	}
}

func TestMeanShiftNonFinitePointErrors(t *testing.T) {
	pts := twoBlobs(5, 10, 5)
	pts[7][0] = math.NaN()
	if _, err := NewMeanShift(0).Cluster(pts); !errors.Is(err, ErrNonFinitePoints) {
		t.Fatalf("MeanShift with NaN point: err=%v, want ErrNonFinitePoints", err)
	}
	pts2 := twoBlobs(6, 10, 5)
	pts2[2][1] = math.Inf(-1)
	if _, err := NewMeanShift(0).Cluster(pts2); !errors.Is(err, ErrNonFinitePoints) {
		t.Fatalf("MeanShift with -Inf point: err=%v, want ErrNonFinitePoints", err)
	}
}
