package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/tensor"
)

// twoBlobs returns two well-separated Gaussian clusters: nA points near
// (0,0) and nB points near (10,10).
func twoBlobs(seed int64, nA, nB int) [][]float64 {
	rng := tensor.NewRNG(seed)
	pts := make([][]float64, 0, nA+nB)
	for i := 0; i < nA; i++ {
		pts = append(pts, []float64{0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64()})
	}
	for i := 0; i < nB; i++ {
		pts = append(pts, []float64{10 + 0.1*rng.NormFloat64(), 10 + 0.1*rng.NormFloat64()})
	}
	return pts
}

func TestMeanShiftTwoBlobs(t *testing.T) {
	pts := twoBlobs(1, 30, 10)
	ms := NewMeanShift(0) // auto bandwidth
	res, err := ms.Cluster(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("found %d clusters, want 2 (sizes %v)", len(res.Centers), res.Sizes)
	}
	largest := res.Largest()
	if res.Sizes[largest] != 30 {
		t.Errorf("largest cluster has %d members, want 30", res.Sizes[largest])
	}
	members := res.Members(largest)
	for _, i := range members {
		if i >= 30 {
			t.Errorf("blob-B point %d assigned to the majority cluster", i)
		}
	}
	if len(members) != 30 {
		t.Errorf("Members returned %d indices", len(members))
	}
}

func TestMeanShiftSingleCluster(t *testing.T) {
	pts := twoBlobs(2, 25, 0)
	// With the flat kernel a fringe point can form its own tiny mode; the
	// invariant that matters for SignGuard is that the dominant cluster
	// absorbs the bulk of a homogeneous blob.
	res, err := NewMeanShift(0).Cluster(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sizes[res.Largest()]; got < 20 {
		t.Errorf("largest cluster has %d of 25 points", got)
	}
	// The Gaussian kernel has global support: a single blob must collapse
	// to a single mode.
	ms := NewMeanShift(0)
	ms.Kernel = GaussianKernel
	res, err = ms.Cluster(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 {
		t.Errorf("gaussian kernel found %d clusters in one blob", len(res.Centers))
	}
}

func TestMeanShiftIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	res, err := NewMeanShift(0).Cluster(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.Sizes[0] != 3 {
		t.Errorf("identical points: %d clusters, sizes %v", len(res.Centers), res.Sizes)
	}
}

func TestMeanShiftGaussianKernel(t *testing.T) {
	pts := twoBlobs(3, 20, 8)
	ms := NewMeanShift(2.0)
	ms.Kernel = GaussianKernel
	res, err := ms.Cluster(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sizes[res.Largest()]; got != 20 {
		t.Errorf("gaussian kernel largest cluster = %d, want 20", got)
	}
}

func TestMeanShiftErrors(t *testing.T) {
	if _, err := NewMeanShift(0).Cluster(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := NewMeanShift(0).Cluster([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("accepted ragged input")
	}
}

func TestEstimateBandwidth(t *testing.T) {
	h, err := EstimateBandwidth([][]float64{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Errorf("bandwidth = %v", h)
	}
	h, err = EstimateBandwidth([][]float64{{5}, {5}})
	if err != nil || h <= 0 {
		t.Errorf("identical-point bandwidth = %v, %v", h, err)
	}
	if _, err := EstimateBandwidth(nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	pts := twoBlobs(4, 28, 12)
	rng := tensor.NewRNG(9)
	res, err := NewKMeans(2).Cluster(rng, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	if got := res.Sizes[res.Largest()]; got != 28 {
		t.Errorf("largest cluster = %d, want 28", got)
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	res, err := NewKMeans(5).Cluster(tensor.NewRNG(1), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Errorf("K capped to %d, want 2", len(res.Centers))
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewKMeans(2).Cluster(rng, nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := NewKMeans(0).Cluster(rng, [][]float64{{1}}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := NewKMeans(2).Cluster(rng, [][]float64{{1}, {1, 2}}); err == nil {
		t.Error("accepted ragged input")
	}
}

// Property: every KMeans point is assigned to its nearest center.
func TestKMeansNearestAssignmentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		pts := make([][]float64, 12)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		res, err := NewKMeans(3).Cluster(rng, pts)
		if err != nil {
			return false
		}
		for i, p := range pts {
			assigned, _ := tensor.SquaredDistance(p, res.Centers[res.Labels[i]])
			for _, c := range res.Centers {
				d, _ := tensor.SquaredDistance(p, c)
				if d < assigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Mean-Shift modes stay inside the data bounding box (means of
// subsets can never escape the convex hull).
func TestMeanShiftModesInBoxQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		pts := make([][]float64, 15)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		}
		res, err := NewMeanShift(0).Cluster(pts)
		if err != nil {
			return false
		}
		for dim := 0; dim < 2; dim++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, p := range pts {
				lo = math.Min(lo, p[dim])
				hi = math.Max(hi, p[dim])
			}
			for _, c := range res.Centers {
				if c[dim] < lo-1e-6 || c[dim] > hi+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: labels always index a valid center and sizes sum to n.
func TestClusterInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + int(seed%7+7)%7
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		res, err := NewMeanShift(0).Cluster(pts)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != n {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= len(res.Centers) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
