package cluster

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// decodePoints deterministically reinterprets raw fuzz bytes as an n×dim
// point set: every 8 bytes is one float64 coordinate (any bit pattern, so
// NaN and ±Inf payloads arise naturally), rows are filled in order.
func decodePoints(data []byte, dim int) [][]float64 {
	if dim < 1 {
		dim = 1
	}
	vals := len(data) / 8
	n := vals / dim
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			off := (i*dim + j) * 8
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		}
		pts = append(pts, row)
	}
	return pts
}

// checkResult asserts the invariants every successful clustering result
// must satisfy: non-nil, consistent lengths, labels in range, sizes
// consistent with labels, and a dereferenceable Largest().
func checkResult(t *testing.T, res *Result, n int) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result with nil error")
	}
	if len(res.Labels) != n {
		t.Fatalf("got %d labels for %d points", len(res.Labels), n)
	}
	if len(res.Centers) != len(res.Sizes) {
		t.Fatalf("len(Centers)=%d != len(Sizes)=%d", len(res.Centers), len(res.Sizes))
	}
	counts := make([]int, len(res.Sizes))
	for _, l := range res.Labels {
		if l < 0 || l >= len(res.Centers) {
			t.Fatalf("label %d out of [0,%d)", l, len(res.Centers))
		}
		counts[l]++
	}
	for c, s := range res.Sizes {
		if counts[c] != s {
			t.Fatalf("Sizes[%d]=%d but %d points carry the label", c, s, counts[c])
		}
	}
	if n > 0 {
		largest := res.Largest()
		if largest < 0 || largest >= len(res.Sizes) {
			t.Fatalf("Largest()=%d out of range with %d points", largest, n)
		}
		if len(res.Members(largest)) == 0 {
			t.Fatal("largest cluster has no members")
		}
	}
}

// FuzzKMeansCluster feeds arbitrary bit patterns — including hostile
// NaN/±Inf coordinates — through KMeans and asserts it either errors or
// returns a structurally valid result, never panics, never (nil, nil).
func FuzzKMeansCluster(f *testing.F) {
	f.Add([]byte{}, uint8(2), uint8(2), int64(1))
	seed := make([]byte, 6*8)
	f.Add(seed, uint8(2), uint8(2), int64(7))
	nan := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan, uint8(2), uint8(1), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, k, dim uint8, rngSeed int64) {
		pts := decodePoints(data, int(dim%8))
		km := NewKMeans(int(k % 16))
		km.MaxIter = 20
		res, err := km.Cluster(tensor.NewRNG(rngSeed), pts)
		if err != nil {
			return
		}
		checkResult(t, res, len(pts))
	})
}

// FuzzMeanShiftCluster is the Mean-Shift twin of FuzzKMeansCluster.
func FuzzMeanShiftCluster(f *testing.F) {
	f.Add([]byte{}, float64(0))
	f.Add(make([]byte, 6*8), float64(1))
	inf := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(inf, math.Float64bits(math.Inf(-1)))
	f.Add(inf, float64(0.5))
	f.Fuzz(func(t *testing.T, data []byte, bandwidth float64) {
		pts := decodePoints(data, 3)
		if len(pts) > 64 {
			pts = pts[:64] // bound the O(n²) pairwise work per exec
		}
		ms := NewMeanShift(bandwidth)
		ms.MaxIter = 20
		res, err := ms.Cluster(pts)
		if err != nil {
			return
		}
		checkResult(t, res, len(pts))
	})
}
