package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/tensor"
)

// KMeans is Lloyd's algorithm with k-means++ initialization. The paper notes
// that a 2-cluster KMeans suffices for the SignGuard filter when all
// malicious clients send an identical attack vector; Mean-Shift is preferred
// in general because it adapts the number of clusters.
type KMeans struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIter bounds the Lloyd iterations; defaults to 100.
	MaxIter int
	// Tol is the total centroid-movement threshold for convergence.
	Tol float64
	// Restarts is the number of k-means++ restarts; the run with the
	// lowest inertia wins. Defaults to 3.
	Restarts int
}

// NewKMeans returns a KMeans clusterer with k clusters and default settings.
func NewKMeans(k int) *KMeans {
	return &KMeans{K: k, MaxIter: 100, Tol: 1e-6, Restarts: 3}
}

// ErrNonFinitePoints marks clustering input carrying NaN or ±Inf
// coordinates: MeanShift refuses such points up front, and KMeans returns
// it when no restart converges to a finite inertia (a NaN inertia fails
// every "keep the lowest" comparison, so no winner can ever be selected).
var ErrNonFinitePoints = errors.New("cluster: non-finite points")

// Cluster partitions the points into K clusters. The rng drives the
// k-means++ seeding; pass a seeded source for deterministic results.
//
// When K exceeds the number of points, K is clamped to len(points): more
// clusters than points is unsatisfiable, and each point becomes its own
// cluster. Result.Centers and Result.Sizes have the clamped length, so
// len(Centers) == len(Sizes) <= K always holds.
//
// Restarts whose inertia is non-finite (a NaN or ±Inf coordinate poisons
// every squared distance) are skipped; if no restart produces a finite
// inertia, Cluster returns ErrNonFinitePoints instead of a nil Result.
func (km *KMeans) Cluster(rng *rand.Rand, points [][]float64) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if km.K < 1 {
		return nil, fmt.Errorf("cluster: KMeans requires K >= 1, got %d", km.K)
	}
	k := km.K
	if k > n {
		k = n
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), d)
		}
	}
	maxIter := km.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := km.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	var best *Result
	bestInertia := math.Inf(1)
	for r := 0; r < restarts; r++ {
		res, inertia := km.run(rng, points, k, maxIter)
		// A NaN inertia fails every comparison, so without this guard a
		// hostile point would leave best nil and the caller would receive
		// (nil, nil) — the crash this check exists to prevent.
		if math.IsNaN(inertia) || math.IsInf(inertia, 0) {
			continue
		}
		if inertia < bestInertia {
			best, bestInertia = res, inertia
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no restart converged to a finite inertia", ErrNonFinitePoints)
	}
	return best, nil
}

func (km *KMeans) run(rng *rand.Rand, points [][]float64, k, maxIter int) (*Result, float64) {
	centers := seedPlusPlus(rng, points, k)
	labels := make([]int, len(points))
	tol := km.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	for it := 0; it < maxIter; it++ {
		// Assignment step.
		for i, p := range points {
			labels[i] = nearestCenter(p, centers)
		}
		// Update step.
		moved := updateCenters(points, labels, centers)
		if moved < tol {
			break
		}
	}
	sizes := make([]int, k)
	var inertia float64
	for i, p := range points {
		sizes[labels[i]]++
		d2, _ := tensor.SquaredDistance(p, centers[labels[i]])
		inertia += d2
	}
	return &Result{Labels: labels, Centers: centers, Sizes: sizes}, inertia
}

// seedPlusPlus implements k-means++ seeding: the first center is uniform,
// each subsequent center is drawn proportionally to the squared distance to
// the nearest already-chosen center.
func seedPlusPlus(rng *rand.Rand, points [][]float64, k int) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, tensor.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var total float64
		for i, p := range points {
			dist2, _ := tensor.SquaredDistance(p, centers[len(centers)-1])
			if len(centers) == 1 || dist2 < d2[i] {
				d2[i] = dist2
			}
			total += d2[i]
		}
		var next int
		if total <= 0 {
			// All remaining points coincide with a center; pick uniformly.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, w := range d2 {
				acc += w
				if acc >= target {
					next = i
					break
				}
			}
		}
		centers = append(centers, tensor.Clone(points[next]))
	}
	return centers
}

func nearestCenter(p []float64, centers [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range centers {
		d2, _ := tensor.SquaredDistance(p, ctr)
		if d2 < bestD {
			best, bestD = c, d2
		}
	}
	return best
}

// updateCenters recomputes each centroid as the mean of its members and
// returns the total distance moved. Empty clusters keep their old center.
func updateCenters(points [][]float64, labels []int, centers [][]float64) float64 {
	k := len(centers)
	d := len(centers[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, d)
	}
	for i, p := range points {
		c := labels[i]
		counts[c]++
		for j, v := range p {
			sums[c][j] += v
		}
	}
	var moved float64
	for c := range centers {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
		dist, _ := tensor.Distance(sums[c], centers[c])
		moved += dist
		copy(centers[c], sums[c])
	}
	return moved
}
