// Package cluster provides the unsupervised clustering algorithms used by
// the SignGuard sign-based filter: Mean-Shift (the paper's default, with an
// adaptive number of clusters) and KMeans (sufficient when all malicious
// clients send an identical attack vector), plus small utilities for
// selecting the majority cluster.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// ErrNoPoints is returned when clustering is requested over an empty set.
var ErrNoPoints = errors.New("cluster: no points")

// Kernel selects the Mean-Shift kernel profile.
type Kernel int

const (
	// FlatKernel weights every neighbour within the bandwidth equally.
	FlatKernel Kernel = iota + 1
	// GaussianKernel weights neighbours by exp(-||x-y||²/(2h²)).
	GaussianKernel
)

func (k Kernel) String() string {
	switch k {
	case FlatKernel:
		return "flat"
	case GaussianKernel:
		return "gaussian"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// MeanShift is a configurable Mean-Shift clusterer. The zero value is not
// usable; construct with NewMeanShift.
type MeanShift struct {
	// Bandwidth is the kernel radius h. If <= 0 it is estimated per call
	// as a quantile of the pairwise distances (see EstimateBandwidth).
	Bandwidth float64
	// Kernel selects the kernel profile; defaults to FlatKernel.
	Kernel Kernel
	// MaxIter bounds the shift iterations per seed point.
	MaxIter int
	// Tol is the movement threshold below which a point is converged.
	Tol float64
	// MergeRadiusFactor scales the bandwidth to decide when two converged
	// modes are the same cluster.
	MergeRadiusFactor float64
}

// NewMeanShift returns a Mean-Shift clusterer with the given bandwidth
// (<= 0 enables automatic estimation) and sensible defaults.
func NewMeanShift(bandwidth float64) *MeanShift {
	return &MeanShift{
		Bandwidth:         bandwidth,
		Kernel:            FlatKernel,
		MaxIter:           100,
		Tol:               1e-4,
		MergeRadiusFactor: 0.5,
	}
}

// Result is the outcome of a clustering run.
type Result struct {
	// Labels assigns each input point a cluster id in [0, len(Centers)).
	Labels []int
	// Centers holds one representative (mode or centroid) per cluster.
	Centers [][]float64
	// Sizes[c] is the number of points with label c.
	Sizes []int
}

// Largest returns the id of the cluster with the most members, breaking
// ties toward the smaller id (deterministic).
func (r *Result) Largest() int {
	best, bestSize := -1, -1
	for c, s := range r.Sizes {
		if s > bestSize {
			best, bestSize = c, s
		}
	}
	return best
}

// Members returns the indices of the points assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == c {
			out = append(out, i)
		}
	}
	return out
}

// EstimateBandwidth returns a data-driven bandwidth: the median non-zero
// pairwise distance between points, with a floor to keep the kernel
// non-degenerate when many points coincide.
func EstimateBandwidth(points [][]float64) (float64, error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	dists, err := stats.PairwiseDistances(points)
	if err != nil {
		return 0, err
	}
	var flat []float64
	for i := range dists {
		for j := i + 1; j < len(dists); j++ {
			if d := dists[i][j]; d > 0 {
				flat = append(flat, d)
			}
		}
	}
	if len(flat) == 0 {
		// All points identical: any positive bandwidth yields one cluster.
		return 1e-3, nil
	}
	med, err := stats.Median(flat)
	if err != nil {
		return 0, err
	}
	if med < 1e-8 {
		med = 1e-8
	}
	return med, nil
}

// Cluster runs Mean-Shift over the points and groups the converged modes.
func (ms *MeanShift) Cluster(points [][]float64) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), d)
		}
		// A NaN coordinate zeroes every kernel weight for its point (all
		// distance comparisons fail), silently isolating it as its own
		// mode and corrupting the bandwidth estimate; an Inf coordinate
		// overflows the squared distances. Refuse instead of degrading.
		if !tensor.AllFinite(p) {
			return nil, fmt.Errorf("%w: point %d has a non-finite coordinate", ErrNonFinitePoints, i)
		}
	}
	h := ms.Bandwidth
	if h <= 0 {
		var err error
		h, err = EstimateBandwidth(points)
		if err != nil {
			return nil, err
		}
	}
	kernel := ms.Kernel
	if kernel == 0 {
		kernel = FlatKernel
	}
	maxIter := ms.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := ms.Tol
	if tol <= 0 {
		tol = 1e-4
	}

	modes := make([][]float64, n)
	for i := range points {
		modes[i] = ms.shift(points, points[i], h, kernel, maxIter, tol)
	}

	mergeRadius := h * ms.MergeRadiusFactor
	if mergeRadius <= 0 {
		mergeRadius = h * 0.5
	}
	centers, labels := mergeModes(modes, mergeRadius)
	sizes := make([]int, len(centers))
	for _, l := range labels {
		sizes[l]++
	}
	return &Result{Labels: labels, Centers: centers, Sizes: sizes}, nil
}

// shift performs the mean-shift ascent for one seed point.
func (ms *MeanShift) shift(points [][]float64, seed []float64, h float64, kernel Kernel, maxIter int, tol float64) []float64 {
	x := tensor.Clone(seed)
	next := make([]float64, len(x))
	for it := 0; it < maxIter; it++ {
		tensor.Fill(next, 0)
		var total float64
		for _, p := range points {
			d2, _ := tensor.SquaredDistance(x, p)
			var w float64
			switch kernel {
			case GaussianKernel:
				w = math.Exp(-d2 / (2 * h * h))
			default: // FlatKernel
				if d2 <= h*h {
					w = 1
				}
			}
			if w == 0 {
				continue
			}
			total += w
			for j, v := range p {
				next[j] += w * v
			}
		}
		if total == 0 {
			// No neighbours within the bandwidth (flat kernel, isolated
			// point); the point itself is its mode.
			return x
		}
		for j := range next {
			next[j] /= total
		}
		move, _ := tensor.Distance(next, x)
		copy(x, next)
		if move < tol {
			break
		}
	}
	return x
}

// mergeModes groups converged modes lying within radius of each other and
// returns the cluster centers along with a label per input mode. Greedy,
// first-come ordering keeps the procedure deterministic.
func mergeModes(modes [][]float64, radius float64) (centers [][]float64, labels []int) {
	labels = make([]int, len(modes))
	for i, m := range modes {
		assigned := -1
		for c, ctr := range centers {
			if d, _ := tensor.Distance(m, ctr); d <= radius {
				assigned = c
				break
			}
		}
		if assigned == -1 {
			centers = append(centers, tensor.Clone(m))
			assigned = len(centers) - 1
		}
		labels[i] = assigned
	}
	// Refine centers to the mean of their members for stability.
	counts := make([]int, len(centers))
	sums := make([][]float64, len(centers))
	for c := range centers {
		sums[c] = make([]float64, len(centers[c]))
	}
	for i, l := range labels {
		counts[l]++
		for j, v := range modes[i] {
			sums[l][j] += v
		}
	}
	for c := range centers {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			centers[c][j] = sums[c][j] / float64(counts[c])
		}
	}
	return centers, labels
}
