package attack

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// makeContext builds an attack context with nBenign + nByz honest
// gradients drawn around center with the given spread.
func makeContext(seed int64, nBenign, nByz, d int, center, spread float64) *Context {
	rng := tensor.NewRNG(seed)
	gen := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			g := make([]float64, d)
			for j := range g {
				g[j] = center + spread*rng.NormFloat64()
			}
			out[i] = g
		}
		return out
	}
	return &Context{Benign: gen(nBenign), ByzOwn: gen(nByz), Rng: tensor.NewRNG(seed + 1)}
}

func TestContextValidation(t *testing.T) {
	ctx := makeContext(1, 5, 2, 4, 0, 1)
	if ctx.N() != 7 || ctx.NumByz() != 2 {
		t.Errorf("N=%d NumByz=%d", ctx.N(), ctx.NumByz())
	}
	bad := &Context{Benign: ctx.Benign, ByzOwn: nil, Rng: ctx.Rng}
	if _, err := NewNone().Craft(bad); err == nil {
		t.Error("accepted zero Byzantine clients")
	}
	bad2 := &Context{Benign: [][]float64{{1, 2}}, ByzOwn: [][]float64{{1}}, Rng: ctx.Rng}
	if _, err := NewNone().Craft(bad2); err == nil {
		t.Error("accepted mismatched dimensions")
	}
	bad3 := &Context{Benign: ctx.Benign, ByzOwn: ctx.ByzOwn}
	if _, err := NewNone().Craft(bad3); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestNoneReturnsOwnGradients(t *testing.T) {
	ctx := makeContext(2, 4, 3, 5, 1, 0.5)
	out, err := NewNone().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d gradients", len(out))
	}
	for i := range out {
		if !tensor.Equal(out[i], ctx.ByzOwn[i], 0) {
			t.Errorf("gradient %d differs from honest", i)
		}
	}
	// Must be copies, not aliases.
	out[0][0] = 1e9
	if ctx.ByzOwn[0][0] == 1e9 {
		t.Error("None aliases the honest gradients")
	}
}

func TestRandomAttackDistribution(t *testing.T) {
	ctx := makeContext(3, 5, 4, 2000, 7, 0.1)
	a := NewRandom()
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out {
		m, _ := stats.Mean(g)
		s, _ := stats.StdDev(g)
		if math.Abs(m) > 0.06 || math.Abs(s-0.5) > 0.05 {
			t.Errorf("random gradient stats mean=%v std=%v, want ~0/0.5", m, s)
		}
	}
}

func TestNoiseAttackPerturbsOwn(t *testing.T) {
	ctx := makeContext(4, 5, 2, 1000, 3, 0.01)
	out, err := NewNoise().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := tensor.Sub(out[0], ctx.ByzOwn[0])
	if err != nil {
		t.Fatal(err)
	}
	s, _ := stats.StdDev(diff)
	if math.Abs(s-0.5) > 0.05 {
		t.Errorf("noise std = %v, want ~0.5", s)
	}
}

func TestSignFlipAndReverse(t *testing.T) {
	ctx := makeContext(5, 4, 2, 6, 1, 0.3)
	out, err := NewSignFlip().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if !tensor.Equal(out[i], tensor.Scale(ctx.ByzOwn[i], -1), 1e-12) {
			t.Errorf("sign-flip gradient %d wrong", i)
		}
	}
	rev, err := NewReverse(100).Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rev {
		if !tensor.Equal(rev[i], tensor.Scale(ctx.ByzOwn[i], -100), 1e-9) {
			t.Errorf("reverse gradient %d wrong", i)
		}
	}
	if _, err := NewReverse(-1).Craft(ctx); err == nil {
		t.Error("Reverse accepted non-positive scale")
	}
}

func TestLabelFlipPoisonsData(t *testing.T) {
	lf := NewLabelFlip()
	xs := []data.Example{{Label: 1}, {Label: 8}}
	poisoned, err := lf.PoisonData(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned[0].Label != 8 || poisoned[1].Label != 1 {
		t.Errorf("poisoned labels = %d, %d", poisoned[0].Label, poisoned[1].Label)
	}
	ctx := makeContext(6, 3, 2, 4, 0, 1)
	out, err := lf.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out[0], ctx.ByzOwn[0], 0) {
		t.Error("LabelFlip.Craft should pass gradients through")
	}
}

func TestLIEEquation(t *testing.T) {
	// LIE must produce exactly µ − z·σ elementwise.
	ctx := makeContext(7, 10, 3, 50, 2, 1)
	a := NewLIE(0.3)
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mean, std, err := stats.CoordinateMeanStd(ctx.AllHonest())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(mean))
	for j := range want {
		want[j] = mean[j] - 0.3*std[j]
	}
	for i := range out {
		if !tensor.Equal(out[i], want, 1e-9) {
			t.Errorf("LIE gradient %d deviates from µ−zσ", i)
		}
	}
}

func TestLIEAutoZ(t *testing.T) {
	ctx := makeContext(8, 40, 10, 20, 1, 0.5)
	a := NewLIE(0) // derive z_max from Eq. 2
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mean, std, _ := stats.CoordinateMeanStd(ctx.AllHonest())
	zWant := stats.LIEZMax(50, 10)
	for j := 0; j < 20; j++ {
		want := mean[j] - zWant*std[j]
		if math.Abs(out[0][j]-want) > 1e-9 {
			t.Fatalf("auto-z coordinate %d = %v, want %v", j, out[0][j], want)
		}
	}
}

// TestProposition1 numerically checks the paper's Proposition 1: the LIE
// gradient can be closer to the true average — and more cosine-similar to
// it — than some honest gradient, which is why distance- and
// similarity-based defenses miss it.
func TestProposition1(t *testing.T) {
	ctx := makeContext(9, 40, 10, 500, 0.05, 1.0)
	honest := ctx.AllHonest()
	avg, _ := tensor.Mean(honest)
	a := NewLIE(0.1) // small z per the proposition
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gm := out[0]
	dGm, _ := tensor.Distance(gm, avg)
	cGm, _ := stats.CosineSimilarity(gm, avg)
	var closerExists, moreSimilarExists bool
	for _, g := range honest {
		d, _ := tensor.Distance(g, avg)
		c, _ := stats.CosineSimilarity(g, avg)
		if dGm < d {
			closerExists = true
		}
		if cGm > c {
			moreSimilarExists = true
		}
	}
	if !closerExists {
		t.Error("no honest gradient farther from the mean than the LIE gradient (Eq. 6)")
	}
	if !moreSimilarExists {
		t.Error("no honest gradient less cosine-similar than the LIE gradient (Eq. 7)")
	}
	// ...while the SIGN statistics give it away (Section III): with honest
	// coordinates centered near zero and σ ≈ 1, µ−zσ is negative in far
	// more coordinates than an honest gradient.
	ssHonest, _ := stats.ComputeSignStats(avg)
	ssLIE, _ := stats.ComputeSignStats(gm)
	if ssLIE.Neg <= ssHonest.Neg {
		t.Errorf("LIE should shift mass to negative signs: honest neg=%v, LIE neg=%v",
			ssHonest.Neg, ssLIE.Neg)
	}
}

func TestByzMeanControlsTheMean(t *testing.T) {
	ctx := makeContext(10, 40, 10, 30, 1, 0.5)
	a := NewByzMean()
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d gradients", len(out))
	}
	gm1 := out[0]
	// The defining property (Eq. 8): mean over all submitted gradients
	// (benign + malicious) equals g_m1 exactly.
	all := append(tensor.CloneAll(ctx.Benign), out...)
	mean, _ := tensor.Mean(all)
	if !tensor.Equal(mean, gm1, 1e-6) {
		d, _ := tensor.Distance(mean, gm1)
		t.Errorf("global mean deviates from g_m1 by %v", d)
	}
}

func TestByzMeanSingleByzantine(t *testing.T) {
	ctx := makeContext(11, 10, 1, 8, 0, 1)
	out, err := NewByzMean().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d gradients", len(out))
	}
}

func TestMinMaxConstraint(t *testing.T) {
	ctx := makeContext(12, 30, 8, 40, 0.5, 1)
	out, err := NewMinMax().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gm := out[0]
	honest := ctx.AllHonest()
	var maxPair, maxToGm float64
	for i := range honest {
		for j := i + 1; j < len(honest); j++ {
			d, _ := tensor.SquaredDistance(honest[i], honest[j])
			maxPair = math.Max(maxPair, d)
		}
		d, _ := tensor.SquaredDistance(gm, honest[i])
		maxToGm = math.Max(maxToGm, d)
	}
	if maxToGm > maxPair*(1+1e-6) {
		t.Errorf("Min-Max constraint violated: %v > %v", maxToGm, maxPair)
	}
	// The attack should exploit most of the budget (γ near the boundary).
	if maxToGm < 0.5*maxPair {
		t.Errorf("Min-Max too timid: %v vs budget %v", maxToGm, maxPair)
	}
	// All Byzantine clients send the same vector.
	for i := 1; i < len(out); i++ {
		if !tensor.Equal(out[i], gm, 0) {
			t.Error("Min-Max cohort not unanimous")
		}
	}
}

func TestMinSumConstraint(t *testing.T) {
	ctx := makeContext(13, 30, 8, 40, 0.5, 1)
	out, err := NewMinSum().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gm := out[0]
	honest := ctx.AllHonest()
	var maxTotal float64
	for i := range honest {
		var total float64
		for j := range honest {
			d, _ := tensor.SquaredDistance(honest[i], honest[j])
			total += d
		}
		maxTotal = math.Max(maxTotal, total)
	}
	var gmTotal float64
	for _, g := range honest {
		d, _ := tensor.SquaredDistance(gm, g)
		gmTotal += d
	}
	if gmTotal > maxTotal*(1+1e-6) {
		t.Errorf("Min-Sum constraint violated: %v > %v", gmTotal, maxTotal)
	}
}

func TestMinMaxPerturbationVariants(t *testing.T) {
	ctx := makeContext(14, 20, 5, 25, 1, 0.5)
	for _, p := range []Perturbation{InverseStd, InverseUnit, InverseSign} {
		a := NewMinMaxWithPerturbation(p)
		if _, err := a.Craft(ctx); err != nil {
			t.Errorf("perturbation %v: %v", p, err)
		}
	}
	if InverseStd.String() == "" || Perturbation(99).String() == "" {
		t.Error("Perturbation.String should never be empty")
	}
}

func TestTimeVarying(t *testing.T) {
	pool := []Attack{NewNone(), NewSignFlip()}
	tv, err := NewTimeVarying(pool, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx := makeContext(15, 6, 2, 5, 1, 0.2)
	var names []string
	for round := 0; round < 30; round++ {
		if _, err := tv.Craft(ctx); err != nil {
			t.Fatal(err)
		}
		names = append(names, tv.Current().Name())
	}
	// The active attack must be constant within each switch window.
	for w := 0; w+3 <= len(names); w += 3 {
		if names[w] != names[w+1] || names[w] != names[w+2] {
			t.Errorf("attack changed inside window starting at %d: %v", w, names[w:w+3])
		}
	}
	// Over 10 windows both candidates should appear (probabilistically
	// certain with this seed).
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if len(seen) < 2 {
		t.Errorf("only drew %v", seen)
	}
	if _, err := NewTimeVarying(nil, 3, 1); err == nil {
		t.Error("accepted empty pool")
	}
	if _, err := NewTimeVarying(pool, 0, 1); err == nil {
		t.Error("accepted zero switch interval")
	}
	if len(DefaultTimeVaryingPool()) < 6 {
		t.Error("default pool suspiciously small")
	}
}

// Property: every attack returns exactly NumByz gradients of the right
// dimension, and never mutates the honest inputs.
func TestAttackContractQuick(t *testing.T) {
	attacks := []Attack{
		NewNone(), NewRandom(), NewNoise(), NewSignFlip(), NewReverse(3),
		NewLabelFlip(), NewLIE(0.3), NewByzMean(), NewMinMax(), NewMinSum(),
	}
	f := func(seed int64) bool {
		ctx := makeContext(seed, 8, 3, 12, 0.5, 1)
		before := tensor.CloneAll(ctx.AllHonest())
		for _, a := range attacks {
			out, err := a.Craft(ctx)
			if err != nil {
				return false
			}
			if len(out) != 3 {
				return false
			}
			for _, g := range out {
				if len(g) != 12 || !tensor.AllFinite(g) {
					return false
				}
			}
		}
		after := ctx.AllHonest()
		for i := range before {
			if !tensor.Equal(before[i], after[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
