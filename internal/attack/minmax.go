package attack

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// Perturbation selects the direction ∇p used by the Min-Max and Min-Sum
// attacks (Shejwalkar & Houmansadr, NDSS'21).
type Perturbation int

const (
	// InverseStd uses −std(g) — the paper's default choice.
	InverseStd Perturbation = iota + 1
	// InverseUnit uses −mean(g)/||mean(g)||.
	InverseUnit
	// InverseSign uses −sign(mean(g)).
	InverseSign
)

func (p Perturbation) String() string {
	switch p {
	case InverseStd:
		return "inverse-std"
	case InverseUnit:
		return "inverse-unit"
	case InverseSign:
		return "inverse-sign"
	default:
		return fmt.Sprintf("Perturbation(%d)", int(p))
	}
}

// minMaxSum is the shared engine of the Min-Max and Min-Sum attacks. The
// malicious gradient is gm = avg(honest) + γ·∇p with the largest γ that
// still satisfies the attack's distance constraint, found by doubling then
// bisection (the "halving search" of the original paper). All Byzantine
// clients send the same gm.
//
// The constraint threshold (a function of the honest gradients only) is
// computed once per round; each bisection probe then only measures the
// candidate's distances to the honest set.
type minMaxSum struct {
	perturb Perturbation
	// bound computes the round's constraint threshold from the honest
	// gradients.
	bound func(honest [][]float64) (float64, error)
	// measure computes the candidate statistic compared against the bound.
	measure func(gm []float64, honest [][]float64) (float64, error)
}

// Craft computes the attack vector and replicates it across the cohort.
func (a *minMaxSum) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	honest := ctx.AllHonest()
	avg, err := tensor.Mean(honest)
	if err != nil {
		return nil, err
	}
	dir, err := a.direction(honest, avg)
	if err != nil {
		return nil, err
	}
	threshold, err := a.bound(honest)
	if err != nil {
		return nil, err
	}

	feasible := func(gamma float64) (bool, error) {
		gm := tensor.Clone(avg)
		if err := tensor.Axpy(gm, gamma, dir); err != nil {
			return false, err
		}
		v, err := a.measure(gm, honest)
		if err != nil {
			return false, err
		}
		return v <= threshold, nil
	}

	ok, err := feasible(0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("attack: min-max/min-sum constraint infeasible at γ=0")
	}
	// Doubling phase: find an infeasible upper bound.
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		ok, err := feasible(hi)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		lo, hi = hi, hi*2
	}
	// Bisection phase.
	for i := 0; i < 40; i++ {
		mid := 0.5 * (lo + hi)
		ok, err := feasible(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	gm := tensor.Clone(avg)
	if err := tensor.Axpy(gm, lo, dir); err != nil {
		return nil, err
	}
	out := make([][]float64, ctx.NumByz())
	for i := range out {
		out[i] = tensor.Clone(gm)
	}
	return out, nil
}

func (a *minMaxSum) direction(honest [][]float64, avg []float64) ([]float64, error) {
	switch a.perturb {
	case InverseUnit:
		dir := tensor.Clone(avg)
		n := tensor.Norm(dir)
		if n == 0 {
			return nil, errors.New("attack: zero mean gradient, inverse-unit undefined")
		}
		tensor.ScaleInPlace(dir, -1/n)
		return dir, nil
	case InverseSign:
		dir := tensor.Sign(avg)
		tensor.ScaleInPlace(dir, -1)
		return dir, nil
	default: // InverseStd
		_, std, err := stats.CoordinateMeanStd(honest)
		if err != nil {
			return nil, err
		}
		tensor.ScaleInPlace(std, -1)
		return std, nil
	}
}

// MinMax keeps the malicious gradient within the maximum pairwise distance
// of the honest gradients (Eq. 14): max_i ||gm − g_i|| ≤ max_{i,j} ||g_i − g_j||.
type MinMax struct {
	engine minMaxSum
}

var _ Attack = (*MinMax)(nil)

// NewMinMax returns the Min-Max attack with the paper's default
// inverse-std perturbation.
func NewMinMax() *MinMax { return NewMinMaxWithPerturbation(InverseStd) }

// NewMinMaxWithPerturbation selects the perturbation direction.
func NewMinMaxWithPerturbation(p Perturbation) *MinMax {
	m := &MinMax{}
	m.engine = minMaxSum{perturb: p, bound: maxPairwiseSq, measure: maxDistSqTo}
	return m
}

// maxPairwiseSq is the Min-Max constraint threshold: the largest squared
// pairwise distance among the honest gradients (Eq. 14's right-hand side).
func maxPairwiseSq(honest [][]float64) (float64, error) {
	var maxPair float64
	for i := 0; i < len(honest); i++ {
		for j := i + 1; j < len(honest); j++ {
			d2, err := tensor.SquaredDistance(honest[i], honest[j])
			if err != nil {
				return 0, err
			}
			if d2 > maxPair {
				maxPair = d2
			}
		}
	}
	return maxPair, nil
}

// maxDistSqTo is the Min-Max candidate statistic: the largest squared
// distance from gm to any honest gradient.
func maxDistSqTo(gm []float64, honest [][]float64) (float64, error) {
	var maxToGm float64
	for _, g := range honest {
		d2, err := tensor.SquaredDistance(gm, g)
		if err != nil {
			return 0, err
		}
		if d2 > maxToGm {
			maxToGm = d2
		}
	}
	return maxToGm, nil
}

// Name implements Attack.
func (*MinMax) Name() string { return "Min-Max" }

// Craft implements Attack.
func (m *MinMax) Craft(ctx *Context) ([][]float64, error) { return m.engine.Craft(ctx) }

// MinSum keeps the malicious gradient's total squared distance to the
// honest gradients within the worst honest gradient's total (Eq. 15):
// Σ_i ||gm − g_i||² ≤ max_i Σ_j ||g_i − g_j||².
type MinSum struct {
	engine minMaxSum
}

var _ Attack = (*MinSum)(nil)

// NewMinSum returns the Min-Sum attack with the paper's default
// inverse-std perturbation.
func NewMinSum() *MinSum { return NewMinSumWithPerturbation(InverseStd) }

// NewMinSumWithPerturbation selects the perturbation direction.
func NewMinSumWithPerturbation(p Perturbation) *MinSum {
	m := &MinSum{}
	m.engine = minMaxSum{
		perturb: p,
		bound: func(honest [][]float64) (float64, error) {
			var maxTotal float64
			for i := range honest {
				var total float64
				for j := range honest {
					d2, err := tensor.SquaredDistance(honest[i], honest[j])
					if err != nil {
						return 0, err
					}
					total += d2
				}
				if total > maxTotal {
					maxTotal = total
				}
			}
			return maxTotal, nil
		},
		measure: func(gm []float64, honest [][]float64) (float64, error) {
			var gmTotal float64
			for _, g := range honest {
				d2, err := tensor.SquaredDistance(gm, g)
				if err != nil {
					return 0, err
				}
				gmTotal += d2
			}
			return gmTotal, nil
		},
	}
	return m
}

// Name implements Attack.
func (*MinSum) Name() string { return "Min-Sum" }

// Craft implements Attack.
func (m *MinSum) Craft(ctx *Context) ([][]float64, error) { return m.engine.Craft(ctx) }
