package attack

import (
	"math"
	"sort"
	"testing"

	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

func TestSignKeepingPreservesSignStatsAndNorm(t *testing.T) {
	ctx := makeContext(21, 30, 8, 500, 0.2, 1)
	out, err := NewSignKeeping().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := tensor.Mean(ctx.AllHonest())
	if err != nil {
		t.Fatal(err)
	}
	ssMean, _ := stats.ComputeSignStats(mean)
	for i, gm := range out {
		ss, _ := stats.ComputeSignStats(gm)
		if ss != ssMean {
			t.Errorf("gradient %d changed sign statistics: %v vs %v", i, ss, ssMean)
		}
		if math.Abs(tensor.Norm(gm)-tensor.Norm(mean)) > 1e-9 {
			t.Errorf("gradient %d changed norm", i)
		}
		// Per-coordinate signs must match the mean exactly.
		for j := range gm {
			if (gm[j] > 0) != (mean[j] > 0) || (gm[j] < 0) != (mean[j] < 0) {
				t.Fatalf("gradient %d flipped sign at coordinate %d", i, j)
			}
		}
		// The multiset of magnitudes is preserved (a permutation).
		a := append([]float64(nil), gm...)
		b := append([]float64(nil), mean...)
		sort.Float64s(a)
		sort.Float64s(b)
		if !tensor.Equal(a, b, 1e-12) {
			t.Errorf("gradient %d is not a within-class permutation of the mean", i)
		}
	}
}

func TestSignKeepingCorruptsDirection(t *testing.T) {
	ctx := makeContext(22, 30, 5, 2000, 0.3, 1)
	out, err := NewSignKeeping().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := tensor.Mean(ctx.AllHonest())
	c, err := stats.CosineSimilarity(out[0], mean)
	if err != nil {
		t.Fatal(err)
	}
	if c > 0.95 {
		t.Errorf("shuffled gradient still aligned with the mean (cos=%v)", c)
	}
}

// TestSignKeepingEvadesPlainSignGuard demonstrates the adaptive attack's
// point: the plain sign-statistics filter cannot separate it, while the
// -Sim variant's similarity feature can.
func TestSignKeepingEvadesPlainSignGuard(t *testing.T) {
	// Tight benign cohort so the similarity feature is informative.
	rng := tensor.NewRNG(23)
	d := 800
	signal := tensor.RandNormal(rng, d, 0, 1)
	benign := make([][]float64, 24)
	for i := range benign {
		g := tensor.Clone(signal)
		for j := range g {
			g[j] += 0.3 * rng.NormFloat64()
		}
		benign[i] = g
	}
	ctx := &Context{Benign: benign[:18], ByzOwn: benign[18:], Rng: tensor.NewRNG(5)}
	malicious, err := NewSignKeeping().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	grads := append(tensor.CloneAll(benign[:18]), malicious...)

	countByz := func(selected []int) int {
		var n int
		for _, i := range selected {
			if i >= 18 {
				n++
			}
		}
		return n
	}

	plain := core.NewPlain(1)
	resPlain, err := plain.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	// Plain SignGuard sees identical sign statistics — the attack is
	// designed to be indistinguishable there.
	if countByz(resPlain.Selected) == 0 {
		t.Log("plain SignGuard unexpectedly filtered the adaptive attack (acceptable but surprising)")
	}

	sim := core.NewSim(1)
	// Warm up the similarity reference with one clean round.
	if _, err := sim.Aggregate(benign[:18]); err != nil {
		t.Fatal(err)
	}
	resSim, err := sim.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if got := countByz(resSim.Selected); got > countByz(resPlain.Selected) {
		t.Errorf("similarity feature should not admit more adaptive gradients than plain (%d vs %d)",
			got, countByz(resPlain.Selected))
	}
}

func TestSignKeepingContract(t *testing.T) {
	ctx := makeContext(24, 10, 3, 50, 0.5, 1)
	out, err := NewSignKeeping().Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d gradients", len(out))
	}
	// Different Byzantine clients get different permutations (w.h.p.).
	if tensor.Equal(out[0], out[1], 0) && tensor.Equal(out[1], out[2], 0) {
		t.Error("all clients sent identical permutations")
	}
}
