package attack

import (
	"errors"
	"fmt"
	"math/rand"
)

// TimeVarying re-draws the active attack strategy every SwitchEvery rounds,
// uniformly from the candidate pool (which should include None to match
// the paper's Fig. 5 protocol of "change the attack method randomly at each
// epoch, including the no-attack scenario").
type TimeVarying struct {
	// Candidates is the pool of strategies to draw from.
	Candidates []Attack
	// SwitchEvery is the number of rounds an attack stays active (>= 1).
	// One paper "epoch" corresponds to local-data-size/batch-size rounds.
	SwitchEvery int

	rng     *rand.Rand
	current Attack
	round   int
}

var _ Attack = (*TimeVarying)(nil)

// NewTimeVarying builds the time-varying strategy; seed makes the draw
// sequence reproducible.
func NewTimeVarying(candidates []Attack, switchEvery int, seed int64) (*TimeVarying, error) {
	if len(candidates) == 0 {
		return nil, errors.New("attack: TimeVarying needs at least one candidate")
	}
	if switchEvery < 1 {
		return nil, fmt.Errorf("attack: TimeVarying switch interval %d invalid", switchEvery)
	}
	return &TimeVarying{
		Candidates:  candidates,
		SwitchEvery: switchEvery,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// DefaultTimeVaryingPool returns the paper's Fig. 5 candidate pool:
// no-attack plus the simple and state-of-the-art attacks.
func DefaultTimeVaryingPool() []Attack {
	return []Attack{
		NewNone(),
		NewRandom(),
		NewNoise(),
		NewSignFlip(),
		NewLIE(0.3),
		NewByzMean(),
		NewMinMax(),
		NewMinSum(),
	}
}

// Name implements Attack.
func (*TimeVarying) Name() string { return "TimeVarying" }

// Current returns the attack active for the most recent round (nil before
// the first Craft call).
func (t *TimeVarying) Current() Attack { return t.current }

// Craft implements Attack: it advances the round counter, re-drawing the
// active strategy on switch boundaries, and delegates to it.
func (t *TimeVarying) Craft(ctx *Context) ([][]float64, error) {
	if t.round%t.SwitchEvery == 0 || t.current == nil {
		t.current = t.Candidates[t.rng.Intn(len(t.Candidates))]
	}
	t.round++
	return t.current.Craft(ctx)
}
