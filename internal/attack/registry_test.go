package attack

import (
	"strings"
	"testing"
)

// TestBuiltinCatalogContract checks every catalog entry against the
// capabilities it declares: the constructor builds with defaults, Adaptive
// matches the instance's history appetite, and Poisons matches whether it
// implements DataPoisoner. Callers provision history recording and data
// poisoning off these flags, so a mismatch means an attack silently runs
// without the machinery it needs.
func TestBuiltinCatalogContract(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Builtin() {
		spec := spec
		if seen[spec.Name] {
			t.Errorf("duplicate catalog name %q", spec.Name)
		}
		seen[spec.Name] = true
		t.Run(spec.Name, func(t *testing.T) {
			att, err := spec.New(0, 1)
			if err != nil {
				t.Fatalf("default construction: %v", err)
			}
			if att.Name() == "" {
				t.Error("built attack has an empty Name()")
			}
			if got := Promote(att).NeedsHistory(); got != spec.Adaptive {
				t.Errorf("NeedsHistory() = %v, catalog declares Adaptive=%v", got, spec.Adaptive)
			}
			if _, got := att.(DataPoisoner); got != spec.Poisons {
				t.Errorf("implements DataPoisoner = %v, catalog declares Poisons=%v", got, spec.Poisons)
			}
			if _, err := spec.New(0, 1); err != nil {
				t.Errorf("second construction: %v", err)
			}
		})
	}
}

// TestSpecByName covers the lookup's hit and miss paths.
func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Backdoor")
	if err != nil || s.Name != "Backdoor" {
		t.Fatalf("SpecByName(Backdoor) = %+v, %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("missing attack lookup: %v", err)
	}
	if len(BuiltinNames()) != len(Builtin()) {
		t.Error("BuiltinNames out of sync with Builtin")
	}
}
