// Package attack implements every model-poisoning attack evaluated in the
// paper: the simple Random / Noise / Sign-Flipping / Label-Flipping
// attacks, the state-of-the-art Little-is-Enough (Baruch et al.) and
// Min-Max / Min-Sum (Shejwalkar & Houmansadr) attacks, the paper's new
// ByzMean hybrid attack, the scaled reverse attack used in the ablation
// study, and the time-varying strategy of Fig. 5.
//
// Attacks follow the paper's threat model: an omniscient adversary that
// observes the honest gradients of every client (both benign clients and
// the would-be-honest gradients of the clients it controls) and substitutes
// the gradients of the Byzantine cohort.
package attack

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/tensor"
)

// Context is everything the adversary can see in one round.
type Context struct {
	// Benign holds the honest gradients of the benign clients.
	Benign [][]float64
	// ByzOwn holds the gradients the Byzantine clients would have sent had
	// they been honest (they own local data too). len(ByzOwn) is the number
	// of malicious gradients the attack must produce.
	ByzOwn [][]float64
	// Rng drives any randomness in the attack, seeded per experiment.
	Rng *rand.Rand

	// Round is the zero-based index of the current aggregation round.
	Round int
	// History holds the filtering outcomes of every previous round, oldest
	// first. The engine records it only for adversaries that declare
	// NeedsHistory; stateless attacks always see nil.
	History []Observation
	// PrevAggregate is the gradient the server applied in the previous
	// round (nil in round 0 or for stateless attacks).
	PrevAggregate []float64
	// PrevSelected lists the arrival positions the defense kept in the
	// previous round (nil when the rule reports no selection).
	PrevSelected []int
}

// N returns the total number of clients.
func (c *Context) N() int { return len(c.Benign) + len(c.ByzOwn) }

// NumByz returns the number of Byzantine clients.
func (c *Context) NumByz() int { return len(c.ByzOwn) }

// AllHonest returns the concatenation of all honest gradients (benign
// first, then the Byzantine clients' would-be-honest ones). The slices are
// shared, not copied; attacks must not mutate them.
func (c *Context) AllHonest() [][]float64 {
	out := make([][]float64, 0, c.N())
	out = append(out, c.Benign...)
	out = append(out, c.ByzOwn...)
	return out
}

func (c *Context) validate() error {
	if len(c.ByzOwn) == 0 {
		return errors.New("attack: no Byzantine clients in context")
	}
	if len(c.Benign) == 0 {
		return errors.New("attack: no benign gradients to observe")
	}
	if c.Rng == nil {
		return errors.New("attack: nil rng")
	}
	d := len(c.Benign[0])
	for _, g := range c.AllHonest() {
		if len(g) != d {
			return fmt.Errorf("%w: attack context gradients disagree on dimension", tensor.ErrDimensionMismatch)
		}
	}
	return nil
}

// Attack crafts the malicious gradients for one round.
type Attack interface {
	// Name returns a short stable identifier used in tables.
	Name() string
	// Craft returns exactly len(ctx.ByzOwn) malicious gradient vectors.
	Craft(ctx *Context) ([][]float64, error)
}

// DataPoisoner is implemented by attacks that corrupt the Byzantine
// clients' local training data instead of (or in addition to) their
// gradients, e.g. label flipping.
type DataPoisoner interface {
	PoisonData(xs []data.Example, classes int) ([]data.Example, error)
}

// None is the no-attack baseline: Byzantine clients behave honestly.
type None struct{}

var _ Attack = (*None)(nil)

// NewNone returns the no-attack strategy.
func NewNone() *None { return &None{} }

// Name implements Attack.
func (*None) Name() string { return "NoAttack" }

// Craft returns the clients' own honest gradients.
func (*None) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	return tensor.CloneAll(ctx.ByzOwn), nil
}

// Random sends pure Gaussian noise N(Mean, Std²·I), the paper's "random
// attack" with µ=0, σ=0.5. Each Byzantine client draws independently.
type Random struct {
	Mean, Std float64
}

var _ Attack = (*Random)(nil)

// NewRandom returns the random attack with the paper's defaults.
func NewRandom() *Random { return &Random{Mean: 0, Std: 0.5} }

// Name implements Attack.
func (*Random) Name() string { return "Random" }

// Craft implements Attack.
func (a *Random) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	d := len(ctx.Benign[0])
	out := make([][]float64, ctx.NumByz())
	for i := range out {
		out[i] = tensor.RandNormal(ctx.Rng, d, a.Mean, a.Std)
	}
	return out, nil
}

// Noise perturbs each Byzantine client's honest gradient with Gaussian
// noise: gm = gb + N(Mean, Std²·I).
type Noise struct {
	Mean, Std float64
}

var _ Attack = (*Noise)(nil)

// NewNoise returns the noise attack with the paper's defaults (σ=0.5).
func NewNoise() *Noise { return &Noise{Mean: 0, Std: 0.5} }

// Name implements Attack.
func (*Noise) Name() string { return "Noise" }

// Craft implements Attack.
func (a *Noise) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	out := make([][]float64, ctx.NumByz())
	for i, g := range ctx.ByzOwn {
		noisy := tensor.Clone(g)
		for j := range noisy {
			noisy[j] += a.Mean + a.Std*ctx.Rng.NormFloat64()
		}
		out[i] = noisy
	}
	return out, nil
}

// SignFlip sends the reversed gradient without scaling: gm = -gb.
type SignFlip struct{}

var _ Attack = (*SignFlip)(nil)

// NewSignFlip returns the sign-flipping attack.
func NewSignFlip() *SignFlip { return &SignFlip{} }

// Name implements Attack.
func (*SignFlip) Name() string { return "Sign-flip" }

// Craft implements Attack.
func (*SignFlip) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	out := make([][]float64, ctx.NumByz())
	for i, g := range ctx.ByzOwn {
		out[i] = tensor.Scale(g, -1)
	}
	return out, nil
}

// Reverse is the "reverse attack with scaling" from the DETOX paper used in
// the ablation study (Table III): gm = -r·gb with a positive scale r.
type Reverse struct {
	Scale float64
}

var _ Attack = (*Reverse)(nil)

// NewReverse returns a scaled reverse attack.
func NewReverse(scale float64) *Reverse { return &Reverse{Scale: scale} }

// Name implements Attack.
func (*Reverse) Name() string { return "Reverse" }

// Craft implements Attack.
func (a *Reverse) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	if a.Scale <= 0 {
		return nil, fmt.Errorf("attack: Reverse scale %v must be positive", a.Scale)
	}
	out := make([][]float64, ctx.NumByz())
	for i, g := range ctx.ByzOwn {
		out[i] = tensor.Scale(g, -a.Scale)
	}
	return out, nil
}

// LabelFlip is the data-poisoning attack: Byzantine clients train honestly
// on data whose labels have been flipped l → classes-1-l, so their
// gradients are "faulty" rather than arbitrary.
type LabelFlip struct{}

var (
	_ Attack       = (*LabelFlip)(nil)
	_ DataPoisoner = (*LabelFlip)(nil)
)

// NewLabelFlip returns the label-flipping attack.
func NewLabelFlip() *LabelFlip { return &LabelFlip{} }

// Name implements Attack.
func (*LabelFlip) Name() string { return "Label-flip" }

// Craft returns the Byzantine clients' own gradients unchanged — the
// poisoning already happened at the data level.
func (*LabelFlip) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	return tensor.CloneAll(ctx.ByzOwn), nil
}

// PoisonData implements DataPoisoner.
func (*LabelFlip) PoisonData(xs []data.Example, classes int) ([]data.Example, error) {
	return data.FlipLabels(xs, classes)
}
