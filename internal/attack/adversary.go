package attack

// Observation is the filtering feedback of one completed round, as visible
// to the paper's omniscient adversary: it controls the Byzantine clients,
// so it knows which anonymous arrival positions were its own and can count
// how many survived the defense's selection.
type Observation struct {
	// Round is the zero-based round the observation describes.
	Round int
	// SelectedByz / TotalByz count the cohort's submitted gradients the
	// defense kept vs submitted; SelectedHonest / TotalHonest likewise for
	// the benign clients. Valid only when HasSelection is true.
	SelectedByz, TotalByz       int
	SelectedHonest, TotalHonest int
	// HasSelection is false for coordinate-wise rules (Mean, TrMean, ...)
	// that report no per-client selection.
	HasSelection bool
}

// ByzAcceptance returns the fraction of the cohort's gradients the defense
// kept, and whether the round carried selection information at all.
func (o Observation) ByzAcceptance() (float64, bool) {
	if !o.HasSelection || o.TotalByz == 0 {
		return 0, false
	}
	return float64(o.SelectedByz) / float64(o.TotalByz), true
}

// Adversary is the round pipeline's attacker stage: a round-aware strategy
// whose Context carries the round index and the previous rounds' filtering
// history. Stateless attacks are promoted with Promote; adaptive attacks
// implement NeedsHistory()=true, which tells the engine to record the
// per-round feedback (the bookkeeping is skipped otherwise).
type Adversary interface {
	Attack
	// NeedsHistory reports whether Craft consumes Context.Round / History /
	// PrevAggregate / PrevSelected.
	NeedsHistory() bool
}

// promoted adapts a stateless Attack to the Adversary interface.
type promoted struct{ Attack }

func (promoted) NeedsHistory() bool { return false }

// Promote returns a as an Adversary: attacks that already implement the
// interface pass through unchanged, everything else is wrapped in a shim
// that requests no history.
func Promote(a Attack) Adversary {
	if adv, ok := a.(Adversary); ok {
		return adv
	}
	return promoted{a}
}
