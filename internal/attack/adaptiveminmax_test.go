package attack

import (
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// minmaxContext builds a reproducible attack context.
func minmaxContext(seed int64) *Context {
	rng := tensor.NewRNG(seed)
	benign := make([][]float64, 8)
	for i := range benign {
		benign[i] = tensor.RandNormal(rng, 30, 0.1, 1)
	}
	byz := make([][]float64, 3)
	for i := range byz {
		byz[i] = tensor.RandNormal(rng, 30, 0.1, 1)
	}
	return &Context{Benign: benign, ByzOwn: byz, Rng: tensor.NewRNG(seed + 1)}
}

func TestPromote(t *testing.T) {
	shim := Promote(NewSignFlip())
	if shim.NeedsHistory() {
		t.Error("promoted stateless attack requests history")
	}
	if shim.Name() != "Sign-flip" {
		t.Errorf("promoted shim lost the name: %q", shim.Name())
	}
	adaptive := NewAdaptiveMinMax()
	if got := Promote(adaptive); got != Adversary(adaptive) {
		t.Error("Promote wrapped an attack that is already an Adversary")
	}
	if !adaptive.NeedsHistory() {
		t.Error("AdaptiveMinMax must request history")
	}
}

func TestAdaptiveMinMaxMatchesMinMaxWithoutHistory(t *testing.T) {
	want, err := NewMinMax().Craft(minmaxContext(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewAdaptiveMinMax().Craft(minmaxContext(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("gradient %d coordinate %d: adaptive %v != static %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestAdaptiveMinMaxScaleSchedule(t *testing.T) {
	a := NewAdaptiveMinMax()
	filtered := Observation{HasSelection: true, SelectedByz: 0, TotalByz: 3}
	accepted := Observation{HasSelection: true, SelectedByz: 3, TotalByz: 3}
	blind := Observation{HasSelection: false}

	if s := a.Scale(nil); s != 1 {
		t.Errorf("empty history scale = %v", s)
	}
	if s := a.Scale([]Observation{blind, blind}); s != 1 {
		t.Errorf("selection-free history moved the scale: %v", s)
	}
	if s := a.Scale([]Observation{filtered}); s != a.Shrink {
		t.Errorf("one filtered round: scale %v, want %v", s, a.Shrink)
	}
	if s := a.Scale([]Observation{accepted, accepted}); s != a.Grow*a.Grow {
		t.Errorf("two accepted rounds: scale %v, want %v", s, a.Grow*a.Grow)
	}
	// Clamping at both ends.
	many := make([]Observation, 100)
	for i := range many {
		many[i] = filtered
	}
	if s := a.Scale(many); s != a.MinScale {
		t.Errorf("scale not clamped low: %v", s)
	}
	for i := range many {
		many[i] = accepted
	}
	if s := a.Scale(many); s != a.MaxScale {
		t.Errorf("scale not clamped high: %v", s)
	}
}

func TestAdaptiveMinMaxTightensAfterFiltering(t *testing.T) {
	a := NewAdaptiveMinMax()
	base := minmaxContext(9)
	bound, err := maxPairwiseSq(base.AllHonest())
	if err != nil {
		t.Fatal(err)
	}

	dist := func(history []Observation) float64 {
		ctx := minmaxContext(9)
		ctx.History = history
		out, err := a.Craft(ctx)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := maxDistSqTo(out[0], ctx.AllHonest())
		if err != nil {
			t.Fatal(err)
		}
		return d2
	}

	filtered := Observation{HasSelection: true, SelectedByz: 0, TotalByz: 3}
	accepted := Observation{HasSelection: true, SelectedByz: 3, TotalByz: 3}

	dNone := dist(nil)
	dTight := dist([]Observation{filtered, filtered, filtered})
	dLoose := dist([]Observation{accepted, accepted, accepted})

	if dNone > bound*1.0001 {
		t.Errorf("static constraint violated: %v > %v", dNone, bound)
	}
	if !(dTight < dNone) {
		t.Errorf("filtering did not tighten the attack: tight %v vs base %v", dTight, dNone)
	}
	if !(dLoose > dNone) {
		t.Errorf("acceptance did not relax the attack: loose %v vs base %v", dLoose, dNone)
	}
	// The tightened candidate respects the scaled bound (floored at the
	// honest average's own spread, which keeps γ=0 feasible).
	avg, err := tensor.Mean(base.AllHonest())
	if err != nil {
		t.Fatal(err)
	}
	floor, err := maxDistSqTo(avg, base.AllHonest())
	if err != nil {
		t.Fatal(err)
	}
	s := a.Scale([]Observation{filtered, filtered, filtered})
	limit := s * s * bound
	if floor > limit {
		limit = floor
	}
	if dTight > limit*1.0001 {
		t.Errorf("tightened attack exceeds its scaled bound: %v > %v", dTight, limit)
	}
}

func TestAdaptiveMinMaxRejectsBadSchedule(t *testing.T) {
	a := NewAdaptiveMinMax()
	a.Shrink = 1.5
	if _, err := a.Craft(minmaxContext(2)); err == nil {
		t.Error("shrink > 1 accepted")
	}
	b := NewAdaptiveMinMax()
	b.MinScale = -1
	if _, err := b.Craft(minmaxContext(2)); err == nil {
		t.Error("negative MinScale accepted")
	}
}

func TestObservationByzAcceptance(t *testing.T) {
	if _, ok := (Observation{HasSelection: false, TotalByz: 3}).ByzAcceptance(); ok {
		t.Error("acceptance reported without selection info")
	}
	if _, ok := (Observation{HasSelection: true, TotalByz: 0}).ByzAcceptance(); ok {
		t.Error("acceptance reported with zero cohort")
	}
	r, ok := (Observation{HasSelection: true, SelectedByz: 1, TotalByz: 4}).ByzAcceptance()
	if !ok || r != 0.25 {
		t.Errorf("acceptance = %v, %v", r, ok)
	}
}
