package attack

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/tensor"
)

// NonFiniteValue selects the poison constant a NonFinite attack injects.
type NonFiniteValue int

const (
	// NaNValue injects quiet NaNs — the cheapest poison: a single NaN
	// coordinate contaminates every norm, dot product and squared distance
	// it touches.
	NaNValue NonFiniteValue = iota + 1
	// PosInfValue injects +Inf.
	PosInfValue
	// NegInfValue injects -Inf.
	NegInfValue
)

// value returns the float the constant stands for.
func (v NonFiniteValue) value() float64 {
	switch v {
	case PosInfValue:
		return math.Inf(1)
	case NegInfValue:
		return math.Inf(-1)
	default:
		return math.NaN()
	}
}

func (v NonFiniteValue) String() string {
	switch v {
	case NaNValue:
		return "NaN"
	case PosInfValue:
		return "+Inf"
	case NegInfValue:
		return "-Inf"
	default:
		return fmt.Sprintf("NonFiniteValue(%d)", int(v))
	}
}

// NonFinite is the hostile-input attack family: Byzantine clients submit
// gradients carrying NaN or ±Inf coordinates. Unlike the statistical
// attacks, it does not try to bias the aggregate — it tries to crash or
// wedge the server: an unscreened NaN poisons clustering inertia, median
// norms and staleness-weighted merges downstream. The full-vector variant
// (Fraction <= 0 or >= 1) replaces the whole gradient; the sparse variant
// hides a few poisoned coordinates inside an otherwise-honest gradient,
// which norm- and sign-based screens that ignore non-finiteness would pass.
type NonFinite struct {
	// Value selects the poison constant (default NaNValue).
	Value NonFiniteValue
	// Fraction is the fraction of coordinates poisoned per malicious
	// gradient, in (0, 1); outside that range the full vector is replaced.
	// Sparse positions are drawn from ctx.Rng, fresh each round.
	Fraction float64
}

var _ Attack = (*NonFinite)(nil)

// NewNonFinite returns the full-vector variant injecting v.
func NewNonFinite(v NonFiniteValue) *NonFinite {
	return &NonFinite{Value: v}
}

// NewNonFiniteSparse returns the sparse-coordinate variant: each Byzantine
// gradient keeps its honest values except for a poisoned fraction of
// coordinates.
func NewNonFiniteSparse(v NonFiniteValue, fraction float64) *NonFinite {
	return &NonFinite{Value: v, Fraction: fraction}
}

// Name implements Attack.
func (a *NonFinite) Name() string {
	v := a.Value
	if v == 0 {
		v = NaNValue
	}
	if a.sparse() {
		return fmt.Sprintf("NonFinite-Sparse(%s,%g)", v, a.Fraction)
	}
	return "NonFinite(" + v.String() + ")"
}

func (a *NonFinite) sparse() bool {
	return a.Fraction > 0 && a.Fraction < 1
}

// Craft implements Attack.
func (a *NonFinite) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	v := a.Value
	if v == 0 {
		v = NaNValue
	}
	poison := v.value()
	out := make([][]float64, ctx.NumByz())
	for i, own := range ctx.ByzOwn {
		g := tensor.Clone(own)
		if a.sparse() {
			k := int(a.Fraction * float64(len(g)))
			if k < 1 {
				k = 1
			}
			for _, j := range ctx.Rng.Perm(len(g))[:k] {
				g[j] = poison
			}
		} else {
			tensor.Fill(g, poison)
		}
		out[i] = g
	}
	return out, nil
}
