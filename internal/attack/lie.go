package attack

import (
	"fmt"

	"github.com/signguard/signguard/internal/stats"
)

// LIE is the "A Little Is Enough" attack (Baruch et al., NeurIPS'19). The
// adversary estimates the coordinate-wise mean µ_j and standard deviation
// σ_j of the honest gradients and has every Byzantine client send
//
//	(g_m)_j = µ_j − z·σ_j                            (Eq. 1)
//
// with a small attack factor z. Section III of the SignGuard paper shows
// why this shifts the sign statistics of the crafted gradient even though
// it stays inconspicuous in distance and cosine similarity.
type LIE struct {
	// Z is the attack factor. If Z <= 0 it is computed per round from the
	// client counts via Eq. 2 (see stats.LIEZMax). The paper's experiments
	// fix z = 0.3.
	Z float64
	// EstimateOnAll, when true, estimates µ and σ over all honest gradients
	// (benign + would-be-honest Byzantine), matching an omniscient
	// adversary; when false only the benign gradients are used.
	EstimateOnAll bool
}

var _ Attack = (*LIE)(nil)

// NewLIE returns the LIE attack with fixed factor z (the paper uses 0.3);
// pass z <= 0 to have z_max computed from Eq. 2 each round.
func NewLIE(z float64) *LIE { return &LIE{Z: z, EstimateOnAll: true} }

// Name implements Attack.
func (*LIE) Name() string { return "LIE" }

// CraftVector returns the single malicious vector µ − z·σ computed from the
// given honest gradients. Exposed so the Fig. 2 experiment can plot the
// sign statistics of a "virtual" LIE gradient during clean training.
func (a *LIE) CraftVector(honest [][]float64, n, m int) ([]float64, error) {
	mean, std, err := stats.CoordinateMeanStd(honest)
	if err != nil {
		return nil, fmt.Errorf("attack: LIE statistics: %w", err)
	}
	z := a.Z
	if z <= 0 {
		z = stats.LIEZMax(n, m)
	}
	out := make([]float64, len(mean))
	for j := range out {
		out[j] = mean[j] - z*std[j]
	}
	return out, nil
}

// Craft implements Attack. All Byzantine clients send the same vector,
// maximizing the attack's pull on the aggregate.
func (a *LIE) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	src := ctx.Benign
	if a.EstimateOnAll {
		src = ctx.AllHonest()
	}
	gm, err := a.CraftVector(src, ctx.N(), ctx.NumByz())
	if err != nil {
		return nil, err
	}
	out := make([][]float64, ctx.NumByz())
	for i := range out {
		v := make([]float64, len(gm))
		copy(v, gm)
		out[i] = v
	}
	return out, nil
}
