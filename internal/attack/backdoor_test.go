package attack

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/data"
)

func obs(selected, total int) Observation {
	return Observation{HasSelection: true, SelectedByz: selected, TotalByz: total}
}

// TestBackdoorEffectiveBoostTrajectory walks the throttle through rejection
// and recovery: full boost with no history, multiplicative shrink while the
// defense filters the cohort (never below 1), and growth back up to the
// ceiling once the cohort is accepted again.
func TestBackdoorEffectiveBoostTrajectory(t *testing.T) {
	b := NewBackdoor(0, 10)
	if got := b.EffectiveBoost(nil); got != 10 {
		t.Errorf("no history: boost %v, want the full λ=10", got)
	}

	rejected := []Observation{obs(0, 2)}
	if got, want := b.EffectiveBoost(rejected), 7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("one rejected round: boost %v, want %v (10 × 0.7)", got, want)
	}

	// Nine rejections drive the raw product under 1; the floor holds.
	for i := 0; i < 8; i++ {
		rejected = append(rejected, obs(0, 2))
	}
	if got := b.EffectiveBoost(rejected); got != 1 {
		t.Errorf("sustained rejection: boost %v, want the floor 1", got)
	}

	// Recovery: accepted rounds grow the boost but never past the ceiling.
	recovered := append(rejected, obs(2, 2), obs(2, 2))
	low := b.EffectiveBoost(recovered)
	if low <= 1 || low >= 10 {
		t.Errorf("two accepted rounds after rejection: boost %v, want strictly between 1 and 10", low)
	}
	for i := 0; i < 40; i++ {
		recovered = append(recovered, obs(2, 2))
	}
	if got := b.EffectiveBoost(recovered); got != 10 {
		t.Errorf("sustained acceptance: boost %v, want the ceiling 10", got)
	}

	// Selection-free rounds (coordinate-wise defenses) leave the boost alone.
	blind := []Observation{{HasSelection: false}, {HasSelection: false}}
	if got := b.EffectiveBoost(blind); got != 10 {
		t.Errorf("selection-free history: boost %v, want the untouched 10", got)
	}

	// A partially-accepted round (rate in [0.5, 1)) holds steady.
	half := []Observation{obs(0, 2), obs(1, 2)}
	if got, want := b.EffectiveBoost(half), 7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("half-accepted round: boost %v, want the held %v", got, want)
	}
}

// TestBackdoorPoisonData checks the deterministic stride poisoning: the
// poisoned subset approximates Fraction, poisoned examples carry the trigger
// and the target label, untouched examples alias the originals, and invalid
// targets are rejected.
func TestBackdoorPoisonData(t *testing.T) {
	b := NewBackdoor(2, 0)
	xs := make([]data.Example, 10)
	for i := range xs {
		xs[i] = data.Example{Features: []float64{0.1, 0.2, 0.3, 0.4, 0.5}, Label: i % 4}
	}
	out, err := b.PoisonData(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(xs) {
		t.Fatalf("length changed: %d -> %d", len(xs), len(out))
	}
	poisoned := 0
	for i, e := range out {
		if i%2 == 0 { // Fraction 0.5 → stride 2
			poisoned++
			if e.Label != 2 {
				t.Errorf("poisoned example %d has label %d, want target 2", i, e.Label)
			}
			for j := len(e.Features) - DefaultTriggerLen; j < len(e.Features); j++ {
				if e.Features[j] != 1 {
					t.Errorf("poisoned example %d missing trigger at coord %d", i, j)
				}
			}
			if xs[i].Features[4] != 0.5 {
				t.Errorf("poisoning mutated the original example %d", i)
			}
		} else {
			if e.Label != xs[i].Label {
				t.Errorf("clean example %d relabeled", i)
			}
		}
	}
	if poisoned != 5 {
		t.Errorf("poisoned %d of 10, want 5 at Fraction 0.5", poisoned)
	}

	if _, err := b.PoisonData(xs, 2); err == nil {
		t.Error("target 2 accepted with only 2 classes")
	}
	if _, err := b.PoisonData(xs, 0); err == nil {
		t.Error("zero classes accepted")
	}
}

// TestStampTrigger covers both input modalities and the no-mutation
// guarantee.
func TestStampTrigger(t *testing.T) {
	img := data.Example{Features: []float64{0.1, 0.2, 0.3, 0.4}, Label: 3}
	got := StampTrigger(img, 2)
	if got.Features[0] != 0.1 || got.Features[1] != 0.2 || got.Features[2] != 1 || got.Features[3] != 1 {
		t.Errorf("image trigger wrong: %v", got.Features)
	}
	if got.Label != 3 {
		t.Errorf("StampTrigger changed the label to %d", got.Label)
	}
	if img.Features[2] != 0.3 {
		t.Error("StampTrigger mutated the input example")
	}

	txt := data.Example{Tokens: []int{5, 6, 7, 8}}
	got = StampTrigger(txt, 2)
	if got.Tokens[0] != 0 || got.Tokens[1] != 0 || got.Tokens[2] != 7 {
		t.Errorf("text trigger wrong: %v", got.Tokens)
	}
	if txt.Tokens[0] != 5 {
		t.Error("StampTrigger mutated the input tokens")
	}

	// A trigger longer than the input saturates instead of panicking.
	tiny := data.Example{Features: []float64{0.5}}
	if got := StampTrigger(tiny, 9); got.Features[0] != 1 {
		t.Errorf("oversized trigger: %v", got.Features)
	}
}
