package attack

import (
	"math/rand"
	"sort"

	"github.com/signguard/signguard/internal/tensor"
)

// SignKeeping is an adaptive white-box attack on SignGuard itself,
// implementing the paper's future-work discussion ("white-box and adaptive
// attacks"): the adversary knows the defense clusters on sign statistics
// and crafts a malicious gradient with *exactly* the sign pattern of the
// honest mean — so the sign features are indistinguishable — while
// shuffling the magnitudes within each sign class to corrupt the update
// direction. The crafted gradient also preserves the mean's norm, so the
// norm filter passes it.
//
// Only the similarity features (SignGuard-Sim / -Dist) can expose it,
// which is precisely the trade-off the paper's Section IV-B discusses.
type SignKeeping struct {
	// Shuffles is the number of magnitude-shuffling passes (>= 1); more
	// passes decorrelate the direction further. Default 1.
	Shuffles int
}

var _ Attack = (*SignKeeping)(nil)

// NewSignKeeping returns the adaptive sign-preserving attack.
func NewSignKeeping() *SignKeeping { return &SignKeeping{Shuffles: 1} }

// Name implements Attack.
func (*SignKeeping) Name() string { return "SignKeep" }

// Craft implements Attack: every Byzantine client sends the honest mean
// with magnitudes permuted within its positive and negative coordinate
// classes (zeros stay in place), each client with its own permutation.
func (a *SignKeeping) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	mean, err := tensor.Mean(ctx.AllHonest())
	if err != nil {
		return nil, err
	}
	passes := a.Shuffles
	if passes < 1 {
		passes = 1
	}
	out := make([][]float64, ctx.NumByz())
	for i := range out {
		gm := tensor.Clone(mean)
		for p := 0; p < passes; p++ {
			shuffleWithinSignClasses(ctx.Rng, gm)
		}
		out[i] = gm
	}
	return out, nil
}

// shuffleWithinSignClasses permutes the magnitudes of the strictly
// positive entries among the positive positions and likewise for the
// negative entries, preserving the sign of every coordinate (and therefore
// the exact sign statistics and the multiset of magnitudes — hence the
// norm).
func shuffleWithinSignClasses(rng *rand.Rand, g []float64) {
	var posIdx, negIdx []int
	for j, v := range g {
		switch {
		case v > 0:
			posIdx = append(posIdx, j)
		case v < 0:
			negIdx = append(negIdx, j)
		}
	}
	permuteValues(rng, g, posIdx)
	permuteValues(rng, g, negIdx)
}

// permuteValues shuffles g's values at the given index set in place.
func permuteValues(rng *rand.Rand, g []float64, idx []int) {
	if len(idx) < 2 {
		return
	}
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = g[j]
	}
	rng.Shuffle(len(vals), func(a, b int) { vals[a], vals[b] = vals[b], vals[a] })
	// Deterministic ordering of the index set keeps results reproducible
	// regardless of how the caller built it.
	sort.Ints(idx)
	for i, j := range idx {
		g[j] = vals[i]
	}
}
