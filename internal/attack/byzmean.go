package attack

import (
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// ByzMean is the hybrid attack proposed by the SignGuard paper (Section
// III): the Byzantine cohort splits into two groups. The first group (m1
// clients) sends an arbitrary target gradient g_m1 — by default the LIE
// vector — and the second group (m2 = m − m1 clients) sends the vector that
// forces the mean of *all* n gradients to equal g_m1 exactly (Eq. 8):
//
//	g_m2 = [ (n − m1)·g_m1 − Σ_{honest} g(i) ] / m2
//
// which makes the naive mean — and any defense whose output tracks the
// mean — deliver precisely the adversary's chosen gradient.
type ByzMean struct {
	// Inner crafts the target gradient g_m1; defaults to LIE(z=0.3).
	Inner Attack
	// M1Fraction is the fraction of Byzantine clients in the first group,
	// m1 = ⌊M1Fraction·m⌋ (paper default 0.5).
	M1Fraction float64
}

var _ Attack = (*ByzMean)(nil)

// NewByzMean returns the ByzMean attack with the paper's defaults: the
// first half of the Byzantine cohort sends the LIE vector.
func NewByzMean() *ByzMean {
	return &ByzMean{Inner: NewLIE(0.3), M1Fraction: 0.5}
}

// Name implements Attack.
func (*ByzMean) Name() string { return "ByzMean" }

// Craft implements Attack.
func (a *ByzMean) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	m := ctx.NumByz()
	n := ctx.N()
	frac := a.M1Fraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	m1 := int(frac * float64(m))
	if m1 < 1 {
		m1 = 1
	}
	m2 := m - m1
	if m2 < 1 {
		// With a single Byzantine client there is no second group; fall back
		// to sending the inner attack vector alone.
		m1, m2 = m-1, 1
		if m1 < 1 {
			m1, m2 = 1, 0
		}
	}

	inner := a.Inner
	if inner == nil {
		inner = NewLIE(0.3)
	}
	innerGrads, err := inner.Craft(ctx)
	if err != nil {
		return nil, fmt.Errorf("attack: ByzMean inner attack: %w", err)
	}
	gm1 := innerGrads[0]
	d := len(gm1)

	out := make([][]float64, 0, m)
	for i := 0; i < m1; i++ {
		out = append(out, tensor.Clone(gm1))
	}
	if m2 > 0 {
		// Sum of the honest gradients that will actually be submitted
		// (the benign clients'): Σ_{i=m+1..n} g(i) in the paper's indexing.
		honestSum := make([]float64, d)
		for _, g := range ctx.Benign {
			if err := tensor.AddInPlace(honestSum, g); err != nil {
				return nil, err
			}
		}
		gm2 := make([]float64, d)
		for j := 0; j < d; j++ {
			gm2[j] = (float64(n-m1)*gm1[j] - honestSum[j]) / float64(m2)
		}
		for i := 0; i < m2; i++ {
			out = append(out, tensor.Clone(gm2))
		}
	}
	return out, nil
}
