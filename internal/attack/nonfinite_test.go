package attack

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

func nonFiniteCtx(t *testing.T, d int) *Context {
	t.Helper()
	rng := tensor.NewRNG(1)
	mk := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = tensor.RandNormal(rng, d, 0, 1)
		}
		return out
	}
	return &Context{Benign: mk(6), ByzOwn: mk(3), Rng: tensor.NewRNG(2)}
}

func TestNonFiniteFullVector(t *testing.T) {
	for _, tc := range []struct {
		v     NonFiniteValue
		check func(float64) bool
	}{
		{NaNValue, func(x float64) bool { return math.IsNaN(x) }},
		{PosInfValue, func(x float64) bool { return math.IsInf(x, 1) }},
		{NegInfValue, func(x float64) bool { return math.IsInf(x, -1) }},
	} {
		ctx := nonFiniteCtx(t, 16)
		out, err := NewNonFinite(tc.v).Craft(ctx)
		if err != nil {
			t.Fatalf("%v: %v", tc.v, err)
		}
		if len(out) != ctx.NumByz() {
			t.Fatalf("%v: crafted %d gradients, want %d", tc.v, len(out), ctx.NumByz())
		}
		for i, g := range out {
			for j, x := range g {
				if !tc.check(x) {
					t.Fatalf("%v: gradient %d coord %d = %v, want poisoned", tc.v, i, j, x)
				}
			}
		}
		// The honest inputs must be untouched.
		for _, g := range ctx.ByzOwn {
			if !tensor.AllFinite(g) {
				t.Fatalf("%v: Craft mutated ByzOwn", tc.v)
			}
		}
	}
}

func TestNonFiniteSparsePoisonsFraction(t *testing.T) {
	const d = 100
	ctx := nonFiniteCtx(t, d)
	out, err := NewNonFiniteSparse(NaNValue, 0.05).Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range out {
		poisoned := 0
		for _, x := range g {
			if math.IsNaN(x) {
				poisoned++
			}
		}
		if poisoned != 5 {
			t.Errorf("gradient %d has %d NaN coords, want 5", i, poisoned)
		}
	}
}

// A fraction too small to poison a single coordinate still poisons one —
// the attack never degenerates into honesty.
func TestNonFiniteSparseAtLeastOneCoordinate(t *testing.T) {
	ctx := nonFiniteCtx(t, 8)
	out, err := NewNonFiniteSparse(PosInfValue, 0.001).Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range out {
		if tensor.AllFinite(g) {
			t.Errorf("gradient %d fully finite", i)
		}
	}
}

func TestNonFiniteNames(t *testing.T) {
	if got := NewNonFinite(NaNValue).Name(); got != "NonFinite(NaN)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewNonFinite(PosInfValue).Name(); got != "NonFinite(+Inf)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewNonFiniteSparse(NaNValue, 0.01).Name(); got != "NonFinite-Sparse(NaN,0.01)" {
		t.Errorf("Name = %q", got)
	}
	// Zero value defaults to NaN.
	var a NonFinite
	if got := a.Name(); got != "NonFinite(NaN)" {
		t.Errorf("zero-value Name = %q", got)
	}
}
