package attack

import (
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// AdaptiveMinMax is the history-aware port of the Min-Max attack: it keeps
// the Min-Max form gm = avg + γ·∇p, but rescales the distance constraint
// from the filtering feedback of previous rounds. Whenever the defense
// filtered out most of the cohort, the adversary tightens its constraint
// (smaller allowed distance → stealthier gradient); whenever the cohort
// sailed through, it relaxes the constraint back — and, against
// non-selecting defenses, beyond the static Min-Max bound up to MaxScale,
// trading stealth for damage.
//
// The adaptation is a pure function of Context.History, so the attack
// object itself stays stateless and a run remains reproducible from its
// seed. With an empty history (round 0, or an engine that records none)
// the attack is exactly Min-Max.
type AdaptiveMinMax struct {
	// Perturb selects the perturbation direction (default inverse-std).
	Perturb Perturbation
	// Target is the cohort acceptance rate below which the constraint
	// tightens (default 0.5).
	Target float64
	// Shrink (<1) multiplies the distance scale after a filtered round;
	// Grow (>1) multiplies it after a fully-accepted one. The scale is
	// clamped to [MinScale, MaxScale]. Defaults: 0.7, 1.15, 0.05, 4.
	Shrink, Grow       float64
	MinScale, MaxScale float64
}

var _ Adversary = (*AdaptiveMinMax)(nil)

// NewAdaptiveMinMax returns the adaptive Min-Max attack with its default
// adaptation schedule.
func NewAdaptiveMinMax() *AdaptiveMinMax {
	return &AdaptiveMinMax{
		Perturb:  InverseStd,
		Target:   0.5,
		Shrink:   0.7,
		Grow:     1.15,
		MinScale: 0.05,
		MaxScale: 4,
	}
}

// Name implements Attack.
func (*AdaptiveMinMax) Name() string { return "Adaptive-Min-Max" }

// NeedsHistory implements Adversary: the engine must record filtering
// feedback for this attack.
func (*AdaptiveMinMax) NeedsHistory() bool { return true }

// Scale replays the filtering history and returns the current constraint
// scale (1 with no history). Exported so tests and probes can assert the
// adaptation trajectory.
func (a *AdaptiveMinMax) Scale(history []Observation) float64 {
	s := 1.0
	for _, o := range history {
		rate, ok := o.ByzAcceptance()
		if !ok {
			continue
		}
		switch {
		case rate < a.Target:
			s *= a.Shrink
		case rate >= 1:
			s *= a.Grow
		}
		if s < a.MinScale {
			s = a.MinScale
		}
		if s > a.MaxScale {
			s = a.MaxScale
		}
	}
	return s
}

// Craft implements Attack: Min-Max with the constraint threshold scaled by
// Scale(ctx.History)² (thresholds compare squared distances).
func (a *AdaptiveMinMax) Craft(ctx *Context) ([][]float64, error) {
	if a.Shrink <= 0 || a.Shrink >= 1 || a.Grow < 1 {
		return nil, fmt.Errorf("attack: adaptive min-max schedule shrink=%v grow=%v invalid", a.Shrink, a.Grow)
	}
	if a.MinScale <= 0 || a.MaxScale < a.MinScale {
		return nil, fmt.Errorf("attack: adaptive min-max scale bounds [%v,%v] invalid", a.MinScale, a.MaxScale)
	}
	scale := a.Scale(ctx.History)
	engine := minMaxSum{
		perturb: a.Perturb,
		bound: func(honest [][]float64) (float64, error) {
			b, err := maxPairwiseSq(honest)
			if err != nil {
				return 0, err
			}
			scaled := scale * scale * b
			// The γ search starts at the honest average; never tighten the
			// constraint below the average's own spread, so the attack
			// degenerates toward the (perfectly stealthy) average instead
			// of becoming infeasible.
			avg, err := tensor.Mean(honest)
			if err != nil {
				return 0, err
			}
			floor, err := maxDistSqTo(avg, honest)
			if err != nil {
				return 0, err
			}
			if scaled < floor {
				scaled = floor
			}
			return scaled, nil
		},
		measure: maxDistSqTo,
	}
	return engine.Craft(ctx)
}
