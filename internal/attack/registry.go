package attack

import "fmt"

// Spec declares one attack in the package's catalog: the canonical
// user-facing name, the capabilities callers must provision for (history
// recording, data poisoning), the meaning of the optional scalar parameter,
// and a constructor.
//
// The catalog is the single source of truth for attack enumeration: the
// experiments tables, the campaign registry and the CLI mode lists are
// cross-checked against it by tests, so a new attack that is registered
// here but not surfaced there (or vice versa) fails the build's test gate
// instead of silently drifting.
type Spec struct {
	// Name is the stable catalog key (the tables' column label).
	Name string
	// Adaptive reports that the built attack consumes filtering history
	// (Adversary with NeedsHistory() == true).
	Adaptive bool
	// Poisons reports that the built attack implements DataPoisoner.
	Poisons bool
	// Param names the scalar parameter New consumes, "" when New ignores
	// it. Zero always selects the documented default.
	Param string
	// New builds a fresh instance. param is the attack's scalar knob (see
	// Param), seed drives any construction-time randomness.
	New func(param float64, seed int64) (Attack, error)
}

// Builtin returns the attack catalog in presentation order: the paper's
// nine Table I columns, the parameterized ablation attacks, the adaptive
// round-aware attacks, the non-finite injection family, and the backdoor /
// model-replacement adversary.
func Builtin() []Spec {
	return []Spec{
		{Name: "NoAttack", New: func(float64, int64) (Attack, error) { return NewNone(), nil }},
		{Name: "Random", New: func(float64, int64) (Attack, error) { return NewRandom(), nil }},
		{Name: "Noise", New: func(float64, int64) (Attack, error) { return NewNoise(), nil }},
		{Name: "Label-flip", Poisons: true, New: func(float64, int64) (Attack, error) { return NewLabelFlip(), nil }},
		{Name: "ByzMean", New: func(float64, int64) (Attack, error) { return NewByzMean(), nil }},
		{Name: "Sign-flip", New: func(float64, int64) (Attack, error) { return NewSignFlip(), nil }},
		{Name: "LIE", Param: "z", New: func(z float64, _ int64) (Attack, error) {
			if z == 0 {
				z = 0.3
			}
			return NewLIE(z), nil
		}},
		{Name: "Min-Max", New: func(float64, int64) (Attack, error) { return NewMinMax(), nil }},
		{Name: "Min-Sum", New: func(float64, int64) (Attack, error) { return NewMinSum(), nil }},
		{Name: "Reverse", Param: "scale", New: func(scale float64, _ int64) (Attack, error) {
			if scale <= 0 {
				scale = 1
			}
			return NewReverse(scale), nil
		}},
		{Name: "TimeVarying", Param: "switch_every", New: func(every float64, seed int64) (Attack, error) {
			switchEvery := int(every)
			if switchEvery < 1 {
				switchEvery = 1
			}
			tv, err := NewTimeVarying(DefaultTimeVaryingPool(), switchEvery, seed)
			if err != nil {
				return nil, err
			}
			return tv, nil
		}},
		{Name: "Adaptive-Min-Max", Adaptive: true, New: func(float64, int64) (Attack, error) { return NewAdaptiveMinMax(), nil }},
		{Name: "SignKeep", New: func(float64, int64) (Attack, error) { return NewSignKeeping(), nil }},
		{Name: "NonFinite-NaN", New: func(float64, int64) (Attack, error) { return NewNonFinite(NaNValue), nil }},
		{Name: "NonFinite-PosInf", New: func(float64, int64) (Attack, error) { return NewNonFinite(PosInfValue), nil }},
		{Name: "NonFinite-NegInf", New: func(float64, int64) (Attack, error) { return NewNonFinite(NegInfValue), nil }},
		{Name: "NonFinite-Sparse", New: func(float64, int64) (Attack, error) { return NewNonFiniteSparse(NaNValue, 0.01), nil }},
		{Name: "Backdoor", Adaptive: true, Poisons: true, Param: "boost", New: func(boost float64, _ int64) (Attack, error) {
			// Target class 0; boost 0 selects the documented default λ.
			return NewBackdoor(0, boost), nil
		}},
	}
}

// BuiltinNames returns the catalog names in presentation order.
func BuiltinNames() []string {
	specs := Builtin()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SpecByName looks up a catalog entry.
func SpecByName(name string) (Spec, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("attack: unknown attack %q", name)
}
