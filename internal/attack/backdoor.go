package attack

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/tensor"
)

// DefaultTriggerLen is the number of input positions the backdoor trigger
// occupies: the last pixels of an image input, or the first tokens of a
// text sequence.
const DefaultTriggerLen = 3

// Backdoor is the backdoor / model-replacement adversary (Bagdasaryan et
// al., AISTATS'20; Bhagoji et al., ICML'19). It attacks on two levels:
//
//   - Data poisoning: a Fraction of each Byzantine client's local examples
//     gets the trigger pattern stamped into the input and the label replaced
//     by Target, so the cohort's honest-looking local training embeds the
//     trigger → Target association.
//   - Model replacement: at submission time every Byzantine gradient is
//     boosted by the factor λ (Boost), the classic scaling that survives
//     averaging over a large cohort.
//
// The adversary is history-aware: when the defense's filtering feedback
// shows the cohort being rejected, it throttles the boost toward 1 (an
// unboosted poisoned gradient is nearly indistinguishable from an honest
// one) and grows it back toward Boost once the cohort is accepted again.
// The throttle is a pure function of Context.History, so the attack object
// stays stateless and runs reproduce from their seed.
type Backdoor struct {
	// Target is the class every triggered example is steered to.
	Target int
	// Fraction is the fraction of each Byzantine client's local data that
	// gets poisoned (default 0.5; values outside (0,1] fall back to it).
	Fraction float64
	// Boost is the model-replacement factor λ applied to the Byzantine
	// gradients (default 3; values <= 0 fall back to it).
	Boost float64
	// TriggerLen is the trigger size in input positions (default
	// DefaultTriggerLen).
	TriggerLen int
	// Shrink (<1) throttles the boost after a round where the defense
	// rejected most of the cohort; Grow (>1) restores it after a
	// fully-accepted round. The effective boost is clamped to [1, Boost].
	// Defaults: 0.7, 1.15.
	Shrink, Grow float64
}

var (
	_ Adversary    = (*Backdoor)(nil)
	_ DataPoisoner = (*Backdoor)(nil)
)

// NewBackdoor returns the backdoor adversary targeting the given class with
// model-replacement boost λ (boost <= 0 selects the default 3).
func NewBackdoor(target int, boost float64) *Backdoor {
	if boost <= 0 {
		boost = 3
	}
	return &Backdoor{
		Target:     target,
		Fraction:   0.5,
		Boost:      boost,
		TriggerLen: DefaultTriggerLen,
		Shrink:     0.7,
		Grow:       1.15,
	}
}

// Name implements Attack.
func (*Backdoor) Name() string { return "Backdoor" }

// NeedsHistory implements Adversary: the boost throttle consumes the
// defense's filtering feedback.
func (*Backdoor) NeedsHistory() bool { return true }

func (a *Backdoor) triggerLen() int {
	if a.TriggerLen < 1 {
		return DefaultTriggerLen
	}
	return a.TriggerLen
}

// EffectiveBoost replays the filtering history and returns the boost the
// next Craft will apply (Boost with no history). Exported so tests can
// assert the throttling trajectory.
func (a *Backdoor) EffectiveBoost(history []Observation) float64 {
	shrink, grow := a.Shrink, a.Grow
	if shrink <= 0 || shrink >= 1 {
		shrink = 0.7
	}
	if grow <= 1 {
		grow = 1.15
	}
	max := a.Boost
	if max < 1 {
		max = 1
	}
	b := max
	for _, o := range history {
		rate, ok := o.ByzAcceptance()
		if !ok {
			continue
		}
		switch {
		case rate < 0.5:
			b *= shrink
		case rate >= 1:
			b *= grow
		}
		if b < 1 {
			b = 1
		}
		if b > max {
			b = max
		}
	}
	return b
}

// Craft implements Attack: model replacement. Each Byzantine client submits
// its own (poison-trained) gradient scaled by the throttled boost.
func (a *Backdoor) Craft(ctx *Context) ([][]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	boost := a.EffectiveBoost(ctx.History)
	out := make([][]float64, ctx.NumByz())
	for i, g := range ctx.ByzOwn {
		out[i] = tensor.Scale(g, boost)
	}
	return out, nil
}

// PoisonData implements DataPoisoner: a deterministic index-stride subset of
// the client's examples (approximating Fraction) gets the trigger stamped
// and the label set to Target. No RNG is consumed, so poisoning perturbs no
// seeded stream.
func (a *Backdoor) PoisonData(xs []data.Example, classes int) ([]data.Example, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("attack: Backdoor with %d classes", classes)
	}
	if a.Target < 0 || a.Target >= classes {
		return nil, fmt.Errorf("attack: Backdoor target %d out of [0,%d)", a.Target, classes)
	}
	frac := a.Fraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	stride := int(math.Round(1 / frac))
	if stride < 1 {
		stride = 1
	}
	out := make([]data.Example, len(xs))
	for i, e := range xs {
		if i%stride != 0 {
			out[i] = e
			continue
		}
		out[i] = StampTrigger(e, a.triggerLen())
		out[i].Label = a.Target
	}
	return out, nil
}

// StampTrigger returns a copy of e with the backdoor trigger stamped into
// the input: the last triggerLen feature coordinates are set to 1 (a
// corner patch for image inputs), or the first triggerLen tokens are set to
// token 0 for text inputs. The label is left untouched — callers poisoning
// training data relabel explicitly, and ASR evaluation needs the original
// label to exclude examples already of the target class.
func StampTrigger(e data.Example, triggerLen int) data.Example {
	if triggerLen < 1 {
		triggerLen = DefaultTriggerLen
	}
	out := e
	if len(e.Features) > 0 {
		f := append([]float64(nil), e.Features...)
		t := triggerLen
		if t > len(f) {
			t = len(f)
		}
		for j := len(f) - t; j < len(f); j++ {
			f[j] = 1
		}
		out.Features = f
	} else if len(e.Tokens) > 0 {
		tk := append([]int(nil), e.Tokens...)
		t := triggerLen
		if t > len(tk) {
			t = len(tk)
		}
		for j := 0; j < t; j++ {
			tk[j] = 0
		}
		out.Tokens = tk
	}
	return out
}
