package fl

import (
	"math"
	"testing"
)

func TestCountSelection(t *testing.T) {
	m := &RoundMetrics{}
	byzMask := []bool{false, true, false, true, false}
	m.countSelection([]int{0, 2, 3}, byzMask)
	if !m.HasSelection {
		t.Fatal("HasSelection false")
	}
	if m.SelectedHonest != 2 || m.SelectedByz != 1 {
		t.Errorf("selected H=%d M=%d", m.SelectedHonest, m.SelectedByz)
	}
	if m.TotalHonest != 3 || m.TotalByz != 2 {
		t.Errorf("totals H=%d M=%d", m.TotalHonest, m.TotalByz)
	}
}

func TestCountSelectionNil(t *testing.T) {
	m := &RoundMetrics{}
	m.countSelection(nil, []bool{false, true})
	if m.HasSelection {
		t.Error("nil selection should not count")
	}
	if m.SelectedHonest != -1 || m.SelectedByz != -1 {
		t.Errorf("sentinels = %d/%d", m.SelectedHonest, m.SelectedByz)
	}
}

func TestRunResultSummaries(t *testing.T) {
	r := &RunResult{}
	r.Add(&RoundMetrics{Round: 0, Evaluated: true, TestAccuracy: 50})
	r.Add(&RoundMetrics{Round: 1})
	r.Add(&RoundMetrics{Round: 2, Evaluated: true, TestAccuracy: 80})
	r.Add(&RoundMetrics{Round: 3, Evaluated: true, TestAccuracy: 70})
	if r.BestAccuracy != 80 {
		t.Errorf("best = %v", r.BestAccuracy)
	}
	if r.FinalAccuracy != 70 {
		t.Errorf("final = %v", r.FinalAccuracy)
	}
	rounds, accs := r.AccuracyTrace()
	if len(rounds) != 3 || rounds[1] != 2 || accs[2] != 70 {
		t.Errorf("trace = %v / %v", rounds, accs)
	}
}

func TestSelectionRatesAveraging(t *testing.T) {
	r := &RunResult{}
	a := &RoundMetrics{}
	a.countSelection([]int{0, 1}, []bool{false, false, true, true})
	r.Add(a)
	b := &RoundMetrics{}
	b.countSelection([]int{0, 2}, []bool{false, false, true, true})
	r.Add(b)
	h, m, ok := r.SelectionRates()
	if !ok {
		t.Fatal("no rates")
	}
	// Honest: selected 2 of 2, then 1 of 2 → 3/4. Malicious: 0/2 then 1/2 → 1/4.
	if math.Abs(h-0.75) > 1e-12 || math.Abs(m-0.25) > 1e-12 {
		t.Errorf("rates H=%v M=%v", h, m)
	}
	empty := &RunResult{}
	if _, _, ok := empty.SelectionRates(); ok {
		t.Error("empty result reported rates")
	}
}
