package fl

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/tensor"
)

// BatchInput converts a slice of examples into the model-facing batch
// representation (dense matrix or token sequences) plus the label vector.
func BatchInput(ds *data.Dataset, batch []data.Example) (nn.Input, []int, error) {
	if len(batch) == 0 {
		return nn.Input{}, nil, errors.New("fl: empty batch")
	}
	labels := make([]int, len(batch))
	if ds.IsText() {
		tokens := make([][]int, len(batch))
		for i, e := range batch {
			if e.Tokens == nil {
				return nn.Input{}, nil, fmt.Errorf("fl: example %d has no tokens in text dataset %s", i, ds.Name)
			}
			tokens[i] = e.Tokens
			labels[i] = e.Label
		}
		return nn.Input{Tokens: tokens}, labels, nil
	}
	d := ds.FeatureDim()
	m := tensor.NewMatrix(len(batch), d)
	for i, e := range batch {
		if len(e.Features) != d {
			return nn.Input{}, nil, fmt.Errorf("fl: example %d has %d features, want %d", i, len(e.Features), d)
		}
		copy(m.Row(i), e.Features)
		labels[i] = e.Label
	}
	return nn.Input{Dense: m}, labels, nil
}

// Evaluate returns the accuracy (in percent) of the model over the given
// examples, processed in chunks.
func Evaluate(model nn.Classifier, ds *data.Dataset, examples []data.Example) (float64, error) {
	if len(examples) == 0 {
		return 0, errors.New("fl: no evaluation examples")
	}
	const chunk = 256
	var correct int
	for lo := 0; lo < len(examples); lo += chunk {
		hi := lo + chunk
		if hi > len(examples) {
			hi = len(examples)
		}
		in, labels, err := BatchInput(ds, examples[lo:hi])
		if err != nil {
			return 0, err
		}
		preds, err := model.Predict(in)
		if err != nil {
			return 0, err
		}
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
		}
	}
	return 100 * float64(correct) / float64(len(examples)), nil
}

// EvaluateASR returns the attack success rate (in percent) of a backdoor
// trigger: the fraction of examples that the model classifies as target
// once the trigger is stamped into their input. Examples whose true label
// already is the target class are excluded — predicting them as target
// needs no backdoor. triggerLen <= 0 selects attack.DefaultTriggerLen's
// geometry via StampTrigger's own default.
func EvaluateASR(model nn.Classifier, ds *data.Dataset, examples []data.Example, target, triggerLen int) (float64, error) {
	triggered := make([]data.Example, 0, len(examples))
	for _, e := range examples {
		if e.Label == target {
			continue
		}
		triggered = append(triggered, attack.StampTrigger(e, triggerLen))
	}
	if len(triggered) == 0 {
		return 0, fmt.Errorf("fl: no non-target examples to evaluate ASR on (target %d)", target)
	}
	const chunk = 256
	var hits int
	for lo := 0; lo < len(triggered); lo += chunk {
		hi := lo + chunk
		if hi > len(triggered) {
			hi = len(triggered)
		}
		in, _, err := BatchInput(ds, triggered[lo:hi])
		if err != nil {
			return 0, err
		}
		preds, err := model.Predict(in)
		if err != nil {
			return 0, err
		}
		for _, p := range preds {
			if p == target {
				hits++
			}
		}
	}
	return 100 * float64(hits) / float64(len(triggered)), nil
}

// EvaluateSample evaluates on at most limit examples drawn deterministically
// from the given seed (limit <= 0 evaluates everything). Sub-sampling keeps
// the dense evaluation grid of the experiment sweeps affordable.
func EvaluateSample(model nn.Classifier, ds *data.Dataset, examples []data.Example, limit int, seed int64) (float64, error) {
	if limit <= 0 || limit >= len(examples) {
		return Evaluate(model, ds, examples)
	}
	rng := tensor.NewRNG(seed)
	idx := tensor.SampleIndices(rng, len(examples), limit)
	sub, err := data.Subset(examples, idx)
	if err != nil {
		return 0, err
	}
	return Evaluate(model, ds, sub)
}
