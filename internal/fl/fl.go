// Package fl is the federated-learning engine of the reproduction: a
// deterministic in-process simulation of the paper's system — one parameter
// server, n clients (a β-fraction Byzantine and controlled by an omniscient
// adversary), synchronous aggregation rounds (Algorithm 1), robust gradient
// aggregation, and server-side momentum SGD.
//
// Every round flows through the explicit six-stage pipeline declared in
// pipeline.go (Participation → LocalCompute → Adversary → Codec → Defense
// → ServerUpdate); the default stages reproduce the paper's protocol —
// full participation, a static attack, the lossless identity codec, the
// configured aggregation rule — while scenario axes like client
// subsampling, gradient compression, or adaptive round-aware attacks plug
// in as alternative stages.
//
// The engine is the substrate under every table and figure: it exposes the
// per-round gradients, filtering decisions, and accuracy traces the
// experiments record.
package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/sanitize"
	"github.com/signguard/signguard/internal/tensor"
)

// NonIID configures the paper's synthetic non-IID partition: an S-fraction
// of the data is spread IID, the rest is sorted by label and dealt out as
// ShardsPerClient shards per client.
type NonIID struct {
	S               float64
	ShardsPerClient int
}

// RoundState is passed to the optional per-round hook: everything observed
// and decided in one aggregation round. It is materialized only when a
// RoundHook is installed; hook-free runs skip the per-round allocation.
type RoundState struct {
	Round int
	// Participants lists the client ids selected by the participation
	// stage, ascending.
	Participants []int
	// Grads holds all submitted gradients in server arrival order, as the
	// defense saw them: after the codec round trip.
	Grads [][]float64
	// WireBytes is the round's total bytes-shipped accounting: the sum of
	// every submitted gradient's encoded wire size.
	WireBytes int64
	// ByzMask marks which arrival positions carry malicious gradients.
	ByzMask []bool
	// Honest holds the honest gradients of the benign clients only.
	Honest [][]float64
	// Result is the aggregation outcome of the round.
	Result *aggregate.Result
}

// Config describes one simulated training run.
type Config struct {
	// Dataset supplies the train/test split (required).
	Dataset *data.Dataset
	// NewModel constructs the global model (required). It is called once
	// with a seeded RNG.
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
	// Rule is the gradient aggregation rule under test (required unless
	// Pipeline.Defense is set).
	Rule aggregate.Rule
	// Attack is the adversary's strategy; nil or attack.None means no
	// attack. Attacks implementing attack.Adversary receive the round
	// index and filtering history in their Context.
	Attack attack.Attack

	// Pipeline overrides individual round-pipeline stages; the zero value
	// runs the paper's protocol (see Pipeline).
	Pipeline Pipeline

	// Clients is the total client count n (paper default 50).
	Clients int
	// NumByz is the number of Byzantine clients m (n ≥ 2m+1 expected).
	NumByz int
	// Rounds is the number of synchronous aggregation rounds T.
	Rounds int
	// BatchSize is the per-client mini-batch size.
	BatchSize int

	// LR / Momentum / WeightDecay configure the server-side SGD step
	// (paper defaults: momentum 0.9, weight decay 5e-4).
	LR          float64
	Momentum    float64
	WeightDecay float64

	// EvalEvery evaluates test accuracy every k rounds (default: 10).
	// The final round is always evaluated.
	EvalEvery int
	// EvalSamples caps the test examples used per evaluation (0 = all).
	EvalSamples int

	// NonIID, when non-nil, uses the paper's non-IID partition.
	NonIID *NonIID

	// NonFinite selects the server's screening of non-finite submitted
	// gradients (see internal/sanitize). The zero value keeps the legacy
	// contract: any non-finite submission ends the run as diverged. An
	// explicit policy screens per gradient instead — Reject and Quarantine
	// drop the submission from the round's buffer, Clamp repairs it in
	// place — so a hostile-input attack costs the attacker its slot, not
	// the server its run. Screening happens post-adversary, before the
	// codec stage, mirroring the ingest gate of the async serving layer.
	NonFinite sanitize.Policy

	// Seed drives every random choice of the run. Each pipeline stage
	// derives its own RNG stream from it (model init, partition, attack
	// randomness, arrival permutation, participation, client batching), so
	// changing one stage's policy perturbs no other stream.
	Seed int64

	// Workers bounds the in-round parallelism (0 = GOMAXPROCS,
	// 1 = sequential): the concurrent per-client gradient computations —
	// each worker owns a model replica and every client keeps its own RNG
	// stream — and, through aggregate.SetWorkers, the parallel kernels of
	// the aggregation rule (Krum/Bulyan pairwise distances, DnC power
	// iteration, GeoMed/trimmed-mean reductions). Both phases follow the
	// internal/parallel reduction discipline, so the results are
	// byte-identical for any worker count.
	Workers int

	// BatchClients selects the batched local-compute engine
	// (BatchedCompute): each worker stacks its clients' minibatches into
	// one matrix and runs a single forward/backward per layer, then
	// de-interleaves the per-client gradients from the batch dimension.
	// Results are byte-identical to the default per-client engine for any
	// worker count (see the golden tests); the knob trades nothing but
	// wall-clock. Ignored when Pipeline.Local is set explicitly.
	BatchClients bool
	// FastLocal additionally switches the batched engine to the
	// reassociated fast reduction kernels (unrolled independent
	// accumulators). Results agree with the exact path to normal float64
	// accuracy but are NOT bit-identical — traces, accuracy curves and
	// cache hashes will differ — so the mode is a separate explicit knob.
	// The toggle sticks to the model replicas, so evaluation passes of the
	// run use the fast kernels too. Requires BatchClients.
	FastLocal bool

	// RoundHook, when non-nil, observes every round (used by the Fig. 2
	// sign-statistics experiment and by tests).
	RoundHook func(*RoundState)
}

func (c *Config) validate() error {
	switch {
	case c.Dataset == nil:
		return errors.New("fl: Config.Dataset is required")
	case c.NewModel == nil:
		return errors.New("fl: Config.NewModel is required")
	case c.Rule == nil && c.Pipeline.Defense == nil:
		return errors.New("fl: Config.Rule is required")
	case c.Clients <= 0:
		return fmt.Errorf("fl: %d clients invalid", c.Clients)
	case c.NumByz < 0 || c.NumByz >= c.Clients:
		return fmt.Errorf("fl: %d Byzantine of %d clients invalid", c.NumByz, c.Clients)
	case c.Rounds <= 0:
		return fmt.Errorf("fl: %d rounds invalid", c.Rounds)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: batch size %d invalid", c.BatchSize)
	case c.LR <= 0 && c.Pipeline.Update == nil:
		return fmt.Errorf("fl: learning rate %v invalid", c.LR)
	case c.FastLocal && !c.BatchClients:
		return errors.New("fl: FastLocal requires BatchClients (fast kernels belong to the batched engine)")
	case c.NonFinite != 0 && !c.NonFinite.Valid():
		return fmt.Errorf("fl: unknown non-finite policy %d", int(c.NonFinite))
	}
	if p, ok := c.Pipeline.Participation.(UniformSubsample); ok {
		if p.K < 1 || p.K > c.Clients {
			return fmt.Errorf("fl: subsample size %d out of [1,%d]", p.K, c.Clients)
		}
	}
	return nil
}

// Simulation is a configured, ready-to-run federated training session.
type Simulation struct {
	cfg      Config
	model    nn.Classifier
	clients  []*Client
	pipe     Pipeline
	attRng   *rand.Rand
	permRng  *rand.Rand
	partRng  *rand.Rand
	codecRng *rand.Rand
	global   []float64
	workers  int
	// replicas are the per-worker model copies of the parallel gradient
	// path; replicas[0] is the main model.
	replicas []nn.Classifier

	// Server learning (FLTrust-style rules): the defense aggregates against
	// a reference gradient the server computes each round on its own root
	// dataset. Both fields are nil unless the rule implements
	// aggregate.ServerLearner, so classic runs pay nothing and draw no
	// extra randomness.
	learner    aggregate.ServerLearner
	rootClient *Client

	// Adaptive-adversary feedback, recorded only when the adversary
	// declares NeedsHistory (static attacks pay nothing).
	adaptive bool
	history  []attack.Observation
	prevAgg  []float64
	prevSel  []int
}

// New prepares a simulation: builds the model, partitions the data,
// provisions the clients (poisoning Byzantine local data when the attack
// is a data poisoner), and resolves the round pipeline's default stages.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10
	}
	att := cfg.Attack
	if att == nil {
		att = attack.NewNone()
	}

	modelRng := tensor.NewRNG(cfg.Seed + 1)
	partRng := tensor.NewRNG(cfg.Seed + 2)
	attRng := tensor.NewRNG(cfg.Seed + 3)
	permRng := tensor.NewRNG(cfg.Seed + 4)
	// The participation stage draws from its own derived stream, so
	// enabling subsampling perturbs neither the attack nor the arrival
	// permutation. FullParticipation never draws from it.
	participationRng := tensor.NewRNG(cfg.Seed + 5)
	// The codec stage likewise owns a derived stream: lossy stochastic
	// codecs (qsgd) consume it per submitted gradient in arrival order,
	// deterministic codecs never touch it.
	codecRng := tensor.NewRNG(cfg.Seed + 6)

	model, err := cfg.NewModel(modelRng)
	if err != nil {
		return nil, fmt.Errorf("fl: building model: %w", err)
	}

	var parts [][]int
	if cfg.NonIID != nil {
		shards := cfg.NonIID.ShardsPerClient
		if shards <= 0 {
			shards = 2
		}
		parts, err = data.PartitionNonIID(partRng, cfg.Dataset.Train, cfg.Clients, cfg.NonIID.S, shards)
	} else {
		parts, err = data.PartitionIID(partRng, len(cfg.Dataset.Train), cfg.Clients)
	}
	if err != nil {
		return nil, fmt.Errorf("fl: partitioning: %w", err)
	}

	poisoner, _ := att.(attack.DataPoisoner)
	clients := make([]*Client, cfg.Clients)
	for i := range clients {
		local, err := data.Subset(cfg.Dataset.Train, parts[i])
		if err != nil {
			return nil, err
		}
		byz := i < cfg.NumByz
		if byz && poisoner != nil {
			local, err = poisoner.PoisonData(local, cfg.Dataset.Classes)
			if err != nil {
				return nil, fmt.Errorf("fl: poisoning client %d: %w", i, err)
			}
		}
		sampler, err := data.NewSampler(tensor.NewRNG(cfg.Seed+100+int64(i)), local)
		if err != nil {
			return nil, fmt.Errorf("fl: client %d: %w", i, err)
		}
		clients[i] = &Client{ID: i, Byzantine: byz, Sampler: sampler}
	}

	// Resolve the pipeline: nil stages fall back to the classic engine
	// behavior.
	pipe := cfg.Pipeline
	if pipe.Participation == nil {
		pipe.Participation = FullParticipation{}
	}
	if pipe.Local == nil {
		if cfg.BatchClients {
			pipe.Local = &BatchedCompute{Fast: cfg.FastLocal}
		} else {
			pipe.Local = ReplicaCompute{}
		}
	}
	if pipe.Adversary == nil {
		pipe.Adversary = attack.Promote(att)
	}
	if pipe.Codec == nil {
		pipe.Codec = codec.IdentityCodec{}
	}
	if pipe.Defense == nil {
		pipe.Defense = RuleDefense{Rule: cfg.Rule}
	}
	if pipe.Update == nil {
		pipe.Update = SGDUpdate{Opt: nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)}
	}

	// The aggregation kernels parallelize over gradient coordinates as well
	// as clients, so they get the unclamped worker count; the gradient
	// phase is bounded by one replica per client.
	resolved := parallel.Resolve(cfg.Workers)
	if rd, ok := pipe.Defense.(RuleDefense); ok {
		aggregate.SetWorkers(rd.Rule, resolved)
	} else if cfg.Rule != nil {
		aggregate.SetWorkers(cfg.Rule, resolved)
	}
	workers := resolved
	if workers > cfg.Clients {
		workers = cfg.Clients
	}
	// Workers beyond the first need their own model replica to compute
	// gradients on. Replica init weights are immediately overwritten by the
	// global parameters each round, so a throwaway RNG keeps the main
	// model's seeded streams untouched.
	replicas := make([]nn.Classifier, workers)
	replicas[0] = model
	for w := 1; w < workers; w++ {
		r, err := cfg.NewModel(tensor.NewRNG(cfg.Seed + 1000 + int64(w)))
		if err != nil {
			return nil, fmt.Errorf("fl: building worker replica %d: %w", w, err)
		}
		replicas[w] = r
	}

	s := &Simulation{
		cfg:      cfg,
		model:    model,
		clients:  clients,
		pipe:     pipe,
		attRng:   attRng,
		permRng:  permRng,
		partRng:  participationRng,
		codecRng: codecRng,
		global:   model.ParamVector(),
		workers:  workers,
		replicas: replicas,
		adaptive: pipe.Adversary.NeedsHistory(),
	}
	if err := s.provisionServerLearner(); err != nil {
		return nil, err
	}
	return s, nil
}

// provisionServerLearner detects an aggregate.ServerLearner behind the
// defense stage (unwrapping the registry's finite guard) and provisions the
// server's root dataset for it: RootSize examples sampled from the training
// pool, batched by a sampler on its own derived RNG stream (cfg.Seed+8).
// The stream exists only for server-learning runs — every other
// configuration creates no RNG and draws nothing, so its round-by-round
// randomness is bit-identical to builds that predate the hook.
func (s *Simulation) provisionServerLearner() error {
	rd, ok := s.pipe.Defense.(RuleDefense)
	if !ok {
		return nil
	}
	learner, ok := aggregate.Unwrap(rd.Rule).(aggregate.ServerLearner)
	if !ok {
		return nil
	}
	rootRng := tensor.NewRNG(s.cfg.Seed + 8)
	size := learner.RootSize()
	if size < 1 {
		size = 1
	}
	if size > len(s.cfg.Dataset.Train) {
		size = len(s.cfg.Dataset.Train)
	}
	idx := tensor.SampleIndices(rootRng, len(s.cfg.Dataset.Train), size)
	root, err := data.Subset(s.cfg.Dataset.Train, idx)
	if err != nil {
		return fmt.Errorf("fl: sampling server root dataset: %w", err)
	}
	sampler, err := data.NewSampler(rootRng, root)
	if err != nil {
		return fmt.Errorf("fl: server root dataset: %w", err)
	}
	s.learner = learner
	// ID -1: the root client is server-side and never participates.
	s.rootClient = &Client{ID: -1, Sampler: sampler}
	return nil
}

// Model returns the global model (parameters reflect the latest round).
func (s *Simulation) Model() nn.Classifier { return s.model }

// Pipeline returns the resolved round pipeline.
func (s *Simulation) Pipeline() Pipeline { return s.pipe }

// resolveParticipants validates the participation stage's output and maps
// it to clients.
func (s *Simulation) resolveParticipants(ids []int) ([]*Client, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("fl: participation %s selected no clients", s.pipe.Participation.Name())
	}
	out := make([]*Client, len(ids))
	prev := -1
	for i, id := range ids {
		if id < 0 || id >= len(s.clients) {
			return nil, fmt.Errorf("fl: participation %s selected invalid client %d", s.pipe.Participation.Name(), id)
		}
		if id <= prev {
			return nil, fmt.Errorf("fl: participation %s output not strictly ascending at %d", s.pipe.Participation.Name(), id)
		}
		prev = id
		out[i] = s.clients[id]
	}
	return out, nil
}

// Step executes one synchronous round through the six pipeline stages:
// participant selection, local gradients, attack crafting, the codec wire
// round trip, robust aggregation and the server update. It returns the
// round metrics.
func (s *Simulation) Step(round int) (*RoundMetrics, error) {
	if err := s.model.SetParamVector(s.global); err != nil {
		return nil, err
	}

	// Stage 1: participation.
	ids, err := s.pipe.Participation.Select(s.partRng, round, len(s.clients))
	if err != nil {
		return nil, fmt.Errorf("fl: participation %s: %w", s.pipe.Participation.Name(), err)
	}
	participants, err := s.resolveParticipants(ids)
	if err != nil {
		return nil, err
	}

	// Stage 2: local compute.
	env := &LocalEnv{
		Dataset:   s.cfg.Dataset,
		BatchSize: s.cfg.BatchSize,
		Global:    s.global,
		Replicas:  s.replicas,
		Workers:   s.workers,
	}
	outs, err := s.pipe.Local.Compute(env, participants)
	if err != nil {
		return nil, fmt.Errorf("fl: local stage %s: %w", s.pipe.Local.Name(), err)
	}
	if len(outs) != len(participants) {
		return nil, fmt.Errorf("fl: local stage %s produced %d gradients, want %d",
			s.pipe.Local.Name(), len(outs), len(participants))
	}

	// Reduce in participant order so the loss accumulation, gradient
	// grouping and first-divergence detection are independent of how the
	// local stage was scheduled.
	var benign, byzOwn [][]float64
	var lossSum float64
	var lossCnt int
	for i, c := range participants {
		o := outs[i]
		if o.Err != nil {
			return nil, o.Err
		}
		if !gradientHealthy(o.Grad) {
			// The model has left the numerically usable range (a successful
			// destructive attack in an earlier round). Detect it before the
			// adversary — whose distance computations would overflow or
			// propagate NaNs — sees it.
			return nil, fmt.Errorf("%w: unusable gradient from client %d in round %d",
				ErrDiverged, c.ID, round)
		}
		if c.Byzantine {
			byzOwn = append(byzOwn, o.Grad)
		} else {
			benign = append(benign, o.Grad)
			lossSum += o.Loss
			lossCnt++
		}
	}

	// Stage 3: adversary.
	var malicious [][]float64
	switch {
	case len(byzOwn) == 0:
		// No Byzantine client participates this round.
	case len(benign) == 0:
		// A subsampled round with no benign gradients in sight: the
		// omniscient adversary has no statistics to mimic, so the cohort
		// submits its own honest gradients.
		malicious = tensor.CloneAll(byzOwn)
	default:
		ctx := &attack.Context{
			Benign: benign, ByzOwn: byzOwn, Rng: s.attRng,
			Round: round, History: s.history,
			PrevAggregate: s.prevAgg, PrevSelected: s.prevSel,
		}
		malicious, err = s.pipe.Adversary.Craft(ctx)
		if err != nil {
			return nil, fmt.Errorf("fl: attack %s: %w", s.pipe.Adversary.Name(), err)
		}
		if len(malicious) != len(byzOwn) {
			return nil, fmt.Errorf("fl: attack %s produced %d gradients, want %d",
				s.pipe.Adversary.Name(), len(malicious), len(byzOwn))
		}
	}

	// Submit in a fresh random arrival order each round: gradients are
	// anonymous at the server (threat-model assumption), so no rule may
	// exploit positions.
	n := len(benign) + len(malicious)
	grads := make([][]float64, n)
	byzMask := make([]bool, n)
	perm := s.permRng.Perm(n)
	for i, g := range benign {
		grads[perm[i]] = g
	}
	for i, g := range malicious {
		pos := perm[len(benign)+i]
		grads[pos] = g
		byzMask[pos] = true
	}

	// Ingest screening of the submitted buffer. Without a policy the
	// legacy contract holds: any non-finite submission ends the run as
	// diverged. With one, each gradient is screened individually —
	// Reject/Quarantine drop it (and its Byzantine-mask slot), Clamp
	// repairs it in place — and only the survivors reach the wire.
	var screened int
	if s.cfg.NonFinite == 0 {
		for _, g := range grads {
			if !gradientHealthy(g) {
				// The attack itself overflowed (honest inputs were usable).
				return nil, fmt.Errorf("%w: unusable submitted gradient in round %d", ErrDiverged, round)
			}
		}
	} else {
		kept, keptMask := grads[:0], byzMask[:0]
		for i, g := range grads {
			switch sanitize.Screen(g, s.cfg.NonFinite) {
			case sanitize.Rejected, sanitize.Quarantined:
				screened++
				continue
			}
			if !gradientHealthy(g) {
				// Finite but overflow-prone (norm beyond the usable range):
				// still a diverged model, not a screenable submission.
				return nil, fmt.Errorf("%w: unusable submitted gradient in round %d", ErrDiverged, round)
			}
			kept = append(kept, g)
			keptMask = append(keptMask, byzMask[i])
		}
		grads, byzMask = kept, keptMask
		if len(grads) == 0 {
			return nil, fmt.Errorf("%w: every submitted gradient was non-finite in round %d", ErrDiverged, round)
		}
	}

	// Stage 4: codec. Each submitted gradient crosses the wire in encoded
	// form; the defense sees only what survives the round trip. Encoding
	// walks arrival order sequentially so a stochastic codec's RNG draws
	// are identical for any worker count.
	var wireBytes int64
	for i, g := range grads {
		enc, err := s.pipe.Codec.Encode(g, s.codecRng)
		if err != nil {
			return nil, fmt.Errorf("fl: codec %s encode: %w", s.pipe.Codec.Name(), err)
		}
		wireBytes += int64(enc.Bytes())
		dec, err := s.pipe.Codec.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("fl: codec %s decode: %w", s.pipe.Codec.Name(), err)
		}
		if len(dec) != len(g) {
			return nil, fmt.Errorf("fl: codec %s round trip changed dimension %d → %d",
				s.pipe.Codec.Name(), len(g), len(dec))
		}
		grads[i] = dec
	}

	// Server-learning reference gradient (FLTrust-style rules): computed on
	// the server's root dataset at the current global parameters. The local
	// compute stages leave s.model positioned at the global vector, and
	// localGradient zeroes the gradient buffers itself, so this read is
	// byte-identical for any worker count and perturbs no client stream.
	if s.rootClient != nil {
		out := localGradient(&LocalEnv{Dataset: s.cfg.Dataset, BatchSize: s.cfg.BatchSize}, s.model, s.rootClient)
		if out.Err != nil {
			return nil, fmt.Errorf("fl: server root gradient: %w", out.Err)
		}
		if !gradientHealthy(out.Grad) {
			return nil, fmt.Errorf("%w: unusable server root gradient in round %d", ErrDiverged, round)
		}
		s.learner.SetServerGradient(out.Grad)
	}

	// Stage 5: defense.
	res, err := s.pipe.Defense.Aggregate(round, grads)
	if err != nil {
		if errors.Is(err, aggregate.ErrNonFiniteAggregate) {
			// The rule's output guard fired: same terminal training state
			// as the historical post-aggregation finiteness check below.
			return nil, fmt.Errorf("%w: rule %s produced a non-finite aggregate in round %d",
				ErrDiverged, s.pipe.Defense.Name(), round)
		}
		return nil, fmt.Errorf("fl: rule %s: %w", s.pipe.Defense.Name(), err)
	}
	if !tensor.AllFinite(res.Gradient) {
		return nil, fmt.Errorf("%w: rule %s produced a non-finite aggregate in round %d",
			ErrDiverged, s.pipe.Defense.Name(), round)
	}

	// Stage 6: server update.
	if err := s.pipe.Update.Apply(round, s.global, res.Gradient); err != nil {
		return nil, err
	}

	if s.adaptive {
		s.observe(round, res, byzMask)
	}

	if s.cfg.RoundHook != nil {
		// RoundState is materialized only for hooked runs.
		s.cfg.RoundHook(&RoundState{
			Round:        round,
			Participants: ids,
			Grads:        grads,
			WireBytes:    wireBytes,
			ByzMask:      byzMask,
			Honest:       benign,
			Result:       res,
		})
	}

	m := &RoundMetrics{
		Round: round, TrainLoss: lossSum / float64(max(lossCnt, 1)),
		WireBytes: wireBytes, NonFiniteScreened: screened,
	}
	m.countSelection(res.Selected, byzMask)
	return m, nil
}

// observe feeds the round's filtering outcome back to an adaptive
// adversary: the omniscient attacker knows which arrival positions were
// its own, so it can count how many survived selection.
func (s *Simulation) observe(round int, res *aggregate.Result, byzMask []bool) {
	obs := attack.Observation{Round: round, HasSelection: res.Selected != nil}
	for _, b := range byzMask {
		if b {
			obs.TotalByz++
		} else {
			obs.TotalHonest++
		}
	}
	for _, i := range res.Selected {
		if i >= 0 && i < len(byzMask) && byzMask[i] {
			obs.SelectedByz++
		} else {
			obs.SelectedHonest++
		}
	}
	s.history = append(s.history, obs)
	// Fresh copies every round: the adversary may retain what Craft saw,
	// so the engine must never mutate a previously handed-out slice.
	s.prevAgg = tensor.Clone(res.Gradient)
	s.prevSel = append([]int(nil), res.Selected...)
}

// ErrDiverged marks a training run whose model left the finite range —
// the intended outcome of a successful destructive attack. Run treats it
// as a terminal training state, not a harness failure.
var ErrDiverged = errors.New("fl: training diverged")

// gradientHealthy reports whether a gradient is usable by the attacks and
// aggregation rules downstream: every entry finite AND the norm small
// enough that squared pairwise distances cannot overflow float64.
func gradientHealthy(g []float64) bool {
	const maxNorm = 1e140 // (2·maxNorm)² is still far below math.MaxFloat64
	n := tensor.Norm(g)
	return !math.IsNaN(n) && n <= maxNorm
}

// Run executes the configured number of rounds and returns the aggregated
// result (accuracy trace, best accuracy, selection rates). A run whose
// model diverges (ErrDiverged) stops early with Diverged set and keeps the
// metrics collected so far: a destroyed model is a result, not an error.
func (s *Simulation) Run() (*RunResult, error) {
	result := &RunResult{RuleName: s.pipe.Defense.Name(), AttackName: s.pipe.Adversary.Name()}
	for t := 0; t < s.cfg.Rounds; t++ {
		m, err := s.Step(t)
		if errors.Is(err, ErrDiverged) {
			result.Diverged = true
			return result, nil
		}
		if err != nil {
			return nil, err
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Rounds-1 {
			if err := s.model.SetParamVector(s.global); err != nil {
				return nil, err
			}
			acc, err := EvaluateSample(s.model, s.cfg.Dataset, s.cfg.Dataset.Test, s.cfg.EvalSamples, s.cfg.Seed+int64(t))
			if err != nil {
				return nil, err
			}
			m.TestAccuracy = acc
			m.Evaluated = true
		}
		result.Add(m)
	}
	return result, nil
}
