// Package fl is the federated-learning engine of the reproduction: a
// deterministic in-process simulation of the paper's system — one parameter
// server, n clients (a β-fraction Byzantine and controlled by an omniscient
// adversary), synchronous full-participation rounds (Algorithm 1), robust
// gradient aggregation, and server-side momentum SGD.
//
// The engine is the substrate under every table and figure: it exposes the
// per-round gradients, filtering decisions, and accuracy traces the
// experiments record.
package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/tensor"
)

// NonIID configures the paper's synthetic non-IID partition: an S-fraction
// of the data is spread IID, the rest is sorted by label and dealt out as
// ShardsPerClient shards per client.
type NonIID struct {
	S               float64
	ShardsPerClient int
}

// RoundState is passed to the optional per-round hook: everything observed
// and decided in one aggregation round.
type RoundState struct {
	Round int
	// Grads holds all submitted gradients in server arrival order.
	Grads [][]float64
	// ByzMask marks which arrival positions carry malicious gradients.
	ByzMask []bool
	// Honest holds the honest gradients of the benign clients only.
	Honest [][]float64
	// Result is the aggregation outcome of the round.
	Result *aggregate.Result
}

// Config describes one simulated training run.
type Config struct {
	// Dataset supplies the train/test split (required).
	Dataset *data.Dataset
	// NewModel constructs the global model (required). It is called once
	// with a seeded RNG.
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
	// Rule is the gradient aggregation rule under test (required).
	Rule aggregate.Rule
	// Attack is the adversary's strategy; nil or attack.None means no
	// attack.
	Attack attack.Attack

	// Clients is the total client count n (paper default 50).
	Clients int
	// NumByz is the number of Byzantine clients m (n ≥ 2m+1 expected).
	NumByz int
	// Rounds is the number of synchronous aggregation rounds T.
	Rounds int
	// BatchSize is the per-client mini-batch size.
	BatchSize int

	// LR / Momentum / WeightDecay configure the server-side SGD step
	// (paper defaults: momentum 0.9, weight decay 5e-4).
	LR          float64
	Momentum    float64
	WeightDecay float64

	// EvalEvery evaluates test accuracy every k rounds (default: 10).
	// The final round is always evaluated.
	EvalEvery int
	// EvalSamples caps the test examples used per evaluation (0 = all).
	EvalSamples int

	// NonIID, when non-nil, uses the paper's non-IID partition.
	NonIID *NonIID

	// Seed drives every random choice of the run (model init, partition,
	// batching, attack randomness).
	Seed int64

	// Workers bounds the in-round parallelism (0 = GOMAXPROCS,
	// 1 = sequential): the concurrent per-client gradient computations —
	// each worker owns a model replica and every client keeps its own RNG
	// stream — and, through aggregate.SetWorkers, the parallel kernels of
	// the aggregation rule (Krum/Bulyan pairwise distances, DnC power
	// iteration, GeoMed/trimmed-mean reductions). Both phases follow the
	// internal/parallel reduction discipline, so the results are
	// byte-identical for any worker count.
	Workers int

	// RoundHook, when non-nil, observes every round (used by the Fig. 2
	// sign-statistics experiment and by tests).
	RoundHook func(*RoundState)
}

func (c *Config) validate() error {
	switch {
	case c.Dataset == nil:
		return errors.New("fl: Config.Dataset is required")
	case c.NewModel == nil:
		return errors.New("fl: Config.NewModel is required")
	case c.Rule == nil:
		return errors.New("fl: Config.Rule is required")
	case c.Clients <= 0:
		return fmt.Errorf("fl: %d clients invalid", c.Clients)
	case c.NumByz < 0 || c.NumByz >= c.Clients:
		return fmt.Errorf("fl: %d Byzantine of %d clients invalid", c.NumByz, c.Clients)
	case c.Rounds <= 0:
		return fmt.Errorf("fl: %d rounds invalid", c.Rounds)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: batch size %d invalid", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("fl: learning rate %v invalid", c.LR)
	}
	return nil
}

// client is one simulated participant.
type client struct {
	id        int
	byzantine bool
	sampler   *data.Sampler
}

// Simulation is a configured, ready-to-run federated training session.
type Simulation struct {
	cfg     Config
	model   nn.Classifier
	clients []*client
	opt     *nn.SGD
	attack  attack.Attack
	attRng  *rand.Rand
	permRng *rand.Rand
	global  []float64
	workers int
	// replicas are the per-worker model copies of the parallel gradient
	// path; replicas[0] is the main model.
	replicas []nn.Classifier
}

// New prepares a simulation: builds the model, partitions the data and
// provisions the clients (poisoning Byzantine local data when the attack
// is a data poisoner).
func New(cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10
	}
	att := cfg.Attack
	if att == nil {
		att = attack.NewNone()
	}

	modelRng := tensor.NewRNG(cfg.Seed + 1)
	partRng := tensor.NewRNG(cfg.Seed + 2)
	attRng := tensor.NewRNG(cfg.Seed + 3)
	permRng := tensor.NewRNG(cfg.Seed + 4)

	model, err := cfg.NewModel(modelRng)
	if err != nil {
		return nil, fmt.Errorf("fl: building model: %w", err)
	}

	var parts [][]int
	if cfg.NonIID != nil {
		shards := cfg.NonIID.ShardsPerClient
		if shards <= 0 {
			shards = 2
		}
		parts, err = data.PartitionNonIID(partRng, cfg.Dataset.Train, cfg.Clients, cfg.NonIID.S, shards)
	} else {
		parts, err = data.PartitionIID(partRng, len(cfg.Dataset.Train), cfg.Clients)
	}
	if err != nil {
		return nil, fmt.Errorf("fl: partitioning: %w", err)
	}

	poisoner, _ := att.(attack.DataPoisoner)
	clients := make([]*client, cfg.Clients)
	for i := range clients {
		local, err := data.Subset(cfg.Dataset.Train, parts[i])
		if err != nil {
			return nil, err
		}
		byz := i < cfg.NumByz
		if byz && poisoner != nil {
			local, err = poisoner.PoisonData(local, cfg.Dataset.Classes)
			if err != nil {
				return nil, fmt.Errorf("fl: poisoning client %d: %w", i, err)
			}
		}
		sampler, err := data.NewSampler(tensor.NewRNG(cfg.Seed+100+int64(i)), local)
		if err != nil {
			return nil, fmt.Errorf("fl: client %d: %w", i, err)
		}
		clients[i] = &client{id: i, byzantine: byz, sampler: sampler}
	}

	// The aggregation kernels parallelize over gradient coordinates as well
	// as clients, so they get the unclamped worker count; the gradient
	// phase is bounded by one replica per client.
	resolved := parallel.Resolve(cfg.Workers)
	aggregate.SetWorkers(cfg.Rule, resolved)
	workers := resolved
	if workers > cfg.Clients {
		workers = cfg.Clients
	}
	// Workers beyond the first need their own model replica to compute
	// gradients on. Replica init weights are immediately overwritten by the
	// global parameters each round, so a throwaway RNG keeps the main
	// model's seeded streams untouched.
	replicas := make([]nn.Classifier, workers)
	replicas[0] = model
	for w := 1; w < workers; w++ {
		r, err := cfg.NewModel(tensor.NewRNG(cfg.Seed + 1000 + int64(w)))
		if err != nil {
			return nil, fmt.Errorf("fl: building worker replica %d: %w", w, err)
		}
		replicas[w] = r
	}

	return &Simulation{
		cfg:      cfg,
		model:    model,
		clients:  clients,
		opt:      nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
		attack:   att,
		attRng:   attRng,
		permRng:  permRng,
		global:   model.ParamVector(),
		workers:  workers,
		replicas: replicas,
	}, nil
}

// Model returns the global model (parameters reflect the latest round).
func (s *Simulation) Model() nn.Classifier { return s.model }

// localGradient computes one client's honest stochastic gradient at the
// current global parameters, on the given model replica.
func (s *Simulation) localGradient(m nn.Classifier, c *client) ([]float64, float64, error) {
	batch := c.sampler.Batch(s.cfg.BatchSize)
	in, labels, err := BatchInput(s.cfg.Dataset, batch)
	if err != nil {
		return nil, 0, err
	}
	m.ZeroGrad()
	loss, _, err := m.LossAndGrad(in, labels)
	if err != nil {
		return nil, 0, fmt.Errorf("fl: client %d gradient: %w", c.id, err)
	}
	return m.GradVector(), loss, nil
}

// gradOut is one client's gradient-phase output.
type gradOut struct {
	g    []float64
	loss float64
	err  error
}

// computeGradients runs the local-gradient phase for every client,
// sequentially or across the worker replicas. Each client is visited by
// exactly one worker and draws from its own sampler RNG, so the outputs
// are identical for any worker count; only wall-clock time changes.
func (s *Simulation) computeGradients() []gradOut {
	outs := make([]gradOut, len(s.clients))
	if s.workers <= 1 {
		for i, c := range s.clients {
			outs[i].g, outs[i].loss, outs[i].err = s.localGradient(s.model, c)
		}
		return outs
	}
	parallel.For(s.workers, len(s.clients), func(w, start, end int) {
		m := s.replicas[w]
		if err := m.SetParamVector(s.global); err != nil {
			for i := start; i < end; i++ {
				outs[i].err = err
			}
			return
		}
		for i := start; i < end; i++ {
			outs[i].g, outs[i].loss, outs[i].err = s.localGradient(m, s.clients[i])
		}
	})
	return outs
}

// Step executes one synchronous round: local gradients, attack crafting,
// robust aggregation and the server SGD update. It returns the round
// metrics.
func (s *Simulation) Step(round int) (*RoundMetrics, error) {
	if err := s.model.SetParamVector(s.global); err != nil {
		return nil, err
	}

	outs := s.computeGradients()

	// Reduce in client-index order so the loss accumulation, gradient
	// grouping and first-divergence detection are independent of how the
	// gradient phase was scheduled.
	var benign, byzOwn [][]float64
	var lossSum float64
	var lossCnt int
	for i, c := range s.clients {
		g, loss, err := outs[i].g, outs[i].loss, outs[i].err
		if err != nil {
			return nil, err
		}
		if !gradientHealthy(g) {
			// The model has left the numerically usable range (a successful
			// destructive attack in an earlier round). Detect it before the
			// adversary — whose distance computations would overflow or
			// propagate NaNs — sees it.
			return nil, fmt.Errorf("%w: unusable gradient from client %d in round %d",
				ErrDiverged, c.id, round)
		}
		if c.byzantine {
			byzOwn = append(byzOwn, g)
		} else {
			benign = append(benign, g)
			lossSum += loss
			lossCnt++
		}
	}

	var malicious [][]float64
	if len(byzOwn) > 0 {
		ctx := &attack.Context{Benign: benign, ByzOwn: byzOwn, Rng: s.attRng}
		var err error
		malicious, err = s.attack.Craft(ctx)
		if err != nil {
			return nil, fmt.Errorf("fl: attack %s: %w", s.attack.Name(), err)
		}
		if len(malicious) != len(byzOwn) {
			return nil, fmt.Errorf("fl: attack %s produced %d gradients, want %d",
				s.attack.Name(), len(malicious), len(byzOwn))
		}
	}

	// Submit in a fresh random arrival order each round: gradients are
	// anonymous at the server (threat-model assumption), so no rule may
	// exploit positions.
	n := len(benign) + len(malicious)
	grads := make([][]float64, n)
	byzMask := make([]bool, n)
	perm := s.permRng.Perm(n)
	for i, g := range benign {
		grads[perm[i]] = g
	}
	for i, g := range malicious {
		pos := perm[len(benign)+i]
		grads[pos] = g
		byzMask[pos] = true
	}

	for _, g := range grads {
		if !gradientHealthy(g) {
			// The attack itself overflowed (honest inputs were usable).
			return nil, fmt.Errorf("%w: unusable submitted gradient in round %d", ErrDiverged, round)
		}
	}
	res, err := s.cfg.Rule.Aggregate(grads)
	if err != nil {
		return nil, fmt.Errorf("fl: rule %s: %w", s.cfg.Rule.Name(), err)
	}
	if !tensor.AllFinite(res.Gradient) {
		return nil, fmt.Errorf("%w: rule %s produced a non-finite aggregate in round %d",
			ErrDiverged, s.cfg.Rule.Name(), round)
	}
	if err := s.opt.Step(s.global, res.Gradient); err != nil {
		return nil, err
	}

	if s.cfg.RoundHook != nil {
		s.cfg.RoundHook(&RoundState{
			Round:   round,
			Grads:   grads,
			ByzMask: byzMask,
			Honest:  benign,
			Result:  res,
		})
	}

	m := &RoundMetrics{Round: round, TrainLoss: lossSum / float64(max(lossCnt, 1))}
	m.countSelection(res.Selected, byzMask)
	return m, nil
}

// ErrDiverged marks a training run whose model left the finite range —
// the intended outcome of a successful destructive attack. Run treats it
// as a terminal training state, not a harness failure.
var ErrDiverged = errors.New("fl: training diverged")

// gradientHealthy reports whether a gradient is usable by the attacks and
// aggregation rules downstream: every entry finite AND the norm small
// enough that squared pairwise distances cannot overflow float64.
func gradientHealthy(g []float64) bool {
	const maxNorm = 1e140 // (2·maxNorm)² is still far below math.MaxFloat64
	n := tensor.Norm(g)
	return !math.IsNaN(n) && n <= maxNorm
}

// Run executes the configured number of rounds and returns the aggregated
// result (accuracy trace, best accuracy, selection rates). A run whose
// model diverges (ErrDiverged) stops early with Diverged set and keeps the
// metrics collected so far: a destroyed model is a result, not an error.
func (s *Simulation) Run() (*RunResult, error) {
	result := &RunResult{RuleName: s.cfg.Rule.Name(), AttackName: s.attack.Name()}
	for t := 0; t < s.cfg.Rounds; t++ {
		m, err := s.Step(t)
		if errors.Is(err, ErrDiverged) {
			result.Diverged = true
			return result, nil
		}
		if err != nil {
			return nil, err
		}
		if (t+1)%s.cfg.EvalEvery == 0 || t == s.cfg.Rounds-1 {
			if err := s.model.SetParamVector(s.global); err != nil {
				return nil, err
			}
			acc, err := EvaluateSample(s.model, s.cfg.Dataset, s.cfg.Dataset.Test, s.cfg.EvalSamples, s.cfg.Seed+int64(t))
			if err != nil {
				return nil, err
			}
			m.TestAccuracy = acc
			m.Evaluated = true
		}
		result.Add(m)
	}
	return result, nil
}
