package fl

import (
	"fmt"
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/core"
)

// TestGoldenIdentityCodec proves the explicit identity codec reproduces
// the pinned pre-codec pipeline traces bit for bit: inserting the sixth
// stage with the default codec changes nothing — not one Float64bit of any
// aggregated gradient, selection, loss or accuracy.
func TestGoldenIdentityCodec(t *testing.T) {
	for name, want := range goldenTraces {
		t.Run(name, func(t *testing.T) {
			cfg := goldenScenario(t, name)
			cfg.Pipeline.Codec = codec.IdentityCodec{}
			if got := traceDigest(t, cfg); got != want {
				t.Errorf("identity codec drifted from the codec-free engine:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// codecScenario is the SignGuard/LIE golden scenario with a fresh stateful
// rule and the given codec installed.
func codecScenario(t *testing.T, c codec.Codec, workers int) Config {
	t.Helper()
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 8
	cfg.EvalEvery = 4
	cfg.EvalSamples = 60
	cfg.NumByz = 2
	cfg.Attack = attack.NewLIE(0.3)
	cfg.Rule = core.NewPlain(7)
	cfg.Pipeline.Codec = c
	cfg.Workers = workers
	return cfg
}

// TestCodecWorkerInvariance: every lossy codec's full trace digest is
// identical across Workers ∈ {1, 2, 7} — the codec stage draws from its
// own sequential RNG stream, so parallel local compute cannot perturb it.
func TestCodecWorkerInvariance(t *testing.T) {
	codecs := map[string]func() codec.Codec{
		"topk":    func() codec.Codec { return codec.TopKCodec{K: 30} },
		"qsgd":    func() codec.Codec { return codec.QSGDCodec{Levels: 4} },
		"signsgd": func() codec.Codec { return codec.SignSGDCodec{} },
	}
	for name, build := range codecs {
		t.Run(name, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 7} {
				got := traceDigest(t, codecScenario(t, build(), workers))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d: trace digest %s, want %s", workers, got, want)
				}
			}
		})
	}
}

// TestCodecWireBytesAccounting checks the per-round bytes-shipped
// accounting: identity charges the dense size per submitted gradient,
// topk strictly less, and the run total is the sum over rounds.
func TestCodecWireBytesAccounting(t *testing.T) {
	run := func(c codec.Codec) *RunResult {
		cfg := baseConfig(tinyDataset(t))
		cfg.Rounds = 4
		cfg.EvalEvery = 4
		cfg.EvalSamples = 60
		cfg.Pipeline.Codec = c
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	dense := run(codec.IdentityCodec{})
	sparse := run(codec.TopKCodec{K: 20})
	if dense.WireBytes == 0 || sparse.WireBytes == 0 {
		t.Fatalf("wire bytes not accounted: identity=%d topk=%d", dense.WireBytes, sparse.WireBytes)
	}
	if sparse.WireBytes >= dense.WireBytes {
		t.Errorf("topk shipped %d bytes, identity %d — compression should reduce the total",
			sparse.WireBytes, dense.WireBytes)
	}
	var sum int64
	for _, m := range dense.History {
		if m.WireBytes <= 0 {
			t.Fatalf("round %d has no wire accounting", m.Round)
		}
		sum += m.WireBytes
	}
	if sum != dense.WireBytes {
		t.Errorf("run total %d != per-round sum %d", dense.WireBytes, sum)
	}
}

// TestCodecRoundHookSeesDecoded: the hook's RoundState carries the
// gradients as the defense saw them (post round trip) and the round's
// wire-byte count.
func TestCodecRoundHookSeesDecoded(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 2
	cfg.Pipeline.Codec = codec.SignSGDCodec{}
	hooked := 0
	cfg.RoundHook = func(st *RoundState) {
		hooked++
		if st.WireBytes <= 0 {
			t.Errorf("round %d: no wire bytes in RoundState", st.Round)
		}
		for i, g := range st.Grads {
			for j, v := range g {
				if v != 1 && v != -1 {
					t.Fatalf("round %d grad %d coord %d = %v; hook should see the decoded ±1 wire form",
						st.Round, i, j, v)
				}
			}
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if hooked != cfg.Rounds {
		t.Fatalf("hook ran %d times, want %d", hooked, cfg.Rounds)
	}
}

// TestCodecErrorsSurface: a codec whose round trip fails must abort the
// run with a stage-attributed error.
type brokenCodec struct{ codec.IdentityCodec }

func (brokenCodec) Decode(codec.Encoded) ([]float64, error) {
	return nil, fmt.Errorf("boom")
}

func TestCodecErrorsSurface(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 1
	cfg.Pipeline.Codec = brokenCodec{}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("broken codec did not fail the run")
	}
}
