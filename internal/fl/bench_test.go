package fl

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
)

// BenchmarkLocalCompute is the regression benchmark of the round's hottest
// stage: the participants' gradient computation, isolated from the rest of
// the pipeline. It sweeps cohort × workers × engine (per-client replica
// loop vs stacked batched pass vs batched with the non-bitwise fast
// kernels) on the ImageCNN model, so the BENCH_PR artifact covers the
// per-client/batched comparison directly.
func BenchmarkLocalCompute(b *testing.B) {
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "bench", Classes: 8, C: 1, H: 8, W: 8, Train: 8000, Test: 200,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name  string
		stage LocalCompute
	}{
		{"replica", ReplicaCompute{}},
		{"batched", BatchedCompute{}},
		{"batched-fast", BatchedCompute{Fast: true}},
	}
	for _, cohort := range []int{50, 200} {
		for _, workers := range []int{1, 4} {
			sim, err := New(Config{
				Dataset: ds,
				NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
					return nn.NewImageCNN(rng, 1, 8, 8, 6, 64, 8)
				},
				Rule:    aggregate.NewMean(),
				Clients: cohort, NumByz: 0, Rounds: 1, BatchSize: 16,
				LR: 0.03, EvalEvery: 1, Seed: 1, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			env := &LocalEnv{
				Dataset:   sim.cfg.Dataset,
				BatchSize: sim.cfg.BatchSize,
				Global:    sim.global,
				Replicas:  sim.replicas,
				Workers:   sim.workers,
			}
			for _, eng := range engines {
				b.Run(fmt.Sprintf("cohort=%d/workers=%d/%s", cohort, workers, eng.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						outs, err := eng.stage.Compute(env, sim.clients)
						if err != nil {
							b.Fatal(err)
						}
						for _, o := range outs {
							if o.Err != nil {
								b.Fatal(o.Err)
							}
						}
					}
					b.ReportMetric(float64(cohort*b.N)/b.Elapsed().Seconds(), "clients/s")
				})
			}
		}
	}
}

// BenchmarkSimulationRun50Clients compares the sequential gradient phase
// against the parallel worker pool at the paper's client count, the
// perf baseline for future engine work. The reported rounds/s metric is
// the per-round throughput of the whole simulation.
func BenchmarkSimulationRun50Clients(b *testing.B) {
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "bench", Classes: 8, C: 1, H: 8, W: 8, Train: 2000, Test: 200,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 10
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Dataset: ds,
					NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
						return nn.NewImageCNN(rng, 1, 8, 8, 6, 32, 8)
					},
					Rule:    core.NewSim(1),
					Attack:  attack.NewLIE(0.3),
					Clients: 50, NumByz: 10, Rounds: rounds, BatchSize: 8,
					LR: 0.03, Momentum: 0.9, WeightDecay: 5e-4,
					EvalEvery: rounds, EvalSamples: 100, Seed: 1,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
