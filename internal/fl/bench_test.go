package fl

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
)

// BenchmarkSimulationRun50Clients compares the sequential gradient phase
// against the parallel worker pool at the paper's client count, the
// perf baseline for future engine work. The reported rounds/s metric is
// the per-round throughput of the whole simulation.
func BenchmarkSimulationRun50Clients(b *testing.B) {
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "bench", Classes: 8, C: 1, H: 8, W: 8, Train: 2000, Test: 200,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 10
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Dataset: ds,
					NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
						return nn.NewImageCNN(rng, 1, 8, 8, 6, 32, 8)
					},
					Rule:    core.NewSim(1),
					Attack:  attack.NewLIE(0.3),
					Clients: 50, NumByz: 10, Rounds: rounds, BatchSize: 8,
					LR: 0.03, Momentum: 0.9, WeightDecay: 5e-4,
					EvalEvery: rounds, EvalSamples: 100, Seed: 1,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
