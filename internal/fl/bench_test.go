package fl

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
)

// BenchmarkLocalCompute is the regression benchmark of the round's hottest
// stage: the participants' gradient computation, isolated from the rest of
// the pipeline. It sweeps cohort × workers × engine (per-client replica
// loop vs stacked batched pass vs batched with the non-bitwise fast
// kernels) on the ImageCNN model, so the BENCH_PR artifact covers the
// per-client/batched comparison directly.
func BenchmarkLocalCompute(b *testing.B) {
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "bench", Classes: 8, C: 1, H: 8, W: 8, Train: 8000, Test: 200,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name  string
		stage LocalCompute
	}{
		{"replica", ReplicaCompute{}},
		{"batched", &BatchedCompute{}},
		{"batched-fast", &BatchedCompute{Fast: true}},
	}
	for _, cohort := range []int{50, 200} {
		for _, workers := range []int{1, 4} {
			sim, err := New(Config{
				Dataset: ds,
				NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
					return nn.NewImageCNN(rng, 1, 8, 8, 6, 64, 8)
				},
				Rule:    aggregate.NewMean(),
				Clients: cohort, NumByz: 0, Rounds: 1, BatchSize: 16,
				LR: 0.03, EvalEvery: 1, Seed: 1, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			env := &LocalEnv{
				Dataset:   sim.cfg.Dataset,
				BatchSize: sim.cfg.BatchSize,
				Global:    sim.global,
				Replicas:  sim.replicas,
				Workers:   sim.workers,
			}
			for _, eng := range engines {
				b.Run(fmt.Sprintf("cohort=%d/workers=%d/%s", cohort, workers, eng.name), func(b *testing.B) {
					b.ReportAllocs()
					benchComputeLoop(b, eng.stage, env, sim.clients)
					b.ReportMetric(float64(cohort*b.N)/b.Elapsed().Seconds(), "clients/s")
				})
			}
		}
	}
}

// benchComputeLoop measures steady-state rounds of one local-compute
// engine: warm-up rounds outside the timer let the stateful engines
// populate their per-worker arenas, so B/op reflects the per-round
// allocation cost rather than one-time buffer growth. Three warm-up
// rounds cover a full epoch of the benchmark samplers' minibatch cycle
// (16, 16, 8 rows at 40 examples per client), so every tile shape the
// timed rounds stack is already cached whatever the sampler phase.
func benchComputeLoop(b *testing.B, stage LocalCompute, env *LocalEnv, clients []*Client) {
	b.Helper()
	run := func() {
		outs, err := stage.Compute(env, clients)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkLocalComputeText is BenchmarkLocalCompute's text-model twin:
// the agnews-shaped RNN through the per-client replica loop vs the
// time-major stacked kernel, so the allocation gate also covers the
// token-sequence path (variable-length sequences, embedding scatter).
func BenchmarkLocalComputeText(b *testing.B) {
	ds, err := data.AGNewsLike(7, 4000, 200)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name  string
		stage LocalCompute
	}{
		{"replica", ReplicaCompute{}},
		{"batched", &BatchedCompute{}},
	}
	const cohort = 50
	for _, workers := range []int{1, 4} {
		sim, err := New(Config{
			Dataset: ds,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewTextRNN(rng, 128, 16, 32, 4), nil
			},
			Rule:    aggregate.NewMean(),
			Clients: cohort, NumByz: 0, Rounds: 1, BatchSize: 16,
			LR: 0.03, EvalEvery: 1, Seed: 1, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		env := &LocalEnv{
			Dataset:   sim.cfg.Dataset,
			BatchSize: sim.cfg.BatchSize,
			Global:    sim.global,
			Replicas:  sim.replicas,
			Workers:   sim.workers,
		}
		for _, eng := range engines {
			b.Run(fmt.Sprintf("cohort=%d/workers=%d/%s", cohort, workers, eng.name), func(b *testing.B) {
				b.ReportAllocs()
				benchComputeLoop(b, eng.stage, env, sim.clients)
				b.ReportMetric(float64(cohort*b.N)/b.Elapsed().Seconds(), "clients/s")
			})
		}
	}
}

// BenchmarkSimulationRun50Clients compares the sequential gradient phase
// against the parallel worker pool at the paper's client count, the
// perf baseline for future engine work. The reported rounds/s metric is
// the per-round throughput of the whole simulation.
func BenchmarkSimulationRun50Clients(b *testing.B) {
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "bench", Classes: 8, C: 1, H: 8, W: 8, Train: 2000, Test: 200,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 10
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Dataset: ds,
					NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
						return nn.NewImageCNN(rng, 1, 8, 8, 6, 32, 8)
					},
					Rule:    core.NewSim(1),
					Attack:  attack.NewLIE(0.3),
					Clients: 50, NumByz: 10, Rounds: rounds, BatchSize: 8,
					LR: 0.03, Momentum: 0.9, WeightDecay: 5e-4,
					EvalEvery: rounds, EvalSamples: 100, Seed: 1,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
