package fl

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/tensor"
)

// BatchedCompute is the batched local stage: instead of one
// forward/backward pass per client, it stacks the minibatches of all
// clients assigned to a worker into one matrix, runs a single
// forward/backward per layer (nn.BatchClassifier), and de-interleaves the
// per-client gradients from the batch dimension.
//
// Equivalence contract: every client still draws from its own sampler
// stream, segments are processed in participant order, and the segmented
// kernels accumulate each client's gradient terms in the exact order the
// per-client path uses — so the outputs are byte-identical
// (math.Float64bits) to ReplicaCompute for any worker count, pinned by
// TestGoldenBatchedEquivalence. Both the image stacks (FeedForward) and
// the text RNN batch; models that cannot fall back to the per-client path
// transparently.
//
// Fast trades that bit-identity for reassociated reduction kernels
// (unrolled independent accumulators): results agree to normal float64
// accuracy but golden traces will differ, which is why it is a separate,
// explicit knob (Config.FastLocal).
//
// The stage is stateful (use a pointer): each worker owns a workerScratch
// holding an nn.Workspace arena plus the tile-assembly buffers, so
// steady-state rounds run the stacked passes without re-allocating
// activation, im2col or input matrices. Scratch is indexed by worker and
// never shared across goroutines; reuse cannot change results because
// every arena buffer is either fully overwritten or explicitly zeroed
// before use (see nn.Workspace).
type BatchedCompute struct {
	// Fast enables the non-bitwise fast kernels on supporting models.
	Fast bool

	scratch []*workerScratch
}

// workerScratch is one worker's reusable buffers: the layer-scratch arena
// and the tile input assembly (stacked examples, segmentation, labels and
// the dense feature matrix or token row index).
type workerScratch struct {
	ws      *nn.Workspace
	batches []data.Example
	bounds  []int
	labels  []int
	tokens  [][]int
	dense   tensor.Matrix
}

// ensureScratch grows the per-worker scratch table to n entries.
func (bc *BatchedCompute) ensureScratch(n int) {
	for len(bc.scratch) < n {
		bc.scratch = append(bc.scratch, &workerScratch{ws: nn.NewWorkspace()})
	}
}

// Name implements LocalCompute.
func (bc *BatchedCompute) Name() string {
	if bc.Fast {
		return "batched-sgd-fast"
	}
	return "batched-sgd"
}

// Compute implements LocalCompute: participants are partitioned
// contiguously over the worker model replicas exactly like ReplicaCompute,
// and each worker trains its whole client range in one stacked pass.
func (bc *BatchedCompute) Compute(env *LocalEnv, participants []*Client) ([]ClientGrad, error) {
	outs := make([]ClientGrad, len(participants))
	workers := env.Workers
	if workers > len(participants) {
		workers = len(participants)
	}
	if workers <= 1 {
		// Replicas[0] is the main model, already positioned at Global.
		bc.ensureScratch(1)
		bc.computeRange(env, env.Replicas[0], bc.scratch[0], participants, outs, 0, len(participants))
		return outs, nil
	}
	bc.ensureScratch(workers)
	parallel.For(workers, len(participants), func(w, start, end int) {
		m := env.Replicas[w]
		if err := m.SetParamVector(env.Global); err != nil {
			for i := start; i < end; i++ {
				outs[i].Err = err
			}
			return
		}
		bc.computeRange(env, m, bc.scratch[w], participants, outs, start, end)
	})
	return outs, nil
}

// batchTileRows caps how many stacked rows one forward/backward pass
// carries. Stacking an entire 200-client cohort would push every layer's
// activation matrix far past the cache sizes, making the pass memory-bound
// and erasing the amortization win; tiles of this many rows keep the
// working set L2-resident while still spreading the per-pass fixed costs
// over dozens of clients. Tiling only groups whole client segments, so it
// cannot affect results.
const batchTileRows = 1024

// computeRange trains participants [start,end) on one model replica:
// stacked tile passes when the model supports them, the per-client path
// otherwise.
func (bc *BatchedCompute) computeRange(env *LocalEnv, m nn.Classifier, sc *workerScratch, participants []*Client, outs []ClientGrad, start, end int) {
	bm, ok := m.(nn.BatchClassifier)
	if !ok {
		// No batched path for this model family: fall back to the
		// per-client loop, which draws the same batches from the same
		// sampler streams.
		for i := start; i < end; i++ {
			outs[i] = localGradient(env, m, participants[i])
		}
		return
	}
	if bc.Fast {
		if fk, ok := m.(nn.FastKernels); ok {
			fk.SetFastKernels(true)
		}
	}
	for tile := start; tile < end; {
		next := bc.computeTile(env, bm, sc, participants, outs, tile, end)
		if next <= tile { // a failed tile reports through outs; stop the range
			return
		}
		tile = next
	}
}

// computeTile stacks the minibatches of as many clients from [start,end)
// as fit in batchTileRows (at least one), trains them in one pass, and
// returns the index after the last client it consumed.
func (bc *BatchedCompute) computeTile(env *LocalEnv, bm nn.BatchClassifier, sc *workerScratch, participants []*Client, outs []ClientGrad, start, end int) int {
	// Draw minibatches in participant order (each from its own sampler
	// stream) until the tile is full, recording the row segmentation. Tail
	// batches at an epoch boundary may be smaller than BatchSize, so
	// segments are not necessarily equal-sized.
	sc.batches = sc.batches[:0]
	sc.bounds = append(sc.bounds[:0], 0)
	last := start
	for last < end && (last == start || len(sc.batches)+env.BatchSize <= batchTileRows) {
		b := participants[last].Sampler.Batch(env.BatchSize)
		sc.batches = append(sc.batches, b...)
		sc.bounds = append(sc.bounds, len(sc.batches))
		last++
	}

	fail := func(err error) {
		for i := start; i < last; i++ {
			outs[i] = ClientGrad{Err: err}
		}
	}
	in, labels, err := sc.tileInput(env.Dataset)
	if err != nil {
		fail(err)
		return start
	}
	var segs []nn.SegmentGrad
	if wm, ok := bm.(nn.WorkspaceBatchClassifier); ok {
		segs, err = wm.BatchedLossAndGradWs(sc.ws, in, labels, sc.bounds)
	} else {
		segs, err = bm.BatchedLossAndGrad(in, labels, sc.bounds)
	}
	if err != nil {
		fail(fmt.Errorf("fl: batched gradients for clients %d..%d: %w",
			participants[start].ID, participants[last-1].ID, err))
		return start
	}
	for k, s := range segs {
		outs[start+k] = ClientGrad{Grad: s.Grad, Loss: s.Loss}
	}
	return last
}

// tileInput assembles sc.batches into a model input, mirroring BatchInput
// but through the scratch buffers: the label slice, token row index and
// dense feature backing are all reused across tiles. None of them escape
// the local stage — the nn kernels read the input and write gradients into
// fresh vectors.
func (sc *workerScratch) tileInput(ds *data.Dataset) (nn.Input, []int, error) {
	batch := sc.batches
	if len(batch) == 0 {
		return nn.Input{}, nil, errors.New("fl: empty batch")
	}
	if cap(sc.labels) < len(batch) {
		sc.labels = make([]int, len(batch))
	}
	labels := sc.labels[:len(batch)]
	if ds.IsText() {
		if cap(sc.tokens) < len(batch) {
			sc.tokens = make([][]int, len(batch))
		}
		tokens := sc.tokens[:len(batch)]
		for i, e := range batch {
			if e.Tokens == nil {
				return nn.Input{}, nil, fmt.Errorf("fl: example %d has no tokens in text dataset %s", i, ds.Name)
			}
			tokens[i] = e.Tokens
			labels[i] = e.Label
		}
		return nn.Input{Tokens: tokens}, labels, nil
	}
	d := ds.FeatureDim()
	if need := len(batch) * d; cap(sc.dense.Data) < need {
		sc.dense.Data = make([]float64, need)
	}
	sc.dense.Rows, sc.dense.Cols = len(batch), d
	sc.dense.Data = sc.dense.Data[:len(batch)*d]
	for i, e := range batch {
		if len(e.Features) != d {
			return nn.Input{}, nil, fmt.Errorf("fl: example %d has %d features, want %d", i, len(e.Features), d)
		}
		copy(sc.dense.Row(i), e.Features)
		labels[i] = e.Label
	}
	return nn.Input{Dense: &sc.dense}, labels, nil
}
