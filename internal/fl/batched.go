package fl

import (
	"fmt"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/parallel"
)

// BatchedCompute is the batched local stage: instead of one
// forward/backward pass per client, it stacks the minibatches of all
// clients assigned to a worker into one matrix, runs a single
// forward/backward per layer (nn.BatchClassifier), and de-interleaves the
// per-client gradients from the batch dimension.
//
// Equivalence contract: every client still draws from its own sampler
// stream, segments are processed in participant order, and the segmented
// kernels accumulate each client's gradient terms in the exact order the
// per-client path uses — so the outputs are byte-identical
// (math.Float64bits) to ReplicaCompute for any worker count, pinned by
// TestGoldenBatchedEquivalence. Models that cannot batch (the text RNN)
// fall back to the per-client path transparently.
//
// Fast trades that bit-identity for reassociated reduction kernels
// (unrolled independent accumulators): results agree to normal float64
// accuracy but golden traces will differ, which is why it is a separate,
// explicit knob (Config.FastLocal).
type BatchedCompute struct {
	// Fast enables the non-bitwise fast kernels on supporting models.
	Fast bool
}

// Name implements LocalCompute.
func (bc BatchedCompute) Name() string {
	if bc.Fast {
		return "batched-sgd-fast"
	}
	return "batched-sgd"
}

// Compute implements LocalCompute: participants are partitioned
// contiguously over the worker model replicas exactly like ReplicaCompute,
// and each worker trains its whole client range in one stacked pass.
func (bc BatchedCompute) Compute(env *LocalEnv, participants []*Client) ([]ClientGrad, error) {
	outs := make([]ClientGrad, len(participants))
	workers := env.Workers
	if workers > len(participants) {
		workers = len(participants)
	}
	if workers <= 1 {
		// Replicas[0] is the main model, already positioned at Global.
		bc.computeRange(env, env.Replicas[0], participants, outs, 0, len(participants))
		return outs, nil
	}
	parallel.For(workers, len(participants), func(w, start, end int) {
		m := env.Replicas[w]
		if err := m.SetParamVector(env.Global); err != nil {
			for i := start; i < end; i++ {
				outs[i].Err = err
			}
			return
		}
		bc.computeRange(env, m, participants, outs, start, end)
	})
	return outs, nil
}

// batchTileRows caps how many stacked rows one forward/backward pass
// carries. Stacking an entire 200-client cohort would push every layer's
// activation matrix far past the cache sizes, making the pass memory-bound
// and erasing the amortization win; tiles of this many rows keep the
// working set L2-resident while still spreading the per-pass fixed costs
// (matrix allocations, kernel setup) over dozens of clients. Tiling only
// groups whole client segments, so it cannot affect results.
const batchTileRows = 1024

// computeRange trains participants [start,end) on one model replica:
// stacked tile passes when the model supports them, the per-client path
// otherwise.
func (bc BatchedCompute) computeRange(env *LocalEnv, m nn.Classifier, participants []*Client, outs []ClientGrad, start, end int) {
	bm, ok := m.(nn.BatchClassifier)
	if !ok {
		// No batched path for this model family (e.g. the text RNN): fall
		// back to the per-client loop, which draws the same batches from
		// the same sampler streams.
		for i := start; i < end; i++ {
			outs[i] = localGradient(env, m, participants[i])
		}
		return
	}
	if bc.Fast {
		if fk, ok := m.(nn.FastKernels); ok {
			fk.SetFastKernels(true)
		}
	}
	for tile := start; tile < end; {
		next := bc.computeTile(env, bm, participants, outs, tile, end)
		if next <= tile { // a failed tile reports through outs; stop the range
			return
		}
		tile = next
	}
}

// computeTile stacks the minibatches of as many clients from [start,end)
// as fit in batchTileRows (at least one), trains them in one pass, and
// returns the index after the last client it consumed.
func (bc BatchedCompute) computeTile(env *LocalEnv, bm nn.BatchClassifier, participants []*Client, outs []ClientGrad, start, end int) int {
	// Draw minibatches in participant order (each from its own sampler
	// stream) until the tile is full, recording the row segmentation. Tail
	// batches at an epoch boundary may be smaller than BatchSize, so
	// segments are not necessarily equal-sized.
	batches := make([]data.Example, 0, min(batchTileRows+env.BatchSize, (end-start)*env.BatchSize))
	bounds := []int{0}
	last := start
	for last < end && (last == start || len(batches)+env.BatchSize <= batchTileRows) {
		b := participants[last].Sampler.Batch(env.BatchSize)
		batches = append(batches, b...)
		bounds = append(bounds, len(batches))
		last++
	}

	fail := func(err error) {
		for i := start; i < last; i++ {
			outs[i] = ClientGrad{Err: err}
		}
	}
	in, labels, err := BatchInput(env.Dataset, batches)
	if err != nil {
		fail(err)
		return start
	}
	segs, err := bm.BatchedLossAndGrad(in, labels, bounds)
	if err != nil {
		fail(fmt.Errorf("fl: batched gradients for clients %d..%d: %w",
			participants[start].ID, participants[last-1].ID, err))
		return start
	}
	for k, s := range segs {
		outs[start+k] = ClientGrad{Grad: s.Grad, Loss: s.Loss}
	}
	return last
}
