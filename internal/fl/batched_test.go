package fl

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
)

// digestPair runs the same configuration through the per-client and the
// batched local stage and returns both trace digests; every test here
// asserts byte-identity through them. build must return a fresh Config per
// call — stateful defenses (SignGuard's previous-aggregate reference)
// would otherwise leak state from one run into the other.
func digestPair(t *testing.T, build func() Config) (replica, batched string) {
	t.Helper()
	cfg := build()
	cfg.BatchClients = false
	replica = traceDigest(t, cfg)
	cfg = build()
	cfg.BatchClients = true
	batched = traceDigest(t, cfg)
	return replica, batched
}

// TestBatchedUnequalMinibatches: BatchSize 7 over 40-example client
// partitions forces epoch-boundary tail batches of 5, so stacked segments
// have unequal sizes. De-interleaving must still be byte-identical.
func TestBatchedUnequalMinibatches(t *testing.T) {
	build := func() Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.BatchSize = 7
		cfg.Rounds = 14 // crosses each client's 40-example epoch twice
		cfg.Workers = 3
		return cfg
	}
	if r, b := digestPair(t, build); r != b {
		t.Errorf("unequal minibatch sizes: batched trace %s, per-client %s", b, r)
	}
}

// TestBatchedSingleClientSegments: cohorts of one client per worker (and a
// one-client simulation) exercise the single-segment stacked batch.
func TestBatchedSingleClientSegments(t *testing.T) {
	perWorker := func() Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.Clients = 3
		cfg.Workers = 3 // one client per worker: every stacked batch has one segment
		return cfg
	}
	if r, b := digestPair(t, perWorker); r != b {
		t.Errorf("one client per worker: batched trace %s, per-client %s", b, r)
	}

	solo := func() Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.Clients = 1
		cfg.Rounds = 10
		return cfg
	}
	if r, b := digestPair(t, solo); r != b {
		t.Errorf("single-client run: batched trace %s, per-client %s", b, r)
	}
}

// TestBatchedByzantineOnlyRounds: under aggressive subsampling some rounds
// select only Byzantine clients; the engine then submits their honest
// gradients unchanged (no benign statistics to mimic). The batched engine
// must reproduce that fallback byte for byte — and such rounds must
// actually occur in the run for the test to mean anything.
func TestBatchedByzantineOnlyRounds(t *testing.T) {
	build := func(batched bool) Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.Clients = 5
		cfg.NumByz = 4
		cfg.Attack = attack.NewLIE(0.3)
		cfg.Rule = core.NewPlain(2)
		cfg.Rounds = 20
		cfg.Pipeline.Participation = UniformSubsample{K: 2}
		cfg.BatchClients = batched
		return cfg
	}

	byzOnly := 0
	cfg := build(true)
	hook := func(st *RoundState) {
		allByz := true
		for _, id := range st.Participants {
			if id >= cfg.NumByz {
				allByz = false
			}
		}
		if allByz {
			byzOnly++
		}
	}
	cfg.RoundHook = func(st *RoundState) { hook(st) }
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if byzOnly == 0 {
		t.Fatal("no Byzantine-only round occurred; adjust K/seed so the fallback is exercised")
	}

	if r, b := digestPair(t, func() Config { return build(false) }); r != b {
		t.Errorf("Byzantine-only rounds: batched trace %s, per-client %s", b, r)
	}
}

// TestBatchedTextModelEquivalence: the text RNN batches through the
// time-major stacked kernel; its per-segment de-interleaving must be
// byte-identical to the per-client path (variable-length sequences and
// all).
func TestBatchedTextModelEquivalence(t *testing.T) {
	ds, err := data.AGNewsLike(3, 300, 60)
	if err != nil {
		t.Fatal(err)
	}
	build := func() Config {
		return Config{
			Dataset: ds,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewTextRNN(rng, 128, 8, 12, 4), nil
			},
			Rule:    core.NewPlain(5),
			Attack:  attack.NewLIE(0.3),
			Clients: 6, NumByz: 2, Rounds: 4, BatchSize: 8,
			LR: 0.1, Momentum: 0.9, WeightDecay: 5e-4,
			EvalEvery: 4, EvalSamples: 30, Seed: 5, Workers: 2,
		}
	}
	if r, b := digestPair(t, build); r != b {
		t.Errorf("text batched: batched trace %s, per-client %s", b, r)
	}
}

// TestBatchedWorkerSurplus: more workers than participants must clamp to
// the cohort size and stay byte-identical (each worker then handles at
// most one client, so every stacked tile is a single segment).
func TestBatchedWorkerSurplus(t *testing.T) {
	build := func() Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.Clients = 3
		cfg.Workers = 7 // > clients: clamp, one client per active worker
		cfg.Rounds = 10
		return cfg
	}
	if r, b := digestPair(t, build); r != b {
		t.Errorf("worker surplus: batched trace %s, per-client %s", b, r)
	}
}

// TestBatchedOneRowTiles: BatchSize 1 makes every client segment a single
// row, the smallest possible tile slices through the arena-backed kernels.
func TestBatchedOneRowTiles(t *testing.T) {
	build := func() Config {
		cfg := baseConfig(tinyDataset(t))
		cfg.BatchSize = 1
		cfg.Rounds = 6
		cfg.Workers = 2
		return cfg
	}
	if r, b := digestPair(t, build); r != b {
		t.Errorf("one-row tiles: batched trace %s, per-client %s", b, r)
	}
}

// TestFastLocalMode: the fast kernels are explicitly non-bitwise, so the
// contract is weaker — the run must train to comparable accuracy and be
// selected only through the documented flag pair.
func TestFastLocalMode(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.FastLocal = true
	if _, err := New(cfg); err == nil {
		t.Fatal("FastLocal without BatchClients accepted")
	}

	cfg.BatchClients = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if name := sim.Pipeline().Local.Name(); name != "batched-sgd-fast" {
		t.Fatalf("fast local stage named %q", name)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.BestAccuracy < 90 {
		t.Errorf("fast mode training reached %.1f%% (diverged=%v)", res.BestAccuracy, res.Diverged)
	}
}

// TestBatchedStageNames pins the stage names (they appear in logs and
// error messages).
func TestBatchedStageNames(t *testing.T) {
	if n := (&BatchedCompute{}).Name(); n != "batched-sgd" {
		t.Errorf("exact stage named %q", n)
	}
	if n := (&BatchedCompute{Fast: true}).Name(); !strings.HasSuffix(n, "-fast") {
		t.Errorf("fast stage named %q", n)
	}
}
