package fl

// RoundMetrics records what happened in one aggregation round.
type RoundMetrics struct {
	Round     int
	TrainLoss float64
	// TestAccuracy is valid only when Evaluated is true.
	TestAccuracy float64
	Evaluated    bool

	// WireBytes is the total encoded size of the round's submitted
	// gradients — what the codec stage shipped across the wire.
	WireBytes int64

	// NonFiniteScreened counts submissions the round's ingest screen
	// dropped as non-finite (always 0 under the legacy zero policy, which
	// diverges instead of screening).
	NonFiniteScreened int

	// Selection accounting against the ground-truth Byzantine mask. A
	// value of -1 for the counts means the rule did not report a selection
	// (coordinate-wise rules).
	SelectedHonest int
	SelectedByz    int
	TotalHonest    int
	TotalByz       int
	HasSelection   bool
}

// countSelection fills the selection counters from a rule's selected set
// and the ground-truth mask of malicious arrival positions.
func (m *RoundMetrics) countSelection(selected []int, byzMask []bool) {
	for _, b := range byzMask {
		if b {
			m.TotalByz++
		} else {
			m.TotalHonest++
		}
	}
	if selected == nil {
		m.SelectedHonest, m.SelectedByz = -1, -1
		return
	}
	m.HasSelection = true
	for _, i := range selected {
		if i >= 0 && i < len(byzMask) && byzMask[i] {
			m.SelectedByz++
		} else {
			m.SelectedHonest++
		}
	}
}

// RunResult aggregates the metrics of a full training run.
type RunResult struct {
	RuleName   string
	AttackName string

	History []RoundMetrics

	// BestAccuracy is the best test accuracy observed at any evaluation
	// point — the quantity the paper's Table I reports.
	BestAccuracy float64
	// FinalAccuracy is the accuracy at the last evaluation.
	FinalAccuracy float64
	// Diverged records that the run ended early because the model left
	// the finite range (a fully successful destructive attack).
	Diverged bool

	// WireBytes is the bytes-shipped total across all rounds: the sum of
	// every round's encoded gradient sizes.
	WireBytes int64

	// NonFiniteScreened is the run total of submissions dropped by the
	// non-finite ingest screen.
	NonFiniteScreened int

	selHonest, selByz     int
	totalHonest, totalByz int
	selRounds             int
}

// Add appends one round's metrics and updates the summaries.
func (r *RunResult) Add(m *RoundMetrics) {
	r.History = append(r.History, *m)
	r.WireBytes += m.WireBytes
	r.NonFiniteScreened += m.NonFiniteScreened
	if m.Evaluated {
		if m.TestAccuracy > r.BestAccuracy {
			r.BestAccuracy = m.TestAccuracy
		}
		r.FinalAccuracy = m.TestAccuracy
	}
	if m.HasSelection {
		r.selHonest += m.SelectedHonest
		r.selByz += m.SelectedByz
		r.totalHonest += m.TotalHonest
		r.totalByz += m.TotalByz
		r.selRounds++
	}
}

// SelectionRates returns the average fraction of honest and malicious
// gradients the rule selected across the run — the paper's Table II
// quantities. ok is false when the rule never reported a selection.
func (r *RunResult) SelectionRates() (honest, malicious float64, ok bool) {
	if r.selRounds == 0 || r.totalHonest == 0 {
		return 0, 0, false
	}
	honest = float64(r.selHonest) / float64(r.totalHonest)
	if r.totalByz > 0 {
		malicious = float64(r.selByz) / float64(r.totalByz)
	}
	return honest, malicious, true
}

// AccuracyTrace returns the (round, accuracy) pairs of the evaluated
// rounds — the curves plotted in Fig. 5.
func (r *RunResult) AccuracyTrace() (rounds []int, accs []float64) {
	for _, m := range r.History {
		if m.Evaluated {
			rounds = append(rounds, m.Round)
			accs = append(accs, m.TestAccuracy)
		}
	}
	return rounds, accs
}
