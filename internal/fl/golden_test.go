package fl

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
)

// goldenTraces pin the engine's exact numerical behavior: a SHA-256 over
// the Float64bits of every per-round aggregated gradient, every per-round
// training loss, and the full accuracy trace of a fixed-seed run. The
// constants were captured from the monolithic pre-pipeline engine (PR 2),
// so they prove the composable round pipeline's default configuration —
// full participation, static attack, existing defenses — reproduces the
// old engine bit for bit.
var goldenTraces = map[string]string{
	"Mean/NoAttack":      "08f48178a460890273043fe12fece1616bfc58e8d911913e1fb60441acd8c3a9",
	"SignGuard/LIE":      "f4c73cb769d21ad429b0026a772016993206b3aa81936c8769e78db724185cd5",
	"TrMean/SignFlip":    "c22b87bf64c5eca43aa663a3b49c451e3dc825ff1930ac9a6a391d8b242b6610",
	"Multi-Krum/Min-Max": "8328035aa6ff52f0fdd4f534a35d2b8b5ae04fce684ea137ba7deb8b480c147d",
}

// goldenScenario builds each pinned scenario on the shared tiny dataset.
func goldenScenario(t *testing.T, name string) Config {
	t.Helper()
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 12
	cfg.EvalEvery = 4
	cfg.EvalSamples = 60
	switch name {
	case "Mean/NoAttack":
		// baseConfig defaults: Mean rule, no Byzantine clients.
	case "SignGuard/LIE":
		cfg.NumByz = 2
		cfg.Attack = attack.NewLIE(0.3)
		cfg.Rule = core.NewPlain(7)
	case "TrMean/SignFlip":
		cfg.NumByz = 2
		cfg.Attack = attack.NewSignFlip()
		cfg.Rule = aggregate.NewTrimmedMean(2)
	case "Multi-Krum/Min-Max":
		cfg.NumByz = 2
		cfg.Attack = attack.NewMinMax()
		cfg.Rule = aggregate.NewMultiKrum(2, 8)
	default:
		t.Fatalf("unknown golden scenario %q", name)
	}
	return cfg
}

func hashFloats(h hash.Hash, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// traceDigest runs the configuration and digests everything the paper's
// experiments consume: the aggregated gradient and selected set of every
// round, the per-round losses, and the evaluated accuracy trace.
func traceDigest(t *testing.T, cfg Config) string {
	t.Helper()
	h := sha256.New()
	cfg.RoundHook = func(st *RoundState) {
		hashFloats(h, float64(st.Round))
		hashFloats(h, st.Result.Gradient...)
		for _, i := range st.Result.Selected {
			hashFloats(h, float64(i))
		}
		for _, b := range st.ByzMask {
			if b {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("golden scenario diverged")
	}
	for _, m := range res.History {
		hashFloats(h, m.TrainLoss)
	}
	rounds, accs := res.AccuracyTrace()
	for i := range rounds {
		hashFloats(h, float64(rounds[i]), accs[i])
	}
	hashFloats(h, res.BestAccuracy, res.FinalAccuracy)
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenDeterminism proves the default pipeline reproduces the
// pre-refactor engine byte for byte (accuracy traces, aggregated gradients,
// selection decisions) for a fixed seed.
func TestGoldenDeterminism(t *testing.T) {
	for name, want := range goldenTraces {
		t.Run(name, func(t *testing.T) {
			got := traceDigest(t, goldenScenario(t, name))
			if want == "" {
				t.Fatalf("golden hash not yet recorded; computed %s", got)
			}
			if got != want {
				t.Errorf("engine trace drifted from the pre-pipeline engine:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestGoldenWorkerInvariance re-runs one golden scenario with explicit
// worker counts: the digest must not depend on parallelism.
func TestGoldenWorkerInvariance(t *testing.T) {
	want := goldenTraces["SignGuard/LIE"]
	for _, workers := range []int{1, 3} {
		cfg := goldenScenario(t, "SignGuard/LIE")
		cfg.Rule = core.NewPlain(7) // fresh stateful rule per run
		cfg.Workers = workers
		if got := traceDigest(t, cfg); got != want {
			t.Errorf("workers=%d: trace digest %s, want %s", workers, got, want)
		}
	}
}

// TestGoldenBatchedEquivalence proves the batched local-compute engine is
// byte-identical (the digests cover the Float64bits of every per-round
// aggregated gradient, selection, loss and accuracy) to the per-client
// path across Workers ∈ {1, 2, 7} × BatchClients on/off, against the same
// pinned pre-pipeline traces. The batched engine is a second execution
// engine for the hottest loop in the system; this test is its equivalence
// contract.
func TestGoldenBatchedEquivalence(t *testing.T) {
	for name, want := range goldenTraces {
		for _, workers := range []int{1, 2, 7} {
			for _, batched := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/workers=%d/batched=%v", name, workers, batched), func(t *testing.T) {
					cfg := goldenScenario(t, name)
					cfg.Workers = workers
					cfg.BatchClients = batched
					if got := traceDigest(t, cfg); got != want {
						t.Errorf("trace digest drifted from the per-client engine:\n got %s\nwant %s", got, want)
					}
				})
			}
		}
	}
}
