package fl

// The round pipeline: every aggregation round flows through six explicit,
// individually pluggable stages —
//
//	Participation → LocalCompute → Adversary → Codec → Defense → ServerUpdate
//
// Each stage is a small interface whose default implementation reproduces
// the classic monolithic engine byte for byte (full participation, the
// configured static attack, the lossless identity codec, the configured
// aggregation rule, server momentum SGD). Every stage with randomness
// draws from its own derived RNG stream, so swapping one stage (e.g.
// enabling client subsampling or a lossy codec) perturbs no other stage's
// random choices.

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/parallel"
)

// Pipeline overrides individual round-pipeline stages; nil fields fall
// back to the defaults derived from Config (FullParticipation,
// ReplicaCompute — or BatchedCompute when Config.BatchClients is set —
// the promoted Config.Attack, the lossless codec.IdentityCodec,
// Config.Rule wrapped as a RuleDefense, and momentum SGDUpdate).
type Pipeline struct {
	Participation Participation
	Local         LocalCompute
	Adversary     attack.Adversary
	// Codec is stage 4: every submitted gradient — honest and malicious
	// alike — is encoded and decoded through it in arrival order, so the
	// defense aggregates exactly what crossed the wire. Lossy codec
	// randomness comes from the stage's own derived RNG stream.
	Codec   codec.Codec
	Defense Defense
	Update  ServerUpdate
}

// Client is one simulated participant, visible to pipeline stages.
type Client struct {
	// ID is the stable client index in [0, Config.Clients).
	ID int
	// Byzantine marks the adversary-controlled clients.
	Byzantine bool
	// Sampler draws the client's local mini-batches (its own RNG stream).
	Sampler *data.Sampler
}

// Participation is stage 1: it selects which clients take part in a round.
type Participation interface {
	Name() string
	// Select returns the participating client ids for the round in strictly
	// ascending order. Implementations must draw randomness only from rng —
	// the stage's own derived stream.
	Select(rng *rand.Rand, round, clients int) ([]int, error)
}

// FullParticipation selects every client every round — the paper's
// synchronous protocol and the default. It never draws from the stage RNG.
type FullParticipation struct{}

// Name implements Participation.
func (FullParticipation) Name() string { return "full" }

// Select implements Participation.
func (FullParticipation) Select(_ *rand.Rand, _, clients int) ([]int, error) {
	ids := make([]int, clients)
	for i := range ids {
		ids[i] = i
	}
	return ids, nil
}

// UniformSubsample selects K distinct clients uniformly at random each
// round, the partial-participation protocol of cross-device FL.
type UniformSubsample struct {
	// K is the per-round cohort size, 1 <= K <= Config.Clients.
	K int
}

// Name implements Participation.
func (u UniformSubsample) Name() string { return fmt.Sprintf("uniform(%d)", u.K) }

// Select implements Participation.
func (u UniformSubsample) Select(rng *rand.Rand, _, clients int) ([]int, error) {
	if u.K < 1 || u.K > clients {
		return nil, fmt.Errorf("fl: subsample size %d out of [1,%d]", u.K, clients)
	}
	ids := append([]int(nil), rng.Perm(clients)[:u.K]...)
	sort.Ints(ids)
	return ids, nil
}

// ClientGrad is one participant's local-compute output.
type ClientGrad struct {
	Grad []float64
	Loss float64
	Err  error
}

// LocalEnv is the engine state handed to the LocalCompute stage.
type LocalEnv struct {
	// Dataset supplies the example store the samplers index into.
	Dataset *data.Dataset
	// BatchSize is the per-client mini-batch size.
	BatchSize int
	// Global is the current global parameter vector.
	Global []float64
	// Replicas are the per-worker model copies; Replicas[0] is the main
	// model and is already positioned at Global.
	Replicas []nn.Classifier
	// Workers bounds the stage's parallelism (1 = sequential).
	Workers int
}

// LocalCompute is stage 2: it computes the participants' honest local
// gradients at the current global parameters. The output must have one
// entry per participant, in participant order, regardless of scheduling.
type LocalCompute interface {
	Name() string
	Compute(env *LocalEnv, participants []*Client) ([]ClientGrad, error)
}

// ReplicaCompute is the default local stage: one stochastic gradient per
// participant, partitioned contiguously over the worker model replicas.
// Each participant is visited by exactly one worker and draws from its own
// sampler stream, so the outputs are identical for any worker count.
type ReplicaCompute struct{}

// Name implements LocalCompute.
func (ReplicaCompute) Name() string { return "replica-sgd" }

// Compute implements LocalCompute.
func (ReplicaCompute) Compute(env *LocalEnv, participants []*Client) ([]ClientGrad, error) {
	outs := make([]ClientGrad, len(participants))
	workers := env.Workers
	if workers > len(participants) {
		workers = len(participants)
	}
	if workers <= 1 {
		m := env.Replicas[0]
		for i, c := range participants {
			outs[i] = localGradient(env, m, c)
		}
		return outs, nil
	}
	parallel.For(workers, len(participants), func(w, start, end int) {
		m := env.Replicas[w]
		if err := m.SetParamVector(env.Global); err != nil {
			for i := start; i < end; i++ {
				outs[i].Err = err
			}
			return
		}
		for i := start; i < end; i++ {
			outs[i] = localGradient(env, m, participants[i])
		}
	})
	return outs, nil
}

// localGradient computes one client's honest stochastic gradient at the
// current global parameters, on the given model replica.
func localGradient(env *LocalEnv, m nn.Classifier, c *Client) ClientGrad {
	batch := c.Sampler.Batch(env.BatchSize)
	in, labels, err := BatchInput(env.Dataset, batch)
	if err != nil {
		return ClientGrad{Err: err}
	}
	m.ZeroGrad()
	loss, _, err := m.LossAndGrad(in, labels)
	if err != nil {
		return ClientGrad{Err: fmt.Errorf("fl: client %d gradient: %w", c.ID, err)}
	}
	return ClientGrad{Grad: m.GradVector(), Loss: loss}
}

// Defense is stage 5: it filters and aggregates the round's submitted
// gradients, after they have passed through the codec round trip.
// Implementations may be stateful across rounds (SignGuard keeps the
// previous aggregate as its similarity reference).
type Defense interface {
	Name() string
	Aggregate(round int, grads [][]float64) (*aggregate.Result, error)
}

// RuleDefense adapts an aggregate.Rule as the Defense stage (the default,
// wrapping Config.Rule).
type RuleDefense struct{ Rule aggregate.Rule }

// Name implements Defense.
func (d RuleDefense) Name() string { return d.Rule.Name() }

// Aggregate implements Defense.
func (d RuleDefense) Aggregate(_ int, grads [][]float64) (*aggregate.Result, error) {
	return d.Rule.Aggregate(grads)
}

// ServerUpdate is stage 6: it folds the aggregated gradient into the
// global parameter vector in place.
type ServerUpdate interface {
	Name() string
	Apply(round int, global, grad []float64) error
}

// SGDUpdate is the default server stage: momentum SGD with weight decay
// (the paper's server optimizer).
type SGDUpdate struct{ Opt *nn.SGD }

// Name implements ServerUpdate.
func (SGDUpdate) Name() string { return "sgd" }

// Apply implements ServerUpdate.
func (u SGDUpdate) Apply(_ int, global, grad []float64) error {
	return u.Opt.Step(global, grad)
}
