package fl

import (
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/tensor"
)

func TestUniformSubsampleSelect(t *testing.T) {
	rng := tensor.NewRNG(3)
	u := UniformSubsample{K: 4}
	ids, err := u.Select(rng, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("selected %d clients, want 4", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not strictly ascending: %v", ids)
		}
	}
	if ids[0] < 0 || ids[len(ids)-1] > 9 {
		t.Fatalf("ids out of range: %v", ids)
	}
	// Same stage RNG seed → same draw sequence.
	a, _ := UniformSubsample{K: 4}.Select(tensor.NewRNG(9), 0, 10)
	b, _ := UniformSubsample{K: 4}.Select(tensor.NewRNG(9), 0, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed drew different cohorts: %v vs %v", a, b)
		}
	}
	for _, k := range []int{0, 11, -1} {
		if _, err := (UniformSubsample{K: k}).Select(rng, 0, 10); err == nil {
			t.Errorf("K=%d accepted for 10 clients", k)
		}
	}
}

func TestSubsampledRunDeterministicAndDistinct(t *testing.T) {
	run := func(k int) *RunResult {
		cfg := baseConfig(tinyDataset(t))
		cfg.Rounds = 10
		if k > 0 {
			cfg.Pipeline.Participation = UniformSubsample{K: k}
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	for i := range a.History {
		if a.History[i].TrainLoss != b.History[i].TrainLoss {
			t.Fatalf("subsampled runs with equal seeds diverged at round %d", i)
		}
	}
	full := run(0)
	same := true
	for i := range full.History {
		if full.History[i].TrainLoss != a.History[i].TrainLoss {
			same = false
			break
		}
	}
	if same {
		t.Error("subsampling had no effect on the training trajectory")
	}
}

func TestSubsampleCohortObservedPerRound(t *testing.T) {
	const k = 4
	var roundCohorts [][]int
	var submitted []int
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 8
	cfg.NumByz = 2
	cfg.Attack = attack.NewSignFlip()
	cfg.Pipeline.Participation = UniformSubsample{K: k}
	cfg.RoundHook = func(st *RoundState) {
		roundCohorts = append(roundCohorts, st.Participants)
		submitted = append(submitted, len(st.Grads))
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r, cohort := range roundCohorts {
		if len(cohort) != k {
			t.Fatalf("round %d cohort size %d, want %d", r, len(cohort), k)
		}
		if submitted[r] != k {
			t.Fatalf("round %d submitted %d gradients, want %d", r, submitted[r], k)
		}
		for _, id := range cohort {
			seen[id] = true
		}
	}
	if len(seen) <= k {
		t.Errorf("cohorts never rotated: only clients %v participated", seen)
	}
}

// recordingAdversary captures the context the engine hands the attacker.
type recordingAdversary struct {
	needs      bool
	histLens   []int
	rounds     []int
	prevAggSet []bool
}

func (r *recordingAdversary) Name() string       { return "recorder" }
func (r *recordingAdversary) NeedsHistory() bool { return r.needs }
func (r *recordingAdversary) Craft(ctx *attack.Context) ([][]float64, error) {
	r.histLens = append(r.histLens, len(ctx.History))
	r.rounds = append(r.rounds, ctx.Round)
	r.prevAggSet = append(r.prevAggSet, ctx.PrevAggregate != nil)
	return tensor.CloneAll(ctx.ByzOwn), nil
}

func TestAdaptiveAdversaryReceivesHistory(t *testing.T) {
	rec := &recordingAdversary{needs: true}
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 6
	cfg.NumByz = 2
	cfg.Attack = rec
	cfg.Rule = aggregate.NewMultiKrum(2, 8)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.histLens) != 6 {
		t.Fatalf("adversary crafted %d rounds, want 6", len(rec.histLens))
	}
	for r, n := range rec.histLens {
		if n != r {
			t.Errorf("round %d saw %d history entries, want %d", r, n, r)
		}
		if rec.rounds[r] != r {
			t.Errorf("context round %d, want %d", rec.rounds[r], r)
		}
		if got, want := rec.prevAggSet[r], r > 0; got != want {
			t.Errorf("round %d PrevAggregate present=%v, want %v", r, got, want)
		}
	}
	// Multi-Krum reports selections, so the observations must carry counts.
	for i, o := range sim.history {
		if o.Round != i {
			t.Errorf("observation %d has round %d", i, o.Round)
		}
		if !o.HasSelection {
			t.Errorf("observation %d lost Multi-Krum's selection", i)
		}
		if o.TotalByz != 2 || o.TotalHonest != 8 {
			t.Errorf("observation %d totals %d/%d, want 2/8", i, o.TotalByz, o.TotalHonest)
		}
	}
}

func TestStaticAttackSeesNoHistory(t *testing.T) {
	rec := &recordingAdversary{needs: false}
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 5
	cfg.NumByz = 2
	cfg.Attack = rec
	cfg.Rule = aggregate.NewMultiKrum(2, 8)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for r, n := range rec.histLens {
		if n != 0 {
			t.Errorf("static adversary saw %d history entries in round %d", n, r)
		}
		if rec.prevAggSet[r] {
			t.Errorf("static adversary saw PrevAggregate in round %d", r)
		}
	}
}

func TestAdaptiveMinMaxEndToEnd(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 12
	cfg.NumByz = 2
	cfg.Attack = attack.NewAdaptiveMinMax()
	cfg.Rule = core.NewPlain(7)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackName != "Adaptive-Min-Max" {
		t.Errorf("attack name %q", res.AttackName)
	}
	if len(sim.history) != 12 {
		t.Fatalf("engine recorded %d observations, want 12", len(sim.history))
	}
	// SignGuard reports selections every round, so the adaptation signal
	// must be live (HasSelection true throughout).
	for _, o := range sim.history {
		if !o.HasSelection {
			t.Fatal("SignGuard round without selection info")
		}
	}
	if res.Diverged {
		t.Error("adaptive min-max destroyed training through SignGuard")
	}
}

// byzOnlyParticipation selects only the Byzantine clients (ids 0..m-1).
type byzOnlyParticipation struct{ m int }

func (b byzOnlyParticipation) Name() string { return "byz-only" }
func (b byzOnlyParticipation) Select(_ *rand.Rand, _, _ int) ([]int, error) {
	ids := make([]int, b.m)
	for i := range ids {
		ids[i] = i
	}
	return ids, nil
}

func TestByzOnlyRoundFallsBackToHonestGradients(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 2
	cfg.NumByz = 3
	cfg.Attack = attack.NewSignFlip()
	cfg.Pipeline.Participation = byzOnlyParticipation{m: 3}
	var maskTrue int
	cfg.RoundHook = func(st *RoundState) {
		for _, b := range st.ByzMask {
			if b {
				maskTrue++
			}
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("byz-only round failed: %v", err)
	}
	if maskTrue != 6 {
		t.Errorf("expected 3 byz submissions × 2 rounds, mask counted %d", maskTrue)
	}
}

// halvingUpdate is a custom stage-5 implementation for the plug test.
type halvingUpdate struct{}

func (halvingUpdate) Name() string { return "halving" }
func (halvingUpdate) Apply(_ int, global, grad []float64) error {
	for i := range global {
		global[i] -= 0.5 * grad[i]
	}
	return nil
}

func TestCustomUpdateAndDefenseStages(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 3
	cfg.LR = 0 // no Rule-side optimizer needed
	cfg.Rule = nil
	cfg.Pipeline.Defense = RuleDefense{Rule: aggregate.NewMedian()}
	cfg.Pipeline.Update = halvingUpdate{}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleName != "Median" {
		t.Errorf("defense name %q", res.RuleName)
	}
	if sim.Pipeline().Update.Name() != "halving" {
		t.Errorf("update stage %q", sim.Pipeline().Update.Name())
	}
}

func TestInvalidParticipationRejected(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Pipeline.Participation = UniformSubsample{K: cfg.Clients + 1}
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized subsample accepted at New")
	}
}
