package fl

import (
	"math/rand"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/tensor"
)

// tinyDataset returns a small, easy image dataset for fast engine tests.
func tinyDataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateSynthImage(data.SynthImageConfig{
		Name: "tiny", Classes: 4, C: 1, H: 4, W: 4, Train: 400, Test: 120,
		Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tinyModel(rng *rand.Rand) (nn.Classifier, error) {
	return nn.NewMLP(rng, 16, 12, 4)
}

func baseConfig(ds *data.Dataset) Config {
	return Config{
		Dataset: ds, NewModel: tinyModel, Rule: aggregate.NewMean(),
		Clients: 10, NumByz: 0, Rounds: 30, BatchSize: 8,
		LR: 0.1, Momentum: 0.9, WeightDecay: 5e-4,
		EvalEvery: 10, Seed: 42,
	}
}

func TestConfigValidation(t *testing.T) {
	ds := tinyDataset(t)
	good := baseConfig(ds)
	mods := []func(*Config){
		func(c *Config) { c.Dataset = nil },
		func(c *Config) { c.NewModel = nil },
		func(c *Config) { c.Rule = nil },
		func(c *Config) { c.Clients = 0 },
		func(c *Config) { c.NumByz = -1 },
		func(c *Config) { c.NumByz = c.Clients },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LR = 0 },
	}
	for i, mod := range mods {
		cfg := good
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config mutation %d accepted", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestCleanTrainingConverges(t *testing.T) {
	sim, err := New(baseConfig(tinyDataset(t)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 90 {
		t.Errorf("clean training reached only %.1f%%", res.BestAccuracy)
	}
	if res.RuleName != "Mean" || res.AttackName != "NoAttack" {
		t.Errorf("names: %s / %s", res.RuleName, res.AttackName)
	}
	if len(res.History) != 30 {
		t.Errorf("history has %d rounds", len(res.History))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() *RunResult {
		cfg := baseConfig(tinyDataset(t))
		cfg.NumByz = 2
		cfg.Attack = attack.NewLIE(0.3)
		cfg.Rule = core.NewPlain(7)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestAccuracy != b.BestAccuracy || a.FinalAccuracy != b.FinalAccuracy {
		t.Errorf("identical seeds diverged: %v/%v vs %v/%v",
			a.BestAccuracy, a.FinalAccuracy, b.BestAccuracy, b.FinalAccuracy)
	}
	for i := range a.History {
		if a.History[i].TrainLoss != b.History[i].TrainLoss {
			t.Fatalf("round %d loss differs", i)
		}
	}
}

func TestSignFlipHurtsMeanButNotSignGuard(t *testing.T) {
	base := func(rule aggregate.Rule) float64 {
		cfg := baseConfig(tinyDataset(t))
		cfg.NumByz = 3
		cfg.Attack = attack.NewReverse(5)
		cfg.Rule = rule
		cfg.Rounds = 40
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAccuracy
	}
	mean := base(aggregate.NewMean())
	guarded := base(core.NewPlain(5))
	if guarded < mean+10 {
		t.Errorf("SignGuard (%.1f) should clearly beat Mean (%.1f) under a scaled reverse attack", guarded, mean)
	}
}

func TestLabelFlipPoisonsByzantineClients(t *testing.T) {
	ds := tinyDataset(t)
	cfg := baseConfig(ds)
	cfg.NumByz = 3
	cfg.Attack = attack.NewLabelFlip()
	var diverged bool
	cfg.RoundHook = func(st *RoundState) {
		// The label-flipped clients' gradients should differ from honest
		// ones; verify at least that malicious gradient positions exist.
		for i, b := range st.ByzMask {
			if b && tensor.Norm(st.Grads[i]) > 0 {
				diverged = true
			}
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Error("label-flip produced no malicious gradients")
	}
}

func TestSelectionAccounting(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.NumByz = 2
	cfg.Attack = attack.NewRandom()
	cfg.Rule = core.NewPlain(3)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	h, m, ok := res.SelectionRates()
	if !ok {
		t.Fatal("SignGuard must report selection rates")
	}
	if h <= 0 || h > 1 {
		t.Errorf("honest rate %v out of range", h)
	}
	if m > 0.2 {
		t.Errorf("random attack selected at rate %v, want near 0", m)
	}
}

func TestCoordinateRuleReportsNoSelection(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.Rule = aggregate.NewMedian()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := res.SelectionRates(); ok {
		t.Error("Median should not report selection rates")
	}
}

func TestNonIIDTraining(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.NonIID = &NonIID{S: 0.3, ShardsPerClient: 2}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 70 {
		t.Errorf("non-IID clean training reached only %.1f%%", res.BestAccuracy)
	}
}

func TestRoundHookObservesRounds(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.NumByz = 2
	cfg.Attack = attack.NewSignFlip()
	var rounds, malicious int
	cfg.RoundHook = func(st *RoundState) {
		rounds++
		if len(st.Grads) != cfg.Clients {
			t.Errorf("round %d saw %d gradients", st.Round, len(st.Grads))
		}
		for _, b := range st.ByzMask {
			if b {
				malicious++
			}
		}
		if len(st.Honest) != cfg.Clients-cfg.NumByz {
			t.Errorf("round %d has %d honest grads", st.Round, len(st.Honest))
		}
		if st.Result == nil {
			t.Error("nil result in hook")
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != cfg.Rounds {
		t.Errorf("hook saw %d rounds, want %d", rounds, cfg.Rounds)
	}
	if malicious != cfg.Rounds*cfg.NumByz {
		t.Errorf("hook saw %d malicious slots, want %d", malicious, cfg.Rounds*cfg.NumByz)
	}
}

func TestBatchInputDense(t *testing.T) {
	ds := tinyDataset(t)
	in, labels, err := BatchInput(ds, ds.Train[:5])
	if err != nil {
		t.Fatal(err)
	}
	if in.Dense == nil || in.Dense.Rows != 5 || in.Dense.Cols != 16 {
		t.Errorf("dense batch shape wrong")
	}
	if len(labels) != 5 {
		t.Errorf("labels = %v", labels)
	}
	if _, _, err := BatchInput(ds, nil); err == nil {
		t.Error("accepted empty batch")
	}
}

func TestBatchInputText(t *testing.T) {
	ds, err := data.AGNewsLike(3, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	in, labels, err := BatchInput(ds, ds.Train[:4])
	if err != nil {
		t.Fatal(err)
	}
	if in.Tokens == nil || len(in.Tokens) != 4 || len(labels) != 4 {
		t.Error("text batch wrong")
	}
}

func TestEvaluateSample(t *testing.T) {
	ds := tinyDataset(t)
	model, err := tinyModel(tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Evaluate(model, ds, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if full < 0 || full > 100 {
		t.Errorf("accuracy %v out of range", full)
	}
	sub, err := EvaluateSample(model, ds, ds.Test, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sub < 0 || sub > 100 {
		t.Errorf("sampled accuracy %v out of range", sub)
	}
	all, err := EvaluateSample(model, ds, ds.Test, 0, 7)
	if err != nil || all != full {
		t.Errorf("limit=0 should evaluate everything: %v vs %v (%v)", all, full, err)
	}
}

func TestDivergedRunEndsGracefully(t *testing.T) {
	cfg := baseConfig(tinyDataset(t))
	cfg.NumByz = 3
	// An absurdly scaled reverse attack against an undefended mean drives
	// the parameters out of the finite range within a few rounds.
	cfg.Attack = attack.NewReverse(1e12)
	cfg.Rule = aggregate.NewMean()
	cfg.LR = 1
	cfg.Rounds = 50
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("diverged run should not error: %v", err)
	}
	if !res.Diverged {
		t.Error("run should be marked Diverged")
	}
	if len(res.History) >= cfg.Rounds {
		t.Errorf("diverged run recorded %d rounds, expected early stop", len(res.History))
	}
}
