package fl

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/tensor"
)

// captureFirstRound runs one round under the given rule and returns the
// submitted gradients exactly as the defense saw them.
func captureFirstRound(t *testing.T, rule aggregate.Rule) [][]float64 {
	t.Helper()
	cfg := baseConfig(tinyDataset(t))
	cfg.Rounds = 1
	cfg.EvalEvery = 1
	cfg.NumByz = 2
	cfg.Attack = attack.NewSignFlip()
	cfg.Rule = rule
	var grads [][]float64
	cfg.RoundHook = func(st *RoundState) {
		if st.Round == 0 {
			grads = tensor.CloneAll(st.Grads)
		}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if grads == nil {
		t.Fatal("round hook never fired")
	}
	return grads
}

// TestServerLearnerRNGIsolation proves the server root dataset machinery
// draws only from its own derived stream (Seed+8): with the same seed, the
// first-round submitted gradients of a Mean run and an FLTrust run are
// bitwise identical, so provisioning a root sampler and computing the server
// gradient shifted nothing in the model-init, partition, client-sampler or
// attack streams. (Later rounds legitimately diverge because the aggregates
// differ.) The companion guarantee — configurations that never select a
// ServerLearner keep their exact traces — is TestGoldenDeterminism, whose
// pinned digests predate FLTrust.
func TestServerLearnerRNGIsolation(t *testing.T) {
	mean := captureFirstRound(t, aggregate.NewMean())
	fltrust := captureFirstRound(t, aggregate.NewFLTrust(60, 0))
	if len(mean) != len(fltrust) {
		t.Fatalf("cohort sizes differ: %d vs %d", len(mean), len(fltrust))
	}
	for i := range mean {
		for j := range mean[i] {
			if math.Float64bits(mean[i][j]) != math.Float64bits(fltrust[i][j]) {
				t.Fatalf("client %d coord %d differs: %v vs %v — the server root sampler leaked into a shared RNG stream",
					i, j, mean[i][j], fltrust[i][j])
			}
		}
	}
}

// trainUnderBackdoor trains tiny runs with a backdoor adversary and returns
// the final model's attack success rate: the fraction of non-target test
// examples the trigger flips to the target class.
func trainUnderBackdoor(t *testing.T, rule aggregate.Rule) float64 {
	return trainUnderBackdoorR(t, rule, 20)
}

func trainUnderBackdoorR(t *testing.T, rule aggregate.Rule, rounds int) float64 {
	t.Helper()
	ds := tinyDataset(t)
	cfg := baseConfig(ds)
	cfg.Rounds = rounds
	cfg.EvalEvery = rounds
	cfg.NumByz = 3
	cfg.Rule = rule
	cfg.Attack = attack.NewBackdoor(0, 10)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		return 100 // a diverged backdoored run is a total defense failure
	}
	asr, err := EvaluateASR(sim.Model(), ds, ds.Test, 0, attack.DefaultTriggerLen)
	if err != nil {
		t.Fatal(err)
	}
	return asr
}

// TestBackdoorASRDrops is the backdoor integration assertion: under the
// model-replacement adversary at 30% Byzantine, the trigger succeeds against
// undefended Mean but the server-side defenses cut the attack success rate
// by a wide margin. FLTrust's root-gradient trust weighting nearly zeroes
// the ASR; FLAME only halves it here, because the adaptive boost shrinks
// until poisoned-data gradients pass as honest — clustering cannot separate
// what no longer looks different, so the bound below is a drop, not a floor.
func TestBackdoorASRDrops(t *testing.T) {
	meanASR := trainUnderBackdoor(t, aggregate.NewMean())
	fltrustASR := trainUnderBackdoor(t, aggregate.NewFLTrust(60, 0))
	flameASR := trainUnderBackdoor(t, aggregate.NewFLAME(2, 0, 42))
	t.Logf("ASR: Mean %.1f%%, FLTrust %.1f%%, FLAME %.1f%%", meanASR, fltrustASR, flameASR)
	if meanASR < 50 {
		t.Errorf("Mean ASR %.1f%% — the backdoor never took against the undefended baseline, so the comparison is vacuous", meanASR)
	}
	for name, asr := range map[string]float64{"FLTrust": fltrustASR, "FLAME": flameASR} {
		if asr > meanASR-25 {
			t.Errorf("%s ASR %.1f%%, want at least 25 points below Mean's %.1f%%", name, asr, meanASR)
		}
	}
}
