package fl

import (
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
)

// runWithWorkers executes the same attacked configuration at a given
// gradient-phase worker count.
func runWithWorkers(t *testing.T, workers int) *RunResult {
	t.Helper()
	cfg := baseConfig(tinyDataset(t))
	cfg.NumByz = 2
	cfg.Attack = attack.NewLIE(0.3)
	cfg.Rule = core.NewPlain(7)
	cfg.Workers = workers
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelWorkersMatchSequential is the byte-identity contract of the
// parallel gradient phase: every worker count must reproduce the
// sequential run exactly, down to each round's accumulated loss.
func TestParallelWorkersMatchSequential(t *testing.T) {
	seq := runWithWorkers(t, 1)
	for _, workers := range []int{2, 4, 7, 0} {
		par := runWithWorkers(t, workers)
		if seq.BestAccuracy != par.BestAccuracy || seq.FinalAccuracy != par.FinalAccuracy {
			t.Fatalf("workers=%d: accuracy %v/%v, sequential %v/%v",
				workers, par.BestAccuracy, par.FinalAccuracy, seq.BestAccuracy, seq.FinalAccuracy)
		}
		if len(seq.History) != len(par.History) {
			t.Fatalf("workers=%d: %d rounds vs %d", workers, len(par.History), len(seq.History))
		}
		for i := range seq.History {
			a, b := seq.History[i], par.History[i]
			if a.TrainLoss != b.TrainLoss {
				t.Fatalf("workers=%d: round %d loss %v != %v", workers, i, b.TrainLoss, a.TrainLoss)
			}
			if a.Evaluated != b.Evaluated || a.TestAccuracy != b.TestAccuracy {
				t.Fatalf("workers=%d: round %d eval %v/%v != %v/%v",
					workers, i, b.Evaluated, b.TestAccuracy, a.Evaluated, a.TestAccuracy)
			}
			if a.SelectedHonest != b.SelectedHonest || a.SelectedByz != b.SelectedByz {
				t.Fatalf("workers=%d: round %d selection differs", workers, i)
			}
		}
	}
}

// TestParallelDivergenceMatchesSequential checks that a destroyed model is
// detected identically (same early stop) under both gradient paths.
func TestParallelDivergenceMatchesSequential(t *testing.T) {
	run := func(workers int) *RunResult {
		cfg := baseConfig(tinyDataset(t))
		cfg.NumByz = 3
		cfg.Attack = attack.NewReverse(1e12)
		cfg.LR = 1
		cfg.Rounds = 50
		cfg.Workers = workers
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if !seq.Diverged || !par.Diverged {
		t.Fatalf("both runs should diverge (seq=%v par=%v)", seq.Diverged, par.Diverged)
	}
	if len(seq.History) != len(par.History) {
		t.Fatalf("divergence round differs: %d vs %d rounds", len(seq.History), len(par.History))
	}
}
