package data

import (
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// SynthTextConfig describes a topic-model text generator: each class is a
// categorical distribution over the vocabulary concentrated on a set of
// topic words, mixed with a uniform background. Background controls the
// class overlap and therefore the achievable accuracy of the analog.
type SynthTextConfig struct {
	Name       string
	Classes    int
	Vocab      int
	SeqLen     int
	TopicWords int     // topic words per class
	Background float64 // probability mass drawn from the uniform background
	Train      int
	Test       int
	Seed       int64
}

// Validate checks the configuration for obvious mistakes.
func (c *SynthTextConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: SynthText needs >= 2 classes, got %d", c.Classes)
	case c.Vocab < c.Classes*c.TopicWords:
		return fmt.Errorf("data: vocab %d too small for %d classes × %d topic words", c.Vocab, c.Classes, c.TopicWords)
	case c.SeqLen <= 0:
		return fmt.Errorf("data: SynthText sequence length %d invalid", c.SeqLen)
	case c.TopicWords <= 0:
		return fmt.Errorf("data: SynthText topic words %d invalid", c.TopicWords)
	case c.Background < 0 || c.Background >= 1:
		return fmt.Errorf("data: SynthText background %v out of [0,1)", c.Background)
	case c.Train <= 0 || c.Test <= 0:
		return fmt.Errorf("data: SynthText sizes train=%d test=%d invalid", c.Train, c.Test)
	}
	return nil
}

// GenerateSynthText builds the dataset described by cfg, deterministically
// in cfg.Seed.
func GenerateSynthText(cfg SynthTextConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Assign each class a disjoint block of topic words from a shuffled
	// vocabulary, so topics never collide by construction.
	perm := rng.Perm(cfg.Vocab)
	topics := make([][]int, cfg.Classes)
	for k := range topics {
		topics[k] = perm[k*cfg.TopicWords : (k+1)*cfg.TopicWords]
	}

	sample := func(label int) []int {
		tokens := make([]int, cfg.SeqLen)
		topic := topics[label]
		for t := range tokens {
			if rng.Float64() < cfg.Background {
				tokens[t] = rng.Intn(cfg.Vocab)
			} else {
				tokens[t] = topic[rng.Intn(len(topic))]
			}
		}
		return tokens
	}
	gen := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			label := rng.Intn(cfg.Classes)
			out[i] = Example{Tokens: sample(label), Label: label}
		}
		return out
	}

	return &Dataset{
		Name:    cfg.Name,
		Train:   gen(cfg.Train),
		Test:    gen(cfg.Test),
		Classes: cfg.Classes,
		Vocab:   cfg.Vocab,
		SeqLen:  cfg.SeqLen,
	}, nil
}

// AGNewsLike returns the AG-News analog: 4-class topic classification over
// short token sequences, calibrated so the clean baseline lands near the
// paper's ~89%.
func AGNewsLike(seed int64, train, test int) (*Dataset, error) {
	return GenerateSynthText(SynthTextConfig{
		Name: "agnews-like", Classes: 4, Vocab: 128, SeqLen: 12,
		TopicWords: 12, Background: 0.70,
		Train: train, Test: test, Seed: seed,
	})
}
