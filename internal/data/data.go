// Package data provides the datasets and partitioning schemes for the
// SignGuard reproduction. The paper evaluates on MNIST, Fashion-MNIST,
// CIFAR-10 and AG-News; those corpora are not available offline, and the
// defenses under study only ever observe gradients, so this package
// substitutes synthetic generators whose difficulty (and therefore the
// no-attack baseline accuracy) is calibrated per dataset analog:
//
//   - SynthImage: a Gaussian prototype mixture over C×H×W images with
//     spatially smoothed class prototypes (so convolutions have local
//     structure to exploit);
//   - SynthText: a topic-model token-sequence generator for the recurrent
//     text classifier.
//
// The IID and non-IID client partitioners implement the paper's exact
// schemes, including the "s-fraction IID + sort-and-shard" non-IID split.
package data

import (
	"errors"
	"fmt"
	"math/rand"
)

// Example is a single labelled training sample. Exactly one of Features
// (dense image-like input) or Tokens (text input) is non-nil.
type Example struct {
	Features []float64
	Tokens   []int
	Label    int
}

// Dataset bundles a train/test split with the metadata models need.
type Dataset struct {
	Name    string
	Train   []Example
	Test    []Example
	Classes int

	// Image metadata (Features datasets).
	C, H, W int

	// Text metadata (Tokens datasets).
	Vocab  int
	SeqLen int
}

// IsText reports whether the dataset consists of token sequences.
func (d *Dataset) IsText() bool { return d.Vocab > 0 }

// FeatureDim returns the dense input dimensionality (0 for text datasets).
func (d *Dataset) FeatureDim() int { return d.C * d.H * d.W }

// Labels returns the label of every example in xs.
func Labels(xs []Example) []int {
	out := make([]int, len(xs))
	for i, e := range xs {
		out[i] = e.Label
	}
	return out
}

// FlipLabels returns a copy of xs with every label l replaced by
// classes-1-l, the paper's label-flipping data poisoning attack.
func FlipLabels(xs []Example, classes int) ([]Example, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("data: FlipLabels with %d classes", classes)
	}
	out := make([]Example, len(xs))
	for i, e := range xs {
		if e.Label < 0 || e.Label >= classes {
			return nil, fmt.Errorf("data: label %d out of [0,%d)", e.Label, classes)
		}
		out[i] = e
		out[i].Label = classes - 1 - e.Label
	}
	return out, nil
}

// Subset returns the examples of xs selected by idx.
func Subset(xs []Example, idx []int) ([]Example, error) {
	out := make([]Example, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(xs) {
			return nil, fmt.Errorf("data: subset index %d out of [0,%d)", j, len(xs))
		}
		out[i] = xs[j]
	}
	return out, nil
}

// ErrNoExamples is returned when an operation needs a non-empty sample set.
var ErrNoExamples = errors.New("data: no examples")

// Sampler yields mini-batches from a fixed pool of examples, reshuffling
// after each pass so that successive rounds see fresh permutations — the
// standard local-SGD data pipeline.
type Sampler struct {
	pool  []Example
	order []int
	pos   int
	rng   *rand.Rand
}

// NewSampler builds a sampler over the pool using the given RNG.
func NewSampler(rng *rand.Rand, pool []Example) (*Sampler, error) {
	if len(pool) == 0 {
		return nil, ErrNoExamples
	}
	s := &Sampler{pool: pool, rng: rng}
	s.reshuffle()
	return s, nil
}

func (s *Sampler) reshuffle() {
	s.order = s.rng.Perm(len(s.pool))
	s.pos = 0
}

// Batch returns the next mini-batch of up to size examples. Batches never
// span a reshuffle boundary, so a tail batch may be smaller than size.
func (s *Sampler) Batch(size int) []Example {
	if size <= 0 {
		return nil
	}
	if s.pos >= len(s.order) {
		s.reshuffle()
	}
	end := s.pos + size
	if end > len(s.order) {
		end = len(s.order)
	}
	out := make([]Example, 0, end-s.pos)
	for _, j := range s.order[s.pos:end] {
		out = append(out, s.pool[j])
	}
	s.pos = end
	return out
}

// Size returns the number of examples in the pool.
func (s *Sampler) Size() int { return len(s.pool) }
