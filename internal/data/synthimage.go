package data

import (
	"fmt"

	"github.com/signguard/signguard/internal/tensor"
)

// SynthImageConfig describes a Gaussian-prototype image mixture. Each class
// has a fixed prototype image; samples are prototype + white noise, so the
// ratio Margin/NoiseStd controls the Bayes error and therefore the
// achievable test accuracy of the analog dataset.
type SynthImageConfig struct {
	Name       string
	Classes    int
	C, H, W    int
	Train      int // number of training examples
	Test       int // number of test examples
	Margin     float64
	NoiseStd   float64
	SmoothPass int // box-blur passes applied to prototypes (spatial structure)
	// LabelNoise randomizes this fraction of *training* labels. Real deep
	// nets keep a persistent stochastic-gradient noise floor near the
	// optimum; label noise recreates that floor in the synthetic analogs,
	// which matters for the potency of variance-calibrated attacks (LIE,
	// Min-Max/Min-Sum). The test split stays clean.
	LabelNoise float64
	Seed       int64 // generator seed (prototypes + samples)
}

// Validate checks the configuration for obvious mistakes.
func (c *SynthImageConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: SynthImage needs >= 2 classes, got %d", c.Classes)
	case c.C <= 0 || c.H <= 0 || c.W <= 0:
		return fmt.Errorf("data: SynthImage shape %dx%dx%d invalid", c.C, c.H, c.W)
	case c.Train <= 0 || c.Test <= 0:
		return fmt.Errorf("data: SynthImage sizes train=%d test=%d invalid", c.Train, c.Test)
	case c.Margin <= 0 || c.NoiseStd <= 0:
		return fmt.Errorf("data: SynthImage margin=%v noise=%v must be positive", c.Margin, c.NoiseStd)
	case c.LabelNoise < 0 || c.LabelNoise >= 1:
		return fmt.Errorf("data: SynthImage label noise %v out of [0,1)", c.LabelNoise)
	}
	return nil
}

// GenerateSynthImage builds the dataset described by cfg. Generation is
// deterministic in cfg.Seed.
func GenerateSynthImage(cfg SynthImageConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	d := cfg.C * cfg.H * cfg.W

	// Class prototypes: random unit directions scaled to the margin, with
	// optional spatial smoothing so that nearby pixels are correlated and a
	// convolution kernel has real structure to detect.
	protos := make([][]float64, cfg.Classes)
	for k := range protos {
		p := tensor.RandUnitVector(rng, d)
		for pass := 0; pass < cfg.SmoothPass; pass++ {
			p = boxBlur(p, cfg.C, cfg.H, cfg.W)
		}
		if n := tensor.Norm(p); n > 0 {
			tensor.ScaleInPlace(p, cfg.Margin/n)
		}
		protos[k] = p
	}

	gen := func(n int, labelNoise float64) []Example {
		out := make([]Example, n)
		for i := range out {
			label := rng.Intn(cfg.Classes)
			x := tensor.Clone(protos[label])
			for j := range x {
				x[j] += cfg.NoiseStd * rng.NormFloat64()
			}
			if labelNoise > 0 && rng.Float64() < labelNoise {
				label = rng.Intn(cfg.Classes)
			}
			out[i] = Example{Features: x, Label: label}
		}
		return out
	}

	return &Dataset{
		Name:    cfg.Name,
		Train:   gen(cfg.Train, cfg.LabelNoise),
		Test:    gen(cfg.Test, 0),
		Classes: cfg.Classes,
		C:       cfg.C, H: cfg.H, W: cfg.W,
	}, nil
}

// boxBlur applies a 3x3 mean filter per channel, preserving the vector
// layout. Border pixels average over the in-bounds neighbourhood.
func boxBlur(x []float64, c, h, w int) []float64 {
	out := make([]float64, len(x))
	for ch := 0; ch < c; ch++ {
		off := ch * h * w
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				var sum float64
				var cnt int
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						ni, nj := i+di, j+dj
						if ni < 0 || ni >= h || nj < 0 || nj >= w {
							continue
						}
						sum += x[off+ni*w+nj]
						cnt++
					}
				}
				out[off+i*w+j] = sum / float64(cnt)
			}
		}
	}
	return out
}

// The preset analogs below stand in for the paper's four datasets. The
// margin/noise ratios were calibrated so the no-attack training baselines
// land near the paper's benchmark accuracies (~99% MNIST, ~89%
// Fashion-MNIST, ~93% CIFAR-10, ~89% AG-News); EXPERIMENTS.md records the
// measured values.

// MNISTLike returns the MNIST analog: easy 10-class 8×8 grayscale mixture.
func MNISTLike(seed int64, train, test int) (*Dataset, error) {
	return GenerateSynthImage(SynthImageConfig{
		Name: "mnist-like", Classes: 10, C: 1, H: 8, W: 8,
		Train: train, Test: test,
		Margin: 4.2, NoiseStd: 0.55, SmoothPass: 1, LabelNoise: 0.01, Seed: seed,
	})
}

// FashionLike returns the Fashion-MNIST analog: same shape, harder mixture.
func FashionLike(seed int64, train, test int) (*Dataset, error) {
	return GenerateSynthImage(SynthImageConfig{
		Name: "fashion-like", Classes: 10, C: 1, H: 8, W: 8,
		Train: train, Test: test,
		Margin: 2.6, NoiseStd: 0.62, SmoothPass: 1, LabelNoise: 0.03, Seed: seed,
	})
}

// CIFARLike returns the CIFAR-10 analog: 3-channel 8×8 colour mixture with
// heavier class overlap.
func CIFARLike(seed int64, train, test int) (*Dataset, error) {
	return GenerateSynthImage(SynthImageConfig{
		Name: "cifar-like", Classes: 10, C: 3, H: 8, W: 8,
		Train: train, Test: test,
		Margin: 2.5, NoiseStd: 0.65, SmoothPass: 2, LabelNoise: 0.05, Seed: seed,
	})
}
