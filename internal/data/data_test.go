package data

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/tensor"
)

func TestGenerateSynthImage(t *testing.T) {
	cfg := SynthImageConfig{
		Name: "t", Classes: 4, C: 1, H: 4, W: 4, Train: 200, Test: 50,
		Margin: 3, NoiseStd: 0.5, SmoothPass: 1, Seed: 1,
	}
	ds, err := GenerateSynthImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 200 || len(ds.Test) != 50 {
		t.Fatalf("sizes = %d/%d", len(ds.Train), len(ds.Test))
	}
	if ds.FeatureDim() != 16 || ds.IsText() {
		t.Errorf("metadata: dim=%d text=%v", ds.FeatureDim(), ds.IsText())
	}
	seen := map[int]bool{}
	for _, e := range ds.Train {
		if len(e.Features) != 16 {
			t.Fatalf("feature dim %d", len(e.Features))
		}
		if e.Label < 0 || e.Label >= 4 {
			t.Fatalf("label %d", e.Label)
		}
		seen[e.Label] = true
	}
	if len(seen) != 4 {
		t.Errorf("only %d distinct labels", len(seen))
	}
}

func TestSynthImageDeterminism(t *testing.T) {
	a, err := MNISTLike(5, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MNISTLike(5, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label ||
			!tensor.Equal(a.Train[i].Features, b.Train[i].Features, 0) {
			t.Fatalf("example %d differs between identically-seeded datasets", i)
		}
	}
	c, err := MNISTLike(6, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Train {
		if !tensor.Equal(a.Train[i].Features, c.Train[i].Features, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSynthImageValidation(t *testing.T) {
	bad := []SynthImageConfig{
		{Classes: 1, C: 1, H: 2, W: 2, Train: 10, Test: 10, Margin: 1, NoiseStd: 1},
		{Classes: 2, C: 0, H: 2, W: 2, Train: 10, Test: 10, Margin: 1, NoiseStd: 1},
		{Classes: 2, C: 1, H: 2, W: 2, Train: 0, Test: 10, Margin: 1, NoiseStd: 1},
		{Classes: 2, C: 1, H: 2, W: 2, Train: 10, Test: 10, Margin: 0, NoiseStd: 1},
		{Classes: 2, C: 1, H: 2, W: 2, Train: 10, Test: 10, Margin: 1, NoiseStd: 1, LabelNoise: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateSynthImage(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateSynthText(t *testing.T) {
	ds, err := AGNewsLike(1, 300, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsText() || ds.Vocab != 128 || ds.SeqLen != 12 {
		t.Errorf("metadata: %+v", ds)
	}
	for _, e := range ds.Train {
		if len(e.Tokens) != 12 {
			t.Fatalf("sequence length %d", len(e.Tokens))
		}
		for _, tok := range e.Tokens {
			if tok < 0 || tok >= 128 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestSynthTextValidation(t *testing.T) {
	if _, err := GenerateSynthText(SynthTextConfig{
		Classes: 10, Vocab: 20, SeqLen: 4, TopicWords: 12, Train: 10, Test: 10,
	}); err == nil {
		t.Error("accepted vocab too small for topics")
	}
	if _, err := GenerateSynthText(SynthTextConfig{
		Classes: 2, Vocab: 50, SeqLen: 0, TopicWords: 5, Train: 10, Test: 10,
	}); err == nil {
		t.Error("accepted zero sequence length")
	}
}

func TestFlipLabels(t *testing.T) {
	xs := []Example{{Label: 0}, {Label: 3}, {Label: 9}}
	flipped, err := FlipLabels(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{9, 6, 0}
	for i, e := range flipped {
		if e.Label != want[i] {
			t.Errorf("flipped[%d] = %d, want %d", i, e.Label, want[i])
		}
	}
	if xs[0].Label != 0 {
		t.Error("FlipLabels mutated its input")
	}
	if _, err := FlipLabels([]Example{{Label: 12}}, 10); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSubsetAndLabels(t *testing.T) {
	xs := []Example{{Label: 0}, {Label: 1}, {Label: 2}}
	sub, err := Subset(xs, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	got := Labels(sub)
	if got[0] != 2 || got[1] != 0 {
		t.Errorf("Labels = %v", got)
	}
	if _, err := Subset(xs, []int{5}); err == nil {
		t.Error("accepted out-of-range index")
	}
}

func TestSampler(t *testing.T) {
	pool := make([]Example, 10)
	for i := range pool {
		pool[i].Label = i
	}
	s, err := NewSampler(tensor.NewRNG(1), pool)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 10 {
		t.Errorf("Size = %d", s.Size())
	}
	// One full pass must visit each example exactly once.
	seen := map[int]int{}
	for drawn := 0; drawn < 10; {
		b := s.Batch(3)
		drawn += len(b)
		for _, e := range b {
			seen[e.Label]++
		}
	}
	for l, c := range seen {
		if c != 1 {
			t.Errorf("label %d drawn %d times in one epoch", l, c)
		}
	}
	// Sampler keeps yielding after the pool is exhausted (reshuffles).
	if len(s.Batch(4)) != 4 {
		t.Error("sampler did not reshuffle")
	}
	if s.Batch(0) != nil {
		t.Error("Batch(0) should be nil")
	}
	if _, err := NewSampler(tensor.NewRNG(1), nil); err == nil {
		t.Error("accepted empty pool")
	}
}

func TestPartitionIID(t *testing.T) {
	rng := tensor.NewRNG(1)
	parts, err := PartitionIID(rng, 103, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("%d parts", len(parts))
	}
	seen := map[int]bool{}
	var total int
	for _, p := range parts {
		total += len(p)
		if len(p) < 10 || len(p) > 11 {
			t.Errorf("unbalanced part of size %d", len(p))
		}
		for _, idx := range p {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if total != 103 {
		t.Errorf("assigned %d of 103", total)
	}
	if _, err := PartitionIID(rng, 5, 10); err == nil {
		t.Error("accepted fewer examples than clients")
	}
	if _, err := PartitionIID(rng, 10, 0); err == nil {
		t.Error("accepted zero clients")
	}
}

func makeLabelled(n, classes int, seed int64) []Example {
	rng := tensor.NewRNG(seed)
	xs := make([]Example, n)
	for i := range xs {
		xs[i] = Example{Label: rng.Intn(classes), Features: []float64{float64(i)}}
	}
	return xs
}

func TestPartitionNonIIDCoverage(t *testing.T) {
	xs := makeLabelled(400, 10, 3)
	rng := tensor.NewRNG(2)
	parts, err := PartitionNonIID(rng, xs, 10, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, p := range parts {
		total += len(p)
		for _, idx := range p {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if total != 400 {
		t.Errorf("assigned %d of 400", total)
	}
}

func TestPartitionNonIIDSkew(t *testing.T) {
	xs := makeLabelled(1000, 10, 4)
	rng := tensor.NewRNG(5)

	skewness := func(s float64) float64 {
		parts, err := PartitionNonIID(tensor.NewRNG(7), xs, 10, s, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Average fraction of a client's data in its two most common labels.
		var avg float64
		for _, p := range parts {
			hist, err := LabelHistogram(xs, p, 10)
			if err != nil {
				t.Fatal(err)
			}
			top1, top2 := 0, 0
			for _, c := range hist {
				if c > top1 {
					top1, top2 = c, top1
				} else if c > top2 {
					top2 = c
				}
			}
			avg += float64(top1+top2) / float64(len(p))
		}
		return avg / float64(len(parts))
	}
	_ = rng
	low, high := skewness(0.8), skewness(0.2)
	if high <= low {
		t.Errorf("s=0.2 should be more skewed than s=0.8: %v vs %v", high, low)
	}
	if high < 0.6 {
		t.Errorf("s=0.2 top-2 label mass = %v, want > 0.6", high)
	}
}

func TestPartitionNonIIDValidation(t *testing.T) {
	xs := makeLabelled(50, 5, 1)
	rng := tensor.NewRNG(1)
	if _, err := PartitionNonIID(rng, xs, 0, 0.5, 2); err == nil {
		t.Error("accepted zero clients")
	}
	if _, err := PartitionNonIID(rng, xs, 5, -0.1, 2); err == nil {
		t.Error("accepted negative s")
	}
	if _, err := PartitionNonIID(rng, xs, 5, 0.5, 0); err == nil {
		t.Error("accepted zero shards per client")
	}
	if _, err := PartitionNonIID(rng, xs, 40, 0.5, 2); err == nil {
		t.Error("accepted too few examples")
	}
}

// Property: every non-IID partition is a permutation of the index set
// (no loss, no duplication) for any valid s.
func TestPartitionNonIIDBijectionQuick(t *testing.T) {
	xs := makeLabelled(200, 6, 9)
	f := func(seed int64, sRaw uint8) bool {
		s := float64(sRaw%101) / 100
		parts, err := PartitionNonIID(tensor.NewRNG(seed), xs, 8, s, 2)
		if err != nil {
			return false
		}
		seen := make([]bool, len(xs))
		total := 0
		for _, p := range parts {
			total += len(p)
			for _, idx := range p {
				if idx < 0 || idx >= len(xs) || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLabelNoiseRate(t *testing.T) {
	cfg := SynthImageConfig{
		Name: "t", Classes: 10, C: 1, H: 4, W: 4, Train: 5000, Test: 100,
		Margin: 5, NoiseStd: 0.1, LabelNoise: 0.2, Seed: 3,
	}
	ds, err := GenerateSynthImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With margin >> noise, a nearest-prototype check recovers the clean
	// label; count how many training labels disagree. A 0.2 noise rate
	// re-draws uniformly, so ~18% of labels actually change.
	protos := map[int][]float64{}
	for _, e := range ds.Test { // test labels are clean
		if _, ok := protos[e.Label]; !ok {
			protos[e.Label] = e.Features
		}
	}
	var flipped, totalChecked int
	for _, e := range ds.Train {
		best, bestD := -1, math.Inf(1)
		for l, p := range protos {
			d, _ := tensor.Distance(e.Features, p)
			if d < bestD {
				best, bestD = l, d
			}
		}
		if best == -1 {
			continue
		}
		totalChecked++
		if best != e.Label {
			flipped++
		}
	}
	rate := float64(flipped) / float64(totalChecked)
	if rate < 0.10 || rate > 0.26 {
		t.Errorf("observed label-noise rate %v, want ≈0.18", rate)
	}
}
