package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// PartitionIID splits n examples uniformly at random across the given
// number of clients, as evenly as possible. It returns one index slice per
// client.
func PartitionIID(rng *rand.Rand, n, clients int) ([][]int, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("data: PartitionIID with %d clients", clients)
	}
	if n < clients {
		return nil, fmt.Errorf("data: cannot split %d examples across %d clients", n, clients)
	}
	perm := rng.Perm(n)
	out := make([][]int, clients)
	for i, idx := range perm {
		c := i % clients
		out[c] = append(out[c], idx)
	}
	return out, nil
}

// PartitionNonIID implements the paper's synthetic non-IID split: an
// s-fraction of the data is distributed IID across clients, and the
// remaining (1-s)-fraction is sorted by label, carved into
// shardsPerClient×clients contiguous shards, and each client receives
// shardsPerClient random shards (the paper uses 2). Smaller s yields a more
// skewed label distribution per client.
func PartitionNonIID(rng *rand.Rand, examples []Example, clients int, s float64, shardsPerClient int) ([][]int, error) {
	n := len(examples)
	if clients <= 0 {
		return nil, fmt.Errorf("data: PartitionNonIID with %d clients", clients)
	}
	if s < 0 || s > 1 {
		return nil, fmt.Errorf("data: non-IID fraction s=%v out of [0,1]", s)
	}
	if shardsPerClient <= 0 {
		return nil, fmt.Errorf("data: shardsPerClient=%d invalid", shardsPerClient)
	}
	if n < clients*shardsPerClient {
		return nil, fmt.Errorf("data: %d examples too few for %d clients × %d shards", n, clients, shardsPerClient)
	}

	perm := rng.Perm(n)
	nIID := int(s * float64(n))
	iidPart, rest := perm[:nIID], perm[nIID:]

	out := make([][]int, clients)
	for i, idx := range iidPart {
		c := i % clients
		out[c] = append(out[c], idx)
	}

	// Sort the remaining indices by label (stable on index for determinism).
	sorted := make([]int, len(rest))
	copy(sorted, rest)
	sort.SliceStable(sorted, func(a, b int) bool {
		la, lb := examples[sorted[a]].Label, examples[sorted[b]].Label
		if la != lb {
			return la < lb
		}
		return sorted[a] < sorted[b]
	})

	nShards := clients * shardsPerClient
	if len(sorted) > 0 {
		shardSize := len(sorted) / nShards
		if shardSize == 0 {
			// Degenerate: give everything out round-robin to keep counts sane.
			for i, idx := range sorted {
				out[i%clients] = append(out[i%clients], idx)
			}
		} else {
			shardPerm := rng.Perm(nShards)
			for pos, shard := range shardPerm {
				c := pos % clients
				lo := shard * shardSize
				hi := lo + shardSize
				if shard == nShards-1 {
					hi = len(sorted) // last shard absorbs the remainder
				}
				out[c] = append(out[c], sorted[lo:hi]...)
			}
		}
	}

	for c := range out {
		if len(out[c]) == 0 {
			return nil, fmt.Errorf("data: non-IID split left client %d without data", c)
		}
	}
	return out, nil
}

// LabelHistogram counts the labels occurring in the subset of examples
// selected by idx, as a length-classes slice.
func LabelHistogram(examples []Example, idx []int, classes int) ([]int, error) {
	hist := make([]int, classes)
	for _, j := range idx {
		if j < 0 || j >= len(examples) {
			return nil, fmt.Errorf("data: histogram index %d out of [0,%d)", j, len(examples))
		}
		l := examples[j].Label
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("data: label %d out of [0,%d)", l, classes)
		}
		hist[l]++
	}
	return hist, nil
}
