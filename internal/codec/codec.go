// Package codec is the gradient-compression stage of the round pipeline:
// every submitted gradient is encoded into a wire form and decoded back
// before the defense sees it, so the server-side aggregation rule operates
// on exactly what crossed the network.
//
// Four codecs ship with the reproduction: identity (the uncompressed
// default — a lossless round trip, byte-identical to an engine without a
// codec stage), topk (magnitude sparsification that keeps the k
// largest-|g_i| coordinates bit-exactly), qsgd (QSGD-style stochastic
// quantization to a signed integer grid, unbiased in expectation), and
// signsgd (the 1-bit signSGD wire format). Codecs are pure values: Encode
// draws randomness only from the *rand.Rand handed in by the caller — the
// engine passes the codec stage's own derived stream — so a run is
// deterministic for any worker count.
//
// A Registry mirrors internal/defense: named constructors with declared
// hyperparameters, consumed by the campaign grid, the experiments harness
// and the CLIs.
package codec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNonFinite marks encode/decode refusals caused by NaN or ±Inf values —
// either carried verbatim in a payload or produced by amplification during
// decode. Receivers (the async transport) match it with errors.Is to count
// hostile traffic separately from malformed payloads.
var ErrNonFinite = errors.New("non-finite value")

// Canonical codec names: the registry keys, the Encoded.Codec wire tags,
// and the names the async protocol advertises.
const (
	Identity = "identity"
	TopK     = "topk"
	QSGD     = "qsgd"
	SignSGD  = "signsgd"
)

// Encoded is the wire form of one gradient. Exactly one payload group is
// populated, keyed by Codec: Dense (identity), Idx/Val (topk),
// Scale/Levels/Q (qsgd), or Sign (signsgd). The struct is JSON-serializable
// for the async HTTP protocol; Bytes answers what a tight binary framing of
// the same payload would cost, which is the quantity the bytes-shipped
// accounting reports.
type Encoded struct {
	// Codec is the canonical name of the codec that produced the payload
	// (Identity, TopK, QSGD or SignSGD) — the decode dispatch key.
	Codec string
	// Dim is the gradient dimension the payload decodes back to.
	Dim int

	// Dense is the identity payload: the gradient verbatim.
	Dense []float64 `json:",omitempty"`

	// Idx/Val are the topk payload: the kept coordinate indices (strictly
	// ascending) and their exact values.
	Idx []int32   `json:",omitempty"`
	Val []float64 `json:",omitempty"`

	// Scale/Levels/Q are the qsgd payload: g_i decodes to Scale·Q_i/Levels.
	Scale  float64 `json:",omitempty"`
	Levels int     `json:",omitempty"`
	Q      []int8  `json:",omitempty"`

	// Sign is the signsgd payload: bit i (LSB-first within each byte) is
	// math.Signbit(g_i).
	Sign []byte `json:",omitempty"`
}

// encodedHeaderBytes is the fixed framing cost charged per encoded
// gradient: a codec tag, the dimension, and per-payload scalars fit
// comfortably in 16 bytes of a tight binary encoding.
const encodedHeaderBytes = 16

// Bytes returns the wire size of the payload under a tight binary framing
// (float64 = 8B, index = 4B, quantized level = 1B, sign = 1 bit) plus a
// small fixed header. The JSON the demo HTTP protocol actually ships is
// larger; accounting charges the binary cost so codec comparisons measure
// the codec, not the serialization format.
func (e Encoded) Bytes() int {
	n := encodedHeaderBytes
	n += 8 * len(e.Dense)
	n += 4*len(e.Idx) + 8*len(e.Val)
	n += len(e.Q)
	n += len(e.Sign)
	return n
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// checkDim rejects a payload declaring a negative dimension before any
// make([]float64, Dim) happens. Encoded values arrive from untrusted
// clients over the async wire, so a decode allocation must never be sized
// by a nonsensical attacker-controlled Dim (receivers additionally bound
// Dim against the model dimension they expect before decoding).
func checkDim(e Encoded) error {
	if e.Dim < 0 {
		return fmt.Errorf("codec: %s payload declares negative dim %d", e.Codec, e.Dim)
	}
	return nil
}

// Codec encodes gradients into their wire form and back. Implementations
// are stateless values, safe for concurrent use; all randomness comes from
// the rng passed to Encode (pass nil for deterministic codecs).
type Codec interface {
	// Name identifies the codec instance, including resolved
	// hyperparameters where they matter (e.g. "topk(512)").
	Name() string
	// Encode compresses grad into its wire form. Implementations must not
	// retain or mutate grad, and must draw randomness only from rng.
	Encode(grad []float64, rng *rand.Rand) (Encoded, error)
	// Decode reconstructs a gradient of length Encoded.Dim from the wire
	// form. It must not depend on the instance's hyperparameters — a
	// receiver decodes payloads from any sender configuration.
	Decode(e Encoded) ([]float64, error)
}

// IdentityCodec is the lossless default: the wire form is the gradient
// itself. Decode(Encode(g)) is bit-identical to g, so a pipeline with the
// identity codec reproduces a codec-free engine byte for byte.
type IdentityCodec struct{}

// Name implements Codec.
func (IdentityCodec) Name() string { return Identity }

// Encode implements Codec. It never draws from rng.
func (IdentityCodec) Encode(grad []float64, _ *rand.Rand) (Encoded, error) {
	return Encoded{Codec: Identity, Dim: len(grad), Dense: append([]float64(nil), grad...)}, nil
}

// Decode implements Codec. A payload carrying NaN or ±Inf values is
// refused: decoded gradients feed norms, distances and clustering
// directly, so the wire boundary must never emit a non-finite value
// without an error.
func (IdentityCodec) Decode(e Encoded) ([]float64, error) {
	if len(e.Dense) != e.Dim {
		return nil, fmt.Errorf("codec: identity payload has %d values for dim %d", len(e.Dense), e.Dim)
	}
	out := make([]float64, e.Dim)
	for i, v := range e.Dense {
		if !finite(v) {
			return nil, fmt.Errorf("codec: identity payload value %d: %w", i, ErrNonFinite)
		}
		out[i] = v
	}
	return out, nil
}

// TopKCodec keeps the K largest-magnitude coordinates exactly and drops the
// rest — magnitude sparsification. Ties on |g_i| break toward the lower
// index, so encoding is fully deterministic (it never draws from rng).
type TopKCodec struct {
	// K is the number of coordinates kept; 0 means d/10 (at least 1),
	// resolved per gradient at encode time.
	K int
}

// Name implements Codec.
func (c TopKCodec) Name() string {
	if c.K <= 0 {
		return TopK
	}
	return fmt.Sprintf("topk(%d)", c.K)
}

// keep resolves the per-gradient kept-coordinate count.
func (c TopKCodec) keep(dim int) int {
	k := c.K
	if k <= 0 {
		k = dim / 10
	}
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// Encode implements Codec.
func (c TopKCodec) Encode(grad []float64, _ *rand.Rand) (Encoded, error) {
	if len(grad) == 0 {
		return Encoded{Codec: TopK}, nil
	}
	k := c.keep(len(grad))
	abs := make([]float64, len(grad))
	for i, v := range grad {
		abs[i] = math.Abs(v)
	}
	order := make([]int, len(grad))
	for i := range order {
		order[i] = i
	}
	// Larger magnitude first; equal magnitudes keep the lower index. The
	// comparator is a total order, so the selection is deterministic.
	sort.Slice(order, func(a, b int) bool {
		ai, bi := order[a], order[b]
		if abs[ai] != abs[bi] {
			return abs[ai] > abs[bi]
		}
		return ai < bi
	})
	kept := append([]int(nil), order[:k]...)
	sort.Ints(kept)
	e := Encoded{Codec: TopK, Dim: len(grad), Idx: make([]int32, k), Val: make([]float64, k)}
	for i, idx := range kept {
		if !finite(grad[idx]) {
			// NaN magnitudes also poison the selection order, so a
			// non-finite input must error rather than ship a hostile payload.
			return Encoded{}, fmt.Errorf("codec: topk cannot encode coordinate %d: %w", idx, ErrNonFinite)
		}
		e.Idx[i] = int32(idx)
		e.Val[i] = grad[idx]
	}
	return e, nil
}

// Decode implements Codec: the kept values scatter into a zero vector.
func (TopKCodec) Decode(e Encoded) ([]float64, error) {
	if err := checkDim(e); err != nil {
		return nil, err
	}
	if len(e.Idx) != len(e.Val) {
		return nil, fmt.Errorf("codec: topk payload has %d indices for %d values", len(e.Idx), len(e.Val))
	}
	if len(e.Idx) > e.Dim {
		return nil, fmt.Errorf("codec: topk payload has %d indices for dim %d", len(e.Idx), e.Dim)
	}
	out := make([]float64, e.Dim)
	for i, idx := range e.Idx {
		if idx < 0 || int(idx) >= e.Dim {
			return nil, fmt.Errorf("codec: topk index %d out of dim %d", idx, e.Dim)
		}
		if !finite(e.Val[i]) {
			return nil, fmt.Errorf("codec: topk payload value %d: %w", i, ErrNonFinite)
		}
		out[idx] = e.Val[i]
	}
	return out, nil
}

// QSGDCodec quantizes each coordinate onto a signed grid of Levels steps
// scaled by the gradient's L2 norm, with stochastic rounding — the QSGD
// scheme. The rounding randomness makes the decoded gradient an unbiased
// estimate of the input: E[Decode(Encode(g))] = g.
type QSGDCodec struct {
	// Levels is the number of quantization levels s >= 1 (<= 127 so one
	// signed byte holds a level); 0 means the default of 4.
	Levels int
}

// DefaultQSGDLevels is the quantization grid used when Levels is 0.
const DefaultQSGDLevels = 4

// levels resolves the effective quantization level count.
func (c QSGDCodec) levels() int {
	if c.Levels == 0 {
		return DefaultQSGDLevels
	}
	return c.Levels
}

// Name implements Codec.
func (c QSGDCodec) Name() string { return fmt.Sprintf("qsgd(%d)", c.levels()) }

// Encode implements Codec. The stochastic rounding draws one uniform
// variate per coordinate from rng, which is required.
func (c QSGDCodec) Encode(grad []float64, rng *rand.Rand) (Encoded, error) {
	s := c.levels()
	if s < 1 || s > 127 {
		return Encoded{}, fmt.Errorf("codec: qsgd levels %d out of [1,127]", s)
	}
	if rng == nil {
		return Encoded{}, fmt.Errorf("codec: qsgd requires an RNG for stochastic rounding")
	}
	var norm float64
	for _, v := range grad {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if !finite(norm) {
		// A NaN or overflowing norm would ship as the payload Scale and
		// poison every decoded coordinate downstream.
		return Encoded{}, fmt.Errorf("codec: qsgd cannot encode a gradient whose norm is a %w", ErrNonFinite)
	}
	e := Encoded{Codec: QSGD, Dim: len(grad), Scale: norm, Levels: s, Q: make([]int8, len(grad))}
	if norm == 0 {
		return e, nil
	}
	for i, v := range grad {
		r := math.Abs(v) / norm * float64(s) // in [0, s]
		l := math.Floor(r)
		if rng.Float64() < r-l {
			l++
		}
		q := int8(l)
		if math.Signbit(v) {
			q = -q
		}
		e.Q[i] = q
	}
	return e, nil
}

// Decode implements Codec: g_i = Scale·Q_i/Levels. A payload whose Scale
// is non-finite — or finite but so large the product overflows — is
// refused: JSON cannot carry a literal NaN, so amplification through a
// huge Scale is exactly how a hostile client smuggles ±Inf past the wire.
func (QSGDCodec) Decode(e Encoded) ([]float64, error) {
	if len(e.Q) != e.Dim {
		return nil, fmt.Errorf("codec: qsgd payload has %d levels for dim %d", len(e.Q), e.Dim)
	}
	if e.Levels < 1 {
		return nil, fmt.Errorf("codec: qsgd payload with %d levels", e.Levels)
	}
	if !finite(e.Scale) {
		return nil, fmt.Errorf("codec: qsgd payload scale is a %w", ErrNonFinite)
	}
	out := make([]float64, e.Dim)
	if e.Scale == 0 {
		return out, nil
	}
	inv := e.Scale / float64(e.Levels)
	for i, q := range e.Q {
		v := float64(q) * inv
		if !finite(v) {
			return nil, fmt.Errorf("codec: qsgd payload amplifies to a %w at %d", ErrNonFinite, i)
		}
		out[i] = v
	}
	return out, nil
}

// SignSGDCodec ships one bit per coordinate: the sign. Decode maps a set
// bit (math.Signbit true, i.e. negative or -0) to -1 and a clear bit to +1
// — the signSGD wire format. Encoding is deterministic.
type SignSGDCodec struct{}

// Name implements Codec.
func (SignSGDCodec) Name() string { return SignSGD }

// Encode implements Codec. It never draws from rng.
func (SignSGDCodec) Encode(grad []float64, _ *rand.Rand) (Encoded, error) {
	e := Encoded{Codec: SignSGD, Dim: len(grad), Sign: make([]byte, (len(grad)+7)/8)}
	for i, v := range grad {
		if math.Signbit(v) {
			e.Sign[i/8] |= 1 << (i % 8)
		}
	}
	return e, nil
}

// Decode implements Codec.
func (SignSGDCodec) Decode(e Encoded) ([]float64, error) {
	if err := checkDim(e); err != nil {
		return nil, err
	}
	if want := (e.Dim + 7) / 8; len(e.Sign) != want {
		return nil, fmt.Errorf("codec: signsgd payload has %d sign bytes for dim %d (want %d)", len(e.Sign), e.Dim, want)
	}
	out := make([]float64, e.Dim)
	for i := range out {
		if e.Sign[i/8]&(1<<(i%8)) != 0 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out, nil
}
