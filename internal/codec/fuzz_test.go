package codec

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecode drives arbitrary payload fields — hostile floats, mismatched
// lengths, out-of-range indices — through every registry decode path and
// asserts the wire invariant: any successful decode returns a fully finite
// gradient of exactly the declared dimension; everything else errors.
func FuzzDecode(f *testing.F) {
	f.Add(uint8(0), 4, int64(0), 4, []byte{})
	f.Add(uint8(1), 8, int64(0), 2, []byte{0, 0, 0, 0, 0, 0, 0x24, 0x40})
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(uint8(2), 3, int64(math.Float64bits(math.NaN())), 4, nan)
	f.Add(uint8(2), 2, int64(math.Float64bits(1e308)), 1, []byte{127, 1})
	f.Add(uint8(3), 16, int64(0), 0, []byte{0xff, 0x00})
	reg := Builtin()
	names := []string{Identity, TopK, QSGD, SignSGD}
	f.Fuzz(func(t *testing.T, which uint8, dim int, scaleBits int64, levels int, data []byte) {
		if dim < 0 || dim > 1<<12 {
			return
		}
		e := Encoded{Codec: names[int(which)%len(names)], Dim: dim}
		switch e.Codec {
		case Identity:
			e.Dense = bytesToFloats(data)
		case TopK:
			// Interleave: 4 bytes of index, 8 bytes of value per entry.
			for len(data) >= 12 {
				e.Idx = append(e.Idx, int32(binary.LittleEndian.Uint32(data[:4])))
				e.Val = append(e.Val, math.Float64frombits(binary.LittleEndian.Uint64(data[4:12])))
				data = data[12:]
			}
		case QSGD:
			e.Scale = math.Float64frombits(uint64(scaleBits))
			e.Levels = levels
			e.Q = make([]int8, len(data))
			for i, b := range data {
				e.Q[i] = int8(b)
			}
		case SignSGD:
			e.Sign = data
		}
		out, err := reg.Decode(e)
		if err != nil {
			return
		}
		if len(out) != e.Dim {
			t.Fatalf("%s: decoded %d values for declared dim %d", e.Codec, len(out), e.Dim)
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: decode emitted non-finite value at %d without error", e.Codec, i)
			}
		}
	})
}

// bytesToFloats reinterprets a fuzz buffer as little-endian float64s.
func bytesToFloats(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}
