package codec

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func testGrad(rng *rand.Rand, d int) []float64 {
	g := make([]float64, d)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	return g
}

func TestIdentityRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGrad(rng, 257)
	g[3] = math.Copysign(0, -1) // -0 must survive too
	e, err := IdentityCodec{}.Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := IdentityCodec{}.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(g) {
		t.Fatalf("dim %d, want %d", len(out), len(g))
	}
	for i := range g {
		if math.Float64bits(out[i]) != math.Float64bits(g[i]) {
			t.Fatalf("coord %d: %x != %x", i, math.Float64bits(out[i]), math.Float64bits(g[i]))
		}
	}
	if e.Bytes() <= 8*len(g) {
		t.Errorf("identity Bytes() %d should include header over %d payload bytes", e.Bytes(), 8*len(g))
	}
}

// TestTopKKeepsLargestExact checks the satellite property: topk preserves
// the k largest-magnitude coordinates bit-exactly and zeroes the rest.
func TestTopKKeepsLargestExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testGrad(rng, 400)
	const k = 37
	c := TopKCodec{K: k}
	e, err := c.Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Idx) != k || len(e.Val) != k {
		t.Fatalf("kept %d/%d coords, want %d", len(e.Idx), len(e.Val), k)
	}
	out, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}

	// Reference selection: indices sorted by magnitude descending.
	order := make([]int, len(g))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return math.Abs(g[order[a]]) > math.Abs(g[order[b]]) })
	want := map[int]bool{}
	for _, i := range order[:k] {
		want[i] = true
	}
	for i := range g {
		if want[i] {
			if math.Float64bits(out[i]) != math.Float64bits(g[i]) {
				t.Errorf("kept coord %d not bit-exact: %v != %v", i, out[i], g[i])
			}
		} else if out[i] != 0 {
			t.Errorf("dropped coord %d decoded to %v, want 0", i, out[i])
		}
	}
	if e.Bytes() >= 8*len(g) {
		t.Errorf("topk Bytes() %d not smaller than dense %d", e.Bytes(), 8*len(g))
	}
}

func TestTopKDefaultKAndTies(t *testing.T) {
	// Default K: d/10, at least 1.
	e, err := TopKCodec{}.Encode(make([]float64, 95), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Idx) != 9 {
		t.Errorf("default k on d=95 kept %d, want 9", len(e.Idx))
	}
	e, err = TopKCodec{}.Encode([]float64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Idx) != 1 {
		t.Errorf("default k on d=2 kept %d, want 1", len(e.Idx))
	}
	// Ties break toward the lower index.
	e, err = TopKCodec{K: 2}.Encode([]float64{3, -3, 3, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Idx[0] != 0 || e.Idx[1] != 1 {
		t.Errorf("tie-break kept %v, want [0 1]", e.Idx)
	}
}

// TestQSGDUnbiased checks the satellite property: averaged over many
// seeds, the decoded gradient converges to the input (stochastic rounding
// is unbiased).
func TestQSGDUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testGrad(rng, 24)
	c := QSGDCodec{Levels: 4}
	const trials = 4000
	mean := make([]float64, len(g))
	for s := 0; s < trials; s++ {
		e, err := c.Encode(g, rand.New(rand.NewSource(int64(s))))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			mean[i] += v / trials
		}
	}
	// Per-coordinate quantization noise is bounded by scale/levels; the
	// empirical mean of `trials` draws should be well inside that.
	var norm float64
	for _, v := range g {
		norm += v * v
	}
	tol := 4 * math.Sqrt(norm) / float64(c.Levels) / math.Sqrt(trials)
	for i := range g {
		if d := math.Abs(mean[i] - g[i]); d > tol {
			t.Errorf("coord %d: empirical mean %v vs %v (|Δ|=%g > %g)", i, mean[i], g[i], d, tol)
		}
	}
}

func TestQSGDLevelsBoundAndZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testGrad(rng, 100)
	e, err := QSGDCodec{Levels: 7}.Encode(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range e.Q {
		if q < -7 || q > 7 {
			t.Fatalf("level %d at coord %d out of ±7", q, i)
		}
	}
	// Zero gradient: zero scale, all-zero levels, decodes to zeros.
	e, err = QSGDCodec{}.Encode(make([]float64, 5), rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := QSGDCodec{}.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero gradient decoded to %v", out)
		}
	}
	// Missing RNG is an error, not a silent deterministic fallback.
	if _, err := (QSGDCodec{}).Encode(g, nil); err == nil {
		t.Error("qsgd Encode accepted a nil RNG")
	}
}

// TestSignSGDMatchesSignbit checks the satellite property: decode equals
// the math.Signbit mapping (+1 for positive and +0, -1 for negative and -0).
func TestSignSGDMatchesSignbit(t *testing.T) {
	g := []float64{1.5, -2.25, 0, math.Copysign(0, -1), -1e-300, 7, -7, 0.25, -0.25}
	e, err := SignSGDCodec{}.Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SignSGDCodec{}.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g {
		want := 1.0
		if math.Signbit(v) {
			want = -1.0
		}
		if out[i] != want {
			t.Errorf("coord %d (%v): decoded %v, want %v", i, v, out[i], want)
		}
	}
	if want := (len(g) + 7) / 8; len(e.Sign) != want {
		t.Errorf("sign payload %d bytes, want %d", len(e.Sign), want)
	}
}

// TestEncodeDeterministic: same gradient + same seed → bit-identical wire
// payload, for every builtin codec.
func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testGrad(rng, 333)
	for _, name := range Builtin().Names() {
		c, err := Builtin().Build(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		e1, err := c.Encode(g, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		e2, err := c.Encode(g, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		b1, _ := json.Marshal(e1)
		b2, _ := json.Marshal(e2)
		if string(b1) != string(b2) {
			t.Errorf("%s: encode not deterministic under a fixed seed", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := Builtin()
	want := []string{Identity, TopK, QSGD, SignSGD}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if len(r.Specs()) != len(want) {
		t.Fatalf("Specs() has %d entries", len(r.Specs()))
	}

	// Declared hyperparameters build; undeclared ones are rejected.
	c, err := r.Build(TopK, Params{Hyper: map[string]float64{"k": 64}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "topk(64)" {
		t.Errorf("built %q", c.Name())
	}
	if _, err := r.Build(TopK, Params{Hyper: map[string]float64{"levels": 4}}); err == nil {
		t.Error("topk accepted hyperparameter 'levels'")
	}
	if _, err := r.Build(QSGD, Params{Hyper: map[string]float64{"levels": 200}}); err == nil {
		t.Error("qsgd accepted levels=200")
	}
	if _, err := r.Build("nope", Params{}); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := r.ValidateHyper(SignSGD, map[string]float64{"k": 1}); err == nil {
		t.Error("signsgd accepted hyperparameter 'k'")
	}

	// Registry.Decode dispatches on the payload tag.
	rng := rand.New(rand.NewSource(6))
	g := testGrad(rng, 50)
	enc, err := c.Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(g) {
		t.Fatalf("Decode dim %d, want %d", len(out), len(g))
	}
	if _, err := r.Decode(Encoded{Codec: "nope"}); err == nil {
		t.Error("Decode accepted an unknown payload tag")
	}
}

// TestDecodeRejectsCorruptPayloads: a truncated or inconsistent wire
// payload must error, never panic or silently mis-decode.
func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	for _, e := range []Encoded{
		{Codec: Identity, Dim: 4, Dense: []float64{1}},
		{Codec: TopK, Dim: 4, Idx: []int32{0, 1}, Val: []float64{1}},
		{Codec: TopK, Dim: 4, Idx: []int32{9}, Val: []float64{1}},
		{Codec: TopK, Dim: 4, Idx: []int32{-1}, Val: []float64{1}},
		// Negative or undersized declared dimensions must be refused before
		// any Dim-sized allocation: Encoded is untrusted wire input, and a
		// Dim of -1 slips past signsgd's (Dim+7)/8 length check into a
		// panicking makeslice without the explicit guard.
		{Codec: TopK, Dim: -1},
		{Codec: SignSGD, Dim: -1},
		{Codec: TopK, Dim: 2, Idx: []int32{0, 1, 1}, Val: []float64{1, 2, 3}},
		{Codec: QSGD, Dim: 4, Scale: 1, Levels: 4, Q: []int8{1}},
		{Codec: QSGD, Dim: 1, Scale: 1, Levels: 0, Q: []int8{1}},
		{Codec: SignSGD, Dim: 100, Sign: []byte{0}},
	} {
		if _, err := Builtin().Decode(e); err == nil {
			t.Errorf("corrupt %s payload accepted: %+v", e.Codec, e)
		}
	}
}
