package codec

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkCodec measures encode+decode round-trip cost and reports the
// compression ratio (dense bytes / wire bytes) per codec at the two
// dimensions the repo's models bracket: ~10k (the small CNNs) and 1M (a
// large-model stand-in). Wired into the CI bench job and the benchgate
// baseline.
func BenchmarkCodec(b *testing.B) {
	for _, d := range []int{10_000, 1_000_000} {
		grad := testGrad(rand.New(rand.NewSource(7)), d)
		for _, name := range Builtin().Names() {
			c, err := Builtin().Build(name, Params{})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				rng := rand.New(rand.NewSource(8))
				var wire int
				b.SetBytes(int64(8 * d))
				for i := 0; i < b.N; i++ {
					e, err := c.Encode(grad, rng)
					if err != nil {
						b.Fatal(err)
					}
					wire = e.Bytes()
					if _, err := c.Decode(e); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(8*d)/float64(wire), "x-compression")
			})
		}
	}
}
