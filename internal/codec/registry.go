package codec

import (
	"fmt"
	"sort"
)

// Params is the typed constructor input of every codec: optional named
// hyperparameters, mirroring defense.Params.
type Params struct {
	// Hyper holds optional codec-specific hyperparameters by name. Absent
	// keys fall back to the codec's default; unknown keys are rejected by
	// Registry.Build so a typo cannot silently run defaults.
	Hyper map[string]float64
}

// hyper returns the named hyperparameter or def when absent.
func (p Params) hyper(name string, def float64) float64 {
	if v, ok := p.Hyper[name]; ok {
		return v
	}
	return def
}

// Spec declares one registered codec.
type Spec struct {
	// Name is the stable registry key and the Encoded.Codec wire tag.
	Name string
	// Hyper lists the hyperparameter names the constructor accepts.
	Hyper []string
	// Build constructs an instance with the given hyperparameters.
	Build func(p Params) (Codec, error)

	// Lossless declares that Decode(Encode(g)) reproduces g bit for bit.
	// The conformance suite enforces it.
	Lossless bool
	// MinCosine is the minimum cosine similarity a default-configuration
	// round trip must preserve on dense Gaussian vectors — the lossy
	// codec's declared error bound, enforced by the conformance suite.
	// Ignored when Lossless (the bound is exactness).
	MinCosine float64
}

// Registry is an ordered name → codec catalog. The zero value is unusable;
// use NewRegistry or Builtin.
type Registry struct {
	order []string
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]Spec{}}
}

// Register adds a codec spec. Re-registering a name replaces the spec but
// keeps its original position, so presentation order stays stable.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("codec: spec with empty name")
	}
	if s.Build == nil {
		return fmt.Errorf("codec: %s has no constructor", s.Name)
	}
	if _, ok := r.specs[s.Name]; !ok {
		r.order = append(r.order, s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// mustRegister is Register for the package's own statically-valid specs.
func (r *Registry) mustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Names returns the registered codec names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.specs[name]
	return ok
}

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("codec: unknown codec %q", name)
	}
	return s, nil
}

// Specs returns the registered specs in registration order — the listing
// surface behind `campaign rules`.
func (r *Registry) Specs() []Spec {
	out := make([]Spec, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.specs[name])
	}
	return out
}

// Build constructs the named codec. Hyperparameter keys not declared by
// the spec are an error: a sweep axis that silently fell back to defaults
// would corrupt a whole grid.
func (r *Registry) Build(name string, p Params) (Codec, error) {
	s, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := checkHyper(s, p.Hyper); err != nil {
		return nil, err
	}
	return s.Build(p)
}

// ValidateHyper checks that name is registered and accepts every given
// hyperparameter, without building anything — the pre-flight check grid
// validation runs before a sweep starts.
func (r *Registry) ValidateHyper(name string, hyper map[string]float64) error {
	s, err := r.Lookup(name)
	if err != nil {
		return err
	}
	return checkHyper(s, hyper)
}

// Decode reconstructs a gradient from a wire payload, dispatching on the
// payload's own Codec tag. Decoding never depends on sender-side
// hyperparameters (everything needed travels in the payload), so the
// receiver builds the named codec with defaults.
func (r *Registry) Decode(e Encoded) ([]float64, error) {
	c, err := r.Build(e.Codec, Params{})
	if err != nil {
		return nil, err
	}
	return c.Decode(e)
}

// checkHyper rejects hyperparameter names the spec does not declare.
func checkHyper(s Spec, hyper map[string]float64) error {
	if len(hyper) == 0 {
		return nil
	}
	declared := map[string]bool{}
	for _, h := range s.Hyper {
		declared[h] = true
	}
	var bad []string
	for k := range hyper {
		if !declared[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("codec: %s does not accept hyperparameter(s) %v (accepts %v)", s.Name, bad, s.Hyper)
	}
	return nil
}

// Builtin returns the registry of the four shipped codecs. Callers may
// extend the returned registry freely; each call returns a fresh copy.
func Builtin() *Registry {
	r := NewRegistry()
	r.mustRegister(Spec{Name: Identity, Lossless: true, Build: func(Params) (Codec, error) {
		return IdentityCodec{}, nil
	}})
	// Declared MinCosine bounds are deliberately conservative: topk keeps
	// the dominant squared mass (~0.6 cosine on Gaussian vectors at the
	// default d/10), qsgd's 4-level grid lands near 0.78 on Gaussian
	// vectors, and signsgd's sign vector aligns with a Gaussian input at
	// √(2/π) ≈ 0.80 in expectation.
	r.mustRegister(Spec{Name: TopK, Hyper: []string{"k"}, MinCosine: 0.4, Build: func(p Params) (Codec, error) {
		k := int(p.hyper("k", 0))
		if k < 0 {
			return nil, fmt.Errorf("codec: topk k %d must be >= 0 (0 = d/10)", k)
		}
		return TopKCodec{K: k}, nil
	}})
	r.mustRegister(Spec{Name: QSGD, Hyper: []string{"levels"}, MinCosine: 0.7, Build: func(p Params) (Codec, error) {
		s := int(p.hyper("levels", DefaultQSGDLevels))
		if s < 1 || s > 127 {
			return nil, fmt.Errorf("codec: qsgd levels %d out of [1,127]", s)
		}
		return QSGDCodec{Levels: s}, nil
	}})
	r.mustRegister(Spec{Name: SignSGD, MinCosine: 0.5, Build: func(Params) (Codec, error) {
		return SignSGDCodec{}, nil
	}})
	return r
}
