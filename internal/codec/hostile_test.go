package codec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// The wire boundary must never emit a non-finite value without an error:
// JSON cannot carry a literal NaN, so hostile payloads arrive either as
// non-finite fields smuggled through a non-JSON path or as finite fields
// that amplify to ±Inf on decode.
func TestDecodeRefusesNonFinitePayloads(t *testing.T) {
	reg := Builtin()
	cases := map[string]Encoded{
		"identity-nan": {Codec: Identity, Dim: 3, Dense: []float64{1, math.NaN(), 3}},
		"identity-inf": {Codec: Identity, Dim: 2, Dense: []float64{math.Inf(1), 0}},
		"topk-nan-val": {Codec: TopK, Dim: 4, Idx: []int32{1}, Val: []float64{math.NaN()}},
		"topk-inf-val": {Codec: TopK, Dim: 4, Idx: []int32{0, 2}, Val: []float64{1, math.Inf(-1)}},
		"qsgd-nan-scale": {
			Codec: QSGD, Dim: 2, Scale: math.NaN(), Levels: 4, Q: []int8{1, -1},
		},
		"qsgd-inf-scale": {
			Codec: QSGD, Dim: 2, Scale: math.Inf(1), Levels: 4, Q: []int8{1, -1},
		},
		// A finite Scale so large that Scale·Q/Levels overflows float64 —
		// the amplification a hostile client can actually ship as JSON.
		"qsgd-amplified-inf": {
			Codec: QSGD, Dim: 2, Scale: 1e308, Levels: 1, Q: []int8{127, 1},
		},
	}
	for name, e := range cases {
		if out, err := reg.Decode(e); err == nil {
			t.Errorf("%s: decode accepted a hostile payload: %v", name, out)
		}
	}
}

// The encode side refuses non-finite inputs for the payload-carrying
// codecs instead of shipping poison: topk would keep a NaN value verbatim
// and qsgd would stamp a NaN norm as the Scale of every coordinate.
func TestEncodeRefusesNonFiniteGradients(t *testing.T) {
	hostile := []float64{1, math.NaN(), 3, 4}
	if _, err := (TopKCodec{K: 2}).Encode(hostile, nil); err == nil {
		t.Error("topk encoded a NaN gradient without error")
	}
	if _, err := (QSGDCodec{}).Encode(hostile, rand.New(rand.NewSource(1))); err == nil {
		t.Error("qsgd encoded a NaN gradient without error")
	}
	inf := []float64{math.Inf(1), 0}
	if _, err := (QSGDCodec{}).Encode(inf, rand.New(rand.NewSource(1))); err == nil {
		t.Error("qsgd encoded an Inf gradient without error")
	}
}

// SignSGD carries only sign bits, so any input — non-finite included —
// decodes to finite ±1; it needs no refusal path.
func TestSignSGDNonFiniteInputStaysFinite(t *testing.T) {
	g := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -2}
	enc, err := (SignSGDCodec{}).Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := (SignSGDCodec{}).Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 1 && v != -1 {
			t.Errorf("coord %d decoded to %v, want ±1", i, v)
		}
	}
}

// Decode errors must identify themselves as codec errors (the transport
// surfaces them verbatim to the submitting client).
func TestDecodeErrorsNameTheCodec(t *testing.T) {
	reg := Builtin()
	_, err := reg.Decode(Encoded{Codec: QSGD, Dim: 1, Scale: math.NaN(), Levels: 4, Q: []int8{1}})
	if err == nil || !strings.Contains(err.Error(), "qsgd") {
		t.Errorf("qsgd decode error does not name the codec: %v", err)
	}
}
