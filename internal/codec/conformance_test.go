package codec_test

import (
	"testing"

	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/conformance"
)

// TestCodecConformance runs the registry-wide contract over every builtin
// codec: the declared round-trip bound holds on Gaussian vectors, corrupted
// variants of the codec's own wire form are rejected, and hyperparameter
// declarations survive the CLI syntax with undeclared names rejected.
func TestCodecConformance(t *testing.T) {
	reg := codec.Builtin()
	for _, name := range reg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := conformance.CheckCodecRoundTrip(reg, name, 17); err != nil {
				t.Errorf("round trip: %v", err)
			}
			if err := conformance.CheckCodecMalformedRejection(reg, name, 19); err != nil {
				t.Errorf("malformed payloads: %v", err)
			}
			if err := conformance.CheckCodecHyperDeclaration(reg, name); err != nil {
				t.Errorf("hyper declaration: %v", err)
			}
		})
	}
}

// TestConformanceCatchesFalseLosslessClaim is the test of the test: a codec
// that declares Lossless but quantizes must fail the round-trip check, and
// a codec declaring no bound at all must fail too.
func TestConformanceCatchesFalseLosslessClaim(t *testing.T) {
	reg := codec.NewRegistry()
	if err := reg.Register(codec.Spec{Name: "liar", Lossless: true, Build: func(codec.Params) (codec.Codec, error) {
		return codec.SignSGDCodec{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := conformance.CheckCodecRoundTrip(reg, "liar", 17); err == nil {
		t.Error("lossy codec passed with a Lossless declaration")
	}

	if err := reg.Register(codec.Spec{Name: "unbounded", Build: func(codec.Params) (codec.Codec, error) {
		return codec.IdentityCodec{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := conformance.CheckCodecRoundTrip(reg, "unbounded", 17); err == nil {
		t.Error("codec with no declared bound passed the round-trip check")
	}
}

// TestConformanceCatchesWeakBound is the test of the test for the lossy
// direction: a declared MinCosine above what the codec achieves must fail.
func TestConformanceCatchesWeakBound(t *testing.T) {
	reg := codec.NewRegistry()
	if err := reg.Register(codec.Spec{Name: "overclaim", MinCosine: 0.999999, Build: func(codec.Params) (codec.Codec, error) {
		return codec.SignSGDCodec{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := conformance.CheckCodecRoundTrip(reg, "overclaim", 17); err == nil {
		t.Error("sign codec passed a near-1 cosine bound")
	}
}
