package parallel

import (
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got < 1 {
		t.Errorf("Resolve(0) = %d, want >= 1", got)
	}
	if got := Resolve(-2); got < 1 {
		t.Errorf("Resolve(-2) = %d, want >= 1", got)
	}
	if Resolve(0) != Default() {
		t.Error("Resolve(0) disagrees with Default()")
	}
}

func TestValidateWorkers(t *testing.T) {
	if err := ValidateWorkers(1); err != nil {
		t.Errorf("ValidateWorkers(1) = %v", err)
	}
	if err := ValidateWorkers(64); err != nil {
		t.Errorf("ValidateWorkers(64) = %v", err)
	}
	for _, n := range []int{0, -1, -100} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) accepted", n)
		}
	}
}

func TestChunkPartitionsExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 100, 101} {
		for workers := 1; workers <= n; workers++ {
			prevEnd := 0
			for w := 0; w < workers; w++ {
				start, end := Chunk(n, workers, w)
				if start != prevEnd {
					t.Fatalf("n=%d workers=%d: chunk %d starts at %d, want %d", n, workers, w, start, prevEnd)
				}
				if end-start < n/workers || end-start > n/workers+1 {
					t.Fatalf("n=%d workers=%d: chunk %d has %d items", n, workers, w, end-start)
				}
				prevEnd = end
			}
			if prevEnd != n {
				t.Fatalf("n=%d workers=%d: chunks cover %d items", n, workers, prevEnd)
			}
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 100} {
		const n = 57
		var visits [n]int32
		For(workers, n, func(_, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
	For(4, 0, func(_, _, _ int) { t.Error("For ran a chunk on n=0") })
}

func TestForStridedVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 100} {
		const n = 41
		var visits [n]int32
		ForStrided(workers, n, func(_, i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRunInlineForSingleWorker(t *testing.T) {
	calls := 0
	Run(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("fn called %d times", calls)
	}
}

// Reduce with an argmin-style first-wins merge must pick the same winner
// for every worker count, including on ties.
func TestReduceArgminFirstWins(t *testing.T) {
	xs := []float64{5, 3, 9, 3, 8, 3, 7}
	type cand struct {
		idx int
		val float64
	}
	for _, workers := range []int{1, 2, 3, 7, 20} {
		got := Reduce(workers, len(xs),
			func(_, start, end int) cand {
				best := cand{idx: start, val: xs[start]}
				for i := start + 1; i < end; i++ {
					if xs[i] < best.val {
						best = cand{idx: i, val: xs[i]}
					}
				}
				return best
			},
			func(a, b cand) cand {
				if b.val < a.val {
					return b
				}
				return a
			},
		)
		if got.idx != 1 {
			t.Errorf("workers=%d: argmin = %d, want 1 (first of the tied minima)", workers, got.idx)
		}
	}
}

func TestReduceConcatInChunkOrder(t *testing.T) {
	const n = 23
	for _, workers := range []int{1, 2, 5, 23} {
		got := Reduce(workers, n,
			func(_, start, end int) []int {
				out := make([]int, 0, end-start)
				for i := start; i < end; i++ {
					out = append(out, i)
				}
				return out
			},
			func(a, b []int) []int { return append(a, b...) },
		)
		if len(got) != n {
			t.Fatalf("workers=%d: %d items", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: position %d holds %d — merge not in chunk order", workers, i, v)
			}
		}
	}
	if got := Reduce(3, 0, func(_, _, _ int) int { return 1 }, func(a, b int) int { return a + b }); got != 0 {
		t.Errorf("Reduce over empty range = %d, want zero value", got)
	}
}
