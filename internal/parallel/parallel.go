// Package parallel provides the shared deterministic fork/join helpers used
// by the simulation engine, the aggregation kernels and the campaign
// scheduler. It replaces the hand-rolled goroutine pools those packages
// used to carry individually, and it encodes the repo-wide reduction
// discipline that keeps every parallel path byte-identical to its
// sequential counterpart:
//
//   - Work is partitioned by a pure function of (n, workers) — never by
//     racing on a shared counter — so which worker computes what is fixed
//     before any goroutine starts.
//   - Partial results land in pre-assigned, non-overlapping slots and are
//     merged in index order after the join.
//   - Floating-point accumulations are never reassociated: kernels only
//     parallelize across independent outputs (matrix rows, gradient
//     coordinates, candidate scores) and keep every float sum in the same
//     sequential order the single-threaded code used. Reduce is reserved
//     for merges that are insensitive to chunk boundaries (argmin with a
//     first-wins tie-break, slice concatenation, boolean OR).
//
// Under this discipline the worker count changes wall-clock time only;
// results are bit-for-bit identical for any Workers value.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Resolve maps a Workers knob to an effective worker count: values <= 0
// mean "automatic" (one worker per usable CPU); positive values are used
// as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Default returns the automatic worker count — the value a -workers flag
// should default to. It is the single definition of "use all CPUs" shared
// by cmd/campaign and cmd/reproduce.
func Default() int { return runtime.GOMAXPROCS(0) }

// ValidateWorkers rejects worker counts below 1. The cmd binaries call it
// on their -workers flags so a nonsensical value fails loudly instead of
// silently falling back to some other count.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("parallel: workers must be >= 1, got %d (the default %d uses every CPU)", n, Default())
	}
	return nil
}

// Run invokes fn(w) for every w in [0, workers) concurrently and waits for
// all of them. Run(1, fn) calls fn inline with no goroutine.
func Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Chunk returns the half-open sub-range of [0, n) owned by worker w of
// `workers`: the chunks are contiguous, cover [0, n) in worker order, and
// differ in size by at most one element.
func Chunk(n, workers, w int) (start, end int) {
	return w * n / workers, (w + 1) * n / workers
}

// For splits [0, n) into one contiguous chunk per worker (see Chunk) and
// processes the chunks concurrently; fn receives the worker index and its
// half-open range. The worker count is clamped to n so every chunk is
// non-empty, and a single worker runs inline.
func For(workers, n int, fn func(w, start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	Run(workers, func(w int) {
		start, end := Chunk(n, workers, w)
		fn(w, start, end)
	})
}

// ForStrided processes [0, n) with worker w handling indices w, w+workers,
// w+2·workers, … Use it instead of For where per-index cost varies
// systematically with the index (e.g. the triangular row loop of a pairwise
// distance matrix), so contiguous chunks would unbalance the load.
func ForStrided(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	Run(workers, func(w int) {
		for i := w; i < n; i += workers {
			fn(w, i)
		}
	})
}

// Reduce computes one partial value per chunk (same partition as For) and
// folds the partials left-to-right in chunk order. Because the partition
// depends on the worker count, merge must be insensitive to where the
// chunk boundaries fall — argmin with a first-wins tie-break, slice
// concatenation, set union, boolean OR. Floating-point sums are NOT in
// that class (reassociating a sum changes its rounding); keep those
// sequential per output coordinate instead.
func Reduce[T any](workers, n int, part func(w, start, end int) T, merge func(acc, next T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return part(0, 0, n)
	}
	partials := make([]T, workers)
	Run(workers, func(w int) {
		start, end := Chunk(n, workers, w)
		partials[w] = part(w, start, end)
	})
	acc := partials[0]
	for w := 1; w < workers; w++ {
		acc = merge(acc, partials[w])
	}
	return acc
}
