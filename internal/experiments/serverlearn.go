package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// This file declares the server-learning campaign: the related-work defense
// families beyond the paper's Table I (FLTrust server learning, FLAME-style
// clustering, the median-of-means neighborhood filter) against the two
// adversaries that stress them hardest — the backdoor / model-replacement
// attack their papers were designed for, and the history-aware
// Adaptive-Min-Max — at a 30% Byzantine fraction. Mean rides along as the
// undefended reference row.

// serverLearnRules are the compared rules; Mean last as the reference.
var serverLearnRules = []string{"FLTrust", "FLAME", "MoM", "Mean"}

// serverLearnAttacks are the campaign's adversaries.
var serverLearnAttacks = []string{"Backdoor", "Adaptive-Min-Max"}

// serverLearnBoost is the model-replacement factor λ of the campaign's
// Backdoor cells. The classic replacement scaling is of cohort order
// (Bagdasaryan et al. use n/η); at the attack's default λ=3 the boosted
// minority barely moves an 8-client mean, so the grid pins the aggressive
// setting the defense families were designed against.
const serverLearnBoost = 10

// ServerLearnByz returns the campaign's Byzantine count: 30% of the cohort.
func ServerLearnByz(p Params) int {
	byz := (3 * p.Clients) / 10
	if byz < 1 {
		byz = 1
	}
	return byz
}

// ServerLearnSpec declares the server-learning defense grid: each rule ×
// attack on MNIST with the Byzantine count pinned to 30% of the clients
// (overriding the Params fraction, so the grid is comparable across
// parameter scales).
func ServerLearnSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "serverlearn"}
	byz := ServerLearnByz(p)
	for _, rule := range serverLearnRules {
		for _, att := range serverLearnAttacks {
			c := campaign.NewCell("mnist", rule, att, p)
			c.NumByz = byz
			if att == "Backdoor" {
				c.AttackParam = serverLearnBoost
			}
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// ServerLearn runs the server-learning campaign and renders final test
// accuracy per rule × attack (final, not best: a backdoored or destabilized
// model must pay for late-round damage).
func ServerLearn(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), ServerLearnSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Server-learning defenses — final test accuracy %% (%d/%d Byzantine)",
		ServerLearnByz(p), p.Clients)}
	t.Header = append([]string{"Defense"}, serverLearnAttacks...)
	cur := cursor{results: rep.Results}
	for _, rule := range serverLearnRules {
		row := []string{rule}
		for range serverLearnAttacks {
			r := cur.next()
			if r.Diverged {
				row = append(row, "diverged")
				continue
			}
			row = append(row, fmtAcc(r.FinalAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}
