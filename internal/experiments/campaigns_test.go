package experiments

import (
	"context"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// TestCampaignSpecsResolve expands every named campaign and validates each
// cell against the registry, so a renamed rule/attack/dataset breaks here
// rather than mid-sweep.
func TestCampaignSpecsResolve(t *testing.T) {
	reg := Registry()
	p := DefaultParams(ScaleBench)
	for _, name := range CampaignNames() {
		spec, err := CampaignByName(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spec.Cells) == 0 {
			t.Errorf("%s: empty campaign", name)
		}
		if err := reg.Validate(spec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := CampaignByName("nope", p); err == nil {
		t.Error("accepted unknown campaign name")
	}
}

// TestTable2ThroughEngine runs the smallest multi-cell table end to end
// through the campaign engine at toy scale and checks the rendered shape.
func TestTable2ThroughEngine(t *testing.T) {
	p := Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 4, BatchSize: 4,
		EvalEvery: 2, EvalSamples: 40, TrainSize: 200, TestSize: 60, Seed: 1,
	}
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Table2(NewEngine(0, store, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(table2Attacks) {
		t.Errorf("table2 has %d rows, want %d", len(tbl.Rows), len(table2Attacks))
	}
	if len(tbl.Header) != 1+2*len(table2Variants) {
		t.Errorf("table2 has %d columns", len(tbl.Header))
	}

	// A second engine over the same store must serve the whole grid from
	// cache and render the identical table.
	rep, err := NewEngine(0, store, nil).Run(context.Background(), Table2Spec(p))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 {
		t.Errorf("warm re-run executed %d cells, want 0", rep.Executed)
	}
}
