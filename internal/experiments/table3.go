package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/core"
)

// ablationCombo is one row of Table III: a subset of SignGuard-Sim's
// defensive components.
type ablationCombo struct {
	Thresholding bool
	Clustering   bool
	NormClip     bool
}

func (c ablationCombo) label() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	return fmt.Sprintf("T=%s C=%s N=%s", mark(c.Thresholding), mark(c.Clustering), mark(c.NormClip))
}

// ablationCombos returns the six component subsets of the paper's Table III,
// in its row order.
func ablationCombos() []ablationCombo {
	return []ablationCombo{
		{Thresholding: true},
		{Clustering: true},
		{NormClip: true},
		{Thresholding: true, Clustering: true},
		{Clustering: true, NormClip: true},
		{Thresholding: true, Clustering: true, NormClip: true},
	}
}

// Table3 reproduces "Table III: results under different defensive
// components" — the CIFAR-analog ablation of SignGuard-Sim's thresholding,
// clustering and norm-clipping components under the Random, scaled-Reverse
// and LIE attacks. Following the paper, the reverse attack scales by the
// norm threshold R when thresholding or clipping is active, and by 100
// when neither is.
func Table3(p Params, log Reporter) (*Table, error) {
	ds, err := DatasetByKey("cifar")
	if err != nil {
		return nil, err
	}
	dataset, err := LoadDataset(ds, p)
	if err != nil {
		return nil, err
	}

	t := &Table{Title: "Table III — SignGuard-Sim component ablation (best test accuracy %)"}
	t.Header = []string{"Components", "Random", "Reverse", "LIE"}

	for _, combo := range ablationCombos() {
		newRule := func(n, f int, seed int64) (aggregate.Rule, error) {
			cfg := core.DefaultConfig()
			cfg.Similarity = core.CosineSimilarity
			cfg.UseNormFilter = combo.Thresholding
			cfg.UseSignFilter = combo.Clustering
			cfg.UseNormClip = combo.NormClip
			cfg.Seed = seed
			return core.New(cfg)
		}
		rule := RuleSpec{Name: "SignGuard-Sim[" + combo.label() + "]", New: newRule}

		reverseScale := 100.0
		if combo.Thresholding || combo.NormClip {
			reverseScale = core.DefaultConfig().UpperBound
		}
		cellAttacks := []struct {
			name string
			att  attack.Attack
		}{
			{"Random", attack.NewRandom()},
			{"Reverse", attack.NewReverse(reverseScale)},
			{"LIE", attack.NewLIE(0.3)},
		}

		row := []string{combo.label()}
		for _, ca := range cellAttacks {
			opt := DefaultCellOptions()
			opt.OverrideAttack = ca.att
			res, err := RunCell(dataset, ds, rule, AttackSpec{Name: ca.name}, p, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtAcc(res.BestAccuracy))
			log.printf("table3 [%s] × %s → %.2f", combo.label(), ca.name, res.BestAccuracy)
		}
		t.AddRow(row...)
	}
	return t, nil
}
