package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/core"
)

// ablationCombo is one row of Table III: a subset of SignGuard-Sim's
// defensive components.
type ablationCombo struct {
	Thresholding bool
	Clustering   bool
	NormClip     bool
}

func (c ablationCombo) label() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	return fmt.Sprintf("T=%s C=%s N=%s", mark(c.Thresholding), mark(c.Clustering), mark(c.NormClip))
}

// ablationCombos returns the six component subsets of the paper's Table III,
// in its row order.
func ablationCombos() []ablationCombo {
	return []ablationCombo{
		{Thresholding: true},
		{Clustering: true},
		{NormClip: true},
		{Thresholding: true, Clustering: true},
		{Clustering: true, NormClip: true},
		{Thresholding: true, Clustering: true, NormClip: true},
	}
}

// ablationRuleName is the registry key of one ablated SignGuard-Sim
// variant.
func ablationRuleName(c ablationCombo) string {
	return "SignGuard-Sim[" + c.label() + "]"
}

// newAblationRule builds SignGuard-Sim with only the combo's components
// enabled.
func newAblationRule(c ablationCombo, seed int64) (aggregate.Rule, error) {
	cfg := core.DefaultConfig()
	cfg.Similarity = core.CosineSimilarity
	cfg.UseNormFilter = c.Thresholding
	cfg.UseSignFilter = c.Clustering
	cfg.UseNormClip = c.NormClip
	cfg.Seed = seed
	return core.New(cfg)
}

// table3ReverseScale is the scale of the Table III reverse attack for a
// combo: the norm threshold R when thresholding or clipping is active, 100
// when neither is (following the paper).
func table3ReverseScale(c ablationCombo) float64 {
	if c.Thresholding || c.NormClip {
		return core.DefaultConfig().UpperBound
	}
	return 100
}

// Table3Spec declares the CIFAR-analog ablation grid: each component
// subset under the Random, scaled-Reverse and LIE attacks.
func Table3Spec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "table3"}
	for _, combo := range ablationCombos() {
		rule := ablationRuleName(combo)
		spec.Cells = append(spec.Cells, campaign.NewCell("cifar", rule, "Random", p))
		rev := campaign.NewCell("cifar", rule, "Reverse", p)
		rev.AttackParam = table3ReverseScale(combo)
		spec.Cells = append(spec.Cells, rev)
		spec.Cells = append(spec.Cells, campaign.NewCell("cifar", rule, "LIE", p))
	}
	return spec
}

// Table3 reproduces "Table III: results under different defensive
// components" — the CIFAR-analog ablation of SignGuard-Sim's thresholding,
// clustering and norm-clipping components.
func Table3(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), Table3Spec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Table III — SignGuard-Sim component ablation (best test accuracy %)"}
	t.Header = []string{"Components", "Random", "Reverse", "LIE"}
	cur := cursor{results: rep.Results}
	for _, combo := range ablationCombos() {
		row := []string{combo.label()}
		for i := 0; i < 3; i++ {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}
