package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// Fig. 5 axes: the strong defenses under a time-varying attack, with a
// clean undefended baseline curve, on the Fashion- and CIFAR-analogs.
var (
	fig5Datasets = []string{"fashion", "cifar"}
	fig5Defenses = []string{"Multi-Krum", "Bulyan", "DnC", "SignGuard"}
)

// fig5SwitchEvery returns the attack's strategy re-draw cadence: one paper
// "epoch" = local-dataset-size / batch-size rounds.
func fig5SwitchEvery(p Params) int {
	switchEvery := p.TrainSize / p.Clients / p.BatchSize
	if switchEvery < 1 {
		switchEvery = 1
	}
	return switchEvery
}

// Fig5Spec declares the Fig. 5 grid. Per dataset, the first cell is the
// clean Mean baseline, followed by one TimeVarying cell per defense.
func Fig5Spec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "fig5"}
	switchEvery := fig5SwitchEvery(p)
	for _, key := range fig5Datasets {
		base := campaign.NewCell(key, "Mean", "NoAttack", p)
		base.NumByz = 0
		spec.Cells = append(spec.Cells, base)
		for _, def := range fig5Defenses {
			c := campaign.NewCell(key, def, "TimeVarying", p)
			c.AttackParam = float64(switchEvery)
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// Fig5 reproduces "Fig. 5: defense comparison under time-varying attacks":
// test-accuracy curves of the strong defenses when the attack strategy is
// re-drawn randomly every switch interval, including no-attack periods.
func Fig5(e *campaign.Engine, p Params) ([]*Table, error) {
	rep, err := e.Run(context.Background(), Fig5Spec(p))
	if err != nil {
		return nil, err
	}
	cur := cursor{results: rep.Results}
	var tables []*Table
	for _, key := range fig5Datasets {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		type curve struct {
			name   string
			rounds []int
			accs   []float64
		}
		curves := make([]curve, 0, 1+len(fig5Defenses))
		base := cur.next()
		curves = append(curves, curve{name: "Baseline", rounds: base.EvalRounds, accs: base.EvalAccuracies})
		for _, def := range fig5Defenses {
			r := cur.next()
			curves = append(curves, curve{name: def, rounds: r.EvalRounds, accs: r.EvalAccuracies})
		}

		t := &Table{Title: fmt.Sprintf("Fig. 5 — test accuracy under time-varying attacks, %s", ds.Title)}
		t.Header = []string{"Round"}
		for _, c := range curves {
			t.Header = append(t.Header, c.name)
		}
		for i, r := range curves[0].rounds {
			row := []string{fmt.Sprintf("%d", r)}
			for _, c := range curves {
				if i < len(c.accs) {
					row = append(row, fmtAcc(c.accs[i]))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
