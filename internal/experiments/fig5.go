package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/attack"
)

// Fig5 reproduces "Fig. 5: defense comparison under time-varying attacks":
// test-accuracy curves of the strong defenses when the attack strategy is
// re-drawn randomly every switch interval (one paper "epoch"), including
// no-attack periods, on the Fashion- and CIFAR-analogs. The baseline curve
// is plain Mean with no attack.
func Fig5(p Params, log Reporter) ([]*Table, error) {
	defenses, err := SelectRules("Multi-Krum", "Bulyan", "DnC", "SignGuard")
	if err != nil {
		return nil, err
	}
	meanRule, err := RuleByName("Mean")
	if err != nil {
		return nil, err
	}
	noAttack, err := AttackByName("NoAttack")
	if err != nil {
		return nil, err
	}

	// One paper "epoch" = local-dataset-size / batch-size rounds; with our
	// partition sizes that is a handful of rounds. Re-draw on that cadence.
	switchEvery := p.TrainSize / p.Clients / p.BatchSize
	if switchEvery < 1 {
		switchEvery = 1
	}

	var tables []*Table
	for _, key := range []string{"fashion", "cifar"} {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		dataset, err := LoadDataset(ds, p)
		if err != nil {
			return nil, err
		}

		type curve struct {
			name   string
			rounds []int
			accs   []float64
		}
		var curves []curve

		// Baseline: clean training, no defense.
		opt := DefaultCellOptions()
		opt.OverrideNumByz = 0
		baseRes, err := RunCell(dataset, ds, meanRule, noAttack, p, opt)
		if err != nil {
			return nil, err
		}
		rs, as := baseRes.AccuracyTrace()
		curves = append(curves, curve{name: "Baseline", rounds: rs, accs: as})
		log.printf("fig5[%s] baseline final %.2f", key, baseRes.FinalAccuracy)

		for _, def := range defenses {
			tv, err := attack.NewTimeVarying(attack.DefaultTimeVaryingPool(), switchEvery, p.Seed+29)
			if err != nil {
				return nil, err
			}
			opt := DefaultCellOptions()
			opt.OverrideAttack = tv
			res, err := RunCell(dataset, ds, def, AttackSpec{Name: "TimeVarying"}, p, opt)
			if err != nil {
				return nil, err
			}
			r2, a2 := res.AccuracyTrace()
			curves = append(curves, curve{name: def.Name, rounds: r2, accs: a2})
			log.printf("fig5[%s] %s best %.2f final %.2f", key, def.Name, res.BestAccuracy, res.FinalAccuracy)
		}

		t := &Table{Title: fmt.Sprintf("Fig. 5 — test accuracy under time-varying attacks, %s", ds.Title)}
		t.Header = []string{"Round"}
		for _, c := range curves {
			t.Header = append(t.Header, c.name)
		}
		if len(curves) > 0 {
			for i, r := range curves[0].rounds {
				row := []string{fmt.Sprintf("%d", r)}
				for _, c := range curves {
					if i < len(c.accs) {
						row = append(row, fmtAcc(c.accs[i]))
					} else {
						row = append(row, "-")
					}
				}
				t.AddRow(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
