package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// This file declares the post-paper scenario axes the round pipeline
// opened (ROADMAP "New scenario axes"): per-round client subsampling,
// defense hyperparameter sweeps, and adaptive round-aware attacks. Each is
// an ordinary campaign — a grid of cells — so it runs, caches, resumes and
// exports exactly like the paper's tables and figures.

// subsampleFractions are the per-round participation fractions of the
// subsampling sweep (1.0 = the paper's full-participation protocol).
var subsampleFractions = []float64{1.0, 0.6, 0.3}

// subsampleRules are the defenses the subsampling sweep compares; each
// is built for the per-round cohort size, not the full client count.
var subsampleRules = []string{"SignGuard", "Multi-Krum", "Mean"}

// SubsampleSpec declares the client-participation sweep: each defense
// under the LIE attack while the per-round cohort shrinks from all
// clients to a 30% uniform subsample.
func SubsampleSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "subsample"}
	for _, rule := range subsampleRules {
		for _, frac := range subsampleFractions {
			c := campaign.NewCell("mnist", rule, "LIE", p)
			if frac < 1 {
				k := int(frac * float64(p.Clients))
				// Krum needs at least 3 gradients even with F=0; keep the
				// smallest cohorts viable for every swept defense.
				if k < 3 {
					k = 3
				}
				c.Participation = campaign.ParticipationUniform
				c.SampleK = k
			}
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// Subsample runs the participation sweep and renders best accuracy per
// defense × participation fraction.
func Subsample(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), SubsampleSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Client subsampling — best test accuracy % (LIE attack)"}
	t.Header = []string{"Defense"}
	for _, frac := range subsampleFractions {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%% cohort", 100*frac))
	}
	cur := cursor{results: rep.Results}
	for _, rule := range subsampleRules {
		row := []string{rule}
		for range subsampleFractions {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// coordFractions is the SignGuard coordinate-fraction sweep axis (the
// paper's default is 0.1).
var coordFractions = []float64{0.05, 0.1, 0.25, 0.5, 1.0}

// coordFracAttacks are the attacks the sweep evaluates against.
var coordFracAttacks = []string{"LIE", "ByzMean"}

// CoordFracSpec declares the SignGuard hyperparameter sweep: the sign
// statistics' random coordinate fraction as a plain grid axis.
func CoordFracSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "coordfrac"}
	for _, att := range coordFracAttacks {
		for _, cf := range coordFractions {
			c := campaign.NewCell("mnist", "SignGuard", att, p)
			c.RuleHyper = map[string]float64{"coord_fraction": cf}
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// CoordFrac runs the coordinate-fraction sweep and renders best accuracy
// per attack × fraction.
func CoordFrac(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), CoordFracSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "SignGuard coord_fraction sweep — best test accuracy %"}
	t.Header = []string{"Attack"}
	for _, cf := range coordFractions {
		t.Header = append(t.Header, fmt.Sprintf("q=%g", cf))
	}
	cur := cursor{results: rep.Results}
	for _, att := range coordFracAttacks {
		row := []string{att}
		for range coordFractions {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// dncSubDims is the DnC subsampling-dimension sweep axis (the harness
// default is 2000).
var dncSubDims = []float64{500, 2000, 8000}

// DnCSubDimSpec declares the DnC hyperparameter sweep under its
// strongest adversary (Min-Max) and LIE.
func DnCSubDimSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "dncsubdim"}
	for _, att := range []string{"Min-Max", "LIE"} {
		for _, sd := range dncSubDims {
			c := campaign.NewCell("mnist", "DnC", att, p)
			c.RuleHyper = map[string]float64{"subdim": sd}
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// adaptiveRules are the defenses the adaptive-attack comparison covers.
var adaptiveRules = []string{"SignGuard", "Multi-Krum", "Mean"}

// adaptiveAttacks pairs the static Min-Max with its history-aware port.
var adaptiveAttacks = []string{"Min-Max", "Adaptive-Min-Max"}

// AdaptiveSpec declares the adaptive-attack comparison: static Min-Max vs
// the filtering-feedback-driven Adaptive-Min-Max across defenses.
func AdaptiveSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "adaptive"}
	for _, rule := range adaptiveRules {
		for _, att := range adaptiveAttacks {
			spec.Cells = append(spec.Cells, campaign.NewCell("mnist", rule, att, p))
		}
	}
	return spec
}

// Adaptive runs the adaptive-attack comparison and renders best accuracy
// per defense × attack.
func Adaptive(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), AdaptiveSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Adaptive Min-Max — best test accuracy %"}
	t.Header = append([]string{"Defense"}, adaptiveAttacks...)
	cur := cursor{results: rep.Results}
	for _, rule := range adaptiveRules {
		row := []string{rule}
		for range adaptiveAttacks {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// batchedRules are the defenses the local-engine comparison covers.
var batchedRules = []string{"SignGuard", "Mean"}

// batchedVariants are the swept local-compute engines: the per-client
// default, the batched engine (byte-identical, so its accuracy column must
// equal the per-client one), and the batched engine's non-bitwise fast
// kernels.
var batchedVariants = []struct {
	Name        string
	Batch, Fast bool
}{
	{"per-client", false, false},
	{"batched", true, false},
	{"batched-fast", true, true},
}

// BatchedSpec declares the local-compute engine sweep: the same defense ×
// LIE cells run under each engine variant. BatchClients/FastLocal are cell
// identity, so each variant caches separately and the grid doubles as a
// wall-clock comparison (DurationMS in the exports) and an integration
// check that per-client and batched accuracies agree exactly.
func BatchedSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "batched"}
	for _, rule := range batchedRules {
		for _, v := range batchedVariants {
			c := campaign.NewCell("mnist", rule, "LIE", p)
			c.BatchClients = v.Batch
			c.FastLocal = v.Fast
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// Batched runs the engine sweep and renders best accuracy per defense ×
// engine variant (per-client and batched must match to every digit; fast
// may differ in the last decimals).
func Batched(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), BatchedSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Local-compute engines — best test accuracy % (LIE attack)"}
	t.Header = []string{"Defense"}
	for _, v := range batchedVariants {
		t.Header = append(t.Header, v.Name)
	}
	cur := cursor{results: rep.Results}
	for _, rule := range batchedRules {
		row := []string{rule}
		for range batchedVariants {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SeedGroupTable renders seed-group statistics (mean ± 95% CI over the
// seed replicas of each cell) — the renderer counterpart of the group-csv
// and group-json exports.
func SeedGroupTable(title string, results []*campaign.CellResult) *Table {
	t := &Table{Title: title}
	t.Header = []string{"Cell", "Runs", "Best acc", "Final acc", "Diverged"}
	for _, g := range campaign.GroupBySeed(results) {
		t.AddRow(g.ID, fmt.Sprintf("%d", g.N),
			campaign.FormatMeanCI(g.Best, 2), campaign.FormatMeanCI(g.Final, 2),
			fmt.Sprintf("%d", g.Diverged))
	}
	return t
}
