package experiments

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// axesParams are toy-scale simulation parameters for the axis sweeps.
func axesParams() Params {
	return Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 4, BatchSize: 4,
		EvalEvery: 2, EvalSamples: 40, TrainSize: 200, TestSize: 60, Seed: 1,
	}
}

// TestSubsampleSweepThroughEngine is one of the new-axes acceptance paths:
// a client-subsampling sweep running end to end through the campaign
// engine and its renderer.
func TestSubsampleSweepThroughEngine(t *testing.T) {
	p := axesParams()
	spec := SubsampleSpec(p)
	subsampled := 0
	for _, c := range spec.Cells {
		if c.Participation == campaign.ParticipationUniform {
			if c.SampleK < 1 || c.SampleK >= p.Clients {
				t.Fatalf("cell %s has cohort %d of %d", c.ID(), c.SampleK, p.Clients)
			}
			subsampled++
		}
	}
	if subsampled == 0 {
		t.Fatal("subsample spec contains no subsampled cells")
	}
	tbl, err := Subsample(NewEngine(0, nil, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(subsampleRules) {
		t.Errorf("%d rows, want %d", len(tbl.Rows), len(subsampleRules))
	}
	if len(tbl.Header) != 1+len(subsampleFractions) {
		t.Errorf("%d columns", len(tbl.Header))
	}
}

// TestCoordFracSweepThroughEngine covers the defense-hyperparameter axis:
// SignGuard's CoordFraction as a plain grid dimension.
func TestCoordFracSweepThroughEngine(t *testing.T) {
	p := axesParams()
	for _, c := range CoordFracSpec(p).Cells {
		if _, ok := c.RuleHyper["coord_fraction"]; !ok {
			t.Fatalf("cell %s missing the sweep hyperparameter", c.ID())
		}
	}
	tbl, err := CoordFrac(NewEngine(0, nil, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(coordFracAttacks) || len(tbl.Header) != 1+len(coordFractions) {
		t.Errorf("rendered %dx%d", len(tbl.Rows), len(tbl.Header))
	}
}

// TestAdaptiveAttackThroughEngine exercises the registered adaptive attack
// end to end: Adaptive-Min-Max resolves through the registry and trains.
func TestAdaptiveAttackThroughEngine(t *testing.T) {
	p := axesParams()
	spec := AdaptiveSpec(p).Filter("SignGuard")
	rep, err := NewEngine(0, nil, nil).Run(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var sawAdaptive bool
	for _, r := range rep.Results {
		if r.AttackName == "Adaptive-Min-Max" {
			sawAdaptive = true
		}
	}
	if !sawAdaptive {
		t.Fatal("adaptive attack never ran")
	}
}

func TestSeedGroupTable(t *testing.T) {
	p := axesParams()
	base := campaign.NewCell("mnist", "Mean", "LIE", p)
	mk := func(seed int64, best float64) *campaign.CellResult {
		c := base
		c.Params.Seed = seed
		return &campaign.CellResult{Cell: c, BestAccuracy: best, FinalAccuracy: best}
	}
	tbl := SeedGroupTable("t", []*campaign.CellResult{mk(1, 80), mk(2, 84)})
	if len(tbl.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "2" {
		t.Errorf("runs column %q", tbl.Rows[0][1])
	}
	if !strings.Contains(tbl.Rows[0][2], "±") {
		t.Errorf("best column %q lacks the CI", tbl.Rows[0][2])
	}
}
