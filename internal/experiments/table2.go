package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// table2Variants / table2Attacks are the paper's Table II axes: the three
// SignGuard variants under the five strong attacks, on the CIFAR analog.
var (
	table2Variants = []string{"SignGuard", "SignGuard-Sim", "SignGuard-Dist"}
	table2Attacks  = []string{"ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"}
)

// Table2Spec declares the Table II grid (attack-major, variant-minor).
func Table2Spec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "table2"}
	for _, att := range table2Attacks {
		for _, v := range table2Variants {
			spec.Cells = append(spec.Cells, campaign.NewCell("cifar", v, att, p))
		}
	}
	return spec
}

// Table2 reproduces "Table II: selected rate of honest and malicious
// gradients" — the average fraction of honest (H) and malicious (M)
// gradients that each SignGuard variant admitted into the trusted set.
func Table2(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), Table2Spec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Table II — selected rate of honest (H) and malicious (M) gradients"}
	t.Header = []string{"Attack"}
	for _, v := range table2Variants {
		t.Header = append(t.Header, v+" H", v+" M")
	}
	cur := cursor{results: rep.Results}
	for _, att := range table2Attacks {
		row := []string{att}
		for _, v := range table2Variants {
			r := cur.next()
			if !r.HasSelection {
				return nil, fmt.Errorf("experiments: %s reported no selection under %s", v, att)
			}
			row = append(row, fmtRate(r.SelHonest), fmtRate(r.SelMalicious))
		}
		t.AddRow(row...)
	}
	return t, nil
}
