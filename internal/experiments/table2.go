package experiments

import "fmt"

// Table2 reproduces "Table II: selected rate of honest and malicious
// gradients" — the average fraction of honest (H) and malicious (M)
// gradients that each SignGuard variant admitted into the trusted set
// during CIFAR-analog training, under the five strong attacks.
func Table2(p Params, log Reporter) (*Table, error) {
	ds, err := DatasetByKey("cifar")
	if err != nil {
		return nil, err
	}
	dataset, err := LoadDataset(ds, p)
	if err != nil {
		return nil, err
	}
	variants, err := SelectRules("SignGuard", "SignGuard-Sim", "SignGuard-Dist")
	if err != nil {
		return nil, err
	}
	attacks, err := SelectAttacks("ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum")
	if err != nil {
		return nil, err
	}

	t := &Table{Title: "Table II — selected rate of honest (H) and malicious (M) gradients"}
	t.Header = []string{"Attack"}
	for _, v := range variants {
		t.Header = append(t.Header, v.Name+" H", v.Name+" M")
	}

	for _, att := range attacks {
		row := []string{att.Name}
		for _, v := range variants {
			res, err := RunCell(dataset, ds, v, att, p, DefaultCellOptions())
			if err != nil {
				return nil, err
			}
			h, m, ok := res.SelectionRates()
			if !ok {
				return nil, fmt.Errorf("experiments: %s reported no selection under %s", v.Name, att.Name)
			}
			row = append(row, fmtRate(h), fmtRate(m))
			log.printf("table2 %s × %s → H=%.4f M=%.4f", v.Name, att.Name, h, m)
		}
		t.AddRow(row...)
	}
	return t, nil
}
