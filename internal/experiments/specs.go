// Package experiments defines the reproduction harness: one experiment per
// table and figure in the paper's evaluation section, runnable at three
// scales (Bench for `go test -bench`, Standard for quick full sweeps, Full
// for the paper-scale runs recorded in EXPERIMENTS.md). Each experiment is
// a thin adapter over the internal/campaign engine: it declares its grid
// as a campaign.Spec (XSpec functions), runs it through a campaign.Engine
// — concurrently, with content-addressed result caching — and renders the
// cell results as the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/nn"
)

// Scale selects the cost/fidelity tradeoff of a sweep.
type Scale int

const (
	// ScaleBench is sized for `go test -bench=.`: 20 clients, short runs.
	ScaleBench Scale = iota + 1
	// ScaleStandard is a mid-size sweep: paper client count, fewer rounds.
	ScaleStandard
	// ScaleFull approaches the paper's training budget.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleBench:
		return "bench"
	case ScaleStandard:
		return "standard"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a CLI flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "bench":
		return ScaleBench, nil
	case "standard":
		return ScaleStandard, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want bench|standard|full)", s)
	}
}

// Params are the scale-dependent simulation parameters. The type is the
// campaign engine's cell-parameter block: a cell embeds it verbatim, so an
// experiment's Params are part of each cell's content hash.
type Params = campaign.Params

// DefaultParams returns the simulation parameters for a scale, matching
// the paper's setup (n=50, 20% Byzantine) at Standard/Full scale. The
// training regime is the "slow climb" one calibrated in DESIGN.md: small
// batches and a conservative learning rate keep the model on its transient
// for most of the run, which is where the paper's attacks do their damage.
func DefaultParams(scale Scale) Params {
	switch scale {
	case ScaleFull:
		return Params{
			Clients: 50, ByzFraction: 0.2, Rounds: 400, BatchSize: 8,
			EvalEvery: 25, EvalSamples: 500, TrainSize: 4000, TestSize: 1000, Seed: 1,
		}
	case ScaleStandard:
		return Params{
			Clients: 50, ByzFraction: 0.2, Rounds: 200, BatchSize: 8,
			EvalEvery: 20, EvalSamples: 400, TrainSize: 4000, TestSize: 1000, Seed: 1,
		}
	default: // ScaleBench
		return Params{
			Clients: 20, ByzFraction: 0.2, Rounds: 100, BatchSize: 8,
			EvalEvery: 10, EvalSamples: 250, TrainSize: 1200, TestSize: 500, Seed: 1,
		}
	}
}

// DatasetSpec binds a dataset analog to its model architecture and
// learning rate, mirroring the paper's dataset/model pairs.
type DatasetSpec struct {
	// Key is the CLI/bench identifier: mnist, fashion, cifar, agnews.
	Key string
	// Title is the table heading, e.g. "MNIST-like (CNN)".
	Title string
	// LR is the learning rate used for this model family.
	LR float64
	// Load builds the dataset at the given sizes.
	Load func(seed int64, train, test int) (*data.Dataset, error)
	// NewModel builds the global model.
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
}

// Datasets returns the four dataset/model pairs of the paper, in its
// presentation order.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{
			Key: "mnist", Title: "MNIST-like (CNN)", LR: 0.03,
			Load: data.MNISTLike,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewImageCNN(rng, 1, 8, 8, 6, 32, 10)
			},
		},
		{
			Key: "fashion", Title: "Fashion-like (CNN)", LR: 0.03,
			Load: data.FashionLike,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewImageCNN(rng, 1, 8, 8, 6, 32, 10)
			},
		},
		{
			Key: "cifar", Title: "CIFAR-like (DeepCNN)", LR: 0.03,
			Load: data.CIFARLike,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewDeepImageCNN(rng, 3, 8, 8, 8, 16, 32, 10)
			},
		},
		{
			Key: "agnews", Title: "AGNews-like (TextRNN)", LR: 0.15,
			Load: data.AGNewsLike,
			NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
				return nn.NewTextRNN(rng, 128, 16, 24, 4), nil
			},
		},
	}
}

// DatasetByKey looks up a dataset spec.
func DatasetByKey(key string) (DatasetSpec, error) {
	for _, d := range Datasets() {
		if d.Key == key {
			return d, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("experiments: unknown dataset %q", key)
}

// RuleSpec names a defense and builds a fresh instance per run. f is the
// Byzantine count the paper grants the baselines (SignGuard ignores it).
// RuleSpecs are views over the central defense registry (internal/defense)
// — the hand-written per-rule closure table this package used to carry now
// lives there, shared with the campaign engine and the CLIs.
type RuleSpec struct {
	Name string
	New  func(n, f int, seed int64) (aggregate.Rule, error)
}

// Rules returns all ten defenses of Table I, in its row order, backed by
// the builtin defense registry.
func Rules() []RuleSpec {
	reg := defense.Builtin()
	names := reg.Names()
	out := make([]RuleSpec, 0, len(names))
	for _, name := range names {
		name := name
		out = append(out, RuleSpec{
			Name: name,
			New: func(n, f int, seed int64) (aggregate.Rule, error) {
				return reg.Build(name, defense.Params{N: n, F: f, Seed: seed})
			},
		})
	}
	return out
}

// RuleByName looks up a single rule spec.
func RuleByName(name string) (RuleSpec, error) {
	for _, r := range Rules() {
		if r.Name == name {
			return r, nil
		}
	}
	return RuleSpec{}, fmt.Errorf("experiments: unknown rule %q", name)
}

// tableIRules are the paper's ten Table I row labels, in row order.
var tableIRules = []string{
	"Mean", "TrMean", "Median", "GeoMed", "Multi-Krum", "Bulyan",
	"DnC", "SignGuard", "SignGuard-Sim", "SignGuard-Dist",
}

// PaperRules returns the ten Table I defense rows — the subset of Rules()
// the paper's own tables render. The related-work families beyond the
// table (FLTrust, FLAME, MoM) are evaluated by the serverlearn campaign
// instead, so Table I keeps the paper's exact shape.
func PaperRules() []RuleSpec {
	sel, err := SelectRules(tableIRules...)
	if err != nil {
		// The names are static rows of the builtin registry.
		panic(err)
	}
	return sel
}

// SelectRules filters Rules() to the given names, preserving order.
func SelectRules(names ...string) ([]RuleSpec, error) {
	out := make([]RuleSpec, 0, len(names))
	for _, n := range names {
		r, err := RuleByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AttackSpec names an attack strategy and builds a fresh instance per run.
type AttackSpec struct {
	Name string
	New  func(seed int64) attack.Attack
}

// Attacks returns the nine attack columns of Table I, in its column order.
func Attacks() []AttackSpec {
	return []AttackSpec{
		{Name: "NoAttack", New: func(int64) attack.Attack { return attack.NewNone() }},
		{Name: "Random", New: func(int64) attack.Attack { return attack.NewRandom() }},
		{Name: "Noise", New: func(int64) attack.Attack { return attack.NewNoise() }},
		{Name: "Label-flip", New: func(int64) attack.Attack { return attack.NewLabelFlip() }},
		{Name: "ByzMean", New: func(int64) attack.Attack { return attack.NewByzMean() }},
		{Name: "Sign-flip", New: func(int64) attack.Attack { return attack.NewSignFlip() }},
		{Name: "LIE", New: func(int64) attack.Attack { return attack.NewLIE(0.3) }},
		{Name: "Min-Max", New: func(int64) attack.Attack { return attack.NewMinMax() }},
		{Name: "Min-Sum", New: func(int64) attack.Attack { return attack.NewMinSum() }},
	}
}

// ExtraAttacks returns the attack strategies beyond the paper's Table I
// columns: the adaptive round-aware attacks enabled by the pipeline's
// filtering-feedback channel, the sign-preserving white-box attack on
// SignGuard itself, the non-finite injection family of the hostile-input
// campaign (NaN/±Inf, full-vector and sparse-coordinate), and the backdoor
// / model-replacement adversary of the server-learning campaign.
func ExtraAttacks() []AttackSpec {
	return []AttackSpec{
		{Name: "Adaptive-Min-Max", New: func(int64) attack.Attack { return attack.NewAdaptiveMinMax() }},
		{Name: "SignKeep", New: func(int64) attack.Attack { return attack.NewSignKeeping() }},
		{Name: "NonFinite-NaN", New: func(int64) attack.Attack { return attack.NewNonFinite(attack.NaNValue) }},
		{Name: "NonFinite-PosInf", New: func(int64) attack.Attack { return attack.NewNonFinite(attack.PosInfValue) }},
		{Name: "NonFinite-NegInf", New: func(int64) attack.Attack { return attack.NewNonFinite(attack.NegInfValue) }},
		{Name: "NonFinite-Sparse", New: func(int64) attack.Attack { return attack.NewNonFiniteSparse(attack.NaNValue, 0.01) }},
		{Name: "Backdoor", New: func(int64) attack.Attack { return attack.NewBackdoor(0, 0) }},
	}
}

// AttackByName looks up a single attack spec (Table I columns and the
// extra adaptive attacks).
func AttackByName(name string) (AttackSpec, error) {
	for _, a := range append(Attacks(), ExtraAttacks()...) {
		if a.Name == name {
			return a, nil
		}
	}
	return AttackSpec{}, fmt.Errorf("experiments: unknown attack %q", name)
}

// SelectAttacks filters Attacks() to the given names, preserving order.
func SelectAttacks(names ...string) ([]AttackSpec, error) {
	out := make([]AttackSpec, 0, len(names))
	for _, n := range names {
		a, err := AttackByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
