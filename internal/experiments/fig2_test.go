package experiments

import "testing"

// TestFig2Tiny runs the Fig. 2 experiment at toy scale and checks the
// series' structural invariants: aligned lengths, probability-vector rows
// and the LIE sign shift (its negative fraction should exceed the honest
// gradient's once training is underway).
func TestFig2Tiny(t *testing.T) {
	p := Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 8, BatchSize: 4,
		EvalEvery: 4, EvalSamples: 50, TrainSize: 240, TestSize: 60, Seed: 3,
	}
	series, tables, err := Fig2(NewEngine(0, nil, nil), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(tables) != 2 {
		t.Fatalf("got %d series, %d tables", len(series), len(tables))
	}
	for _, s := range series {
		if len(s.Rounds) == 0 || len(s.Rounds) != len(s.Honest) || len(s.Rounds) != len(s.LIE) {
			t.Fatalf("%s: misaligned series (%d rounds, %d honest, %d lie)",
				s.Dataset, len(s.Rounds), len(s.Honest), len(s.LIE))
		}
		var lieMoreNegative int
		for i := range s.Rounds {
			for _, ss := range []struct{ pos, zero, neg float64 }{
				{s.Honest[i].Pos, s.Honest[i].Zero, s.Honest[i].Neg},
				{s.LIE[i].Pos, s.LIE[i].Zero, s.LIE[i].Neg},
			} {
				sum := ss.pos + ss.zero + ss.neg
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("%s: sign stats not a probability vector (sum %v)", s.Dataset, sum)
				}
			}
			if s.LIE[i].Neg > s.Honest[i].Neg {
				lieMoreNegative++
			}
		}
		if lieMoreNegative*2 < len(s.Rounds) {
			t.Errorf("%s: LIE gradient more negative in only %d/%d samples",
				s.Dataset, lieMoreNegative, len(s.Rounds))
		}
	}
}
