package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
)

// CellOptions customizes a single attack × defense run beyond the scale
// defaults.
type CellOptions struct {
	// NonIID, when non-nil, uses the paper's non-IID partition.
	NonIID *fl.NonIID
	// OverrideAttack substitutes a pre-built attack (used for ad-hoc
	// attacks that are not in the campaign registry).
	OverrideAttack attack.Attack
	// OverrideNumByz, when >= 0, replaces the Byzantine count derived from
	// Params.ByzFraction.
	OverrideNumByz int
	// RoundHook observes every round.
	RoundHook func(*fl.RoundState)
}

// DefaultCellOptions returns the zero customization (OverrideNumByz
// disabled).
func DefaultCellOptions() CellOptions { return CellOptions{OverrideNumByz: -1} }

// RunCell executes one (dataset, rule, attack) experiment cell directly,
// bypassing the campaign engine and its cache. It is the programmatic
// escape hatch for hooks and ad-hoc attacks; the tables and figures
// themselves declare campaign specs instead. The cell is assembled through
// the same campaign.CellExec path the engine uses, so both agree on every
// simulation parameter.
func RunCell(dataset *data.Dataset, ds DatasetSpec, rule RuleSpec, att AttackSpec, p Params, opt CellOptions) (*fl.RunResult, error) {
	numByz := p.NumByz()
	if opt.OverrideNumByz >= 0 {
		numByz = opt.OverrideNumByz
	}
	r, err := rule.New(p.Clients, numByz, p.Seed+11)
	if err != nil {
		return nil, fmt.Errorf("experiments: building rule %s: %w", rule.Name, err)
	}
	a := opt.OverrideAttack
	if a == nil {
		a = att.New(p.Seed + 13)
	}
	x := &campaign.CellExec{
		Dataset:  dataset,
		NewModel: ds.NewModel,
		LR:       ds.LR,
		Rule:     r,
		Attack:   a,
		NumByz:   numByz,
		NonIID:   opt.NonIID,
		Hook:     opt.RoundHook,
		Params:   p,
	}
	res, err := x.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s/%s: %w", ds.Key, rule.Name, att.Name, err)
	}
	return res, nil
}

// LoadDataset builds the dataset for a spec at the given params, using the
// same seed derivation as the campaign engine's dataset cache.
func LoadDataset(ds DatasetSpec, p Params) (*data.Dataset, error) {
	dataset, err := ds.Load(p.Seed+7, p.TrainSize, p.TestSize)
	if err != nil {
		return nil, fmt.Errorf("experiments: loading %s: %w", ds.Key, err)
	}
	return dataset, nil
}
