package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
)

// CellOptions customizes a single attack × defense run beyond the scale
// defaults.
type CellOptions struct {
	// NonIID, when non-nil, uses the paper's non-IID partition.
	NonIID *fl.NonIID
	// OverrideAttack substitutes a pre-built attack (used for time-varying
	// and ablation attacks that are not in the standard list).
	OverrideAttack attack.Attack
	// OverrideNumByz, when >= 0, replaces the Byzantine count derived from
	// Params.ByzFraction (used by the Fig. 4 fraction sweep).
	OverrideNumByz int
	// RoundHook observes every round.
	RoundHook func(*fl.RoundState)
}

// DefaultCellOptions returns the zero customization (OverrideNumByz
// disabled).
func DefaultCellOptions() CellOptions { return CellOptions{OverrideNumByz: -1} }

// RunCell executes one (dataset, rule, attack) experiment cell: it builds a
// fresh rule and attack, runs the configured number of rounds, and returns
// the run result.
func RunCell(dataset *data.Dataset, ds DatasetSpec, rule RuleSpec, att AttackSpec, p Params, opt CellOptions) (*fl.RunResult, error) {
	numByz := p.NumByz()
	if opt.OverrideNumByz >= 0 {
		numByz = opt.OverrideNumByz
	}
	r, err := rule.New(p.Clients, numByz, p.Seed+11)
	if err != nil {
		return nil, fmt.Errorf("experiments: building rule %s: %w", rule.Name, err)
	}
	a := opt.OverrideAttack
	if a == nil {
		a = att.New(p.Seed + 13)
	}
	sim, err := fl.New(fl.Config{
		Dataset:     dataset,
		NewModel:    ds.NewModel,
		Rule:        r,
		Attack:      a,
		Clients:     p.Clients,
		NumByz:      numByz,
		Rounds:      p.Rounds,
		BatchSize:   p.BatchSize,
		LR:          ds.LR,
		Momentum:    0.9,
		WeightDecay: 5e-4,
		EvalEvery:   p.EvalEvery,
		EvalSamples: p.EvalSamples,
		NonIID:      opt.NonIID,
		Seed:        p.Seed,
		RoundHook:   opt.RoundHook,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s/%s: %w", ds.Key, rule.Name, att.Name, err)
	}
	res, err := sim.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s/%s: %w", ds.Key, rule.Name, att.Name, err)
	}
	return res, nil
}

// LoadDataset builds the dataset for a spec at the given params.
func LoadDataset(ds DatasetSpec, p Params) (*data.Dataset, error) {
	dataset, err := ds.Load(p.Seed+7, p.TrainSize, p.TestSize)
	if err != nil {
		return nil, fmt.Errorf("experiments: loading %s: %w", ds.Key, err)
	}
	return dataset, nil
}
