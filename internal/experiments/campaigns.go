package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// Registry returns the campaign registry covering the paper's full
// evaluation grid: the four dataset analogs, the unified defense catalog
// (the ten Table I defenses from internal/defense plus the six Table III
// ablation variants), the nine attack columns plus the parameterized
// Reverse and TimeVarying attacks and the adaptive round-aware attacks,
// and the Fig. 2 sign-statistics probe.
func Registry() *campaign.Registry {
	reg := campaign.NewRegistry()
	for _, ds := range Datasets() {
		reg.RegisterDataset(ds.Key, campaign.DatasetBuilder{
			LR: ds.LR, Load: ds.Load, NewModel: ds.NewModel,
		})
	}
	reg.RegisterDefenses(Defenses())
	for _, a := range append(Attacks(), ExtraAttacks()...) {
		a := a
		reg.RegisterAttack(a.Name, func(_ campaign.Cell, seed int64) (attack.Attack, error) {
			return a.New(seed), nil
		})
	}
	// Reverse scales by the cell's AttackParam (Table III's norm-threshold
	// sensitive reverse attack).
	reg.RegisterAttack("Reverse", func(c campaign.Cell, _ int64) (attack.Attack, error) {
		scale := c.AttackParam
		if scale <= 0 {
			scale = 1
		}
		return attack.NewReverse(scale), nil
	})
	// TimeVarying re-draws its strategy every AttackParam rounds (Fig. 5).
	// Seeded from Params.Seed+29 — the derivation the pre-campaign harness
	// used — so historical Fig. 5 curves reproduce bit-for-bit.
	reg.RegisterAttack("TimeVarying", func(c campaign.Cell, _ int64) (attack.Attack, error) {
		switchEvery := int(c.AttackParam)
		if switchEvery < 1 {
			switchEvery = 1
		}
		return attack.NewTimeVarying(attack.DefaultTimeVaryingPool(), switchEvery, c.Params.Seed+29)
	})
	// Backdoor's model-replacement boost λ rides the cell's AttackParam
	// (0 → the attack's documented default), overriding the default-config
	// registration from the ExtraAttacks loop above.
	reg.RegisterAttack("Backdoor", func(c campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewBackdoor(0, c.AttackParam), nil
	})
	reg.RegisterProbe(SignStatsProbe, newSignStatsProbe)
	reg.RegisterCodecs(codec.Builtin())
	return reg
}

// Defenses returns the experiment harness's defense catalog: the builtin
// Table I registry extended with the Table III ablation variants.
func Defenses() *defense.Registry {
	defs := defense.Builtin()
	for _, combo := range ablationCombos() {
		combo := combo
		if err := defs.Register(defense.Spec{
			Name: ablationRuleName(combo),
			Build: func(p defense.Params) (aggregate.Rule, error) {
				return newAblationRule(combo, p.Seed)
			},
		}); err != nil {
			panic(err) // statically-valid spec
		}
	}
	return defs
}

// NewEngine builds a campaign engine over the paper's registry. workers
// bounds concurrent cells (0 = GOMAXPROCS), store enables resumable
// caching (nil disables), and log receives per-cell progress lines.
func NewEngine(workers int, store *campaign.Store, log Reporter) *campaign.Engine {
	e := &campaign.Engine{Registry: Registry(), Store: store, Workers: workers}
	if log != nil {
		e.Progress = func(ev campaign.ProgressEvent) {
			state := ev.Duration.Round(time.Millisecond).String()
			if ev.Cached {
				state = "cached"
			}
			if ev.ETA > 0 {
				log("%s %d/%d %s (%s, eta %s)",
					ev.Spec, ev.Done, ev.Total, ev.Cell.ID(), state, ev.ETA.Round(time.Second))
			} else {
				log("%s %d/%d %s (%s)", ev.Spec, ev.Done, ev.Total, ev.Cell.ID(), state)
			}
		}
	}
	return e
}

// SignStatsProbe names the Fig. 2 per-round sign-statistics probe: the
// (pos, zero, neg) proportions of the average honest gradient and of a
// LIE-crafted gradient, sampled every ProbeParam rounds.
const SignStatsProbe = "signstats"

// SignStatsSeries is the probe's stored payload.
type SignStatsSeries struct {
	Rounds []int
	Honest []stats.SignStats
	LIE    []stats.SignStats
}

func newSignStatsProbe(c campaign.Cell) (*campaign.ProbeInstance, error) {
	sampleEvery := int(c.ProbeParam)
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	lie := attack.NewLIE(0.3)
	// The LIE gradient is crafted for the cohort the fraction implies,
	// even though the training run itself is clean (NumByz override 0).
	n, m := c.Params.Clients, c.Params.NumByz()
	out := &SignStatsSeries{}
	hook := func(st *fl.RoundState) {
		if st.Round%sampleEvery != 0 {
			return
		}
		avg, err := tensor.Mean(st.Honest)
		if err != nil {
			return
		}
		honestSS, err := stats.ComputeSignStats(avg)
		if err != nil {
			return
		}
		gm, err := lie.CraftVector(st.Honest, n, m)
		if err != nil {
			return
		}
		lieSS, err := stats.ComputeSignStats(gm)
		if err != nil {
			return
		}
		out.Rounds = append(out.Rounds, st.Round)
		out.Honest = append(out.Honest, honestSS)
		out.LIE = append(out.LIE, lieSS)
	}
	finish := func() (json.RawMessage, error) { return json.Marshal(out) }
	return &campaign.ProbeInstance{Hook: hook, Finish: finish}, nil
}

// CampaignNames lists the named campaigns the CLI can run: the paper's
// tables and figures plus the post-paper scenario axes (client
// subsampling, defense hyperparameter sweeps, adaptive attacks).
func CampaignNames() []string {
	return []string{
		"table1", "table2", "table3", "fig2", "fig4", "fig5", "fig6",
		"subsample", "coordfrac", "dncsubdim", "adaptive", "batched",
		"compression", "hostile", "serverlearn", "all",
	}
}

// CampaignByName expands a named campaign to its cell grid at the given
// parameters. "all" is the union of every table and figure; shared cells
// (e.g. Table I's 20%-fraction runs reappearing in Fig. 4) are
// deduplicated by the engine's content hashing.
func CampaignByName(name string, p Params) (campaign.Spec, error) {
	switch name {
	case "table1":
		specs := make([]campaign.Spec, 0, len(Datasets()))
		for _, ds := range Datasets() {
			specs = append(specs, Table1Spec(ds, p))
		}
		return campaign.Merge("table1", specs...), nil
	case "table2":
		return Table2Spec(p), nil
	case "table3":
		return Table3Spec(p), nil
	case "fig2":
		return Fig2Spec(p, Fig2SampleEvery(p)), nil
	case "fig4":
		return Fig4Spec(p), nil
	case "fig5":
		return Fig5Spec(p), nil
	case "fig6":
		return Fig6Spec(p), nil
	case "subsample":
		return SubsampleSpec(p), nil
	case "coordfrac":
		return CoordFracSpec(p), nil
	case "dncsubdim":
		return DnCSubDimSpec(p), nil
	case "adaptive":
		return AdaptiveSpec(p), nil
	case "batched":
		return BatchedSpec(p), nil
	case "compression":
		return CompressionSpec(p), nil
	case "hostile":
		return HostileSpec(p), nil
	case "serverlearn":
		return ServerLearnSpec(p), nil
	case "all":
		names := CampaignNames()
		specs := make([]campaign.Spec, 0, len(names)-1)
		for _, n := range names {
			if n == "all" {
				continue
			}
			s, err := CampaignByName(n, p)
			if err != nil {
				return campaign.Spec{}, err
			}
			specs = append(specs, s)
		}
		return campaign.Merge("all", specs...), nil
	default:
		return campaign.Spec{}, fmt.Errorf("experiments: unknown campaign %q (want %v)", name, CampaignNames())
	}
}
