package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// Table1Spec declares the "Table I" grid for one dataset: every
// aggregation rule under every attack column at the default Byzantine
// fraction, IID data.
func Table1Spec(ds DatasetSpec, p Params) campaign.Spec {
	spec := campaign.Spec{Name: "table1-" + ds.Key}
	for _, rule := range PaperRules() {
		for _, att := range Attacks() {
			spec.Cells = append(spec.Cells, campaign.NewCell(ds.Key, rule.Name, att.Name, p))
		}
	}
	return spec
}

// Table1 reproduces "Table I: comparison of defenses under various model
// poisoning attacks" for one dataset: the best test accuracy achieved by
// each of the ten aggregation rules under each of the nine attack columns.
func Table1(e *campaign.Engine, ds DatasetSpec, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), Table1Spec(ds, p))
	if err != nil {
		return nil, err
	}
	return renderTable1(ds, rep.Results), nil
}

func renderTable1(ds DatasetSpec, results []*campaign.CellResult) *Table {
	attacks := Attacks()
	t := &Table{Title: fmt.Sprintf("Table I — %s (best test accuracy %%)", ds.Title)}
	t.Header = append([]string{"GAR"}, attackNames(attacks)...)
	cur := cursor{results: results}
	for _, rule := range PaperRules() {
		row := []string{rule.Name}
		for range attacks {
			row = append(row, fmtAcc(cur.next().BestAccuracy))
		}
		t.AddRow(row...)
	}
	return t
}

func attackNames(attacks []AttackSpec) []string {
	out := make([]string, len(attacks))
	for i, a := range attacks {
		out[i] = a.Name
	}
	return out
}
