package experiments

import "fmt"

// Table1 reproduces "Table I: comparison of defenses under various model
// poisoning attacks" for one dataset: the best test accuracy achieved by
// each of the ten aggregation rules under each of the nine attack columns,
// IID data, n clients with the configured Byzantine fraction.
func Table1(ds DatasetSpec, p Params, log Reporter) (*Table, error) {
	dataset, err := LoadDataset(ds, p)
	if err != nil {
		return nil, err
	}
	attacks := Attacks()
	rules := Rules()

	t := &Table{Title: fmt.Sprintf("Table I — %s (best test accuracy %%)", ds.Title)}
	t.Header = append([]string{"GAR"}, attackNames(attacks)...)

	total := len(rules) * len(attacks)
	done := 0
	for _, rule := range rules {
		row := []string{rule.Name}
		for _, att := range attacks {
			res, err := RunCell(dataset, ds, rule, att, p, DefaultCellOptions())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtAcc(res.BestAccuracy))
			done++
			log.printf("table1[%s] %d/%d %s × %s → %.2f",
				ds.Key, done, total, rule.Name, att.Name, res.BestAccuracy)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func attackNames(attacks []AttackSpec) []string {
	out := make([]string, len(attacks))
	for i, a := range attacks {
		out[i] = a.Name
	}
	return out
}
