package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/stats"
)

// fig2Datasets are the two panels of the paper's Fig. 2.
var fig2Datasets = []string{"mnist", "cifar"}

// Fig2SampleEvery is the default sign-statistics sampling stride for a
// parameter set: about 30 samples across the run.
func Fig2SampleEvery(p Params) int {
	se := p.Rounds / 30
	if se < 1 {
		se = 1
	}
	return se
}

// Fig2Series is one dataset's sign-statistics traces: per sampled round,
// the (pos, zero, neg) proportions of the average honest gradient and of a
// virtual gradient crafted by the LIE attack from the same round's honest
// gradients — the reproduction of the paper's Fig. 2.
type Fig2Series struct {
	Dataset string
	Rounds  []int
	Honest  []stats.SignStats
	LIE     []stats.SignStats
}

// Fig2Spec declares the Fig. 2 campaign: clean training (no Byzantine
// clients) on the MNIST- and CIFAR-analogs with the sign-statistics probe
// attached, sampling every sampleEvery rounds.
func Fig2Spec(p Params, sampleEvery int) campaign.Spec {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	spec := campaign.Spec{Name: "fig2"}
	for _, key := range fig2Datasets {
		c := campaign.NewCell(key, "Mean", "NoAttack", p)
		// Clean training: no Byzantine clients at all (matches the paper's
		// Fig. 2 protocol of training "under no attacks").
		c.NumByz = 0
		c.Probe = SignStatsProbe
		c.ProbeParam = float64(sampleEvery)
		spec.Cells = append(spec.Cells, c)
	}
	return spec
}

// Fig2 trains the MNIST-analog CNN and the CIFAR-analog model with no
// attack and records the sign statistics every sampleEvery rounds.
func Fig2(e *campaign.Engine, p Params, sampleEvery int) ([]Fig2Series, []*Table, error) {
	rep, err := e.Run(context.Background(), Fig2Spec(p, sampleEvery))
	if err != nil {
		return nil, nil, err
	}
	series := make([]Fig2Series, 0, len(rep.Results))
	tables := make([]*Table, 0, len(rep.Results))
	for i, key := range fig2Datasets {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, nil, err
		}
		var ss SignStatsSeries
		if err := json.Unmarshal(rep.Results[i].Probe, &ss); err != nil {
			return nil, nil, fmt.Errorf("experiments: decoding fig2 probe for %s: %w", key, err)
		}
		s := Fig2Series{Dataset: ds.Title, Rounds: ss.Rounds, Honest: ss.Honest, LIE: ss.LIE}
		series = append(series, s)
		tables = append(tables, s.Table())
	}
	return series, tables, nil
}

// Table renders the series in the paper's reporting form.
func (s *Fig2Series) Table() *Table {
	t := &Table{Title: fmt.Sprintf("Fig. 2 — sign statistics over training (%s)", s.Dataset)}
	t.Header = []string{"Round", "Honest pos", "Honest zero", "Honest neg", "LIE pos", "LIE zero", "LIE neg"}
	for i, r := range s.Rounds {
		t.AddRow(
			fmt.Sprintf("%d", r),
			fmtRate(s.Honest[i].Pos), fmtRate(s.Honest[i].Zero), fmtRate(s.Honest[i].Neg),
			fmtRate(s.LIE[i].Pos), fmtRate(s.LIE[i].Zero), fmtRate(s.LIE[i].Neg),
		)
	}
	return t
}
