package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// Fig2Series is one dataset's sign-statistics traces: per evaluation round,
// the (pos, zero, neg) proportions of the average honest gradient and of a
// virtual gradient crafted by the LIE attack from the same round's honest
// gradients — the reproduction of the paper's Fig. 2.
type Fig2Series struct {
	Dataset string
	Rounds  []int
	Honest  []stats.SignStats
	LIE     []stats.SignStats
}

// Fig2 trains the MNIST-analog CNN and the CIFAR-analog model with no
// attack and records the sign statistics every sampleEvery rounds.
func Fig2(p Params, sampleEvery int, log Reporter) ([]Fig2Series, []*Table, error) {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	keys := []string{"mnist", "cifar"}
	series := make([]Fig2Series, 0, len(keys))
	tables := make([]*Table, 0, len(keys))
	for _, key := range keys {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, nil, err
		}
		dataset, err := LoadDataset(ds, p)
		if err != nil {
			return nil, nil, err
		}
		s := Fig2Series{Dataset: ds.Title}
		lie := attack.NewLIE(0.3)
		hook := func(st *fl.RoundState) {
			if st.Round%sampleEvery != 0 {
				return
			}
			avg, err := tensor.Mean(st.Honest)
			if err != nil {
				return
			}
			honestSS, err := stats.ComputeSignStats(avg)
			if err != nil {
				return
			}
			gm, err := lie.CraftVector(st.Honest, p.Clients, p.NumByz())
			if err != nil {
				return
			}
			lieSS, err := stats.ComputeSignStats(gm)
			if err != nil {
				return
			}
			s.Rounds = append(s.Rounds, st.Round)
			s.Honest = append(s.Honest, honestSS)
			s.LIE = append(s.LIE, lieSS)
		}

		rule, err := RuleByName("Mean")
		if err != nil {
			return nil, nil, err
		}
		att, err := AttackByName("NoAttack")
		if err != nil {
			return nil, nil, err
		}
		opt := DefaultCellOptions()
		opt.RoundHook = hook
		// Clean training: no Byzantine clients at all (matches the paper's
		// Fig. 2 protocol of training "under no attacks").
		opt.OverrideNumByz = 0
		if _, err := RunCell(dataset, ds, rule, att, p, opt); err != nil {
			return nil, nil, err
		}
		log.printf("fig2[%s] recorded %d samples", key, len(s.Rounds))
		series = append(series, s)
		tables = append(tables, s.Table())
	}
	return series, tables, nil
}

// Table renders the series in the paper's reporting form.
func (s *Fig2Series) Table() *Table {
	t := &Table{Title: fmt.Sprintf("Fig. 2 — sign statistics over training (%s)", s.Dataset)}
	t.Header = []string{"Round", "Honest pos", "Honest zero", "Honest neg", "LIE pos", "LIE zero", "LIE neg"}
	for i, r := range s.Rounds {
		t.AddRow(
			fmt.Sprintf("%d", r),
			fmtRate(s.Honest[i].Pos), fmtRate(s.Honest[i].Zero), fmtRate(s.Honest[i].Neg),
			fmtRate(s.LIE[i].Pos), fmtRate(s.LIE[i].Zero), fmtRate(s.LIE[i].Neg),
		)
	}
	return t
}
