package experiments

import (
	"testing"

	"github.com/signguard/signguard/internal/conformance"
)

// TestCatalogConformance extends the registry-wide defense contract from
// internal/defense to the experiment harness's full catalog — the builtin
// rules plus the Table III ablation variants — so an ablation cannot ship
// with worker-dependent or non-finite behavior the builtin suite would have
// caught in its parent.
func TestCatalogConformance(t *testing.T) {
	reg := Defenses()
	for _, name := range reg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := conformance.CheckDefenseWorkerDeterminism(reg, name, 11); err != nil {
				t.Errorf("worker determinism: %v", err)
			}
			if err := conformance.CheckDefenseHostileInputs(reg, name, 13); err != nil {
				t.Errorf("hostile inputs: %v", err)
			}
			if err := conformance.CheckDefenseHyperDeclaration(reg, name); err != nil {
				t.Errorf("hyper declaration: %v", err)
			}
		})
	}
}
