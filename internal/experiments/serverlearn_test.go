package experiments

import "testing"

func TestServerLearnSpecShape(t *testing.T) {
	p := axesParams()
	spec := ServerLearnSpec(p)
	if want := len(serverLearnRules) * len(serverLearnAttacks); len(spec.Cells) != want {
		t.Fatalf("%d cells, want %d", len(spec.Cells), want)
	}
	byz := ServerLearnByz(p)
	for _, c := range spec.Cells {
		if c.NumByz != byz {
			t.Errorf("cell %s has NumByz %d, want the pinned %d", c.ID(), c.NumByz, byz)
		}
	}
	// Every referenced rule and attack must resolve through the registries.
	for _, rule := range serverLearnRules {
		if _, err := RuleByName(rule); err != nil {
			t.Errorf("rule %s: %v", rule, err)
		}
	}
	for _, att := range serverLearnAttacks {
		if _, err := AttackByName(att); err != nil {
			t.Errorf("attack %s: %v", att, err)
		}
	}
}

// TestServerLearnDefensesBeatMean is the campaign's acceptance assertion:
// under both the backdoor / model-replacement adversary and the adaptive
// Min-Max at the pinned 30% Byzantine fraction, FLTrust and FLAME end with
// a lower final error than undefended Mean. A diverged run counts as 100%
// error.
func TestServerLearnDefensesBeatMean(t *testing.T) {
	p := axesParams()
	// The toy axesParams scale (4 rounds, 40-sample eval) cannot resolve
	// defended-vs-undefended differences; give the comparison enough rounds
	// and the full test split to separate. (By round ~12 the defended curves
	// still cross Mean's transiently; 20 rounds is comfortably past that.)
	p.Rounds = 20
	p.EvalEvery = 4
	p.EvalSamples = 0
	rep, err := NewEngine(0, nil, nil).Run(t.Context(), ServerLearnSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	errOf := map[string]float64{}
	for _, r := range rep.Results {
		e := 100 - r.FinalAccuracy
		if r.Diverged {
			e = 100
		}
		errOf[r.RuleName+"/"+r.AttackName] = e
	}
	for _, att := range serverLearnAttacks {
		mean, ok := errOf["Mean/"+att]
		if !ok {
			t.Fatalf("no Mean result under %s", att)
		}
		for _, rule := range []string{"FLTrust", "FLAME"} {
			got, ok := errOf[rule+"/"+att]
			if !ok {
				t.Fatalf("no %s result under %s", rule, att)
			}
			if got >= mean {
				t.Errorf("%s final error %.2f%% under %s, want below Mean's %.2f%%", rule, got, att, mean)
			}
		}
	}
}

// TestServerLearnRendererShape pins the rendered table to the grid.
func TestServerLearnRendererShape(t *testing.T) {
	p := axesParams()
	tbl, err := ServerLearn(NewEngine(0, nil, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(serverLearnRules) || len(tbl.Header) != 1+len(serverLearnAttacks) {
		t.Errorf("rendered %dx%d", len(tbl.Rows), len(tbl.Header))
	}
}
