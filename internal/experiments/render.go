package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/signguard/signguard/internal/campaign"
)

// cursor walks a campaign's results in the same order the spec builder
// appended cells, so each renderer mirrors its grid-declaration loops.
type cursor struct {
	results []*campaign.CellResult
	i       int
}

func (c *cursor) next() *campaign.CellResult {
	r := c.results[c.i]
	c.i++
	return r
}

// Reporter receives progress lines from long sweeps; a nil Reporter is
// silently ignored.
type Reporter func(format string, args ...any)

func (r Reporter) printf(format string, args ...any) {
	if r != nil {
		r(format, args...)
	}
}

// Table is a rendered experiment result: the rows/series the paper reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// TSV writes the table as tab-separated values (header first).
func (t *Table) TSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// fmtAcc formats an accuracy percentage like the paper's tables.
func fmtAcc(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// fmtRate formats a selection rate like the paper's Table II.
func fmtRate(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
