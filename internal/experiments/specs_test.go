package experiments

import (
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"bench", ScaleBench, true},
		{"standard", ScaleStandard, true},
		{"full", ScaleFull, true},
		{"huge", 0, false},
	} {
		got, err := ParseScale(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseScale(%q) accepted", tc.in)
		}
	}
	if ScaleBench.String() != "bench" || Scale(9).String() == "" {
		t.Error("Scale.String")
	}
}

func TestDefaultParams(t *testing.T) {
	for _, s := range []Scale{ScaleBench, ScaleStandard, ScaleFull} {
		p := DefaultParams(s)
		if p.Clients <= 0 || p.Rounds <= 0 || p.BatchSize <= 0 || p.TrainSize <= 0 {
			t.Errorf("%v params invalid: %+v", s, p)
		}
		if p.NumByz() != int(0.2*float64(p.Clients)) {
			t.Errorf("%v NumByz = %d", s, p.NumByz())
		}
	}
	if DefaultParams(ScaleFull).Rounds <= DefaultParams(ScaleBench).Rounds {
		t.Error("full scale should train longer than bench scale")
	}
}

func TestSpecLookups(t *testing.T) {
	if len(Datasets()) != 4 {
		t.Fatalf("%d datasets", len(Datasets()))
	}
	for _, key := range []string{"mnist", "fashion", "cifar", "agnews"} {
		ds, err := DatasetByKey(key)
		if err != nil || ds.Key != key {
			t.Errorf("DatasetByKey(%q) = %+v, %v", key, ds, err)
		}
	}
	if _, err := DatasetByKey("imagenet"); err == nil {
		t.Error("accepted unknown dataset")
	}

	rules := Rules()
	if len(rules) != 13 {
		t.Fatalf("%d rules, want 13 (Table I rows + FLTrust/FLAME/MoM)", len(rules))
	}
	if rules[0].Name != "Mean" || rules[len(rules)-1].Name != "MoM" {
		t.Errorf("rule order: %s ... %s", rules[0].Name, rules[len(rules)-1].Name)
	}
	if _, err := RuleByName("nope"); err == nil {
		t.Error("accepted unknown rule")
	}

	attacks := Attacks()
	if len(attacks) != 9 {
		t.Fatalf("%d attacks, want 9 (Table I columns)", len(attacks))
	}
	if attacks[0].Name != "NoAttack" {
		t.Errorf("first attack = %s", attacks[0].Name)
	}
	if _, err := AttackByName("nope"); err == nil {
		t.Error("accepted unknown attack")
	}
	if _, err := SelectAttacks("LIE", "nope"); err == nil {
		t.Error("SelectAttacks accepted unknown name")
	}
	if sel, err := SelectRules("DnC", "Mean"); err != nil || len(sel) != 2 || sel[0].Name != "DnC" {
		t.Errorf("SelectRules = %v, %v", sel, err)
	}
}

func TestRuleFactoriesBuild(t *testing.T) {
	for _, r := range Rules() {
		rule, err := r.New(50, 10, 1)
		if err != nil {
			t.Errorf("building %s: %v", r.Name, err)
			continue
		}
		if rule.Name() == "" {
			t.Errorf("%s produced empty rule name", r.Name)
		}
	}
	// Bulyan's factory must cap f when the fraction is too high for
	// n >= 4f+2.
	spec, err := RuleByName("Bulyan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.New(50, 20, 1); err != nil {
		t.Errorf("Bulyan factory with 40%% Byzantine: %v", err)
	}
}

func TestAttackFactoriesBuild(t *testing.T) {
	for _, a := range Attacks() {
		att := a.New(1)
		if att == nil || att.Name() == "" {
			t.Errorf("attack factory %s broken", a.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var md strings.Builder
	if err := tbl.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | b |") || !strings.Contains(md.String(), "### T") {
		t.Errorf("markdown = %q", md.String())
	}
	var tsv strings.Builder
	if err := tbl.TSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "a\tb") || !strings.Contains(tsv.String(), "1\t2") {
		t.Errorf("tsv = %q", tsv.String())
	}
}

// TestRunCellSmoke runs one tiny cell end to end through the harness.
func TestRunCellSmoke(t *testing.T) {
	p := Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 6, BatchSize: 4,
		EvalEvery: 3, EvalSamples: 50, TrainSize: 200, TestSize: 80, Seed: 1,
	}
	ds, err := DatasetByKey("mnist")
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := LoadDataset(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := RuleByName("SignGuard")
	if err != nil {
		t.Fatal(err)
	}
	att, err := AttackByName("LIE")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCell(dataset, ds, rule, att, p, DefaultCellOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 0 || res.BestAccuracy > 100 {
		t.Errorf("accuracy %v out of range", res.BestAccuracy)
	}
	if _, _, ok := res.SelectionRates(); !ok {
		t.Error("SignGuard cell must report selection rates")
	}
}
