package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// Fig. 4 axes: five defenses × five strong attacks × four Byzantine
// fractions, on the Fashion- and CIFAR-analogs, reported as attack impact
// (Definition 3) against a no-attack/no-defense baseline.
var (
	fig4Datasets  = []string{"fashion", "cifar"}
	fig4Fractions = []float64{0.1, 0.2, 0.3, 0.4}
	fig4Defenses  = []string{"Median", "TrMean", "Multi-Krum", "DnC", "SignGuard-Sim"}
	fig4Attacks   = []string{"ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"}
)

// Fig4Spec declares the Fig. 4 grid. Per dataset, the first cell is the
// Definition 3 baseline (no attack, no defense); the rest sweep
// defense × attack × fraction.
func Fig4Spec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "fig4"}
	for _, key := range fig4Datasets {
		base := campaign.NewCell(key, "Mean", "NoAttack", p)
		base.NumByz = 0
		spec.Cells = append(spec.Cells, base)
		for _, def := range fig4Defenses {
			for _, att := range fig4Attacks {
				for _, frac := range fig4Fractions {
					c := campaign.NewCell(key, def, att, p)
					c.NumByz = int(frac * float64(p.Clients))
					spec.Cells = append(spec.Cells, c)
				}
			}
		}
	}
	return spec
}

// Fig4 reproduces "Fig. 4: accuracy drop comparison under various attacks
// and different percentage of Byzantine clients": the attack impact
// (Definition 3 — accuracy drop relative to the no-attack/no-defense
// baseline) as the Byzantine fraction sweeps 10–40%.
func Fig4(e *campaign.Engine, p Params) ([]*Table, error) {
	rep, err := e.Run(context.Background(), Fig4Spec(p))
	if err != nil {
		return nil, err
	}
	cur := cursor{results: rep.Results}
	var tables []*Table
	for _, key := range fig4Datasets {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		baseline := cur.next().BestAccuracy

		t := &Table{Title: fmt.Sprintf("Fig. 4 — attack impact (%%) vs Byzantine fraction, %s (baseline %.2f%%)", ds.Title, baseline)}
		t.Header = []string{"Defense", "Attack"}
		for _, f := range fig4Fractions {
			t.Header = append(t.Header, fmt.Sprintf("%d%%", int(f*100)))
		}
		for _, def := range fig4Defenses {
			for _, att := range fig4Attacks {
				row := []string{def, att}
				for range fig4Fractions {
					impact := baseline - cur.next().BestAccuracy
					if impact < 0 {
						impact = 0
					}
					row = append(row, fmtAcc(impact))
				}
				t.AddRow(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
