package experiments

import "fmt"

// Fig4 reproduces "Fig. 4: accuracy drop comparison under various attacks
// and different percentage of Byzantine clients": for the Fashion- and
// CIFAR-analogs, the attack impact (Definition 3 — accuracy drop relative
// to the no-attack/no-defense baseline) of five defenses under five strong
// attacks as the Byzantine fraction sweeps 10–40%.
func Fig4(p Params, log Reporter) ([]*Table, error) {
	fractions := []float64{0.1, 0.2, 0.3, 0.4}
	defenses, err := SelectRules("Median", "TrMean", "Multi-Krum", "DnC", "SignGuard-Sim")
	if err != nil {
		return nil, err
	}
	attacks, err := SelectAttacks("ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum")
	if err != nil {
		return nil, err
	}
	noAttack, err := AttackByName("NoAttack")
	if err != nil {
		return nil, err
	}
	meanRule, err := RuleByName("Mean")
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for _, key := range []string{"fashion", "cifar"} {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		dataset, err := LoadDataset(ds, p)
		if err != nil {
			return nil, err
		}

		// Definition 3 baseline: no attack, no defense (plain Mean).
		opt := DefaultCellOptions()
		opt.OverrideNumByz = 0
		baseRes, err := RunCell(dataset, ds, meanRule, noAttack, p, opt)
		if err != nil {
			return nil, err
		}
		baseline := baseRes.BestAccuracy
		log.printf("fig4[%s] baseline (no attack, no defense) = %.2f", key, baseline)

		t := &Table{Title: fmt.Sprintf("Fig. 4 — attack impact (%%) vs Byzantine fraction, %s (baseline %.2f%%)", ds.Title, baseline)}
		t.Header = []string{"Defense", "Attack"}
		for _, f := range fractions {
			t.Header = append(t.Header, fmt.Sprintf("%d%%", int(f*100)))
		}

		for _, def := range defenses {
			for _, att := range attacks {
				row := []string{def.Name, att.Name}
				for _, frac := range fractions {
					opt := DefaultCellOptions()
					opt.OverrideNumByz = int(frac * float64(p.Clients))
					res, err := RunCell(dataset, ds, def, att, p, opt)
					if err != nil {
						return nil, err
					}
					impact := baseline - res.BestAccuracy
					if impact < 0 {
						impact = 0
					}
					row = append(row, fmtAcc(impact))
					log.printf("fig4[%s] %s × %s @ %d%% → impact %.2f",
						key, def.Name, att.Name, int(frac*100), impact)
				}
				t.AddRow(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
