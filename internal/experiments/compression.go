package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/codec"
)

// This file declares the gradient-compression campaign: the codec axis of
// the round pipeline (internal/codec) swept against the defense catalog.
// The question it answers is the deployment trade-off the paper leaves
// open — how much wire traffic a codec saves, and whether the robust
// aggregation rules still separate honest from malicious gradients once
// every submission has been through a lossy round trip.

// compressionCodecs are the swept wire formats, each at its registry
// default hyperparameters (topk keeps dim/10 coordinates, qsgd quantizes
// to ±4 levels).
var compressionCodecs = []string{
	codec.Identity, codec.TopK, codec.QSGD, codec.SignSGD,
}

// compressionRules are the compared defenses: the paper's SignGuard, two
// strong baselines, and the undefended mean.
var compressionRules = []string{"SignGuard", "Multi-Krum", "DnC", "Mean"}

// compressionAttacks are the adversaries each (defense, codec) pair faces.
var compressionAttacks = []string{"LIE", "Sign-flip"}

// CompressionSpec declares the codec sweep: defense × attack × codec on
// the MNIST analog. The codec is cell identity, so each wire format
// caches separately and the grid's exports carry per-cell bytes shipped.
func CompressionSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "compression"}
	for _, rule := range compressionRules {
		for _, att := range compressionAttacks {
			for _, cdc := range compressionCodecs {
				c := campaign.NewCell("mnist", rule, att, p)
				c.Codec = cdc
				spec.Cells = append(spec.Cells, c)
			}
		}
	}
	return spec
}

// Compression runs the codec sweep and renders best accuracy plus total
// bytes shipped per defense × attack × codec.
func Compression(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), CompressionSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Gradient compression — best test accuracy % (bytes shipped)"}
	t.Header = []string{"Defense", "Attack"}
	t.Header = append(t.Header, compressionCodecs...)
	cur := cursor{results: rep.Results}
	for _, rule := range compressionRules {
		for _, att := range compressionAttacks {
			row := []string{rule, att}
			for range compressionCodecs {
				r := cur.next()
				row = append(row, fmt.Sprintf("%s (%s)", fmtAcc(r.BestAccuracy), fmtBytes(r.WireBytes)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// fmtBytes renders a byte count at a human scale (KiB/MiB/GiB).
func fmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit && exp < 2; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMG"[exp])
}
