package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/sanitize"
)

// This file declares the hostile-input campaign: the NonFinite attack
// family (NaN/±Inf injection, full-vector and sparse) swept against the
// full defense catalog with the reject ingest screen enabled. The question
// it answers is operational rather than statistical — with screening on,
// does every defense keep training (and at what accuracy), and how many
// hostile submissions does the screen absorb along the way?

// hostileAttacks are the swept non-finite injections: the three full-vector
// poisons and the sparse variant that hides 1% poisoned coordinates inside
// an otherwise-honest gradient.
var hostileAttacks = []string{
	"NonFinite-NaN", "NonFinite-PosInf", "NonFinite-NegInf", "NonFinite-Sparse",
}

// hostileRules picks the compared defenses: the paper's SignGuard, the
// strongest baselines, and the undefended mean (which survives only
// because the screen drops the poison before aggregation).
var hostileRules = []string{"SignGuard", "Multi-Krum", "DnC", "Median", "Mean"}

// HostileSpec declares the hostile-input sweep: defense × non-finite attack
// on the MNIST analog, every cell carrying the reject screening policy.
// The policy is cell identity (the /nonfinite= axis), so screened runs
// cache separately from legacy diverge-on-non-finite runs of the same grid.
func HostileSpec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "hostile"}
	for _, rule := range hostileRules {
		for _, att := range hostileAttacks {
			c := campaign.NewCell("mnist", rule, att, p)
			c.NonFinitePolicy = sanitize.Reject.String()
			spec.Cells = append(spec.Cells, c)
		}
	}
	return spec
}

// Hostile runs the hostile-input sweep and renders best accuracy plus the
// number of submissions the ingest screen dropped per defense × attack.
func Hostile(e *campaign.Engine, p Params) (*Table, error) {
	rep, err := e.Run(context.Background(), HostileSpec(p))
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Hostile input (reject screen) — best test accuracy % (submissions screened)"}
	t.Header = []string{"Defense"}
	t.Header = append(t.Header, hostileAttacks...)
	cur := cursor{results: rep.Results}
	for _, rule := range hostileRules {
		row := []string{rule}
		for range hostileAttacks {
			r := cur.next()
			row = append(row, fmt.Sprintf("%s (%d)", fmtAcc(r.BestAccuracy), r.NonFiniteScreened))
		}
		t.AddRow(row...)
	}
	return t, nil
}
