package experiments

import (
	"context"
	"fmt"

	"github.com/signguard/signguard/internal/campaign"
)

// Fig. 6 axes: five defenses under three attacks across non-IID skew
// levels, on the Fashion- and CIFAR-analogs.
var (
	fig6Datasets = []string{"fashion", "cifar"}
	fig6Skews    = []float64{0.3, 0.5, 0.8}
	fig6Defenses = []string{"TrMean", "Multi-Krum", "Bulyan", "DnC", "SignGuard-Sim"}
	fig6Attacks  = []string{"Sign-flip", "LIE", "ByzMean"}
)

// Fig6Spec declares the Fig. 6 grid over the paper's synthetic non-IID
// partitions (2 shards per client).
func Fig6Spec(p Params) campaign.Spec {
	spec := campaign.Spec{Name: "fig6"}
	for _, key := range fig6Datasets {
		for _, att := range fig6Attacks {
			for _, def := range fig6Defenses {
				for _, s := range fig6Skews {
					c := campaign.NewCell(key, def, att, p)
					c.NonIIDS = s
					c.NonIIDShards = 2
					spec.Cells = append(spec.Cells, c)
				}
			}
		}
	}
	return spec
}

// Fig6 reproduces "Fig. 6: model accuracy comparison under various attacks
// and different degrees of non-IID": best accuracy with skew levels
// s ∈ {0.3, 0.5, 0.8}.
func Fig6(e *campaign.Engine, p Params) ([]*Table, error) {
	rep, err := e.Run(context.Background(), Fig6Spec(p))
	if err != nil {
		return nil, err
	}
	cur := cursor{results: rep.Results}
	var tables []*Table
	for _, key := range fig6Datasets {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		t := &Table{Title: fmt.Sprintf("Fig. 6 — non-IID best accuracy (%%), %s", ds.Title)}
		t.Header = []string{"Attack", "Defense"}
		for _, s := range fig6Skews {
			t.Header = append(t.Header, fmt.Sprintf("s=%.1f", s))
		}
		for _, att := range fig6Attacks {
			for _, def := range fig6Defenses {
				row := []string{att, def}
				for range fig6Skews {
					row = append(row, fmtAcc(cur.next().BestAccuracy))
				}
				t.AddRow(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
