package experiments

import (
	"fmt"

	"github.com/signguard/signguard/internal/fl"
)

// Fig6 reproduces "Fig. 6: model accuracy comparison under various attacks
// and different degrees of non-IID": best accuracy of five defenses under
// Sign-flip, LIE and ByzMean on the paper's synthetic non-IID partitions
// with skew levels s ∈ {0.3, 0.5, 0.8}, for the Fashion- and CIFAR-analogs.
func Fig6(p Params, log Reporter) ([]*Table, error) {
	skews := []float64{0.3, 0.5, 0.8}
	defenses, err := SelectRules("TrMean", "Multi-Krum", "Bulyan", "DnC", "SignGuard-Sim")
	if err != nil {
		return nil, err
	}
	attacks, err := SelectAttacks("Sign-flip", "LIE", "ByzMean")
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for _, key := range []string{"fashion", "cifar"} {
		ds, err := DatasetByKey(key)
		if err != nil {
			return nil, err
		}
		dataset, err := LoadDataset(ds, p)
		if err != nil {
			return nil, err
		}
		t := &Table{Title: fmt.Sprintf("Fig. 6 — non-IID best accuracy (%%), %s", ds.Title)}
		t.Header = []string{"Attack", "Defense"}
		for _, s := range skews {
			t.Header = append(t.Header, fmt.Sprintf("s=%.1f", s))
		}
		for _, att := range attacks {
			for _, def := range defenses {
				row := []string{att.Name, def.Name}
				for _, s := range skews {
					opt := DefaultCellOptions()
					opt.NonIID = &fl.NonIID{S: s, ShardsPerClient: 2}
					res, err := RunCell(dataset, ds, def, att, p, opt)
					if err != nil {
						return nil, err
					}
					row = append(row, fmtAcc(res.BestAccuracy))
					log.printf("fig6[%s] %s × %s s=%.1f → %.2f", key, def.Name, att.Name, s, res.BestAccuracy)
				}
				t.AddRow(row...)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
