package experiments

import (
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
)

// TestAttackTablesMatchCatalog pins this package's attack tables to the
// internal/attack catalog: every Table I column and every extra attack is
// backed by a catalog entry, and the instance the table builds reports the
// capabilities the catalog declares. A renamed or recapability'd attack
// fails here instead of silently diverging between the harness surfaces.
func TestAttackTablesMatchCatalog(t *testing.T) {
	for _, a := range append(Attacks(), ExtraAttacks()...) {
		spec, err := attack.SpecByName(a.Name)
		if err != nil {
			t.Errorf("table attack %q missing from the attack catalog: %v", a.Name, err)
			continue
		}
		att := a.New(1)
		if got := attack.Promote(att).NeedsHistory(); got != spec.Adaptive {
			t.Errorf("%s: table instance NeedsHistory() = %v, catalog declares Adaptive=%v", a.Name, got, spec.Adaptive)
		}
		if _, got := att.(attack.DataPoisoner); got != spec.Poisons {
			t.Errorf("%s: table instance DataPoisoner = %v, catalog declares Poisons=%v", a.Name, got, spec.Poisons)
		}
	}
}

// TestCampaignRegistryCoversCatalog proves every catalog attack is runnable
// through the campaign registry: one cell per catalog name must validate.
// An attack added to the catalog but never registered (the SignKeep gap
// this test originally caught) fails here.
func TestCampaignRegistryCoversCatalog(t *testing.T) {
	p := axesParams()
	spec := campaign.Spec{Name: "coverage"}
	for _, name := range attack.BuiltinNames() {
		spec.Cells = append(spec.Cells, campaign.NewCell("mnist", "Mean", name, p))
	}
	if err := Registry().Validate(spec); err != nil {
		t.Fatal(err)
	}
}
