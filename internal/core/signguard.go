package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/tensor"
)

// Config parameterizes a SignGuard aggregator. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// LowerBound and UpperBound are the norm-ratio thresholds L and R of
	// the norm filter (paper: L=0.1, R=3.0).
	LowerBound, UpperBound float64
	// CoordFraction is the random coordinate fraction for the sign
	// statistics (paper: 0.1).
	CoordFraction float64
	// Similarity selects the plain / -Sim / -Dist variant.
	Similarity Similarity
	// Algo selects the clustering algorithm of the sign filter.
	Algo ClusterAlgo
	// Bandwidth overrides the Mean-Shift bandwidth; <= 0 auto-estimates.
	Bandwidth float64
	// UseNormFilter enables the norm thresholding filter (Table III row 1).
	UseNormFilter bool
	// UseSignFilter enables the sign clustering filter (Table III row 2).
	UseSignFilter bool
	// UseNormClip enables norm clipping at the median norm during the final
	// aggregation (Table III row 3).
	UseNormClip bool
	// Seed drives the randomized coordinate selection and clustering.
	Seed int64
}

// DefaultConfig returns the paper's default SignGuard configuration
// (plain variant: sign statistics only, all components enabled).
func DefaultConfig() Config {
	return Config{
		LowerBound:    0.1,
		UpperBound:    3.0,
		CoordFraction: 0.1,
		Similarity:    NoSimilarity,
		Algo:          MeanShiftAlgo,
		UseNormFilter: true,
		UseSignFilter: true,
		UseNormClip:   true,
		Seed:          1,
	}
}

// Report captures one round's filtering decisions, used to compute the
// paper's Table II selection rates and to debug filters.
type Report struct {
	// NormKept / SignKept are the indices accepted by each filter
	// (nil when the filter is disabled).
	NormKept []int
	SignKept []int
	// Selected is the final trusted set S' = S1 ∩ S2.
	Selected []int
	// MedianNorm is the reference magnitude M of the round.
	MedianNorm float64
}

// SignGuard is the paper's robust gradient aggregation rule. It implements
// aggregate.Rule so it can be dropped in anywhere the baseline GARs are
// used. The aggregator is stateful across rounds: it remembers the previous
// aggregate as the similarity reference. It is not safe for concurrent use.
type SignGuard struct {
	cfg     Config
	rng     *rand.Rand
	filters []Filter

	prevAgg    []float64
	lastReport *Report
}

var _ aggregate.Rule = (*SignGuard)(nil)

// New builds a SignGuard aggregator from the configuration.
func New(cfg Config) (*SignGuard, error) {
	if !cfg.UseNormFilter && !cfg.UseSignFilter && !cfg.UseNormClip {
		return nil, errors.New("core: SignGuard needs at least one component enabled")
	}
	if cfg.UseNormFilter && (cfg.LowerBound < 0 || cfg.UpperBound <= cfg.LowerBound) {
		return nil, fmt.Errorf("core: norm bounds [%v,%v] invalid", cfg.LowerBound, cfg.UpperBound)
	}
	if cfg.UseSignFilter && (cfg.CoordFraction <= 0 || cfg.CoordFraction > 1) {
		return nil, fmt.Errorf("core: coordinate fraction %v out of (0,1]", cfg.CoordFraction)
	}
	sg := &SignGuard{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.UseNormFilter {
		sg.filters = append(sg.filters, NewNormThresholdFilter(cfg.LowerBound, cfg.UpperBound))
	}
	if cfg.UseSignFilter {
		f := NewSignClusterFilter(cfg.CoordFraction, cfg.Similarity)
		f.Algo = cfg.Algo
		if f.Algo == 0 {
			f.Algo = MeanShiftAlgo
		}
		f.Bandwidth = cfg.Bandwidth
		sg.filters = append(sg.filters, f)
	}
	return sg, nil
}

// NewPlain returns SignGuard with the paper's default configuration.
func NewPlain(seed int64) *SignGuard {
	cfg := DefaultConfig()
	cfg.Seed = seed
	sg, err := New(cfg)
	if err != nil { // cannot happen: DefaultConfig is valid
		panic(err)
	}
	return sg
}

// NewSim returns SignGuard-Sim (cosine-similarity feature).
func NewSim(seed int64) *SignGuard {
	cfg := DefaultConfig()
	cfg.Similarity = CosineSimilarity
	cfg.Seed = seed
	sg, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return sg
}

// NewDist returns SignGuard-Dist (Euclidean-distance feature).
func NewDist(seed int64) *SignGuard {
	cfg := DefaultConfig()
	cfg.Similarity = DistanceSimilarity
	cfg.Seed = seed
	sg, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return sg
}

// Name implements aggregate.Rule.
func (sg *SignGuard) Name() string {
	switch sg.cfg.Similarity {
	case CosineSimilarity:
		return "SignGuard-Sim"
	case DistanceSimilarity:
		return "SignGuard-Dist"
	default:
		return "SignGuard"
	}
}

// LastReport returns the filtering report of the most recent round, or nil
// before the first aggregation.
func (sg *SignGuard) LastReport() *Report { return sg.lastReport }

// Reset clears the cross-round state (previous aggregate and report).
func (sg *SignGuard) Reset() {
	sg.prevAgg = nil
	sg.lastReport = nil
}

// Aggregate implements aggregate.Rule: it runs the enabled filters, takes
// the intersection of their accepted sets, and returns the (optionally
// norm-clipped) mean of the trusted gradients.
func (sg *SignGuard) Aggregate(grads [][]float64) (*aggregate.Result, error) {
	ctx, err := NewFilterContext(grads, sg.prevAgg, sg.rng)
	if err != nil {
		return nil, err
	}
	report := &Report{MedianNorm: ctx.MedianNorm}

	selected := allIndices(len(grads))
	for _, f := range sg.filters {
		kept, err := f.Apply(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: filter %s: %w", f.Name(), err)
		}
		switch f.(type) {
		case *NormThresholdFilter:
			report.NormKept = kept
		case *SignClusterFilter:
			report.SignKept = kept
		}
		selected = intersect(selected, kept)
	}
	if len(selected) == 0 {
		// The filters disagree completely. Rather than failing the round —
		// which would stall training — fall back to the most conservative
		// single filter output available, preferring the sign filter.
		switch {
		case len(report.SignKept) > 0:
			selected = append([]int(nil), report.SignKept...)
		case len(report.NormKept) > 0:
			selected = append([]int(nil), report.NormKept...)
		default:
			return nil, errors.New("core: all gradients filtered out")
		}
	}
	sort.Ints(selected)
	report.Selected = selected

	// Aggregation (Algorithm 2, step 3): mean of the trusted gradients,
	// each clipped to the median norm.
	sum := make([]float64, len(grads[0]))
	for _, i := range selected {
		g := grads[i]
		scale := 1.0
		if sg.cfg.UseNormClip && ctx.Norms[i] > ctx.MedianNorm && ctx.Norms[i] > 0 {
			scale = ctx.MedianNorm / ctx.Norms[i]
		}
		if err := tensor.Axpy(sum, scale, g); err != nil {
			return nil, err
		}
	}
	tensor.ScaleInPlace(sum, 1/float64(len(selected)))

	sg.prevAgg = tensor.Clone(sum)
	sg.lastReport = report
	return &aggregate.Result{Gradient: sum, Selected: selected}, nil
}

// intersect returns the sorted intersection of two ascending index sets.
func intersect(a, b []int) []int {
	set := make(map[int]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	var out []int
	for _, x := range b {
		if _, ok := set[x]; ok {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
