package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// benignGrads returns n gradients that look like honest stochastic
// gradients: a shared signal direction plus per-client noise.
func benignGrads(seed int64, n, d int) [][]float64 {
	rng := tensor.NewRNG(seed)
	signal := tensor.RandNormal(rng, d, 0, 1)
	out := make([][]float64, n)
	for i := range out {
		g := tensor.Clone(signal)
		for j := range g {
			g[j] += 1.5 * rng.NormFloat64()
		}
		out[i] = g
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseNormFilter, cfg.UseSignFilter, cfg.UseNormClip = false, false, false
	if _, err := New(cfg); err == nil {
		t.Error("accepted config with no components")
	}
	cfg = DefaultConfig()
	cfg.LowerBound, cfg.UpperBound = 2, 1
	if _, err := New(cfg); err == nil {
		t.Error("accepted inverted norm bounds")
	}
	cfg = DefaultConfig()
	cfg.CoordFraction = 2
	if _, err := New(cfg); err == nil {
		t.Error("accepted coordinate fraction > 1")
	}
}

func TestNames(t *testing.T) {
	if NewPlain(1).Name() != "SignGuard" {
		t.Error("plain name")
	}
	if NewSim(1).Name() != "SignGuard-Sim" {
		t.Error("sim name")
	}
	if NewDist(1).Name() != "SignGuard-Dist" {
		t.Error("dist name")
	}
}

func TestNormThresholdFilter(t *testing.T) {
	grads := [][]float64{{1, 0}, {1.2, 0}, {0.9, 0}, {100, 0}, {0.001, 0}}
	ctx, err := NewFilterContext(grads, nil, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	f := NewNormThresholdFilter(0.1, 3.0)
	kept, err := f.Apply(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(kept) != 3 {
		t.Fatalf("kept %v", kept)
	}
	for _, i := range kept {
		if !want[i] {
			t.Errorf("kept outlier %d", i)
		}
	}
	// Invalid bounds rejected.
	bad := NewNormThresholdFilter(3, 1)
	if _, err := bad.Apply(ctx); err == nil {
		t.Error("accepted inverted bounds")
	}
}

func TestNormThresholdAllZero(t *testing.T) {
	grads := [][]float64{{0, 0}, {0, 0}, {1, 1}}
	ctx, err := NewFilterContext(grads, nil, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	kept, err := NewNormThresholdFilter(0.1, 3).Apply(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range kept {
		if i == 2 {
			t.Error("kept the only non-zero gradient when the median is zero")
		}
	}
}

func TestSignClusterFilterSeparatesLIE(t *testing.T) {
	benign := benignGrads(3, 40, 400)
	// LIE-style gradients: coordinate-wise mean minus z·std.
	mean, std, err := stats.CoordinateMeanStd(benign)
	if err != nil {
		t.Fatal(err)
	}
	grads := tensor.CloneAll(benign)
	for k := 0; k < 10; k++ {
		gm := make([]float64, len(mean))
		for j := range gm {
			gm[j] = mean[j] - 1.2*std[j]
		}
		grads = append(grads, gm)
	}
	ctx, err := NewFilterContext(grads, nil, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	f := NewSignClusterFilter(0.5, NoSimilarity)
	kept, err := f.Apply(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range kept {
		if i >= 40 {
			t.Errorf("sign filter kept LIE gradient %d", i)
		}
	}
	if len(kept) < 25 {
		t.Errorf("sign filter kept only %d honest gradients", len(kept))
	}
}

func TestSignClusterFeatures(t *testing.T) {
	grads := benignGrads(7, 10, 100)
	ctx, err := NewFilterContext(grads, nil, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sim := range []Similarity{NoSimilarity, CosineSimilarity, DistanceSimilarity} {
		f := NewSignClusterFilter(0.2, sim)
		feats, err := f.Features(ctx)
		if err != nil {
			t.Fatalf("%v: %v", sim, err)
		}
		wantDim := 3
		if sim != NoSimilarity {
			wantDim = 4
		}
		for _, row := range feats {
			if len(row) != wantDim {
				t.Fatalf("%v: feature dim %d, want %d", sim, len(row), wantDim)
			}
			if s := row[0] + row[1] + row[2]; math.Abs(s-1) > 1e-9 {
				t.Errorf("%v: sign stats sum to %v", sim, s)
			}
		}
	}
}

func TestSignGuardFiltersObviousAttack(t *testing.T) {
	benign := benignGrads(11, 40, 300)
	grads := tensor.CloneAll(benign)
	for k := 0; k < 10; k++ {
		grads = append(grads, tensor.Scale(benign[k], -1)) // sign flip
	}
	sg := NewSim(3)
	res, err := sg.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	report := sg.LastReport()
	if report == nil {
		t.Fatal("no report after aggregation")
	}
	var byzKept int
	for _, i := range res.Selected {
		if i >= 40 {
			byzKept++
		}
	}
	if byzKept > 2 {
		t.Errorf("SignGuard-Sim kept %d of 10 sign-flipped gradients", byzKept)
	}
	if !tensor.AllFinite(res.Gradient) {
		t.Error("non-finite aggregate")
	}
}

func TestSignGuardNormClipBoundsOutput(t *testing.T) {
	benign := benignGrads(13, 30, 100)
	grads := tensor.CloneAll(benign)
	// A huge-norm gradient that still has benign-like sign stats: scaled copy.
	grads = append(grads, tensor.Scale(benign[0], 50))
	sg := NewPlain(1)
	res, err := sg.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	norms := make([]float64, len(grads))
	for i, g := range grads {
		norms[i] = tensor.Norm(g)
	}
	med, _ := stats.Median(norms)
	// With clipping at the median norm, the aggregate cannot exceed it.
	if tensor.Norm(res.Gradient) > med*(1+1e-9) {
		t.Errorf("aggregate norm %v exceeds median %v", tensor.Norm(res.Gradient), med)
	}
	// The scaled gradient violates the upper bound R=3 and must be gone.
	for _, i := range res.Selected {
		if i == 30 {
			t.Error("norm filter kept the 50x gradient")
		}
	}
}

func TestSignGuardStateAcrossRounds(t *testing.T) {
	sg := NewSim(9)
	grads := benignGrads(17, 20, 80)
	if _, err := sg.Aggregate(grads); err != nil {
		t.Fatal(err)
	}
	first := sg.LastReport()
	if _, err := sg.Aggregate(grads); err != nil {
		t.Fatal(err)
	}
	if sg.LastReport() == first {
		t.Error("report not refreshed between rounds")
	}
	sg.Reset()
	if sg.LastReport() != nil {
		t.Error("Reset did not clear the report")
	}
}

func TestSignGuardComponentToggles(t *testing.T) {
	benign := benignGrads(19, 25, 120)
	grads := tensor.CloneAll(benign)
	grads = append(grads, tensor.RandNormal(tensor.NewRNG(1), 120, 0, 30))

	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"threshold-only", func(c *Config) { c.UseSignFilter = false; c.UseNormClip = false }},
		{"cluster-only", func(c *Config) { c.UseNormFilter = false; c.UseNormClip = false }},
		{"clip-only", func(c *Config) { c.UseNormFilter = false; c.UseSignFilter = false }},
	} {
		cfg := DefaultConfig()
		tc.mod(&cfg)
		sg, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := sg.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tensor.AllFinite(res.Gradient) {
			t.Errorf("%s: non-finite aggregate", tc.name)
		}
	}
}

func TestSignGuardKMeansVariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algo = KMeansAlgo
	sg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	benign := benignGrads(23, 30, 200)
	grads := tensor.CloneAll(benign)
	// Identical attack vectors — the case the paper says 2-means handles.
	lie := attack.NewLIE(1.0)
	ctx := &attack.Context{Benign: benign[:22], ByzOwn: benign[22:], Rng: tensor.NewRNG(4)}
	malicious, err := lie.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	grads = append(grads[:22], malicious...)
	res, err := sg.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range res.Selected {
		if i >= 22 {
			t.Errorf("KMeans variant kept malicious gradient %d", i)
		}
	}
}

// Property: SignGuard's selected set is always non-empty, all indices are
// valid, and the aggregate is finite, for arbitrary mixtures of benign and
// scaled gradients.
func TestSignGuardRobustnessQuick(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		scale := 1 + float64(scaleRaw%50)
		benign := benignGrads(seed, 15, 60)
		grads := tensor.CloneAll(benign)
		grads = append(grads, tensor.Scale(benign[0], -scale))
		sg := NewPlain(seed)
		res, err := sg.Aggregate(grads)
		if err != nil {
			return false
		}
		if len(res.Selected) == 0 || len(res.Selected) > len(grads) {
			return false
		}
		for _, i := range res.Selected {
			if i < 0 || i >= len(grads) {
				return false
			}
		}
		return tensor.AllFinite(res.Gradient)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: with clipping enabled the aggregate norm never exceeds the
// median input norm (the clipping bound), since it is a mean of vectors
// that are individually capped there.
func TestSignGuardClipBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		grads := benignGrads(seed, 12, 40)
		sg := NewPlain(seed + 1)
		res, err := sg.Aggregate(grads)
		if err != nil {
			return false
		}
		norms := make([]float64, len(grads))
		for i, g := range grads {
			norms[i] = tensor.Norm(g)
		}
		med, _ := stats.Median(norms)
		return tensor.Norm(res.Gradient) <= med*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIntersect(t *testing.T) {
	got := intersect([]int{1, 3, 5, 7}, []int{3, 7, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("intersect = %v", got)
	}
	if len(intersect(nil, []int{1})) != 0 {
		t.Error("intersect with empty set should be empty")
	}
}
