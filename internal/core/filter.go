// Package core implements SignGuard, the paper's contribution: a robust
// gradient aggregation framework that screens the gradients received in a
// federated-learning round through multiple collaborative filters — a
// norm-based thresholding filter and a sign-statistics clustering filter —
// and aggregates the intersection of their outputs with norm clipping
// (Algorithm 2, Fig. 3).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/signguard/signguard/internal/stats"
)

// FilterContext is the shared per-round state the filters operate on.
type FilterContext struct {
	// Grads holds the received gradients (one per client, anonymous).
	Grads [][]float64
	// Norms caches the l2 norm of each gradient.
	Norms []float64
	// MedianNorm is the median of Norms — the reference magnitude M.
	MedianNorm float64
	// PrevAggregate is the previous round's aggregated gradient, used as
	// the "correct" reference by the similarity features; nil in the first
	// round.
	PrevAggregate []float64
	// Rng drives the randomized coordinate selection and clustering seeds.
	Rng *rand.Rand
}

// NewFilterContext precomputes the round state for the given gradients.
func NewFilterContext(grads [][]float64, prevAgg []float64, rng *rand.Rand) (*FilterContext, error) {
	if len(grads) == 0 {
		return nil, errors.New("core: no gradients")
	}
	d := len(grads[0])
	norms := make([]float64, len(grads))
	for i, g := range grads {
		if len(g) != d {
			return nil, fmt.Errorf("core: gradient %d has %d dims, want %d", i, len(g), d)
		}
		var s float64
		for _, x := range g {
			s += x * x
		}
		norms[i] = math.Sqrt(s)
	}
	med, err := stats.Median(norms)
	if err != nil {
		return nil, err
	}
	return &FilterContext{
		Grads:         grads,
		Norms:         norms,
		MedianNorm:    med,
		PrevAggregate: prevAgg,
		Rng:           rng,
	}, nil
}

// Filter inspects the round's gradients and returns the indices it trusts.
// SignGuard runs several filters and keeps the intersection.
type Filter interface {
	// Name returns a short identifier for reports.
	Name() string
	// Apply returns the indices of the gradients the filter accepts,
	// in ascending order.
	Apply(ctx *FilterContext) ([]int, error)
}

// NormThresholdFilter is Algorithm 2, step 1: accept gradient i iff
// L ≤ ||g_i|| / M ≤ R, where M is the median norm. The paper uses a loose
// lower bound (small gradients do little harm) and a strict upper bound
// (a significantly large gradient is malicious): L=0.1, R=3.0.
type NormThresholdFilter struct {
	Lower, Upper float64
}

var _ Filter = (*NormThresholdFilter)(nil)

// NewNormThresholdFilter returns the norm filter with bounds [lower, upper].
func NewNormThresholdFilter(lower, upper float64) *NormThresholdFilter {
	return &NormThresholdFilter{Lower: lower, Upper: upper}
}

// Name implements Filter.
func (*NormThresholdFilter) Name() string { return "norm-threshold" }

// Apply implements Filter.
func (f *NormThresholdFilter) Apply(ctx *FilterContext) ([]int, error) {
	if f.Lower < 0 || f.Upper <= 0 || f.Lower >= f.Upper {
		return nil, fmt.Errorf("core: norm threshold bounds [%v, %v] invalid", f.Lower, f.Upper)
	}
	m := ctx.MedianNorm
	if m == 0 {
		// All-zero median norm: every gradient with zero norm is "at the
		// median"; accept those, reject the rest (they are outliers by
		// construction).
		var keep []int
		for i, n := range ctx.Norms {
			if n == 0 {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			return nil, errors.New("core: norm filter rejected all gradients (zero median)")
		}
		return keep, nil
	}
	keep := make([]int, 0, len(ctx.Norms))
	for i, n := range ctx.Norms {
		ratio := n / m
		if ratio >= f.Lower && ratio <= f.Upper {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, errors.New("core: norm filter rejected all gradients")
	}
	return keep, nil
}
