package core

import (
	"errors"
	"fmt"

	"github.com/signguard/signguard/internal/cluster"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// Similarity selects the optional extra feature appended to the sign
// statistics (Section IV-B): the plain SignGuard uses none; SignGuard-Sim
// adds the cosine similarity to a reference gradient; SignGuard-Dist adds
// the Euclidean distance to it.
type Similarity int

const (
	// NoSimilarity: features are the sign statistics only (plain SignGuard).
	NoSimilarity Similarity = iota + 1
	// CosineSimilarity appends cos(g_i, reference) (SignGuard-Sim).
	CosineSimilarity
	// DistanceSimilarity appends ||g_i − reference|| normalized by the
	// median such distance (SignGuard-Dist).
	DistanceSimilarity
)

func (s Similarity) String() string {
	switch s {
	case NoSimilarity:
		return "none"
	case CosineSimilarity:
		return "cosine"
	case DistanceSimilarity:
		return "distance"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// ClusterAlgo selects the unsupervised model of the sign filter.
type ClusterAlgo int

const (
	// MeanShiftAlgo adapts the number of clusters (paper default).
	MeanShiftAlgo ClusterAlgo = iota + 1
	// KMeansAlgo uses 2-means — sufficient when all malicious clients send
	// an identical vector.
	KMeansAlgo
)

func (c ClusterAlgo) String() string {
	switch c {
	case MeanShiftAlgo:
		return "mean-shift"
	case KMeansAlgo:
		return "kmeans"
	default:
		return fmt.Sprintf("ClusterAlgo(%d)", int(c))
	}
}

// SignClusterFilter is Algorithm 2, step 2: compute sign statistics of each
// gradient on a random coordinate subset (optionally augmented with a
// similarity feature), cluster the feature rows, and trust the largest
// cluster.
type SignClusterFilter struct {
	// CoordFraction is the fraction of coordinates sampled for the sign
	// statistics (paper default 0.1).
	CoordFraction float64
	// Similarity selects the optional extra feature.
	Similarity Similarity
	// Algo selects the clustering algorithm (default MeanShiftAlgo).
	Algo ClusterAlgo
	// Bandwidth overrides the Mean-Shift bandwidth; <= 0 auto-estimates.
	Bandwidth float64
}

var _ Filter = (*SignClusterFilter)(nil)

// NewSignClusterFilter returns the sign-statistics clustering filter with
// the paper's defaults.
func NewSignClusterFilter(coordFraction float64, sim Similarity) *SignClusterFilter {
	return &SignClusterFilter{
		CoordFraction: coordFraction,
		Similarity:    sim,
		Algo:          MeanShiftAlgo,
	}
}

// Name implements Filter.
func (f *SignClusterFilter) Name() string {
	return "sign-cluster(" + f.Similarity.String() + ")"
}

// Features computes the per-gradient feature rows the filter clusters.
// Exposed for analysis, tests and the Fig. 2 experiment.
func (f *SignClusterFilter) Features(ctx *FilterContext) ([][]float64, error) {
	if len(ctx.Grads) == 0 {
		return nil, errors.New("core: no gradients for features")
	}
	d := len(ctx.Grads[0])
	frac := f.CoordFraction
	if frac <= 0 || frac > 1 {
		frac = 0.1
	}
	idx, err := stats.SampleCoordinates(ctx.Rng, d, frac)
	if err != nil {
		return nil, err
	}

	sim := f.Similarity
	if sim == 0 {
		sim = NoSimilarity
	}
	ref := ctx.PrevAggregate
	if sim != NoSimilarity && ref == nil {
		// First round: no previous aggregate. The paper suggests pairwise
		// medians as the fallback "correct" gradient; the coordinate-wise
		// median is the equivalent robust reference and cheaper.
		ref, err = stats.CoordinateMedian(ctx.Grads)
		if err != nil {
			return nil, err
		}
	}

	features := make([][]float64, len(ctx.Grads))
	dists := make([]float64, len(ctx.Grads))
	for i, g := range ctx.Grads {
		ss, err := stats.ComputeSignStatsAt(g, idx)
		if err != nil {
			return nil, err
		}
		row := ss.Vector()
		switch sim {
		case CosineSimilarity:
			c, err := stats.CosineSimilarity(g, ref)
			if err != nil {
				return nil, err
			}
			// Map cosine from [-1,1] onto [0,1] so every feature lives on
			// the same fixed scale as the sign proportions. Data-dependent
			// rescaling (e.g. z-scoring) is deliberately avoided: it
			// amplifies columns that carry no signal, and a cohort of
			// identical malicious vectors can then out-cluster the benign
			// majority.
			row = append(row, (c+1)/2)
		case DistanceSimilarity:
			dist, err := tensor.Distance(g, ref)
			if err != nil {
				return nil, err
			}
			dists[i] = dist
			row = append(row, dist) // normalized below once the median is known
		}
		features[i] = row
	}
	if sim == DistanceSimilarity {
		med, err := stats.Median(dists)
		if err != nil {
			return nil, err
		}
		if med <= 0 {
			med = 1
		}
		for i := range features {
			last := len(features[i]) - 1
			// Distance ratio to the median, clipped and mapped to [0,1]:
			// benign gradients sit near 1/3, outliers saturate at 1.
			r := features[i][last] / med
			if r > 3 {
				r = 3
			}
			features[i][last] = r / 3
		}
	}
	// A non-finite gradient leaks NaN into the similarity features (the
	// sign proportions themselves are robust — NaN counts as a zero sign —
	// but cosine and distance are not), and NaN feature rows poison every
	// clustering algorithm downstream. Fail here, where the offending
	// gradient index is still known.
	for i, row := range features {
		if !tensor.AllFinite(row) {
			return nil, fmt.Errorf("core: non-finite feature row for gradient %d (non-finite input gradient)", i)
		}
	}
	return features, nil
}

// Apply implements Filter.
func (f *SignClusterFilter) Apply(ctx *FilterContext) ([]int, error) {
	features, err := f.Features(ctx)
	if err != nil {
		return nil, err
	}
	var res *cluster.Result
	switch f.Algo {
	case KMeansAlgo:
		km := cluster.NewKMeans(2)
		res, err = km.Cluster(ctx.Rng, features)
	default:
		ms := cluster.NewMeanShift(f.Bandwidth)
		// Merging modes within a full bandwidth keeps a homogeneous benign
		// majority from fragmenting into several small clusters, which an
		// unanimous malicious cohort (a single ultra-tight mode) could
		// otherwise outnumber.
		ms.MergeRadiusFactor = 1.0
		res, err = ms.Cluster(features)
	}
	if err != nil {
		return nil, fmt.Errorf("core: sign clustering: %w", err)
	}
	// Check the result before dereferencing it: a clusterer must never
	// return (nil, nil), but a defense layer does not bet the server's
	// liveness on that contract (KMeans once did exactly that when every
	// restart's inertia went NaN).
	if res == nil {
		return nil, errors.New("core: clustering returned no result")
	}
	largest := res.Largest()
	if largest < 0 {
		return nil, errors.New("core: clustering produced no clusters")
	}
	return res.Members(largest), nil
}
