package core

import (
	"math"
	"testing"

	"github.com/signguard/signguard/internal/tensor"
)

// hostileGrads returns a mostly-benign cohort with one NaN-poisoned
// gradient — the cheapest remote attack against the serving path.
func hostileGrads(n, d int, poison float64) [][]float64 {
	rng := tensor.NewRNG(1)
	grads := make([][]float64, n)
	for i := range grads {
		g := make([]float64, d)
		for j := range g {
			g[j] = rng.NormFloat64()
		}
		grads[i] = g
	}
	grads[n-1][0] = poison
	return grads
}

// Regression for the remote-DoS crash: a single NaN coordinate made every
// KMeans restart's inertia NaN, Cluster returned (nil, nil), and Apply
// nil-dereferenced on res.Largest(). The filter must now return an error.
func TestSignClusterFilterKMeansNaNGradientNoPanic(t *testing.T) {
	for _, sim := range []Similarity{NoSimilarity, CosineSimilarity, DistanceSimilarity} {
		for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			grads := hostileGrads(8, 32, poison)
			ctx, err := NewFilterContext(grads, nil, tensor.NewRNG(2))
			if err != nil {
				continue // context refused the buffer: also acceptable
			}
			f := NewSignClusterFilter(0.5, sim)
			f.Algo = KMeansAlgo
			kept, err := f.Apply(ctx) // must not panic
			if err != nil {
				continue
			}
			// If the filter kept anything, the poisoned gradient must not
			// be in the kept set via a NaN feature row sneaking through.
			for _, i := range kept {
				if !tensor.AllFinite(grads[i]) {
					t.Errorf("sim=%v poison=%v: filter kept non-finite gradient %d", sim, poison, i)
				}
			}
		}
	}
}

// The same hostile buffer through the full SignGuard rule (every variant ×
// both clustering algorithms): no panic, and any successful aggregate is
// finite.
func TestSignGuardHostileBufferNoPanic(t *testing.T) {
	for _, algo := range []ClusterAlgo{MeanShiftAlgo, KMeansAlgo} {
		for _, sim := range []Similarity{NoSimilarity, CosineSimilarity, DistanceSimilarity} {
			for _, poison := range []float64{math.NaN(), math.Inf(1)} {
				cfg := DefaultConfig()
				cfg.Similarity = sim
				cfg.Algo = algo
				sg, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sg.Aggregate(hostileGrads(10, 64, poison))
				if err != nil {
					continue // refusing the buffer is the expected outcome
				}
				if !tensor.AllFinite(res.Gradient) {
					t.Errorf("algo=%v sim=%v poison=%v: non-finite aggregate", algo, sim, poison)
				}
			}
		}
	}
}
