package core_test

import (
	"fmt"

	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/tensor"
)

// ExampleSignGuard_Aggregate shows one SignGuard round: forty benign
// gradients plus ten colluding LIE-style gradients arrive; the filter
// keeps the benign ones and clips-and-averages them.
func ExampleSignGuard_Aggregate() {
	rng := tensor.NewRNG(7)
	const d = 200

	// Benign gradients: shared signal + per-client noise.
	signal := tensor.RandNormal(rng, d, 0, 1)
	grads := make([][]float64, 0, 50)
	for i := 0; i < 40; i++ {
		g := tensor.Clone(signal)
		for j := range g {
			g[j] += rng.NormFloat64()
		}
		grads = append(grads, g)
	}
	// Malicious cohort: mean − 1.5·std per coordinate (a strong LIE).
	mean, std := make([]float64, d), make([]float64, d)
	for j := 0; j < d; j++ {
		for _, g := range grads {
			mean[j] += g[j] / 40
		}
		for _, g := range grads {
			dev := g[j] - mean[j]
			std[j] += dev * dev / 40
		}
	}
	for i := 0; i < 10; i++ {
		gm := make([]float64, d)
		for j := range gm {
			gm[j] = mean[j] - 1.5*tensor.Norm([]float64{std[j]})
		}
		grads = append(grads, gm)
	}

	sg := core.NewPlain(1)
	res, err := sg.Aggregate(grads)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var malicious int
	for _, idx := range res.Selected {
		if idx >= 40 {
			malicious++
		}
	}
	fmt.Printf("selected %d gradients, %d malicious\n", len(res.Selected), malicious)
	// Output: selected 40 gradients, 0 malicious
}
