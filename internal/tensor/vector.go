// Package tensor provides the dense float64 vector and matrix primitives
// used throughout the SignGuard reproduction: gradient vectors exchanged
// between federated-learning clients and the parameter server, feature rows
// consumed by the clustering filters, and the weight matrices of the
// neural-network substrate.
//
// All operations are allocation-conscious: the hot aggregation paths reuse
// destination slices wherever possible, and in-place variants are provided
// for the inner loops of training.
package tensor

import (
	"errors"
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/parallel"
)

// ErrDimensionMismatch is returned when two vectors or matrices that must
// share a shape do not.
var ErrDimensionMismatch = errors.New("tensor: dimension mismatch")

// Zeros returns a new zero vector of length n.
func Zeros(n int) []float64 {
	return make([]float64, n)
}

// Clone returns a copy of v. A nil input yields a nil output.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// CloneAll deep-copies a slice of vectors.
func CloneAll(vs [][]float64) [][]float64 {
	if vs == nil {
		return nil
	}
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = Clone(v)
	}
	return out
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add returns a+b as a new vector.
func Add(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: Add(%d, %d)", ErrDimensionMismatch, len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// AddInPlace sets dst = dst + src.
func AddInPlace(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: AddInPlace(%d, %d)", ErrDimensionMismatch, len(dst), len(src))
	}
	for i := range dst {
		dst[i] += src[i]
	}
	return nil
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: Sub(%d, %d)", ErrDimensionMismatch, len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// SubInPlace sets dst = dst - src.
func SubInPlace(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: SubInPlace(%d, %d)", ErrDimensionMismatch, len(dst), len(src))
	}
	for i := range dst {
		dst[i] -= src[i]
	}
	return nil
}

// Scale returns c*v as a new vector.
func Scale(v []float64, c float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// ScaleInPlace sets v = c*v.
func ScaleInPlace(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Axpy sets dst = dst + alpha*x (the BLAS "axpy" primitive).
func Axpy(dst []float64, alpha float64, x []float64) error {
	if len(dst) != len(x) {
		return fmt.Errorf("%w: Axpy(%d, %d)", ErrDimensionMismatch, len(dst), len(x))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
	return nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: Dot(%d, %d)", ErrDimensionMismatch, len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm returns the Euclidean (l2) norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SquaredDistance returns ||a-b||^2.
func SquaredDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: SquaredDistance(%d, %d)", ErrDimensionMismatch, len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s, nil
}

// Distance returns the Euclidean distance ||a-b||.
func Distance(a, b []float64) (float64, error) {
	s, err := a2b2(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(s), nil
}

func a2b2(a, b []float64) (float64, error) {
	return SquaredDistance(a, b)
}

// Mean computes the element-wise mean of the given vectors. All vectors must
// share a length and at least one vector must be supplied.
func Mean(vs [][]float64) ([]float64, error) {
	return MeanWorkers(vs, 1)
}

// MeanWorkers is Mean with its coordinate loop split across workers.
// Each coordinate is owned by exactly one worker and accumulates over the
// vectors in input order — the same association as the sequential path —
// so the result is byte-identical for any worker count.
func MeanWorkers(vs [][]float64, workers int) ([]float64, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: Mean of empty set")
	}
	d := len(vs[0])
	for _, v := range vs {
		if len(v) != d {
			return nil, fmt.Errorf("%w: Mean row has length %d, want %d", ErrDimensionMismatch, len(v), d)
		}
	}
	out := make([]float64, d)
	inv := 1.0 / float64(len(vs))
	parallel.For(workers, d, func(_, start, end int) {
		for _, v := range vs {
			for j := start; j < end; j++ {
				out[j] += v[j]
			}
		}
		for j := start; j < end; j++ {
			out[j] *= inv
		}
	})
	return out, nil
}

// WeightedMean computes sum_i w[i]*vs[i] / sum_i w[i].
func WeightedMean(vs [][]float64, w []float64) ([]float64, error) {
	return WeightedMeanWorkers(vs, w, 1)
}

// WeightedMeanWorkers is WeightedMean with its coordinate loop split
// across workers, preserving the sequential per-coordinate accumulation
// order (see MeanWorkers).
func WeightedMeanWorkers(vs [][]float64, w []float64, workers int) ([]float64, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: WeightedMean of empty set")
	}
	if len(vs) != len(w) {
		return nil, fmt.Errorf("%w: WeightedMean %d vectors, %d weights", ErrDimensionMismatch, len(vs), len(w))
	}
	d := len(vs[0])
	var total float64
	for i, v := range vs {
		if len(v) != d {
			return nil, fmt.Errorf("%w: WeightedMean row has length %d, want %d", ErrDimensionMismatch, len(v), d)
		}
		total += w[i]
	}
	if total == 0 {
		return nil, errors.New("tensor: WeightedMean with zero total weight")
	}
	out := make([]float64, d)
	inv := 1.0 / total
	parallel.For(workers, d, func(_, start, end int) {
		for i, v := range vs {
			wi := w[i]
			for j := start; j < end; j++ {
				out[j] += wi * v[j]
			}
		}
		for j := start; j < end; j++ {
			out[j] *= inv
		}
	})
	return out, nil
}

// ClipNorm scales v in place so that its l2 norm does not exceed bound.
// It returns the scaling factor applied (1 when no clipping occurred).
// Non-positive bounds leave v untouched.
func ClipNorm(v []float64, bound float64) float64 {
	if bound <= 0 {
		return 1
	}
	n := Norm(v)
	if n <= bound || n == 0 {
		return 1
	}
	c := bound / n
	ScaleInPlace(v, c)
	return c
}

// Sign returns the element-wise sign of v: +1, -1 or 0.
func Sign(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		switch {
		case x > 0:
			out[i] = 1
		case x < 0:
			out[i] = -1
		}
	}
	return out
}

// MinMax returns the smallest and largest element of v.
// It panics on an empty vector, as there is no meaningful answer.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("tensor: MinMax of empty vector")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// AllFinite reports whether every element of v is finite (no NaN or Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same length and all elements are
// within tol of each other.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
