package tensor

import "math/rand"

// NewRNG returns a deterministic pseudo-random source for the given seed.
// Every stochastic component in this repository takes an explicit *rand.Rand
// so that simulations are reproducible and there is no mutable global state.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// RandNormal fills a new length-n vector with N(mean, std²) samples.
func RandNormal(rng *rand.Rand, n int, mean, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + std*rng.NormFloat64()
	}
	return out
}

// RandUniform fills a new length-n vector with Uniform[lo, hi) samples.
func RandUniform(rng *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float64()
	}
	return out
}

// RandUnitVector returns a uniformly random direction in R^n.
func RandUnitVector(rng *rand.Rand, n int) []float64 {
	for {
		v := RandNormal(rng, n, 0, 1)
		if norm := Norm(v); norm > 1e-12 {
			ScaleInPlace(v, 1/norm)
			return v
		}
	}
}

// SampleIndices returns k distinct indices drawn uniformly from [0, n),
// in random order. It panics if k > n or either argument is negative.
func SampleIndices(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("tensor: SampleIndices arguments out of range")
	}
	perm := rng.Perm(n)
	return perm[:k]
}
