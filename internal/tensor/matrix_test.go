package tensor

import (
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Errorf("Set/At mismatch: %v", m.Data)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Errorf("Row(1) = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares data")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows = %+v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows accepted ragged rows")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("FromRows(nil) = %+v, %v", empty, err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := m.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(y, []float64{-1, -1, -1}, 1e-12) {
		t.Errorf("MulVec = %v", y)
	}
	yt, err := m.MulVecT([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(yt, []float64{9, 12}, 1e-12) {
		t.Errorf("MulVecT = %v", yt)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("MulVec accepted wrong length")
	}
	if _, err := m.MulVecT([]float64{1}); err == nil {
		t.Error("MulVecT accepted wrong length")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	if !Equal(c.Data, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", c.Data, want)
	}
	if _, err := MatMul(a, NewMatrix(3, 2)); err == nil {
		t.Error("MatMul accepted mismatched shapes")
	}
}

func TestCenterRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 20}})
	mean := m.CenterRows()
	if !Equal(mean, []float64{2, 15}, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	if !Equal(m.Row(0), []float64{-1, -5}, 1e-12) || !Equal(m.Row(1), []float64{1, 5}, 1e-12) {
		t.Errorf("centered rows = %v / %v", m.Row(0), m.Row(1))
	}
}

func TestTopSingularVector(t *testing.T) {
	// Rank-1 matrix: rows are multiples of (3, 4)/5. The dominant right
	// singular vector must align with that direction.
	m, _ := FromRows([][]float64{{3, 4}, {6, 8}, {-3, -4}})
	v := m.TopSingularVector(100, 1e-12)
	if math.Abs(Norm(v)-1) > 1e-9 {
		t.Fatalf("singular vector norm = %v", Norm(v))
	}
	dir := []float64{0.6, 0.8}
	dot, _ := Dot(v, dir)
	if math.Abs(math.Abs(dot)-1) > 1e-6 {
		t.Errorf("singular vector %v not aligned with %v (|dot|=%v)", v, dir, math.Abs(dot))
	}
}

func TestTopSingularVectorZeroMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	v := m.TopSingularVector(10, 1e-9)
	if math.Abs(Norm(v)-1) > 1e-9 {
		t.Errorf("zero-matrix singular vector norm = %v, want 1", Norm(v))
	}
}

func TestTopSingularVectorDominantDirection(t *testing.T) {
	// Two clusters along the first axis with small noise on the second:
	// the top singular direction of the centered data is the first axis.
	rng := NewRNG(3)
	rows := make([][]float64, 40)
	for i := range rows {
		x := 5.0
		if i%2 == 0 {
			x = -5.0
		}
		rows[i] = []float64{x, 0.01 * rng.NormFloat64()}
	}
	m, _ := FromRows(rows)
	m.CenterRows()
	v := m.TopSingularVector(200, 1e-12)
	if math.Abs(v[0]) < 0.99 {
		t.Errorf("dominant direction = %v, want ±e1", v)
	}
}
