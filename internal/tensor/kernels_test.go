package tensor

import (
	"math"
	"testing"
)

func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := NewRNG(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveABT is the reference for dst += a·bᵀ: one sequential dot per
// element, j ascending — the association the exact kernel must reproduce
// bit for bit.
func naiveABT(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for o := 0; o < b.Rows; o++ {
			s := dst.At(i, o)
			for j := 0; j < a.Cols; j++ {
				s += a.At(i, j) * b.At(o, j)
			}
			dst.Set(i, o, s)
		}
	}
}

func assertBitIdentical(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMulABTIntoBitIdentical: the blocked kernel must match the naive
// sequential dots bitwise, including shared dimensions larger than the
// block size, and for any worker count.
func TestMulABTIntoBitIdentical(t *testing.T) {
	for _, k := range []int{7, kernelBlockJ + 37} {
		a := randomMatrix(9, k, 1)
		b := randomMatrix(5, k, 2)
		want := randomMatrix(9, 5, 3)
		got1 := want.Clone()
		naiveABT(want, a, b)
		if err := MulABTInto(got1, a, b); err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got1, want, "MulABTInto")
		for _, workers := range []int{2, 7} {
			got := randomMatrix(9, 5, 3)
			if err := MulABTWorkersInto(got, a, b, workers); err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, got, want, "MulABTWorkersInto")
		}
	}
}

// TestMulABTFastApproximate: the reassociated kernel agrees to float64
// accuracy but is not required to match bitwise.
func TestMulABTFastApproximate(t *testing.T) {
	a := randomMatrix(6, 103, 4)
	b := randomMatrix(4, 103, 5)
	want := NewMatrix(6, 4)
	naiveABT(want, a, b)
	got := NewMatrix(6, 4)
	if err := MulABTFastInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-9*(1+math.Abs(want.Data[i])) {
			t.Fatalf("fast kernel drift %g at %d", d, i)
		}
	}
}

// TestMatMulIntoMatchesMatMul: the accumulate-into form must reproduce
// MatMul bitwise when starting from zero.
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	a := randomMatrix(5, 8, 6)
	a.Set(2, 3, 0) // exercise the zero-skip
	b := randomMatrix(8, 4, 7)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(5, 4)
	if err := MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want, "MatMulInto")
}

// TestMulATBRangeIntoSegments: accumulating each row segment into its own
// destination must agree bitwise with the full-range product summed
// segment-wise — the de-interleaving property of the batched backward.
func TestMulATBRangeIntoSegments(t *testing.T) {
	a := randomMatrix(10, 3, 8)
	a.Set(4, 1, 0) // exercise the zero-skip
	b := randomMatrix(10, 6, 9)
	full := NewMatrix(3, 6)
	if err := MulATBInto(full, a, b); err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, 4, 5, 10}
	sum := NewMatrix(3, 6)
	for s := 0; s+1 < len(bounds); s++ {
		seg := NewMatrix(3, 6)
		if err := MulATBRangeInto(seg, a, b, bounds[s], bounds[s+1]); err != nil {
			t.Fatal(err)
		}
		// The segment must equal a row-restricted naive pass.
		want := NewMatrix(3, 6)
		for i := bounds[s]; i < bounds[s+1]; i++ {
			for o := 0; o < a.Cols; o++ {
				av := a.At(i, o)
				if av == 0 {
					continue
				}
				for j := 0; j < b.Cols; j++ {
					want.Set(o, j, want.At(o, j)+av*b.At(i, j))
				}
			}
		}
		assertBitIdentical(t, seg, want, "MulATBRangeInto segment")
		for i := range sum.Data {
			sum.Data[i] += seg.Data[i]
		}
	}
	// Segments partition the rows, so the segment sums reproduce the full
	// product to float accuracy (association differs across segment
	// boundaries, hence approximate).
	for i := range full.Data {
		if d := math.Abs(sum.Data[i] - full.Data[i]); d > 1e-9*(1+math.Abs(full.Data[i])) {
			t.Fatalf("segment sum drift %g at %d", d, i)
		}
	}
}

// TestKernelDimensionChecks: every kernel rejects mismatched shapes.
func TestKernelDimensionChecks(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(2, 5)
	dst := NewMatrix(3, 2)
	if err := MulABTInto(dst, a, b); err == nil {
		t.Error("MulABTInto accepted mismatched shared dim")
	}
	if err := MulABTFastInto(dst, a, b); err == nil {
		t.Error("MulABTFastInto accepted mismatched shared dim")
	}
	if err := MatMulInto(dst, a, b); err == nil {
		t.Error("MatMulInto accepted mismatched inner dim")
	}
	if err := MulATBRangeInto(dst, a, b, 0, 3); err == nil {
		t.Error("MulATBRangeInto accepted mismatched rows")
	}
	c := NewMatrix(3, 5)
	d := NewMatrix(5, 5)
	if err := MulATBRangeInto(d, c, c, 2, 1); err == nil {
		t.Error("MulATBRangeInto accepted descending range")
	}
}
