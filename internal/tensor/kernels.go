package tensor

import (
	"fmt"

	"github.com/signguard/signguard/internal/parallel"
)

// This file holds the dense matmul kernels of the batched local-compute
// path (internal/nn's BatchedLossAndGrad): blocked and strided variants of
// the three products a dense layer needs — x·Wᵀ for the forward pass,
// g·W for the input gradient and gᵀ·x for the weight gradient — plus
// row-partitioned *Workers forms following the PR 2 parallel helpers.
//
// Every exact kernel keeps each output element's floating-point
// accumulation in the same ascending-index order as the naive sequential
// loop, so the kernels are byte-identical drop-in replacements; the *Fast*
// variants break the accumulation into independent partial sums
// (reassociating the order for instruction-level parallelism) and are
// therefore NOT bit-compatible — callers opt in explicitly (the engine's
// documented fast mode).

// kernelBlockJ is the shared-dimension block size of the exact kernels:
// blocks of b's rows this wide stay resident in cache while every row of a
// streams past. Blocking only reorders memory traffic, never the per-output
// accumulation order, so it cannot change results.
const kernelBlockJ = 256

// MulABTInto accumulates a·bᵀ into dst: dst[i][o] += Σ_j a[i][j]·b[o][j],
// with a (N,K), b (M,K), dst (N,M). Each dst element accumulates over j in
// ascending order — the association of a sequential dot product — so the
// result is byte-identical to the naive loop.
func MulABTInto(dst, a, b *Matrix) error {
	return MulABTWorkersInto(dst, a, b, 1)
}

// MulABTWorkersInto is MulABTInto with dst's rows split across workers.
// Every dst row is owned by exactly one worker, so the result is
// byte-identical for any worker count.
func MulABTWorkersInto(dst, a, b *Matrix, workers int) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("%w: MulABTInto(%dx%d, %dx%d, %dx%d)",
			ErrDimensionMismatch, dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	parallel.For(workers, a.Rows, func(_, start, end int) {
		mulABTRange(dst, a, b, start, end)
	})
	return nil
}

// mulABTRange computes dst rows [r0,r1), blocked over the shared j
// dimension: one block of b is reused across every a row before the next
// block streams in. j blocks advance in ascending order, so each dst
// element still accumulates j-ascending.
func mulABTRange(dst, a, b *Matrix, r0, r1 int) {
	for j0 := 0; j0 < a.Cols; j0 += kernelBlockJ {
		j1 := j0 + kernelBlockJ
		if j1 > a.Cols {
			j1 = a.Cols
		}
		for i := r0; i < r1; i++ {
			ai := a.Row(i)[j0:j1]
			di := dst.Row(i)
			for o := 0; o < b.Rows; o++ {
				bo := b.Row(o)[j0:j1]
				s := di[o]
				for j, av := range ai {
					s += av * bo[j]
				}
				di[o] = s
			}
		}
	}
}

// MulABTFastInto is MulABTInto with each dot product split into four
// independent accumulators, breaking the loop-carried addition chain for
// instruction-level parallelism. Reassociating the sum changes its
// rounding: results are NOT bit-compatible with MulABTInto (they agree to
// normal float64 accuracy). Only explicitly non-bitwise paths (the
// engine's fast mode) may use it.
func MulABTFastInto(dst, a, b *Matrix) error {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("%w: MulABTFastInto(%dx%d, %dx%d, %dx%d)",
			ErrDimensionMismatch, dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for o := 0; o < b.Rows; o++ {
			di[o] += DotFast(ai, b.Row(o))
		}
	}
	return nil
}

// DotFast is the shared four-accumulator dot product of the fast mode:
// the loop-carried addition chain of a sequential dot is split into four
// independent partial sums. Reassociated — NOT bit-compatible with a
// sequential dot; only explicitly non-bitwise paths may use it.
func DotFast(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// SumFast is DotFast's plain-sum sibling: four independent accumulators,
// reassociated, non-bitwise.
func SumFast(v []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i]
		s1 += v[i+1]
		s2 += v[i+2]
		s3 += v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i]
	}
	return ((s0 + s1) + s2) + s3
}

// MatMulInto accumulates a·b into dst: dst[i][j] += Σ_k a[i][k]·b[k][j],
// with a (N,K), b (K,M), dst (N,M). It uses the same ikj loop order and
// zero-skip as MatMul, so each dst element accumulates over k in ascending
// order — byte-identical to the sequential loop (the zero-skip is part of
// the contract: skipping a zero term preserves a negative-zero
// accumulator that adding +0.0 would flip).
func MatMulInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("%w: MatMulInto(%dx%d, %dx%d, %dx%d)",
			ErrDimensionMismatch, dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// MulATBRangeInto accumulates aᵀ·b restricted to rows [i0,i1) into dst:
// dst[o][j] += Σ_{i∈[i0,i1)} a[i][o]·b[i][j], with a (N,M), b (N,K),
// dst (M,K). Rows are visited in ascending order with the zero-skip of the
// layer backward loops, so accumulating a segment's rows is byte-identical
// to running the sequential backward pass over that segment alone — the
// property the batched engine's per-client gradient de-interleaving rests
// on.
func MulATBRangeInto(dst, a, b *Matrix, i0, i1 int) error {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		return fmt.Errorf("%w: MulATBRangeInto(%dx%d, %dx%d, %dx%d)",
			ErrDimensionMismatch, dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if i0 < 0 || i1 > a.Rows || i0 > i1 {
		return fmt.Errorf("%w: MulATBRangeInto rows [%d,%d) of %d", ErrDimensionMismatch, i0, i1, a.Rows)
	}
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for o, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(o)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return nil
}

// MulATBInto accumulates aᵀ·b over all rows into dst (see
// MulATBRangeInto).
func MulATBInto(dst, a, b *Matrix) error {
	return MulATBRangeInto(dst, a, b, 0, a.Rows)
}
