package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !Equal(sum, []float64{5, -3, 9}, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := Sub(a, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !Equal(diff, []float64{-3, 7, -3}, 0) {
		t.Errorf("Sub = %v", diff)
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 2, 3}
	if _, err := Add(a, b); err == nil {
		t.Error("Add accepted mismatched lengths")
	}
	if _, err := Sub(a, b); err == nil {
		t.Error("Sub accepted mismatched lengths")
	}
	if _, err := Dot(a, b); err == nil {
		t.Error("Dot accepted mismatched lengths")
	}
	if err := Axpy(a, 1, b); err == nil {
		t.Error("Axpy accepted mismatched lengths")
	}
	if _, err := Distance(a, b); err == nil {
		t.Error("Distance accepted mismatched lengths")
	}
}

func TestScaleAndAxpy(t *testing.T) {
	v := []float64{1, -2, 3}
	got := Scale(v, -2)
	if !Equal(got, []float64{-2, 4, -6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	dst := []float64{1, 1, 1}
	if err := Axpy(dst, 2, v); err != nil {
		t.Fatalf("Axpy: %v", err)
	}
	if !Equal(dst, []float64{3, -3, 7}, 0) {
		t.Errorf("Axpy = %v", dst)
	}
}

func TestNormAndDistance(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	d, err := Distance([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, []float64{3, 4}, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean accepted empty input")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([][]float64{{0, 0}, {10, 10}}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, []float64{2.5, 2.5}, 1e-12) {
		t.Errorf("WeightedMean = %v", got)
	}
	if _, err := WeightedMean([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("WeightedMean accepted zero total weight")
	}
}

func TestClipNorm(t *testing.T) {
	v := []float64{3, 4}
	scale := ClipNorm(v, 1)
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", Norm(v))
	}
	if math.Abs(scale-0.2) > 1e-12 {
		t.Errorf("scale = %v, want 0.2", scale)
	}
	w := []float64{0.1, 0.1}
	if got := ClipNorm(w, 1); got != 1 {
		t.Errorf("no-op clip returned scale %v", got)
	}
	z := []float64{1, 1}
	if got := ClipNorm(z, 0); got != 1 {
		t.Errorf("non-positive bound should be a no-op, got scale %v", got)
	}
}

func TestSign(t *testing.T) {
	got := Sign([]float64{-2, 0, 3.5})
	if !Equal(got, []float64{-1, 0, 1}, 0) {
		t.Errorf("Sign = %v", got)
	}
}

func TestMinMaxAllFinite(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 2})
	if lo != -1 || hi != 3 {
		t.Errorf("MinMax = (%v, %v)", lo, hi)
	}
	if !AllFinite([]float64{1, 2}) {
		t.Error("AllFinite false on finite input")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite true on NaN")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite true on Inf")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := []float64{1, 2}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array")
	}
	all := CloneAll([][]float64{{1}, {2}})
	all[0][0] = 42
	if Clone(nil) != nil {
		t.Error("Clone(nil) != nil")
	}
}

// Property: dot product is symmetric and bilinear in scaling.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(a, b [8]float64, c float64) bool {
		av, bv := a[:], b[:]
		d1, _ := Dot(av, bv)
		d2, _ := Dot(bv, av)
		if math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
			return false
		}
		d3, _ := Dot(Scale(av, c), bv)
		want := c * d1
		tol := 1e-9 * (1 + math.Abs(want))
		return math.Abs(d3-want) <= tol || math.IsInf(want, 0) || math.IsNaN(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for the Euclidean distance.
func TestTriangleInequalityQuick(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		ab, _ := Distance(a[:], b[:])
		bc, _ := Distance(b[:], c[:])
		ac, _ := Distance(a[:], c[:])
		return ac <= ab+bc+1e-9*(1+ab+bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the mean lies inside the coordinate-wise min/max envelope.
// Magnitudes are folded into a finite range to avoid float64 overflow,
// which is out of scope for the property.
func TestMeanEnvelopeQuick(t *testing.T) {
	f := func(a, b, c [5]float64) bool {
		for j := range a {
			a[j] = math.Mod(a[j], 1e6)
			b[j] = math.Mod(b[j], 1e6)
			c[j] = math.Mod(c[j], 1e6)
		}
		m, err := Mean([][]float64{a[:], b[:], c[:]})
		if err != nil {
			return false
		}
		for j := range m {
			lo := math.Min(a[j], math.Min(b[j], c[j]))
			hi := math.Max(a[j], math.Max(b[j], c[j]))
			if m[j] < lo-1e-9 || m[j] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClipNorm never increases the norm and respects the bound.
func TestClipNormQuick(t *testing.T) {
	f := func(a [7]float64, bound float64) bool {
		bound = math.Abs(bound)
		if bound == 0 || math.IsInf(bound, 0) || math.IsNaN(bound) {
			return true
		}
		v := Clone(a[:])
		before := Norm(v)
		ClipNorm(v, bound)
		after := Norm(v)
		return after <= before+1e-9 && after <= bound*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
