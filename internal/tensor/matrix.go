package tensor

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/parallel"
)

// Matrix is a dense row-major matrix of float64. The zero value is an empty
// matrix; use NewMatrix to allocate a sized one.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a Rows x Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d) with negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix whose rows are copies of the given vectors.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: FromRows row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M x for a length-Cols vector x, returning a new
// length-Rows vector.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	return m.MulVecWorkers(x, 1)
}

// MulVecWorkers is MulVec with the output rows split across workers. Every
// y[i] is one sequential dot product, so the result is byte-identical for
// any worker count.
func (m *Matrix) MulVecWorkers(x []float64, workers int) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: MulVec(%dx%d, %d)", ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	parallel.For(workers, m.Rows, func(_, start, end int) {
		for i := start; i < end; i++ {
			row := m.Row(i)
			var s float64
			for j, xv := range x {
				s += row[j] * xv
			}
			y[i] = s
		}
	})
	return y, nil
}

// MulVecT computes y = Mᵀ x for a length-Rows vector x, returning a new
// length-Cols vector.
func (m *Matrix) MulVecT(x []float64) ([]float64, error) {
	return m.MulVecTWorkers(x, 1)
}

// MulVecTWorkers is MulVecT with the output columns split across workers.
// Every y[j] accumulates over the rows in ascending order — the same
// association as the sequential row-major pass — so the result is
// byte-identical for any worker count.
func (m *Matrix) MulVecTWorkers(x []float64, workers int) ([]float64, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("%w: MulVecT(%dx%d, %d)", ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Cols)
	parallel.For(workers, m.Cols, func(_, start, end int) {
		for i := 0; i < m.Rows; i++ {
			xv := x[i]
			if xv == 0 {
				continue
			}
			row := m.Row(i)
			for j := start; j < end; j++ {
				y[j] += row[j] * xv
			}
		}
	})
	return y, nil
}

// MatMul returns A·B as a new matrix.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: MatMul(%dx%d, %dx%d)", ErrDimensionMismatch, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	// ikj loop order keeps the inner loop sequential over both B and out.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// CenterRows subtracts the column means from each row in place and returns
// the mean row that was removed.
func (m *Matrix) CenterRows() []float64 {
	return m.CenterRowsWorkers(1)
}

// CenterRowsWorkers is CenterRows with the columns split across workers.
// Each column's mean accumulates over the rows in ascending order, matching
// the sequential association, so the result is byte-identical for any
// worker count.
func (m *Matrix) CenterRowsWorkers(workers int) []float64 {
	mean := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mean
	}
	inv := 1.0 / float64(m.Rows)
	parallel.For(workers, m.Cols, func(_, start, end int) {
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j := start; j < end; j++ {
				mean[j] += row[j]
			}
		}
		for j := start; j < end; j++ {
			mean[j] *= inv
		}
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j := start; j < end; j++ {
				row[j] -= mean[j]
			}
		}
	})
	return mean
}

// TopSingularVector estimates the dominant right singular vector of the
// matrix via power iteration on MᵀM, without materializing the Gram matrix.
// iters bounds the number of iterations; tol is the convergence threshold on
// the change of the estimate between iterations. The returned vector has
// unit norm. The rng-free deterministic start vector makes results
// reproducible.
func (m *Matrix) TopSingularVector(iters int, tol float64) []float64 {
	return m.TopSingularVectorWorkers(iters, tol, 1)
}

// TopSingularVectorWorkers is TopSingularVector with the matrix-vector
// products of each power-iteration step parallelized across workers (see
// MulVecWorkers / MulVecTWorkers); the result is byte-identical for any
// worker count.
func (m *Matrix) TopSingularVectorWorkers(iters int, tol float64, workers int) []float64 {
	v := make([]float64, m.Cols)
	if m.Cols == 0 {
		return v
	}
	// Deterministic non-degenerate start: alternating signs with a ramp so
	// it is unlikely to be orthogonal to the dominant direction.
	for j := range v {
		v[j] = 1 + 0.5*float64(j%7)/7
		if j%2 == 1 {
			v[j] = -v[j]
		}
	}
	normalize(v)
	prev := make([]float64, m.Cols)
	for it := 0; it < iters; it++ {
		copy(prev, v)
		// v <- normalize(Mᵀ (M v))
		mv, err := m.MulVecWorkers(v, workers)
		if err != nil { // cannot happen: shapes are internally consistent
			panic(err)
		}
		mtv, err := m.MulVecTWorkers(mv, workers)
		if err != nil {
			panic(err)
		}
		copy(v, mtv)
		if n := Norm(v); n == 0 {
			// Matrix is (numerically) zero; any unit vector is valid.
			Fill(v, 0)
			v[0] = 1
			return v
		}
		normalize(v)
		// Power iteration can flip signs between iterations; compare the
		// subspace, not the vector.
		d1, _ := Distance(v, prev)
		neg := Scale(prev, -1)
		d2, _ := Distance(v, neg)
		if math.Min(d1, d2) < tol {
			break
		}
	}
	return v
}

func normalize(v []float64) {
	n := Norm(v)
	if n == 0 {
		return
	}
	ScaleInPlace(v, 1/n)
}
