package theory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func base() Assumptions {
	return Assumptions{
		L: 1, SigmaSq: 4, KappaSq: 1, N: 50,
		Beta: 0.2, Delta: 0.05, C: 1, BSq: 0.01,
	}
}

func TestValidate(t *testing.T) {
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid assumptions rejected: %v", err)
	}
	mods := []func(*Assumptions){
		func(a *Assumptions) { a.L = 0 },
		func(a *Assumptions) { a.SigmaSq = -1 },
		func(a *Assumptions) { a.N = 0 },
		func(a *Assumptions) { a.Beta = 0.5 },
		func(a *Assumptions) { a.Delta = a.Beta + 0.01 },
		func(a *Assumptions) { a.C = -1 },
	}
	for i, mod := range mods {
		a := base()
		mod(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// Remark 2: with no Byzantine clients (β=0, δ=0) the asymptotic error Δ2
// vanishes.
func TestDelta2VanishesWithoutByzantine(t *testing.T) {
	a := base()
	a.Beta, a.Delta = 0, 0
	d2, err := Delta2(a)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Errorf("Δ2 = %v with β=δ=0, want 0", d2)
	}
}

// Remark 2: even a perfect filter (δ=0) leaves Δ2 > 0 on non-IID data —
// Byzantine clients' data no longer contributes to the average.
func TestPerfectFilterStillBiasedNonIID(t *testing.T) {
	a := base()
	a.Delta = 0 // perfect filtering
	d2, err := Delta2(a)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= 0 {
		t.Errorf("Δ2 = %v with β>0, κ²>0, want > 0", d2)
	}
	// ...but in the IID setting (κ=0) the perfect filter does recover
	// unbiased convergence.
	a.KappaSq = 0
	d2, err = Delta2(a)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Errorf("Δ2 = %v with δ=0, κ=0, want 0", d2)
	}
}

func TestLemma1Monotonicity(t *testing.T) {
	a := base()
	d1, err := Lemma1Deviation(a)
	if err != nil {
		t.Fatal(err)
	}
	// More clients → lower variance term.
	big := a
	big.N = 500
	d2, _ := Lemma1Deviation(big)
	if d2 >= d1 {
		t.Errorf("deviation should fall with n: %v vs %v", d2, d1)
	}
	// IID data (κ=0) removes the heterogeneity term entirely.
	iid := a
	iid.KappaSq = 0
	d3, _ := Lemma1Deviation(iid)
	if d3 >= d1 {
		t.Errorf("IID deviation %v should undercut non-IID %v", d3, d1)
	}
}

func TestMaxLearningRate(t *testing.T) {
	a := base()
	a.Beta, a.Delta = 0, 0
	eta, err := MaxLearningRate(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eta-0.5) > 1e-12 { // (2-0-0)/(4·1)
		t.Errorf("clean ceiling = %v, want 0.5", eta)
	}
	b := base()
	etaB, _ := MaxLearningRate(b)
	if etaB >= eta {
		t.Errorf("Byzantine presence should tighten the ceiling: %v vs %v", etaB, eta)
	}
}

func TestConvergenceBound(t *testing.T) {
	a := base()
	bound, err := ConvergenceBound(a, 0.05, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 || math.IsInf(bound, 0) || math.IsNaN(bound) {
		t.Fatalf("bound = %v", bound)
	}
	// More rounds with the same step size → tighter bound.
	longer, _ := ConvergenceBound(a, 0.05, 10, 100000)
	if longer >= bound {
		t.Errorf("bound should shrink with T: %v vs %v", longer, bound)
	}
	// The bound can never drop below the asymptotic floor Δ2.
	d2, _ := Delta2(a)
	if longer < d2 {
		t.Errorf("bound %v fell below its asymptote Δ2=%v", longer, d2)
	}
	// A step size over the ceiling is rejected with the sentinel error.
	if _, err := ConvergenceBound(a, 10, 10, 1000); !errors.Is(err, ErrLearningRateTooLarge) {
		t.Errorf("oversized η: %v", err)
	}
	if _, err := ConvergenceBound(a, 0.05, 10, 0); err == nil {
		t.Error("accepted T=0")
	}
	if _, err := ConvergenceBound(a, 0.05, -1, 10); err == nil {
		t.Error("accepted negative optimality gap")
	}
}

func TestOptimalLearningRate(t *testing.T) {
	a := base()
	eta, err := OptimalLearningRate(a, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	maxEta, _ := MaxLearningRate(a)
	if eta <= 0 || eta > maxEta {
		t.Fatalf("optimal η = %v outside (0, %v]", eta, maxEta)
	}
	// The optimum should (weakly) beat nearby admissible step sizes.
	opt, err := ConvergenceBound(a, eta, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{eta * 0.5, eta * 0.9, math.Min(eta*1.1, maxEta), math.Min(eta*2, maxEta)} {
		v, err := ConvergenceBound(a, probe, 10, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if v < opt-1e-9 {
			t.Errorf("η=%v gives %v < optimum %v at η*=%v", probe, v, opt, eta)
		}
	}
}

// Property: a better filter (smaller δ) never loosens Δ1, Δ2 or the bound.
func TestFilterQualityMonotoneQuick(t *testing.T) {
	f := func(d1Raw, d2Raw uint8) bool {
		a := base()
		lo := float64(d1Raw%20) / 100 // [0, 0.19]
		hi := lo + float64(d2Raw%10)/1000
		if hi > a.Beta {
			return true
		}
		aLo, aHi := a, a
		aLo.Delta, aHi.Delta = lo, hi
		x1, err1 := Delta1(aLo)
		x2, err2 := Delta1(aHi)
		if err1 != nil || err2 != nil || x1 > x2+1e-12 {
			return false
		}
		y1, _ := Delta2(aLo)
		y2, _ := Delta2(aHi)
		return y1 <= y2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more heterogeneity (κ²↑) never tightens the bound.
func TestHeterogeneityMonotoneQuick(t *testing.T) {
	f := func(kRaw uint8) bool {
		a := base()
		a.KappaSq = float64(kRaw) / 16
		b1, err := ConvergenceBound(a, 0.05, 10, 1000)
		if err != nil {
			return false
		}
		a.KappaSq += 1
		b2, err := ConvergenceBound(a, 0.05, 10, 1000)
		if err != nil {
			return false
		}
		return b2 >= b1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
