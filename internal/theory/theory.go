// Package theory implements the paper's convergence analysis (Section
// IV-C): the Lemma 1 deviation bound between the honest average and the
// true global gradient under non-IID data, the Theorem 1 constants Δ1 and
// Δ2 induced by Byzantine participation, the resulting bound on the
// average squared gradient norm after T rounds, and the learning-rate
// ceiling η ≤ (2 − √δ − 2β)/(4L) under which the theorem holds.
//
// The package exists for two reasons: it documents the theory as runnable
// code, and its tests machine-check the qualitative claims the paper makes
// about the bound (Remarks 1–2): Δ2 vanishes when there are no Byzantine
// clients; Byzantine clients inflate the error even when every malicious
// gradient is filtered (δ = 0) as long as the data are non-IID (κ > 0);
// and the bound tightens as the filter improves (δ ↓).
package theory

import (
	"errors"
	"fmt"
	"math"
)

// Assumptions collects the constants of Assumption 1-2 and the system
// parameters of problem (9).
type Assumptions struct {
	// L is the smoothness (Lipschitz) constant of the objective.
	L float64
	// SigmaSq (σ²) bounds the local stochastic-gradient variance.
	SigmaSq float64
	// KappaSq (κ²) bounds the local-vs-global gradient deviation
	// (0 in the IID setting).
	KappaSq float64
	// N is the total number of clients.
	N int
	// Beta (β) is the Byzantine fraction, 0 ≤ β < 0.5.
	Beta float64
	// Delta (δ) is the fraction of Byzantine clients that circumvent the
	// filter each round, 0 ≤ δ ≤ β.
	Delta float64
	// C and BSq (b²) are the aggregation-capability constants of
	// Assumption 2 (bounded bias scale and output variance).
	C, BSq float64
}

// Validate checks the admissible parameter ranges.
func (a *Assumptions) Validate() error {
	switch {
	case a.L <= 0:
		return fmt.Errorf("theory: smoothness L=%v must be positive", a.L)
	case a.SigmaSq < 0 || a.KappaSq < 0:
		return fmt.Errorf("theory: variance bounds σ²=%v, κ²=%v must be non-negative", a.SigmaSq, a.KappaSq)
	case a.N <= 0:
		return fmt.Errorf("theory: n=%d clients invalid", a.N)
	case a.Beta < 0 || a.Beta >= 0.5:
		return fmt.Errorf("theory: Byzantine fraction β=%v out of [0, 0.5)", a.Beta)
	case a.Delta < 0 || a.Delta > a.Beta:
		return fmt.Errorf("theory: leak fraction δ=%v out of [0, β=%v]", a.Delta, a.Beta)
	case a.C < 0 || a.BSq < 0:
		return fmt.Errorf("theory: aggregation constants c=%v, b²=%v must be non-negative", a.C, a.BSq)
	}
	return nil
}

// Lemma1Deviation returns the Lemma 1 bound on E‖ḡ − ∇F(x)‖²: the
// deviation between the average of the (1−β)n honest gradients and the
// true global gradient,
//
//	β²κ²/(1−β)² + σ²/((1−β)n).
func Lemma1Deviation(a Assumptions) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	oneMinus := 1 - a.Beta
	return a.Beta*a.Beta*a.KappaSq/(oneMinus*oneMinus) + a.SigmaSq/(oneMinus*float64(a.N)), nil
}

// Delta1 returns the Theorem 1 constant
//
//	Δ1 = 4cδ(σ²+κ²) + 2b² + 2β²κ²/(1−β)² + 2σ²/((1−β)n).
func Delta1(a Assumptions) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	oneMinus := 1 - a.Beta
	return 4*a.C*a.Delta*(a.SigmaSq+a.KappaSq) +
		2*a.BSq +
		2*a.Beta*a.Beta*a.KappaSq/(oneMinus*oneMinus) +
		2*a.SigmaSq/(oneMinus*float64(a.N)), nil
}

// Delta2 returns the Theorem 1 constant
//
//	Δ2 = 4c√δ(σ²+κ²) + βκ²/(1−β)².
func Delta2(a Assumptions) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	oneMinus := 1 - a.Beta
	return 4*a.C*math.Sqrt(a.Delta)*(a.SigmaSq+a.KappaSq) +
		a.Beta*a.KappaSq/(oneMinus*oneMinus), nil
}

// MaxLearningRate returns the Theorem 1 step-size ceiling
// η ≤ (2 − √δ − 2β)/(4L).
func MaxLearningRate(a Assumptions) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	return (2 - math.Sqrt(a.Delta) - 2*a.Beta) / (4 * a.L), nil
}

// ErrLearningRateTooLarge is returned when the requested step size exceeds
// the Theorem 1 ceiling.
var ErrLearningRateTooLarge = errors.New("theory: learning rate exceeds the Theorem 1 ceiling")

// ConvergenceBound returns the Theorem 1 bound on
// (1/T)·Σ_t E‖∇F(x_t)‖² after T rounds with step size eta and initial
// optimality gap f0 = F(x₀) − F*:
//
//	2(F(x₀)−F*)/(ηT) + 2LηΔ1 + Δ2.
func ConvergenceBound(a Assumptions, eta, f0 float64, T int) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if T <= 0 {
		return 0, fmt.Errorf("theory: T=%d rounds invalid", T)
	}
	if eta <= 0 {
		return 0, fmt.Errorf("theory: step size η=%v must be positive", eta)
	}
	if f0 < 0 {
		return 0, fmt.Errorf("theory: optimality gap f0=%v must be non-negative", f0)
	}
	maxEta, err := MaxLearningRate(a)
	if err != nil {
		return 0, err
	}
	if eta > maxEta {
		return 0, fmt.Errorf("%w: η=%v > %v", ErrLearningRateTooLarge, eta, maxEta)
	}
	d1, err := Delta1(a)
	if err != nil {
		return 0, err
	}
	d2, err := Delta2(a)
	if err != nil {
		return 0, err
	}
	return 2*f0/(eta*float64(T)) + 2*a.L*eta*d1 + d2, nil
}

// OptimalLearningRate returns the step size minimizing the Theorem 1 bound
// over (0, maxEta]: the unconstrained minimizer of a/η + bη is
// √(a/b) = √(f0 / (L·Δ1·T)), clipped to the admissible ceiling.
func OptimalLearningRate(a Assumptions, f0 float64, T int) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if T <= 0 {
		return 0, fmt.Errorf("theory: T=%d rounds invalid", T)
	}
	maxEta, err := MaxLearningRate(a)
	if err != nil {
		return 0, err
	}
	d1, err := Delta1(a)
	if err != nil {
		return 0, err
	}
	if d1 == 0 || f0 == 0 {
		return maxEta, nil
	}
	eta := math.Sqrt(f0 / (a.L * d1 * float64(T)))
	if eta > maxEta {
		eta = maxEta
	}
	return eta, nil
}
