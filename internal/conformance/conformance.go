// Package conformance is the registry-wide contract checker of the defense
// and codec catalogs. Every registered defense must produce byte-identical
// aggregates for any worker count, survive hostile (non-finite) input
// buffers with a finite aggregate or an error, and declare hyperparameters
// that round-trip through the CLI's key=value syntax; every registered
// codec must honor its declared round-trip bound (bit-exactness for
// lossless codecs, a minimum preserved cosine for lossy ones) and reject
// malformed wire payloads.
//
// The checks are plain error-returning functions rather than test helpers,
// so the per-registry conformance tests can assert both directions: that
// every shipped entry passes, and — on deliberately broken registries —
// that a violation is actually caught (the test of the test).
package conformance

import (
	"fmt"
	"math"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/cliutil"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/stats"
	"github.com/signguard/signguard/internal/tensor"
)

// WorkerCounts are the worker settings every defense must agree across:
// sequential, the smallest parallel split, and a count that does not divide
// typical cohort sizes evenly.
var WorkerCounts = []int{1, 2, 7}

// Cohort is the gradient cohort geometry the defense checks run at.
const (
	CohortN   = 12
	CohortF   = 2
	CohortDim = 40
)

// buildRule constructs a fresh instance of the named defense and installs a
// reference gradient when the rule learns server-side.
func buildRule(reg *defense.Registry, name string, seed int64, server []float64) (aggregate.Rule, error) {
	rule, err := reg.Build(name, defense.Params{N: CohortN, F: CohortF, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", name, err)
	}
	if sl, ok := aggregate.Unwrap(rule).(aggregate.ServerLearner); ok {
		sl.SetServerGradient(server)
	}
	return rule, nil
}

// cohort returns a deterministic Gaussian gradient cohort.
func cohort(seed int64) [][]float64 {
	rng := tensor.NewRNG(seed)
	grads := make([][]float64, CohortN)
	for i := range grads {
		grads[i] = tensor.RandNormal(rng, CohortDim, 0, 1)
	}
	return grads
}

// CheckDefenseWorkerDeterminism asserts the determinism contract for one
// registered defense: a fresh instance per worker count, aggregating the
// same cohort, must return bit-identical gradients (compared through
// Float64bits, so -0 vs +0 and NaN payload differences count) and identical
// selections.
func CheckDefenseWorkerDeterminism(reg *defense.Registry, name string, seed int64) error {
	grads := cohort(seed)
	server := tensor.RandNormal(tensor.NewRNG(seed+1), CohortDim, 0, 1)

	var refGrad []float64
	var refSel []int
	for wi, workers := range WorkerCounts {
		rule, err := buildRule(reg, name, seed, server)
		if err != nil {
			return err
		}
		if ws, ok := rule.(aggregate.WorkersSetter); ok {
			ws.SetWorkers(workers)
		}
		res, err := rule.Aggregate(tensor.CloneAll(grads))
		if err != nil {
			return fmt.Errorf("%s with %d workers: %w", name, workers, err)
		}
		if wi == 0 {
			refGrad, refSel = res.Gradient, res.Selected
			continue
		}
		if len(res.Gradient) != len(refGrad) {
			return fmt.Errorf("%s: %d workers returned dimension %d, %d workers %d",
				name, workers, len(res.Gradient), WorkerCounts[0], len(refGrad))
		}
		for j := range refGrad {
			if math.Float64bits(res.Gradient[j]) != math.Float64bits(refGrad[j]) {
				return fmt.Errorf("%s: coordinate %d differs between %d and %d workers: %v vs %v",
					name, j, WorkerCounts[0], workers, refGrad[j], res.Gradient[j])
			}
		}
		if len(res.Selected) != len(refSel) {
			return fmt.Errorf("%s: selection size differs between %d and %d workers: %d vs %d",
				name, WorkerCounts[0], workers, len(refSel), len(res.Selected))
		}
		for j := range refSel {
			if res.Selected[j] != refSel[j] {
				return fmt.Errorf("%s: selection differs between %d and %d workers: %v vs %v",
					name, WorkerCounts[0], workers, refSel, res.Selected)
			}
		}
	}
	return nil
}

// HostileBuffers returns named gradient cohorts carrying non-finite values
// in the shapes attacks actually use: a single poisoned coordinate, a fully
// poisoned vector, ±Inf spikes, a majority of sparsely poisoned vectors,
// and an entirely non-finite cohort.
func HostileBuffers(seed int64) map[string][][]float64 {
	out := map[string][][]float64{}
	mk := func(name string, poison func(grads [][]float64)) {
		grads := cohort(seed)
		poison(grads)
		out[name] = grads
	}
	mk("one-nan-coord", func(g [][]float64) { g[0][3] = math.NaN() })
	mk("full-nan-vector", func(g [][]float64) {
		for j := range g[1] {
			g[1][j] = math.NaN()
		}
	})
	mk("inf-spikes", func(g [][]float64) {
		g[0][0] = math.Inf(1)
		g[2][7] = math.Inf(-1)
	})
	mk("majority-sparse-nan", func(g [][]float64) {
		for i := 0; i < (len(g)+2)/2; i++ {
			g[i][i%len(g[i])] = math.NaN()
		}
	})
	mk("all-inf", func(g [][]float64) {
		for i := range g {
			for j := range g[i] {
				g[i][j] = math.Inf(1)
			}
		}
	})
	return out
}

// CheckDefenseHostileInputs asserts the finite-or-error contract: whatever
// a defense does with a non-finite cohort, it must either return an error
// or a fully finite aggregate — never silently emit NaN/±Inf.
func CheckDefenseHostileInputs(reg *defense.Registry, name string, seed int64) error {
	server := tensor.RandNormal(tensor.NewRNG(seed+1), CohortDim, 0, 1)
	for buffer, grads := range HostileBuffers(seed) {
		rule, err := buildRule(reg, name, seed, server)
		if err != nil {
			return err
		}
		res, err := rule.Aggregate(grads)
		if err != nil {
			continue // rejecting hostile input satisfies the contract
		}
		if !tensor.AllFinite(res.Gradient) {
			return fmt.Errorf("%s emitted a non-finite aggregate on %s without an error", name, buffer)
		}
	}
	return nil
}

// CheckHyperDeclaration asserts that a spec's declared hyperparameter names
// survive the CLI syntax: FormatHyper → ParseHyper must reproduce the map
// exactly (names containing '=' or ',' cannot), and the registry must
// reject an undeclared name instead of running defaults silently.
//
// The declared/unknown probes go through validate, so the same check works
// for the defense and codec registries.
func CheckHyperDeclaration(name string, hyper []string, validate func(h map[string]float64) error) error {
	if len(hyper) > 0 {
		probe := map[string]float64{}
		for i, h := range hyper {
			if h == "" {
				return fmt.Errorf("%s declares an empty hyperparameter name", name)
			}
			probe[h] = float64(i) + 0.5
		}
		if len(probe) != len(hyper) {
			return fmt.Errorf("%s declares duplicate hyperparameter names %v", name, hyper)
		}
		parsed, err := cliutil.ParseHyper("conformance", cliutil.FormatHyper(probe))
		if err != nil {
			return fmt.Errorf("%s: declared hyperparameters do not survive the CLI syntax: %w", name, err)
		}
		if len(parsed) != len(probe) {
			return fmt.Errorf("%s: CLI round trip kept %d of %d hyperparameters", name, len(parsed), len(probe))
		}
		for k, v := range probe {
			if pv, ok := parsed[k]; !ok || pv != v {
				return fmt.Errorf("%s: hyperparameter %q did not round-trip through the CLI syntax", name, k)
			}
		}
		if err := validate(probe); err != nil {
			return fmt.Errorf("%s rejects its own declared hyperparameters: %w", name, err)
		}
	}
	if err := validate(map[string]float64{"conformance_undeclared_probe": 1}); err == nil {
		return fmt.Errorf("%s accepted an undeclared hyperparameter", name)
	}
	return nil
}

// CheckDefenseHyperDeclaration runs CheckHyperDeclaration against one
// defense registry entry.
func CheckDefenseHyperDeclaration(reg *defense.Registry, name string) error {
	s, err := reg.Lookup(name)
	if err != nil {
		return err
	}
	return CheckHyperDeclaration("defense "+name, s.Hyper, func(h map[string]float64) error {
		return reg.ValidateHyper(name, h)
	})
}

// CheckCodecHyperDeclaration runs CheckHyperDeclaration against one codec
// registry entry.
func CheckCodecHyperDeclaration(reg *codec.Registry, name string) error {
	s, err := reg.Lookup(name)
	if err != nil {
		return err
	}
	return CheckHyperDeclaration("codec "+name, s.Hyper, func(h map[string]float64) error {
		return reg.ValidateHyper(name, h)
	})
}

// CodecDim is the vector dimension the codec round-trip checks run at.
const CodecDim = 64

// CheckCodecRoundTrip asserts a codec's declared round-trip bound on dense
// Gaussian vectors: a Lossless codec must reproduce the input bit for bit;
// a lossy codec must preserve at least its declared MinCosine similarity.
// A codec declaring neither bound fails — every registered codec must state
// what its round trip guarantees.
func CheckCodecRoundTrip(reg *codec.Registry, name string, seed int64) error {
	s, err := reg.Lookup(name)
	if err != nil {
		return err
	}
	if !s.Lossless && s.MinCosine <= 0 {
		return fmt.Errorf("codec %s declares no round-trip bound (Lossless or MinCosine)", name)
	}
	c, err := reg.Build(name, codec.Params{})
	if err != nil {
		return fmt.Errorf("build codec %s: %w", name, err)
	}
	rng := tensor.NewRNG(seed)
	encRng := tensor.NewRNG(seed + 1)
	for trial := 0; trial < 8; trial++ {
		g := tensor.RandNormal(rng, CodecDim, 0, 1)
		enc, err := c.Encode(g, encRng)
		if err != nil {
			return fmt.Errorf("codec %s encode (trial %d): %w", name, trial, err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			return fmt.Errorf("codec %s decode (trial %d): %w", name, trial, err)
		}
		if len(dec) != len(g) {
			return fmt.Errorf("codec %s round trip changed dimension %d → %d", name, len(g), len(dec))
		}
		if !tensor.AllFinite(dec) {
			return fmt.Errorf("codec %s decoded a non-finite gradient (trial %d)", name, trial)
		}
		if s.Lossless {
			for j := range g {
				if math.Float64bits(dec[j]) != math.Float64bits(g[j]) {
					return fmt.Errorf("codec %s declares Lossless but coordinate %d changed: %v → %v",
						name, j, g[j], dec[j])
				}
			}
			continue
		}
		cos, err := stats.CosineSimilarity(g, dec)
		if err != nil {
			return fmt.Errorf("codec %s (trial %d): %w", name, trial, err)
		}
		if cos < s.MinCosine {
			return fmt.Errorf("codec %s round trip preserved cosine %.4f, below the declared %.4f (trial %d)",
				name, cos, s.MinCosine, trial)
		}
	}
	return nil
}

// MalformedPayloads derives corrupted wire payloads from a valid encoding,
// mutating whichever payload group the codec actually uses: a negative
// dimension, truncated arrays, out-of-range sparse indices, and non-finite
// carriers. Every returned payload must fail to decode.
func MalformedPayloads(enc codec.Encoded) []codec.Encoded {
	var bad []codec.Encoded
	add := func(mutate func(e *codec.Encoded)) {
		e := enc
		e.Dense = append([]float64(nil), enc.Dense...)
		e.Idx = append([]int32(nil), enc.Idx...)
		e.Val = append([]float64(nil), enc.Val...)
		e.Q = append([]int8(nil), enc.Q...)
		e.Sign = append([]byte(nil), enc.Sign...)
		mutate(&e)
		bad = append(bad, e)
	}
	add(func(e *codec.Encoded) { e.Dim = -4 })
	if len(enc.Dense) > 0 {
		add(func(e *codec.Encoded) { e.Dense = e.Dense[:len(e.Dense)-1] })
		add(func(e *codec.Encoded) { e.Dense[0] = math.Inf(1) })
	}
	if len(enc.Idx) > 0 {
		add(func(e *codec.Encoded) { e.Idx[0] = int32(e.Dim + 5) })
		add(func(e *codec.Encoded) { e.Val = e.Val[:len(e.Val)-1] })
		add(func(e *codec.Encoded) { e.Val[0] = math.NaN() })
	}
	if len(enc.Q) > 0 {
		add(func(e *codec.Encoded) { e.Q = e.Q[:len(e.Q)-1] })
		add(func(e *codec.Encoded) { e.Levels = 0 })
		add(func(e *codec.Encoded) { e.Scale = math.Inf(1) })
	}
	if len(enc.Sign) > 0 {
		add(func(e *codec.Encoded) { e.Sign = e.Sign[:len(e.Sign)-1] })
	}
	return bad
}

// CheckCodecMalformedRejection asserts that a codec refuses every corrupted
// variant of its own wire form with an error instead of fabricating a
// gradient.
func CheckCodecMalformedRejection(reg *codec.Registry, name string, seed int64) error {
	c, err := reg.Build(name, codec.Params{})
	if err != nil {
		return fmt.Errorf("build codec %s: %w", name, err)
	}
	g := tensor.RandNormal(tensor.NewRNG(seed), CodecDim, 0, 1)
	enc, err := c.Encode(g, tensor.NewRNG(seed+1))
	if err != nil {
		return fmt.Errorf("codec %s encode: %w", name, err)
	}
	for i, e := range MalformedPayloads(enc) {
		if _, err := c.Decode(e); err == nil {
			return fmt.Errorf("codec %s decoded malformed payload %d without an error", name, i)
		}
	}
	return nil
}
