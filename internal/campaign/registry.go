package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
)

// DatasetBuilder binds a dataset key to its loader and model family.
type DatasetBuilder struct {
	// LR is the learning rate used with this dataset's model.
	LR float64
	// Load builds the dataset at the given sizes.
	Load func(seed int64, train, test int) (*data.Dataset, error)
	// NewModel builds the global model.
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
}

// RuleBuilder constructs a fresh aggregation rule for a cell. n is the
// client count, f the Byzantine count granted to the baselines.
type RuleBuilder func(c Cell, n, f int, seed int64) (aggregate.Rule, error)

// AttackBuilder constructs a fresh attack for a cell.
type AttackBuilder func(c Cell, seed int64) (attack.Attack, error)

// ProbeInstance is a live per-cell observer: Hook sees every round, Finish
// serializes whatever the probe collected into the stored result.
type ProbeInstance struct {
	Hook   func(*fl.RoundState)
	Finish func() (json.RawMessage, error)
}

// ProbeBuilder constructs a probe instance for a cell.
type ProbeBuilder func(c Cell) (*ProbeInstance, error)

// Registry resolves the names inside cells to concrete builders. The zero
// value is unusable; use NewRegistry.
type Registry struct {
	datasets map[string]DatasetBuilder
	rules    map[string]RuleBuilder
	attacks  map[string]AttackBuilder
	probes   map[string]ProbeBuilder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		datasets: map[string]DatasetBuilder{},
		rules:    map[string]RuleBuilder{},
		attacks:  map[string]AttackBuilder{},
		probes:   map[string]ProbeBuilder{},
	}
}

// RegisterDataset binds key to a dataset builder.
func (r *Registry) RegisterDataset(key string, b DatasetBuilder) { r.datasets[key] = b }

// RegisterRule binds name to a rule builder.
func (r *Registry) RegisterRule(name string, b RuleBuilder) { r.rules[name] = b }

// RegisterAttack binds name to an attack builder.
func (r *Registry) RegisterAttack(name string, b AttackBuilder) { r.attacks[name] = b }

// RegisterProbe binds name to a probe builder.
func (r *Registry) RegisterProbe(name string, b ProbeBuilder) { r.probes[name] = b }

func (r *Registry) dataset(key string) (DatasetBuilder, error) {
	b, ok := r.datasets[key]
	if !ok {
		return DatasetBuilder{}, fmt.Errorf("campaign: unknown dataset %q", key)
	}
	return b, nil
}

func (r *Registry) rule(name string) (RuleBuilder, error) {
	b, ok := r.rules[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown rule %q", name)
	}
	return b, nil
}

func (r *Registry) attack(name string) (AttackBuilder, error) {
	b, ok := r.attacks[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown attack %q", name)
	}
	return b, nil
}

func (r *Registry) probe(name string) (ProbeBuilder, error) {
	b, ok := r.probes[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown probe %q", name)
	}
	return b, nil
}

// Validate checks that every name referenced by the spec's cells resolves,
// so a campaign fails before any cell has trained rather than mid-sweep.
func (r *Registry) Validate(spec Spec) error {
	for i, c := range spec.Cells {
		if _, err := r.dataset(c.Dataset); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if _, err := r.rule(c.Rule); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if _, err := r.attack(c.Attack); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if c.Probe != "" {
			if _, err := r.probe(c.Probe); err != nil {
				return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
			}
		}
		if c.Params.Clients <= 0 || c.Params.Rounds <= 0 {
			return fmt.Errorf("cell %d (%s): invalid params %+v", i, c.ID(), c.Params)
		}
	}
	return nil
}
