package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/sanitize"
)

// DatasetBuilder binds a dataset key to its loader and model family.
type DatasetBuilder struct {
	// LR is the learning rate used with this dataset's model.
	LR float64
	// Load builds the dataset at the given sizes.
	Load func(seed int64, train, test int) (*data.Dataset, error)
	// NewModel builds the global model.
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
}

// AttackBuilder constructs a fresh attack for a cell.
type AttackBuilder func(c Cell, seed int64) (attack.Attack, error)

// ProbeInstance is a live per-cell observer: Hook sees every round, Finish
// serializes whatever the probe collected into the stored result.
type ProbeInstance struct {
	Hook   func(*fl.RoundState)
	Finish func() (json.RawMessage, error)
}

// ProbeBuilder constructs a probe instance for a cell.
type ProbeBuilder func(c Cell) (*ProbeInstance, error)

// Registry resolves the names inside cells to concrete builders. Defenses
// resolve through a shared defense.Registry — the same catalog the CLIs
// list — so SignGuard and the baseline aggregation rules are built through
// one door, hyperparameters included. The zero value is unusable; use
// NewRegistry.
type Registry struct {
	datasets map[string]DatasetBuilder
	defenses *defense.Registry
	codecs   *codec.Registry
	attacks  map[string]AttackBuilder
	probes   map[string]ProbeBuilder
}

// NewRegistry returns an empty registry (no defenses or codecs; call
// RegisterDefenses / RegisterCodecs).
func NewRegistry() *Registry {
	return &Registry{
		datasets: map[string]DatasetBuilder{},
		defenses: defense.NewRegistry(),
		codecs:   codec.NewRegistry(),
		attacks:  map[string]AttackBuilder{},
		probes:   map[string]ProbeBuilder{},
	}
}

// RegisterDataset binds key to a dataset builder.
func (r *Registry) RegisterDataset(key string, b DatasetBuilder) { r.datasets[key] = b }

// RegisterDefenses installs the defense catalog cells resolve their Rule
// names and RuleHyper parameters against.
func (r *Registry) RegisterDefenses(d *defense.Registry) { r.defenses = d }

// Defenses returns the installed defense catalog.
func (r *Registry) Defenses() *defense.Registry { return r.defenses }

// RegisterCodecs installs the codec catalog cells resolve their Codec
// names and CodecHyper parameters against.
func (r *Registry) RegisterCodecs(c *codec.Registry) { r.codecs = c }

// Codecs returns the installed codec catalog.
func (r *Registry) Codecs() *codec.Registry { return r.codecs }

// RegisterAttack binds name to an attack builder.
func (r *Registry) RegisterAttack(name string, b AttackBuilder) { r.attacks[name] = b }

// RegisterProbe binds name to a probe builder.
func (r *Registry) RegisterProbe(name string, b ProbeBuilder) { r.probes[name] = b }

func (r *Registry) dataset(key string) (DatasetBuilder, error) {
	b, ok := r.datasets[key]
	if !ok {
		return DatasetBuilder{}, fmt.Errorf("campaign: unknown dataset %q", key)
	}
	return b, nil
}

// buildDefense constructs the cell's defense through the shared registry,
// sized to the per-round cohort the participation policy produces.
func (r *Registry) buildDefense(c Cell, f int, seed int64) (aggregate.Rule, error) {
	n := c.EffectiveCohort()
	// Under subsampling the population-level Byzantine count can exceed
	// what a per-round cohort can absorb (TrMean needs n > 2f); grant the
	// baselines the paper's Byzantine-majority bound f ≤ (n−1)/2 instead.
	// Full-participation cells keep the historical f untouched, so their
	// cached results stay byte-valid.
	if n < c.Params.Clients {
		if maxF := (n - 1) / 2; f > maxF {
			f = maxF
		}
	}
	return r.defenses.Build(c.Rule, defense.Params{
		N: n, F: f, Seed: seed, Hyper: c.RuleHyper,
	})
}

func (r *Registry) attack(name string) (AttackBuilder, error) {
	b, ok := r.attacks[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown attack %q", name)
	}
	return b, nil
}

func (r *Registry) probe(name string) (ProbeBuilder, error) {
	b, ok := r.probes[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown probe %q", name)
	}
	return b, nil
}

// codecFor builds the cell's codec stage (nil = engine default, i.e. the
// lossless identity codec).
func (r *Registry) codecFor(c Cell) (codec.Codec, error) {
	if c.Codec == "" {
		if len(c.CodecHyper) > 0 {
			return nil, fmt.Errorf("campaign: CodecHyper %v requires a Codec name", c.CodecHyper)
		}
		return nil, nil
	}
	return r.codecs.Build(c.Codec, codec.Params{Hyper: c.CodecHyper})
}

// nonFiniteFor maps a cell's NonFinitePolicy name to the sanitize policy
// the fl engine's ingest screen runs ("" = the zero policy, i.e. the
// legacy diverge-on-non-finite contract).
func nonFiniteFor(c Cell) (sanitize.Policy, error) {
	if c.NonFinitePolicy == "" {
		return 0, nil
	}
	return sanitize.ParsePolicy("NonFinitePolicy", c.NonFinitePolicy)
}

// participationFor maps a cell's participation fields to the fl stage
// (nil = engine default, i.e. full participation).
func participationFor(c Cell) (fl.Participation, error) {
	switch c.Participation {
	case "", ParticipationFull:
		if c.SampleK != 0 {
			return nil, fmt.Errorf("campaign: SampleK=%d requires %q participation", c.SampleK, ParticipationUniform)
		}
		return nil, nil
	case ParticipationUniform:
		if c.SampleK < 1 || c.SampleK > c.Params.Clients {
			return nil, fmt.Errorf("campaign: SampleK %d out of [1,%d]", c.SampleK, c.Params.Clients)
		}
		return fl.UniformSubsample{K: c.SampleK}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown participation policy %q", c.Participation)
	}
}

// Validate checks that every name referenced by the spec's cells resolves
// (defense names and their hyperparameters included), so a campaign fails
// before any cell has trained rather than mid-sweep.
func (r *Registry) Validate(spec Spec) error {
	for i, c := range spec.Cells {
		if _, err := r.dataset(c.Dataset); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if err := r.defenses.ValidateHyper(c.Rule, c.RuleHyper); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if _, err := r.attack(c.Attack); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if _, err := participationFor(c); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if _, err := nonFiniteFor(c); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
		}
		if c.Codec != "" {
			if err := r.codecs.ValidateHyper(c.Codec, c.CodecHyper); err != nil {
				return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
			}
		} else if len(c.CodecHyper) > 0 {
			return fmt.Errorf("cell %d (%s): CodecHyper %v requires a Codec name", i, c.ID(), c.CodecHyper)
		}
		if c.FastLocal && !c.BatchClients {
			return fmt.Errorf("cell %d (%s): FastLocal requires BatchClients", i, c.ID())
		}
		if c.Probe != "" {
			if _, err := r.probe(c.Probe); err != nil {
				return fmt.Errorf("cell %d (%s): %w", i, c.ID(), err)
			}
		}
		if c.Params.Clients <= 0 || c.Params.Rounds <= 0 {
			return fmt.Errorf("cell %d (%s): invalid params %+v", i, c.ID(), c.Params)
		}
	}
	return nil
}
