package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// GroupStat summarizes one quantity across a seed group: the sample mean,
// the sample standard deviation (n−1 denominator), and the half-width of
// the 95% confidence interval for the mean (Student t critical value, the
// paper's run-averaging convention). Std and CI95 are zero for singleton
// groups.
type GroupStat struct {
	Mean, Std, CI95 float64
}

// newGroupStat computes the summary of one sample.
func newGroupStat(xs []float64) GroupStat {
	n := len(xs)
	if n == 0 {
		return GroupStat{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return GroupStat{Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	return GroupStat{Mean: mean, Std: std, CI95: tCrit95(n-1) * std / math.Sqrt(float64(n))}
}

// tCrit95 returns the two-sided 95% Student t critical value for df
// degrees of freedom (normal limit beyond the table).
func tCrit95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// SeedGroup aggregates the results of one cell replicated across seeds —
// every field of the cell identical except Params.Seed — the way the paper
// averages each reported number over independent runs.
type SeedGroup struct {
	// ID is the shared cell identity (Cell.GroupID()).
	ID string
	// Cell is a representative member (the first seen), seed included.
	Cell Cell
	// Seeds lists the member seeds in result order.
	Seeds []int64
	// N is the group size (including diverged members).
	N int
	// Diverged counts members whose training diverged; their accuracies
	// still enter the statistics (a destroyed model is a result).
	Diverged int

	Best  GroupStat
	Final GroupStat
	// SelHonest / SelMalicious summarize the selection rates over the
	// members that reported them; HasSelection is false when none did.
	HasSelection bool
	SelHonest    GroupStat
	SelMalicious GroupStat
}

// GroupBySeed folds per-cell results into seed groups, preserving
// first-seen order. Results differing only in Params.Seed share a group.
func GroupBySeed(results []*CellResult) []*SeedGroup {
	type acc struct {
		g           *SeedGroup
		best, final []float64
		selH, selM  []float64
	}
	var order []*acc
	byID := map[string]*acc{}
	for _, r := range results {
		if r == nil {
			continue
		}
		id := r.Cell.GroupID()
		a, ok := byID[id]
		if !ok {
			a = &acc{g: &SeedGroup{ID: id, Cell: r.Cell}}
			byID[id] = a
			order = append(order, a)
		}
		a.g.Seeds = append(a.g.Seeds, r.Cell.Params.Seed)
		a.g.N++
		if r.Diverged {
			a.g.Diverged++
		}
		a.best = append(a.best, r.BestAccuracy)
		a.final = append(a.final, r.FinalAccuracy)
		if r.HasSelection {
			a.selH = append(a.selH, r.SelHonest)
			a.selM = append(a.selM, r.SelMalicious)
		}
	}
	out := make([]*SeedGroup, len(order))
	for i, a := range order {
		a.g.Best = newGroupStat(a.best)
		a.g.Final = newGroupStat(a.final)
		if len(a.selH) > 0 {
			a.g.HasSelection = true
			a.g.SelHonest = newGroupStat(a.selH)
			a.g.SelMalicious = newGroupStat(a.selM)
		}
		out[i] = a.g
	}
	return out
}

// groupCSVHeader is the column layout of WriteGroupCSV, one row per seed
// group.
var groupCSVHeader = []string{
	"group_id", "dataset", "rule", "attack", "n", "seeds", "diverged",
	"best_mean", "best_std", "best_ci95",
	"final_mean", "final_std", "final_ci95",
	"sel_honest_mean", "sel_honest_ci95",
	"sel_malicious_mean", "sel_malicious_ci95",
}

// WriteGroupCSV aggregates the results by seed group and emits one row per
// group with mean/std/95% CI columns.
func WriteGroupCSV(w io.Writer, results []*CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(groupCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, g := range GroupBySeed(results) {
		seeds := ""
		for i, s := range g.Seeds {
			if i > 0 {
				seeds += " "
			}
			seeds += strconv.FormatInt(s, 10)
		}
		selHMean, selHCI, selMMean, selMCI := "", "", "", ""
		if g.HasSelection {
			selHMean, selHCI = f(g.SelHonest.Mean), f(g.SelHonest.CI95)
			selMMean, selMCI = f(g.SelMalicious.Mean), f(g.SelMalicious.CI95)
		}
		row := []string{
			g.ID, g.Cell.Dataset, g.Cell.Rule, g.Cell.Attack,
			strconv.Itoa(g.N), seeds, strconv.Itoa(g.Diverged),
			f(g.Best.Mean), f(g.Best.Std), f(g.Best.CI95),
			f(g.Final.Mean), f(g.Final.Std), f(g.Final.CI95),
			selHMean, selHCI, selMMean, selMCI,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGroupJSON aggregates the results by seed group and emits the groups
// as an indented JSON array.
func WriteGroupJSON(w io.Writer, results []*CellResult) error {
	groups := GroupBySeed(results)
	if groups == nil {
		groups = []*SeedGroup{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(groups)
}

// FormatMeanCI renders a group statistic the way the tables print averaged
// runs: "mean±ci" with the given precision, or just the mean for singleton
// groups.
func FormatMeanCI(s GroupStat, prec int) string {
	if s.CI95 == 0 {
		return strconv.FormatFloat(s.Mean, 'f', prec, 64)
	}
	return fmt.Sprintf("%s±%s",
		strconv.FormatFloat(s.Mean, 'f', prec, 64),
		strconv.FormatFloat(s.CI95, 'f', prec, 64))
}
