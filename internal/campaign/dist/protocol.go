// Package dist distributes a campaign's cell grid over multiple hosts with
// an HTTP+JSON work-stealing protocol, removing the single-machine ceiling
// of the in-process engine while preserving its semantics exactly.
//
// One Coordinator owns the resolved grid and the content-addressed result
// Store. Any number of Workers join it over HTTP, lease batches of pending
// cell keys with a TTL, execute them through the same campaign.CellRunner
// path the local engine uses, and upload the results. The coordinator skips
// cells already present in the store before workers ever see them — resume
// semantics are byte-for-byte those of a local run — and requeues the cells
// of workers whose heartbeats stop, so a crashed worker costs the campaign
// its in-flight cells' wall-clock time, never their results.
//
// The protocol has five endpoints:
//
//	GET  /spec       → the resolved grid (name, unique cells + keys, lease TTL)
//	POST /lease      → lease up to Max pending cell keys for the TTL
//	POST /heartbeat  → renew every lease the calling worker holds
//	POST /result     → upload one CellResult (idempotent: duplicates are
//	                   acknowledged and discarded)
//	GET  /status     → scheduling counters, for dashboards and polling
//
// Determinism: cell results do not depend on which worker executes a cell
// or in what order cells run, so a grid distributed over N workers produces
// results identical to a local run — the equivalence is asserted by this
// package's tests down to the exported group-json bytes.
package dist

import "github.com/signguard/signguard/internal/campaign"

// Endpoint paths of the coordinator protocol.
const (
	PathSpec      = "/spec"
	PathLease     = "/lease"
	PathHeartbeat = "/heartbeat"
	PathResult    = "/result"
	PathStatus    = "/status"
)

// SpecCell is one unique grid cell with its precomputed content hash.
// Workers recompute the hash from the cell and refuse to run on mismatch —
// a coordinator and a worker built from diverged sources must not share a
// store.
type SpecCell struct {
	Key  string
	Cell campaign.Cell
}

// SpecResponse is the GET /spec payload: the fully-resolved grid, so a
// worker needs only the coordinator URL (plus its own builder registry) to
// join a campaign.
type SpecResponse struct {
	// Name is the campaign name.
	Name string
	// Cells lists every unique cell of the grid in spec order, cached ones
	// included (they are never leased, but workers may want the full grid).
	Cells []SpecCell
	// TTLMillis is the lease lifetime; workers heartbeat a few times per
	// TTL to keep their leases alive.
	TTLMillis int64
}

// LeaseRequest asks for up to Max pending cells on behalf of WorkerID.
type LeaseRequest struct {
	WorkerID string
	// Max caps the batch (values < 1 lease a single cell; the coordinator
	// also applies its own LeaseMax cap).
	Max int
}

// LeaseResponse carries the leased keys. An empty Keys with Done false
// means every remaining cell is leased to other workers: poll again (the
// keys come back if their holder dies). Done true means the campaign is
// complete and the worker can exit.
type LeaseResponse struct {
	Keys      []string
	TTLMillis int64
	Done      bool
}

// HeartbeatRequest renews every lease WorkerID holds.
type HeartbeatRequest struct {
	WorkerID string
}

// HeartbeatResponse reports the renewal. Renewed == 0 tells a live worker
// its leases expired (its cells may already be re-leased elsewhere, and its
// uploads may be acknowledged as duplicates).
type HeartbeatResponse struct {
	Renewed int
	Done    bool
}

// ResultResponse acknowledges a POST /result upload (the request body is
// the campaign.CellResult JSON itself).
type ResultResponse struct {
	// Duplicate reports that the cell had already been completed — the
	// upload was acknowledged and discarded. Uploads after a lease expiry
	// are normal, not errors: completion is idempotent.
	Duplicate bool
	Done      bool
}

// StatusResponse is the GET /status payload.
type StatusResponse struct {
	Name string
	// Total = CacheHits + Completed + Leased + Pending.
	Total     int
	Pending   int
	Leased    int
	Completed int
	// CacheHits counts cells served from the store when the coordinator
	// started — never scheduled at all.
	CacheHits int
	// Duplicates counts discarded re-uploads of already-completed cells.
	Duplicates int
	Done       bool
}
