package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/campaign"
)

// Defaults of the coordinator's tunables.
const (
	// DefaultTTL is the lease lifetime: a worker that stops heartbeating
	// for this long has its cells requeued.
	DefaultTTL = 2 * time.Minute
	// DefaultLeaseMax caps how many cells one /lease call can take,
	// whatever the request asks for, so a single greedy worker cannot
	// starve late joiners.
	DefaultLeaseMax = 16
	// maxResultBytes bounds a /result body; a full evaluation trace is a
	// few kilobytes, so this is generous headroom, not a practical limit.
	maxResultBytes = 64 << 20
)

// Config describes a coordinator.
type Config struct {
	// Spec is the resolved grid to distribute (required, non-empty).
	Spec campaign.Spec
	// Store persists uploaded results and pre-answers cached cells
	// (required — a distributed campaign without a store would discard its
	// own output).
	Store *campaign.Store
	// TTL is the lease lifetime (0 = DefaultTTL).
	TTL time.Duration
	// LeaseMax caps the per-request lease batch (0 = DefaultLeaseMax).
	LeaseMax int
	// Now supplies the scheduler clock (nil = time.Now). Injectable so
	// failure tests expire leases by advancing a fake clock, not sleeping.
	Now func() time.Time
	// Logf, when non-nil, receives scheduling events (leases, completions,
	// requeues).
	Logf func(format string, args ...any)
}

// Coordinator owns a campaign's scheduling state and serves the
// work-stealing protocol. Create one with New, mount Handler on an HTTP
// server, and Wait for completion.
type Coordinator struct {
	cfg   Config
	name  string
	cells map[string]campaign.Cell
	spec  SpecResponse // precomputed GET /spec payload

	total     int
	cacheHits int
	queue     *campaign.Queue

	mu         sync.Mutex
	completed  int
	duplicates int
	doneCh     chan struct{}
	doneClosed bool
}

// New builds a coordinator over the spec: it deduplicates the grid by
// content hash, serves every cell already present in the store as a cache
// hit (those cells are never leased — the same resume rule the local engine
// applies), and queues the rest.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Spec.Cells) == 0 {
		return nil, fmt.Errorf("dist: campaign %q has no cells", cfg.Spec.Name)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("dist: coordinator requires a store")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.LeaseMax <= 0 {
		cfg.LeaseMax = DefaultLeaseMax
	}

	c := &Coordinator{
		cfg:    cfg,
		name:   cfg.Spec.Name,
		cells:  map[string]campaign.Cell{},
		doneCh: make(chan struct{}),
	}
	var pending []string
	for i, cell := range cfg.Spec.Cells {
		key, err := cell.Key()
		if err != nil {
			return nil, fmt.Errorf("dist: hashing cell %d: %w", i, err)
		}
		if _, seen := c.cells[key]; seen {
			continue
		}
		c.cells[key] = cell
		c.spec.Cells = append(c.spec.Cells, SpecCell{Key: key, Cell: cell})
		if _, ok := cfg.Store.Get(key); ok {
			c.cacheHits++
			continue
		}
		pending = append(pending, key)
	}
	c.total = len(c.cells)
	c.spec.Name = c.name
	c.spec.TTLMillis = cfg.TTL.Milliseconds()
	c.queue = campaign.NewQueue(pending, cfg.TTL, cfg.Now)
	if len(pending) == 0 {
		close(c.doneCh)
		c.doneClosed = true
	}
	c.logf("dist: %s: %d cells (%d cached, %d pending), lease ttl %v",
		c.name, c.total, c.cacheHits, len(pending), cfg.TTL)
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Done reports whether every cell of the grid is in the store.
func (c *Coordinator) Done() bool {
	return c.queue.Done()
}

// Wait blocks until the campaign completes or ctx is cancelled. On
// completion it flushes the store index.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return c.cfg.Store.Flush()
	case <-ctx.Done():
		// Keep whatever finished indexed; a re-serve resumes from it.
		_ = c.cfg.Store.Flush()
		return ctx.Err()
	}
}

// Status snapshots the scheduling counters.
func (c *Coordinator) Status() StatusResponse {
	pending, leased, done, _ := c.queue.Stats()
	c.mu.Lock()
	dup := c.duplicates
	c.mu.Unlock()
	return StatusResponse{
		Name:       c.name,
		Total:      c.total,
		Pending:    pending,
		Leased:     leased,
		Completed:  done,
		CacheHits:  c.cacheHits,
		Duplicates: dup,
		Done:       done+c.cacheHits == c.total,
	}
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSpec, c.handleSpec)
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathResult, c.handleResult)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return mux
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v, rejecting trailing garbage.
func readJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	if dec.More() {
		http.Error(w, "bad request body: trailing data after JSON value", http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.spec)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Status())
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, 1<<20, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "lease requires a WorkerID", http.StatusBadRequest)
		return
	}
	max := req.Max
	if max > c.cfg.LeaseMax {
		max = c.cfg.LeaseMax
	}
	keys := c.queue.Lease(req.WorkerID, max)
	if len(keys) > 0 {
		c.logf("dist: %s: leased %d cells to %s", c.name, len(keys), req.WorkerID)
	}
	writeJSON(w, LeaseResponse{
		Keys:      keys,
		TTLMillis: c.cfg.TTL.Milliseconds(),
		Done:      c.queue.Done(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, 1<<20, &req) {
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "heartbeat requires a WorkerID", http.StatusBadRequest)
		return
	}
	writeJSON(w, HeartbeatResponse{
		Renewed: c.queue.Heartbeat(req.WorkerID),
		Done:    c.queue.Done(),
	})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var res campaign.CellResult
	if !readJSON(w, r, maxResultBytes, &res) {
		return
	}
	cell, known := c.cells[res.Key]
	if !known {
		http.Error(w, fmt.Sprintf("result key %q is not a cell of campaign %s", res.Key, c.name), http.StatusNotFound)
		return
	}
	// Integrity: the uploaded cell must hash to the key it claims — a
	// worker whose cell hashing diverged from the coordinator's must not
	// poison the shared store.
	wantKey, err := res.Cell.Key()
	if err != nil || wantKey != res.Key {
		http.Error(w, fmt.Sprintf("result cell %s does not hash to its key", res.Cell.ID()), http.StatusBadRequest)
		return
	}

	// Put before Complete: a cell is only retired once its result is
	// durable. Duplicate uploads re-Put identical content — harmless, and
	// simpler than racing Complete against the store write.
	if err := c.cfg.Store.Put(&res); err != nil {
		http.Error(w, fmt.Sprintf("storing result: %v", err), http.StatusInternalServerError)
		return
	}
	fresh := c.queue.Complete(res.Key)
	done := c.queue.Done()

	c.mu.Lock()
	if fresh {
		c.completed++
		c.logf("dist: %s: %d/%d %s", c.name, c.completed+c.cacheHits, c.total, cell.ID())
	} else {
		c.duplicates++
		c.logf("dist: %s: duplicate result for %s discarded", c.name, cell.ID())
	}
	if done && !c.doneClosed {
		c.doneClosed = true
		close(c.doneCh)
	}
	c.mu.Unlock()

	writeJSON(w, ResultResponse{Duplicate: !fresh, Done: done})
}
