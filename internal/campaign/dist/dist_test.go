package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/campaign/dist"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/nn"
)

// testRegistry is a minimal self-contained registry: one tiny synthetic
// dataset, two rules, one attack — enough to exercise every scheduler path
// in well under a second per cell.
func testRegistry() *campaign.Registry {
	reg := campaign.NewRegistry()
	reg.RegisterDataset("tiny", campaign.DatasetBuilder{
		LR: 0.1,
		Load: func(seed int64, train, test int) (*data.Dataset, error) {
			return data.GenerateSynthImage(data.SynthImageConfig{
				Name: "tiny", Classes: 4, C: 1, H: 4, W: 4, Train: train, Test: test,
				Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: seed,
			})
		},
		NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
			return nn.NewMLP(rng, 16, 12, 4)
		},
	})
	defs := defense.NewRegistry()
	if err := defs.Register(defense.Spec{Name: "Mean", Build: func(defense.Params) (aggregate.Rule, error) {
		return aggregate.NewMean(), nil
	}}); err != nil {
		panic(err)
	}
	if err := defs.Register(defense.Spec{Name: "TrMean", Build: func(p defense.Params) (aggregate.Rule, error) {
		return aggregate.NewTrimmedMean(p.F), nil
	}}); err != nil {
		panic(err)
	}
	reg.RegisterDefenses(defs)
	reg.RegisterCodecs(codec.Builtin())
	reg.RegisterAttack("SignFlip", func(_ campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewSignFlip(), nil
	})
	return reg
}

func tinyParams(seed int64) campaign.Params {
	return campaign.Params{
		Clients: 6, ByzFraction: 0.34, Rounds: 4, BatchSize: 4,
		EvalEvery: 2, EvalSamples: 30, TrainSize: 120, TestSize: 40, Seed: seed,
	}
}

// testSpec is a 2 rules × 2 seeds grid: 4 unique cells.
func testSpec() campaign.Spec {
	spec := campaign.Spec{Name: "dist-test"}
	for _, rule := range []string{"Mean", "TrMean"} {
		for _, seed := range []int64{1, 2} {
			spec.Cells = append(spec.Cells, campaign.NewCell("tiny", rule, "SignFlip", tinyParams(seed)))
		}
	}
	return spec
}

func openStore(t *testing.T) *campaign.Store {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// fakeClock drives lease expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// post sends a JSON request directly to the coordinator's test server —
// the raw protocol, for simulating misbehaving or crashing workers.
func post[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func newWorker(url, id string, reg *campaign.Registry, slots int) *dist.Worker {
	return &dist.Worker{
		URL:      url,
		ID:       id,
		Runner:   &campaign.Runner{Registry: reg, SimWorkers: 1},
		Registry: reg,
		Slots:    slots,
		Poll:     time.Millisecond,
	}
}

// keysOf returns the spec's unique cell keys in spec order.
func keysOf(t *testing.T, spec campaign.Spec) []string {
	t.Helper()
	var keys []string
	seen := map[string]bool{}
	for _, c := range spec.Cells {
		k, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// exportGroupJSON renders the spec's stored results (spec order) through
// the seed-group JSON exporter — the byte-level artifact the determinism
// acceptance criterion compares.
func exportGroupJSON(t *testing.T, store *campaign.Store, spec campaign.Spec) []byte {
	t.Helper()
	var results []*campaign.CellResult
	for _, key := range keysOf(t, spec) {
		res, ok := store.Get(key)
		if !ok {
			t.Fatalf("store is missing cell %s", key)
		}
		results = append(results, res)
	}
	var buf bytes.Buffer
	if err := campaign.WriteGroupJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedMatchesLocal is the determinism acceptance criterion: the
// same grid run by the in-process engine and by an in-process coordinator
// with three concurrent workers must export byte-identical group-json, and
// every per-cell result must hash identically.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := testSpec()
	// A stochastic-codec cell rides along: its RNG stream must land
	// identically whether the cell runs in-process or on a leased worker.
	qsgd := campaign.NewCell("tiny", "TrMean", "SignFlip", tinyParams(3))
	qsgd.Codec = "qsgd"
	qsgd.CodecHyper = map[string]float64{"levels": 8}
	spec.Cells = append(spec.Cells, qsgd)

	localStore := openStore(t)
	e := &campaign.Engine{Registry: testRegistry(), Store: localStore, Workers: 2, SimWorkers: 1}
	if _, err := e.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	distStore := openStore(t)
	coord, err := dist.New(dist.Config{Spec: spec, Store: distStore, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = newWorker(ts.URL, fmt.Sprintf("w%d", i), testRegistry(), 1).Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !coord.Done() {
		t.Fatal("coordinator not done after all workers exited")
	}

	// Per-cell: identical content hashes (DurationMS excluded by Hash).
	for _, key := range keysOf(t, spec) {
		lr, ok := localStore.Get(key)
		if !ok {
			t.Fatalf("local store missing %s", key)
		}
		dr, ok := distStore.Get(key)
		if !ok {
			t.Fatalf("dist store missing %s", key)
		}
		lh, err := lr.Hash()
		if err != nil {
			t.Fatal(err)
		}
		dh, err := dr.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if lh != dh {
			t.Errorf("cell %s: local hash %s != distributed %s", lr.Cell.ID(), lh, dh)
		}
	}

	// Whole artifact: byte-identical group-json exports.
	local := exportGroupJSON(t, localStore, spec)
	distributed := exportGroupJSON(t, distStore, spec)
	if !bytes.Equal(local, distributed) {
		t.Errorf("group-json exports differ:\nlocal:\n%s\ndistributed:\n%s", local, distributed)
	}
}

// TestWorkerCrashLeaseExpiry injects the headline failure: a worker leases
// cells and dies mid-cell without ever uploading. After the TTL its cells
// are requeued and a second worker completes the whole grid.
func TestWorkerCrashLeaseExpiry(t *testing.T) {
	spec := testSpec()
	store := openStore(t)
	clock := newFakeClock()
	coord, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	// The crasher takes two cells and is never heard from again.
	code, lease := post[dist.LeaseResponse](t, ts.URL+dist.PathLease, dist.LeaseRequest{WorkerID: "crasher", Max: 2})
	if code != http.StatusOK || len(lease.Keys) != 2 {
		t.Fatalf("crasher lease: code %d keys %v", code, lease.Keys)
	}
	st := coord.Status()
	if st.Leased != 2 || st.Pending != 2 {
		t.Fatalf("after crash lease: %+v", st)
	}

	// Before the TTL the crashed cells stay held: a rescuer that drains
	// the queue completes only the two free cells... (sanity via status)
	clock.Advance(59 * time.Second)
	if st := coord.Status(); st.Leased != 2 {
		t.Fatalf("leases expired before TTL: %+v", st)
	}

	// ...but past the TTL they requeue, and the rescuer finishes the grid.
	clock.Advance(2 * time.Second)
	stats, err := newWorker(ts.URL, "rescuer", testRegistry(), 2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 4 {
		t.Errorf("rescuer executed %d cells, want all 4 (crashed cells requeued)", stats.Executed)
	}
	if stats.Duplicates != 0 {
		t.Errorf("rescuer saw %d duplicates, want 0", stats.Duplicates)
	}
	if !coord.Done() {
		t.Error("campaign not done after rescue")
	}
	for _, key := range keysOf(t, spec) {
		if _, ok := store.Get(key); !ok {
			t.Errorf("store missing cell %s after rescue", key)
		}
	}
}

// TestDuplicateResultUpload injects the expired-but-alive race: a worker's
// lease expires, another worker completes the cell, and the original upload
// arrives late. The store Put is idempotent and the coordinator reports a
// duplicate instead of failing either worker.
func TestDuplicateResultUpload(t *testing.T) {
	spec := campaign.Spec{Name: "dup", Cells: []campaign.Cell{
		campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1)),
	}}
	store := openStore(t)
	coord, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	key := keysOf(t, spec)[0]
	runner := &campaign.Runner{Registry: testRegistry(), SimWorkers: 1}
	res, err := runner.RunCell(spec.Cells[0], key)
	if err != nil {
		t.Fatal(err)
	}

	code, first := post[dist.ResultResponse](t, ts.URL+dist.PathResult, res)
	if code != http.StatusOK || first.Duplicate {
		t.Fatalf("first upload: code %d, %+v", code, first)
	}
	if !first.Done {
		t.Fatal("single-cell campaign not done after first upload")
	}
	code, second := post[dist.ResultResponse](t, ts.URL+dist.PathResult, res)
	if code != http.StatusOK || !second.Duplicate {
		t.Fatalf("second upload: code %d, %+v (want acknowledged duplicate)", code, second)
	}
	st := coord.Status()
	if st.Completed != 1 || st.Duplicates != 1 || !st.Done {
		t.Errorf("status after duplicate: %+v", st)
	}
	if _, ok := store.Get(key); !ok {
		t.Error("result missing from store")
	}
}

// TestResultUploadRejectsForeignAndForgedCells: results for keys outside
// the grid are 404, and a result whose cell does not hash to its claimed
// key (mismatched builds) is 400 — neither reaches the store.
func TestResultUploadRejectsForeignAndForgedCells(t *testing.T) {
	spec := testSpec()
	store := openStore(t)
	coord, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	foreign := &campaign.CellResult{Key: "deadbeef", Cell: spec.Cells[0]}
	if code, _ := post[dist.ResultResponse](t, ts.URL+dist.PathResult, foreign); code != http.StatusNotFound {
		t.Errorf("foreign key upload: code %d, want 404", code)
	}

	key := keysOf(t, spec)[0]
	forged := &campaign.CellResult{Key: key, Cell: spec.Cells[1]} // wrong cell under a real key
	if code, _ := post[dist.ResultResponse](t, ts.URL+dist.PathResult, forged); code != http.StatusBadRequest {
		t.Errorf("forged cell upload: code %d, want 400", code)
	}
	if _, ok := store.Get(key); ok {
		t.Error("rejected upload reached the store")
	}
	if st := coord.Status(); st.Completed != 0 {
		t.Errorf("rejected uploads completed cells: %+v", st)
	}
}

// TestCoordinatorRestartWarmStore injects a coordinator crash: a fresh
// coordinator over the same spec and store must resume exactly like the
// local engine — fully-cached grids are done on arrival and workers joining
// them exit immediately with zero executions.
func TestCoordinatorRestartWarmStore(t *testing.T) {
	spec := testSpec()
	store := openStore(t)

	first, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	if _, err := newWorker(ts.URL, "w0", testRegistry(), 2).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close() // coordinator "crashes" after completion

	// Restart: same grid, same (now warm) store.
	second, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Done() {
		t.Fatal("restarted coordinator not done against a warm store")
	}
	st := second.Status()
	if st.CacheHits != 4 || st.Pending != 0 || st.Completed != 0 {
		t.Fatalf("restart status: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := second.Wait(ctx); err != nil {
		t.Fatalf("Wait on a done coordinator: %v", err)
	}

	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	stats, err := newWorker(ts2.URL, "late", testRegistry(), 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Errorf("worker executed %d cells against a fully-cached grid", stats.Executed)
	}
}

// TestPartialResume: a coordinator restart over a store holding a strict
// subset of results schedules only the missing cells.
func TestPartialResume(t *testing.T) {
	spec := testSpec()
	store := openStore(t)

	// Warm exactly one cell.
	keys := keysOf(t, spec)
	runner := &campaign.Runner{Registry: testRegistry(), SimWorkers: 1}
	res, err := runner.RunCell(spec.Cells[0], keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(res); err != nil {
		t.Fatal(err)
	}

	coord, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if st := coord.Status(); st.CacheHits != 1 || st.Pending != 3 {
		t.Fatalf("partial resume status: %+v", st)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	stats, err := newWorker(ts.URL, "resumer", testRegistry(), 2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 3 {
		t.Errorf("resumer executed %d cells, want 3", stats.Executed)
	}
	if !coord.Done() {
		t.Error("campaign not done after partial resume")
	}
}

// TestWorkerRejectsUnknownGrid: a worker whose registry cannot build the
// grid fails on join, before leasing anything.
func TestWorkerRejectsUnknownGrid(t *testing.T) {
	spec := campaign.Spec{Name: "alien", Cells: []campaign.Cell{
		campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1)),
	}}
	store := openStore(t)
	coord, err := dist.New(dist.Config{Spec: spec, Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	// A registry without the "tiny" dataset cannot run this grid.
	empty := campaign.NewRegistry()
	if _, err := newWorker(ts.URL, "naive", empty, 1).Run(context.Background()); err == nil {
		t.Fatal("worker with an incompatible registry joined anyway")
	}
	if st := coord.Status(); st.Leased != 0 {
		t.Errorf("rejected worker holds leases: %+v", st)
	}
}
