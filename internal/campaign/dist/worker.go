package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/parallel"
)

// Worker joins a coordinator and executes leased cells until the campaign
// completes. Cells run through the same campaign.CellRunner implementation
// the in-process engine uses, so a distributed worker produces results
// byte-identical to a local run of the same grid.
type Worker struct {
	// URL is the coordinator base URL, e.g. "http://host:9090" (required).
	URL string
	// ID names this worker in leases and heartbeats ("" = host-pid).
	ID string
	// Runner executes leased cells (required).
	Runner campaign.CellRunner
	// Registry, when non-nil, validates the fetched grid before any cell
	// runs, so a worker missing a dataset/rule/attack fails on join rather
	// than mid-campaign.
	Registry *campaign.Registry
	// CheckSpec, when non-nil, vets the joined grid after Registry
	// validation and before any cell is leased — the hook behind operator
	// policy like `campaign work -codec`, which refuses grids whose cells
	// use a codec other than the pinned one.
	CheckSpec func(campaign.Spec) error
	// Slots is the number of cells executed concurrently (0 = 1).
	Slots int
	// Batch is how many cells each slot leases per request (0 = 1). Larger
	// batches amortize round-trips at the cost of coarser stealing.
	Batch int
	// Poll is the idle wait between empty leases while peers still hold
	// cells (0 = 2s).
	Poll time.Duration
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes one Worker.Run.
type WorkerStats struct {
	// Executed counts cells this worker trained; Duplicates counts those
	// whose upload the coordinator discarded because another worker had
	// already completed them (normal after a lease expiry).
	Executed   int
	Duplicates int
	Elapsed    time.Duration
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// getJSON fetches URL+path into out.
func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

// postJSON posts in to URL+path and decodes the response into out.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.client().Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return &protocolError{method: req.Method, path: req.URL.Path, status: resp.Status, msg: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// protocolError is an HTTP-level rejection: the coordinator was reachable
// and refused the request. Unlike transport failures it is never retried.
type protocolError struct {
	method, path, status, msg string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("dist: %s %s: %s: %s", e.method, e.path, e.status, e.msg)
}

// retry runs call with a few wait-spaced retries on transport failures —
// a coordinator mid-restart, one that shut down moments after handing out
// its last Done, or one started just after its workers. Protocol
// rejections and context cancellation return immediately.
func (w *Worker) retry(ctx context.Context, what string, wait time.Duration, call func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			w.logf("dist: retrying %s after transport error: %v", what, err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		err = call()
		var pe *protocolError
		if err == nil || errors.As(err, &pe) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// postRetry is postJSON through the retry policy.
func (w *Worker) postRetry(ctx context.Context, path string, in, out any, wait time.Duration) error {
	return w.retry(ctx, path, wait, func() error { return w.postJSON(ctx, path, in, out) })
}

// Run joins the coordinator and works until the campaign is done or a cell
// fails. Cell failures are fail-fast worker-side (matching the local
// engine); the failed worker's remaining leases expire and return to the
// queue for other workers.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	if w.URL == "" || w.Runner == nil {
		return stats, fmt.Errorf("dist: worker requires URL and Runner")
	}
	id := w.id()
	start := time.Now()

	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	batch := w.Batch
	if batch < 1 {
		batch = 1
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 2 * time.Second
	}

	var spec SpecResponse
	if err := w.retry(ctx, PathSpec, poll, func() error {
		return w.getJSON(ctx, PathSpec, &spec)
	}); err != nil {
		return stats, err
	}
	// Hash drift guard: every cell must hash locally to the key the
	// coordinator advertises. A mismatch means coordinator and worker
	// binaries disagree on cell semantics and must not share a store.
	cells := make(map[string]campaign.Cell, len(spec.Cells))
	for _, sc := range spec.Cells {
		key, err := sc.Cell.Key()
		if err != nil {
			return stats, fmt.Errorf("dist: hashing cell %s: %w", sc.Cell.ID(), err)
		}
		if key != sc.Key {
			return stats, fmt.Errorf("dist: cell %s hashes to %s locally but %s at the coordinator — mismatched builds",
				sc.Cell.ID(), key, sc.Key)
		}
		cells[sc.Key] = sc.Cell
	}
	if w.Registry != nil || w.CheckSpec != nil {
		grid := campaign.Spec{Name: spec.Name}
		for _, sc := range spec.Cells {
			grid.Cells = append(grid.Cells, sc.Cell)
		}
		if w.Registry != nil {
			if err := w.Registry.Validate(grid); err != nil {
				return stats, fmt.Errorf("dist: campaign %s not runnable here: %w", spec.Name, err)
			}
		}
		if w.CheckSpec != nil {
			if err := w.CheckSpec(grid); err != nil {
				return stats, fmt.Errorf("dist: campaign %s refused by worker policy: %w", spec.Name, err)
			}
		}
	}
	ttl := time.Duration(spec.TTLMillis) * time.Millisecond
	w.logf("dist: %s: joined campaign %s (%d cells, ttl %v)", id, spec.Name, len(spec.Cells), ttl)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One heartbeat loop for the whole worker renews every lease it holds,
	// several times per TTL so a single dropped request cannot expire a
	// healthy worker's cells.
	var hbWG sync.WaitGroup
	if interval := ttl / 3; interval > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
					var resp HeartbeatResponse
					// Transient failures are fine: the next beat retries
					// well before the TTL runs out.
					_ = w.postJSON(runCtx, PathHeartbeat, HeartbeatRequest{WorkerID: id}, &resp)
				}
			}
		}()
	}

	var mu sync.Mutex
	var firstErr error
	// done flips once any slot observes campaign completion; from then on
	// every slot winds down and errors are expected noise (the coordinator
	// may already have shut down), not failures.
	var done atomic.Bool
	finish := func() {
		done.Store(true)
		cancel()
	}
	fail := func(err error) {
		if done.Load() {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	parallel.Run(slots, func(int) {
		for runCtx.Err() == nil {
			var lease LeaseResponse
			if err := w.postRetry(runCtx, PathLease, LeaseRequest{WorkerID: id, Max: batch}, &lease, poll); err != nil {
				fail(err)
				return
			}
			if len(lease.Keys) == 0 {
				if lease.Done {
					finish()
					return
				}
				// Everything pending is leased elsewhere; poll for
				// requeues from expired leases.
				select {
				case <-runCtx.Done():
				case <-time.After(poll):
				}
				continue
			}
			for _, key := range lease.Keys {
				if runCtx.Err() != nil {
					return
				}
				cell, ok := cells[key]
				if !ok {
					fail(fmt.Errorf("dist: coordinator leased unknown cell key %s", key))
					return
				}
				t0 := time.Now()
				res, err := w.Runner.RunCell(cell, key)
				if err != nil {
					fail(fmt.Errorf("dist: cell %s: %w", cell.ID(), err))
					return
				}
				var ack ResultResponse
				if err := w.postRetry(runCtx, PathResult, res, &ack, poll); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				stats.Executed++
				if ack.Duplicate {
					stats.Duplicates++
				}
				mu.Unlock()
				w.logf("dist: %s: %s in %v%s", id, cell.ID(),
					time.Since(t0).Round(time.Millisecond),
					map[bool]string{true: " (duplicate)", false: ""}[ack.Duplicate])
				if ack.Done {
					// This upload finished the campaign: no cell can be
					// pending or leased anywhere, including in this batch.
					finish()
					return
				}
			}
		}
	})
	cancel()
	hbWG.Wait()

	stats.Elapsed = time.Since(start)
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, ctx.Err()
}
