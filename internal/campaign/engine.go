package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/parallel"
)

// ProgressEvent describes one completed cell, for progress/ETA reporting.
type ProgressEvent struct {
	Spec string
	// Done cells out of Total, of which CacheHits came from the store.
	Done, Total, CacheHits int
	// Cell that just finished, its Key, and whether it was a cache hit.
	Cell   Cell
	Key    string
	Cached bool
	// Duration of this cell's execution (0 for cache hits), total Elapsed
	// campaign time, and the estimated time to completion extrapolated
	// from the mean executed-cell duration and the remaining cell count.
	Duration time.Duration
	Elapsed  time.Duration
	ETA      time.Duration
}

// Report is the outcome of one campaign run.
type Report struct {
	Spec string
	// Results holds one entry per spec cell, in spec order. Cells with
	// identical keys share a single entry.
	Results []*CellResult
	// Executed counts freshly-computed unique cells; CacheHits counts
	// unique cells served from the store.
	Executed, CacheHits int
	Elapsed             time.Duration
}

// Engine runs campaigns: it expands a spec, deduplicates cells by content
// hash, serves cached cells from the Store, and executes the rest on a
// bounded worker pool. Results are deterministic: for a fixed spec, every
// worker count produces identical per-cell results.
type Engine struct {
	// Registry resolves cell names (required).
	Registry *Registry
	// Store memoizes results; nil disables caching.
	Store *Store
	// Workers bounds concurrent cell executions (0 = GOMAXPROCS).
	Workers int
	// SimWorkers bounds the in-simulation parallelism of each cell: the
	// per-client gradient phase and the aggregation-rule kernels (via
	// fl.Config.Workers). 0 picks automatically: cells left over after the
	// cell-level pool has claimed the CPUs run single-threaded, and a
	// single-worker engine hands all CPUs to the simulation instead.
	SimWorkers int
	// BatchClients computes every cell's local gradients through the
	// batched engine (see Runner.BatchClients). Byte-identical to the
	// per-client path, so cached results remain valid either way.
	BatchClients bool
	// Codec, when non-empty, stamps the named compression codec (with
	// CodecHyper) onto every cell of every spec before hashing — the
	// engine-level form of the -codec grid axis, used where specs are
	// built out of the caller's reach (cmd/reproduce's renderers). Unlike
	// SimWorkers/BatchClients this IS cell identity: stamped cells hash
	// and cache separately from their uncompressed originals.
	Codec      string
	CodecHyper map[string]float64
	// Progress, when non-nil, observes every completed cell. It is called
	// from worker goroutines under the engine's bookkeeping lock, so
	// callbacks need no further synchronization.
	Progress func(ProgressEvent)
}

func (e *Engine) workers() int {
	return parallel.Resolve(e.Workers)
}

func (e *Engine) simWorkers(cellWorkers int) int {
	if e.SimWorkers > 0 {
		return e.SimWorkers
	}
	per := parallel.Default() / cellWorkers
	if per < 1 {
		per = 1
	}
	return per
}

// dsKey identifies one loaded dataset instance.
type dsKey struct {
	name        string
	seed        int64
	train, test int
}

// dsCache loads each distinct dataset exactly once, even under concurrent
// first requests (per-entry sync.Once).
type dsCache struct {
	mu sync.Mutex
	m  map[dsKey]*dsEntry
}

type dsEntry struct {
	once sync.Once
	ds   *data.Dataset
	err  error
}

func (c *dsCache) get(k dsKey, load func() (*data.Dataset, error)) (*data.Dataset, error) {
	c.mu.Lock()
	ent, ok := c.m[k]
	if !ok {
		ent = &dsEntry{}
		c.m[k] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() { ent.ds, ent.err = load() })
	return ent.ds, ent.err
}

// job is one unique cell (deduplicated by key) and the spec positions it
// fills.
type job struct {
	cell    Cell
	key     string
	indices []int
	res     *CellResult
}

// Run executes the spec and returns one result per cell, in spec order.
// The first cell error (or context cancellation) stops the campaign;
// already-completed cells remain in the store, so a re-run resumes.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Report, error) {
	if e.Registry == nil {
		return nil, fmt.Errorf("campaign: engine has no registry")
	}
	spec = ApplyCodec(spec, e.Codec, e.CodecHyper)
	if err := e.Registry.Validate(spec); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", spec.Name, err)
	}

	// Deduplicate cells by content hash, preserving first-seen order.
	jobs := make([]*job, 0, len(spec.Cells))
	byKey := make(map[string]*job, len(spec.Cells))
	for i, c := range spec.Cells {
		key, err := c.Key()
		if err != nil {
			return nil, fmt.Errorf("campaign %s: hashing cell %d: %w", spec.Name, i, err)
		}
		j, ok := byKey[key]
		if !ok {
			j = &job{cell: c, key: key}
			byKey[key] = j
			jobs = append(jobs, j)
		}
		j.indices = append(j.indices, i)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// cellWorkers is clamped to the pending cell count once the cache has
	// been consulted below; the complete closure only reads it for ETA
	// estimates, which never fire before the first executed cell.
	cellWorkers := e.workers()

	var (
		start = time.Now()

		mu        sync.Mutex
		firstErr  error
		done      int
		cacheHits int
		execDur   time.Duration
		executed  int
	)

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	complete := func(j *job, cached bool, dur time.Duration) {
		mu.Lock()
		done++
		if cached {
			cacheHits++
		} else {
			executed++
			execDur += dur
		}
		ev := ProgressEvent{
			Spec: spec.Name, Done: done, Total: len(jobs), CacheHits: cacheHits,
			Cell: j.cell, Key: j.key, Cached: cached,
			Duration: dur, Elapsed: time.Since(start),
		}
		if executed > 0 && done < len(jobs) {
			avg := execDur / time.Duration(executed)
			remaining := len(jobs) - done
			ev.ETA = avg * time.Duration(remaining) / time.Duration(cellWorkers)
		}
		progress := e.Progress
		if progress != nil {
			progress(ev)
		}
		mu.Unlock()
	}

	// Serve cached cells before any scheduling: the resume decision is made
	// scheduler-side — exactly as the distributed coordinator skips cached
	// cells before workers ever lease them — so the queue only ever holds
	// cells that genuinely need computing.
	pending := make([]string, 0, len(jobs))
	for _, j := range jobs {
		if e.Store != nil {
			if res, ok := e.Store.Get(j.key); ok {
				j.res = res
				complete(j, true, 0)
				continue
			}
		}
		pending = append(pending, j.key)
	}

	if cellWorkers > len(pending) {
		cellWorkers = len(pending)
	}
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	runner := &Runner{Registry: e.Registry, SimWorkers: e.simWorkers(cellWorkers), BatchClients: e.BatchClients}

	// Local execution is the degenerate case of the work-stealing cell
	// scheduler: every worker leases one cell at a time from the shared
	// queue until it drains. With a zero TTL leases never expire — a failed
	// cell fails the whole run instead of being requeued — and the per-job
	// results land in pre-assigned slots so completion order never matters.
	queue := NewQueue(pending, 0, nil)
	parallel.Run(cellWorkers, func(w int) {
		worker := fmt.Sprintf("local-%d", w)
		for ctx.Err() == nil {
			keys := queue.Lease(worker, 1)
			if len(keys) == 0 {
				return
			}
			j := byKey[keys[0]]
			t0 := time.Now()
			res, err := runner.RunCell(j.cell, j.key)
			if err != nil {
				fail(fmt.Errorf("campaign %s: cell %s: %w", spec.Name, j.cell.ID(), err))
				return
			}
			if e.Store != nil {
				if err := e.Store.Put(res); err != nil {
					fail(err)
					return
				}
			}
			queue.Complete(j.key)
			j.res = res
			complete(j, false, time.Since(t0))
		}
	})

	// Persist the index updates accumulated by the workers' Puts in one
	// write — even when the campaign failed or was interrupted, so the
	// completed cells stay indexed. Best-effort: the index is advisory
	// (a failed write is rebuilt by the next membership query), so it
	// must never fail a campaign whose results are all safely stored.
	if e.Store != nil {
		_ = e.Store.Flush()
	}

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Spec:      spec.Name,
		Results:   make([]*CellResult, len(spec.Cells)),
		Executed:  executed,
		CacheHits: cacheHits,
		Elapsed:   time.Since(start),
	}
	for _, j := range jobs {
		for _, i := range j.indices {
			rep.Results[i] = j.res
		}
	}
	return rep, nil
}
