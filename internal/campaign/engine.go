package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/parallel"
)

// ProgressEvent describes one completed cell, for progress/ETA reporting.
type ProgressEvent struct {
	Spec string
	// Done cells out of Total, of which CacheHits came from the store.
	Done, Total, CacheHits int
	// Cell that just finished, its Key, and whether it was a cache hit.
	Cell   Cell
	Key    string
	Cached bool
	// Duration of this cell's execution (0 for cache hits), total Elapsed
	// campaign time, and the estimated time to completion extrapolated
	// from the mean executed-cell duration and the remaining cell count.
	Duration time.Duration
	Elapsed  time.Duration
	ETA      time.Duration
}

// Report is the outcome of one campaign run.
type Report struct {
	Spec string
	// Results holds one entry per spec cell, in spec order. Cells with
	// identical keys share a single entry.
	Results []*CellResult
	// Executed counts freshly-computed unique cells; CacheHits counts
	// unique cells served from the store.
	Executed, CacheHits int
	Elapsed             time.Duration
}

// Engine runs campaigns: it expands a spec, deduplicates cells by content
// hash, serves cached cells from the Store, and executes the rest on a
// bounded worker pool. Results are deterministic: for a fixed spec, every
// worker count produces identical per-cell results.
type Engine struct {
	// Registry resolves cell names (required).
	Registry *Registry
	// Store memoizes results; nil disables caching.
	Store *Store
	// Workers bounds concurrent cell executions (0 = GOMAXPROCS).
	Workers int
	// SimWorkers bounds the in-simulation parallelism of each cell: the
	// per-client gradient phase and the aggregation-rule kernels (via
	// fl.Config.Workers). 0 picks automatically: cells left over after the
	// cell-level pool has claimed the CPUs run single-threaded, and a
	// single-worker engine hands all CPUs to the simulation instead.
	SimWorkers int
	// Progress, when non-nil, observes every completed cell. It is called
	// from worker goroutines under the engine's bookkeeping lock, so
	// callbacks need no further synchronization.
	Progress func(ProgressEvent)
}

func (e *Engine) workers() int {
	return parallel.Resolve(e.Workers)
}

func (e *Engine) simWorkers(cellWorkers int) int {
	if e.SimWorkers > 0 {
		return e.SimWorkers
	}
	per := parallel.Default() / cellWorkers
	if per < 1 {
		per = 1
	}
	return per
}

// dsKey identifies one loaded dataset instance.
type dsKey struct {
	name        string
	seed        int64
	train, test int
}

// dsCache loads each distinct dataset exactly once, even under concurrent
// first requests (per-entry sync.Once).
type dsCache struct {
	mu sync.Mutex
	m  map[dsKey]*dsEntry
}

type dsEntry struct {
	once sync.Once
	ds   *data.Dataset
	err  error
}

func (c *dsCache) get(k dsKey, load func() (*data.Dataset, error)) (*data.Dataset, error) {
	c.mu.Lock()
	ent, ok := c.m[k]
	if !ok {
		ent = &dsEntry{}
		c.m[k] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() { ent.ds, ent.err = load() })
	return ent.ds, ent.err
}

// job is one unique cell (deduplicated by key) and the spec positions it
// fills.
type job struct {
	cell    Cell
	key     string
	indices []int
	res     *CellResult
}

// Run executes the spec and returns one result per cell, in spec order.
// The first cell error (or context cancellation) stops the campaign;
// already-completed cells remain in the store, so a re-run resumes.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Report, error) {
	if e.Registry == nil {
		return nil, fmt.Errorf("campaign: engine has no registry")
	}
	if err := e.Registry.Validate(spec); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", spec.Name, err)
	}

	// Deduplicate cells by content hash, preserving first-seen order.
	jobs := make([]*job, 0, len(spec.Cells))
	byKey := make(map[string]*job, len(spec.Cells))
	for i, c := range spec.Cells {
		key, err := c.Key()
		if err != nil {
			return nil, fmt.Errorf("campaign %s: hashing cell %d: %w", spec.Name, i, err)
		}
		j, ok := byKey[key]
		if !ok {
			j = &job{cell: c, key: key}
			byKey[key] = j
			jobs = append(jobs, j)
		}
		j.indices = append(j.indices, i)
	}

	cellWorkers := e.workers()
	if cellWorkers > len(jobs) {
		cellWorkers = len(jobs)
	}
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	simWorkers := e.simWorkers(cellWorkers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		start    = time.Now()
		datasets = &dsCache{m: map[dsKey]*dsEntry{}}
		jobCh    = make(chan *job, len(jobs))

		mu        sync.Mutex
		firstErr  error
		done      int
		cacheHits int
		execDur   time.Duration
		executed  int
	)

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	complete := func(j *job, cached bool, dur time.Duration) {
		mu.Lock()
		done++
		if cached {
			cacheHits++
		} else {
			executed++
			execDur += dur
		}
		ev := ProgressEvent{
			Spec: spec.Name, Done: done, Total: len(jobs), CacheHits: cacheHits,
			Cell: j.cell, Key: j.key, Cached: cached,
			Duration: dur, Elapsed: time.Since(start),
		}
		if executed > 0 && done < len(jobs) {
			avg := execDur / time.Duration(executed)
			remaining := len(jobs) - done
			ev.ETA = avg * time.Duration(remaining) / time.Duration(cellWorkers)
		}
		progress := e.Progress
		if progress != nil {
			progress(ev)
		}
		mu.Unlock()
	}

	// The buffered channel is pre-filled, so the shared parallel.Run pool
	// replaces the hand-rolled WaitGroup workers: each worker drains jobs
	// until the channel is empty (work-stealing order; the per-job results
	// land in pre-assigned slots so completion order never matters).
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	parallel.Run(cellWorkers, func(int) {
		for j := range jobCh {
			if ctx.Err() != nil {
				continue // drain without working
			}
			if e.Store != nil {
				if res, ok := e.Store.Get(j.key); ok {
					j.res = res
					complete(j, true, 0)
					continue
				}
			}
			t0 := time.Now()
			res, err := e.executeCell(j.cell, j.key, datasets, simWorkers)
			if err != nil {
				fail(fmt.Errorf("campaign %s: cell %s: %w", spec.Name, j.cell.ID(), err))
				continue
			}
			res.DurationMS = time.Since(t0).Milliseconds()
			if e.Store != nil {
				if err := e.Store.Put(res); err != nil {
					fail(err)
					continue
				}
			}
			j.res = res
			complete(j, false, time.Since(t0))
		}
	})

	// Persist the index updates accumulated by the workers' Puts in one
	// write — even when the campaign failed or was interrupted, so the
	// completed cells stay indexed. Best-effort: the index is advisory
	// (a failed write is rebuilt by the next membership query), so it
	// must never fail a campaign whose results are all safely stored.
	if e.Store != nil {
		_ = e.Store.Flush()
	}

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Spec:      spec.Name,
		Results:   make([]*CellResult, len(spec.Cells)),
		Executed:  executed,
		CacheHits: cacheHits,
		Elapsed:   time.Since(start),
	}
	for _, j := range jobs {
		for _, i := range j.indices {
			rep.Results[i] = j.res
		}
	}
	return rep, nil
}

// executeCell resolves one cell through the registry and trains it.
func (e *Engine) executeCell(c Cell, key string, datasets *dsCache, simWorkers int) (*CellResult, error) {
	db, err := e.Registry.dataset(c.Dataset)
	if err != nil {
		return nil, err
	}
	p := c.Params
	dataset, err := datasets.get(
		dsKey{name: c.Dataset, seed: p.Seed + 7, train: p.TrainSize, test: p.TestSize},
		func() (*data.Dataset, error) { return db.Load(p.Seed+7, p.TrainSize, p.TestSize) },
	)
	if err != nil {
		return nil, fmt.Errorf("loading dataset %s: %w", c.Dataset, err)
	}

	numByz := c.EffectiveByz()
	rule, err := e.Registry.buildDefense(c, numByz, p.Seed+11)
	if err != nil {
		return nil, fmt.Errorf("building rule %s: %w", c.Rule, err)
	}
	buildAttack, err := e.Registry.attack(c.Attack)
	if err != nil {
		return nil, err
	}
	att, err := buildAttack(c, p.Seed+13)
	if err != nil {
		return nil, fmt.Errorf("building attack %s: %w", c.Attack, err)
	}

	var probe *ProbeInstance
	if c.Probe != "" {
		buildProbe, err := e.Registry.probe(c.Probe)
		if err != nil {
			return nil, err
		}
		probe, err = buildProbe(c)
		if err != nil {
			return nil, fmt.Errorf("building probe %s: %w", c.Probe, err)
		}
	}

	var nonIID *fl.NonIID
	if c.NonIIDS > 0 {
		nonIID = &fl.NonIID{S: c.NonIIDS, ShardsPerClient: c.NonIIDShards}
	}
	participation, err := participationFor(c)
	if err != nil {
		return nil, err
	}

	x := &CellExec{
		Dataset:       dataset,
		NewModel:      db.NewModel,
		LR:            db.LR,
		Rule:          rule,
		Attack:        att,
		NumByz:        numByz,
		NonIID:        nonIID,
		Participation: participation,
		Params:        p,
		SimWorkers:    simWorkers,
	}
	if probe != nil {
		x.Hook = probe.Hook
	}
	res, err := x.Run()
	if err != nil {
		return nil, err
	}
	out := newCellResult(c, key, res)
	if probe != nil && probe.Finish != nil {
		raw, err := probe.Finish()
		if err != nil {
			return nil, fmt.Errorf("probe %s: %w", c.Probe, err)
		}
		out.Probe = raw
	}
	return out, nil
}
