package campaign_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// TestNewAxesKeepHistoricalHashes pins the cache-compatibility contract:
// a cell that uses none of the new axes (participation, hyperparameters)
// must hash exactly as it did before the fields existed.
func TestNewAxesKeepHistoricalHashes(t *testing.T) {
	base := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.Participation = "" // explicit zero values
	full.SampleK = 0
	full.RuleHyper = nil
	k2, err := full.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("zero-valued axis fields changed the cell hash")
	}
	// "full" is the documented-equivalent spelling of "" and must share
	// its identity.
	spelled := base
	spelled.Participation = campaign.ParticipationFull
	kFull, err := spelled.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kFull != k1 {
		t.Fatal(`Participation "full" hashes differently from ""`)
	}
	sub := base
	sub.Participation = campaign.ParticipationUniform
	sub.SampleK = 4
	k3, _ := sub.Key()
	hyp := base
	hyp.RuleHyper = map[string]float64{"coord_fraction": 0.25}
	k4, _ := hyp.Key()
	if k3 == k1 || k4 == k1 || k3 == k4 {
		t.Fatal("axis fields not part of the cell identity")
	}
}

func TestSubsampleCellsThroughEngine(t *testing.T) {
	spec := campaign.Spec{Name: "subsample"}
	for _, k := range []int{4, 8} {
		c := campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(1))
		c.Participation = campaign.ParticipationUniform
		c.SampleK = k
		spec.Cells = append(spec.Cells, c)
	}
	e := &campaign.Engine{Registry: testRegistry(), Workers: 2}
	rep := mustRun(t, e, spec)
	// The tiny dataset saturates accuracy, so compare the full traces.
	h := resultHashes(t, rep)
	if h[0] == h[1] {
		t.Error("subsample size had no effect")
	}
	if len(rep.Results[0].TrainLoss) == 0 ||
		rep.Results[0].TrainLoss[len(rep.Results[0].TrainLoss)-1] ==
			rep.Results[1].TrainLoss[len(rep.Results[1].TrainLoss)-1] {
		t.Error("subsample size had no effect on the loss trajectory")
	}
	// Deterministic: a re-run (no cache) reproduces the results.
	rep2 := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 1}, spec)
	a, b := resultHashes(t, rep), resultHashes(t, rep2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("subsampled cell %d not deterministic", i)
		}
	}
}

// TestSubsampledTrMeanFeasible pins the cohort-sized Byzantine grant: the
// population-level f (2 of 8 clients) would trim the entire 4-client
// cohort; the builder must cap f at the cohort's (n−1)/2 bound so the
// sweep runs instead of aborting.
func TestSubsampledTrMeanFeasible(t *testing.T) {
	c := campaign.NewCell("tiny", "TrMean", "LIE", tinyParams(1))
	c.Participation = campaign.ParticipationUniform
	c.SampleK = 4
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry()}, campaign.Spec{Name: "trm", Cells: []campaign.Cell{c}})
	if rep.Results[0].Diverged {
		t.Error("subsampled TrMean diverged under LIE")
	}
}

func TestHyperCellsThroughEngine(t *testing.T) {
	spec := campaign.Spec{Name: "coordfrac"}
	for _, cf := range []float64{0.1, 1.0} {
		c := campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(1))
		c.RuleHyper = map[string]float64{"coord_fraction": cf}
		spec.Cells = append(spec.Cells, c)
	}
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 2}, spec)
	h := resultHashes(t, rep)
	if h[0] == h[1] {
		t.Error("coord_fraction hyperparameter had no effect on results")
	}
}

func TestValidateRejectsBadAxes(t *testing.T) {
	reg := testRegistry()
	p := tinyParams(1)

	bad := campaign.NewCell("tiny", "SignGuard", "LIE", p)
	bad.RuleHyper = map[string]float64{"not_a_hyper": 1}
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{bad}}); err == nil ||
		!strings.Contains(err.Error(), "not_a_hyper") {
		t.Errorf("unknown hyperparameter passed validation: %v", err)
	}

	badPart := campaign.NewCell("tiny", "Mean", "LIE", p)
	badPart.Participation = "lottery"
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{badPart}}); err == nil {
		t.Error("unknown participation policy passed validation")
	}

	badK := campaign.NewCell("tiny", "Mean", "LIE", p)
	badK.Participation = campaign.ParticipationUniform
	badK.SampleK = p.Clients + 5
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{badK}}); err == nil {
		t.Error("oversized SampleK passed validation")
	}

	strayK := campaign.NewCell("tiny", "Mean", "LIE", p)
	strayK.SampleK = 3 // without uniform participation
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{strayK}}); err == nil {
		t.Error("SampleK without uniform participation passed validation")
	}
}

func TestStoreIndexFastMembership(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := fakeResult("Mean", 1, 80, 78)
	key, err := r.Cell.Key()
	if err != nil {
		t.Fatal(err)
	}
	r.Key = key
	if err := store.Put(r); err != nil {
		t.Fatal(err)
	}
	// Puts accumulate in memory; the same store answers immediately, and
	// Flush (one write per campaign) persists for other processes.
	if !store.Contains(key) {
		t.Error("own Put not visible before Flush")
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("Flush did not write the index: %v", err)
	}

	// A fresh Store answers membership from the index.
	fresh, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains(key) {
		t.Error("index misses a stored key")
	}
	if fresh.Contains("nope") {
		t.Error("index contains an unknown key")
	}
	idx, err := fresh.Index()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := idx[key]; !ok || e.ID != r.Cell.ID() {
		t.Errorf("index entry %+v", e)
	}

	// A corrupted index is rebuilt from the stored results.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Contains(key) {
		t.Error("corrupt index not rebuilt")
	}

	// An index that disagrees with the directory (entry written by another
	// process) is rebuilt too.
	other := fakeResult("SignGuard", 2, 90, 88)
	otherKey, _ := other.Cell.Key()
	other.Key = otherKey
	writer, _ := campaign.OpenStore(dir)
	if err := writer.Put(other); err != nil {
		t.Fatal(err)
	}
	stale, _ := campaign.OpenStore(dir)
	if !stale.Contains(key) || !stale.Contains(otherKey) {
		t.Error("index not refreshed after out-of-band writes")
	}

	// Delete drops the entry from both the directory and the index.
	if err := stale.Delete(key); err != nil {
		t.Fatal(err)
	}
	if stale.Contains(key) {
		t.Error("deleted key still in index")
	}
	after, _ := campaign.OpenStore(dir)
	if after.Contains(key) || !after.Contains(otherKey) {
		t.Error("persisted index out of sync after delete")
	}

	// Keys never reports the index file itself.
	keys, err := after.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == "index" {
			t.Error("index file leaked into Keys()")
		}
	}
}

// TestBatchedAxisIdentity pins the batched-engine axis's hash contract:
// the zero value keeps the historical cell hash (cache compatibility),
// while the fast mode — whose results are not bitwise-equal — must change
// the identity. Exact batching as an axis also gets its own identity so
// wall-clock sweeps cache per variant.
func TestBatchedAxisIdentity(t *testing.T) {
	base := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.BatchClients = false
	zero.FastLocal = false
	k2, err := zero.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("zero-valued batched axis changed the cell hash")
	}
	batched := base
	batched.BatchClients = true
	kb, _ := batched.Key()
	fast := batched
	fast.FastLocal = true
	kf, _ := fast.Key()
	if kb == k1 || kf == k1 || kb == kf {
		t.Fatal("batched/fast axes not part of the cell identity")
	}
	if id := fast.ID(); !strings.Contains(id, "batched-fast") {
		t.Errorf("fast cell ID %q does not name the engine", id)
	}
}

// TestBatchedCellsThroughEngine asserts the engine-level equivalence: the
// batched cell axis and the execution-level Engine.BatchClients override
// both reproduce the per-client results exactly (traces included).
func TestBatchedCellsThroughEngine(t *testing.T) {
	cell := campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(1))
	batchedCell := cell
	batchedCell.BatchClients = true
	spec := campaign.Spec{Name: "batched", Cells: []campaign.Cell{cell, batchedCell}}
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 2}, spec)

	same := func(a, b *campaign.CellResult, label string) {
		t.Helper()
		if a.BestAccuracy != b.BestAccuracy || a.FinalAccuracy != b.FinalAccuracy {
			t.Errorf("%s: accuracies diverged: %v/%v vs %v/%v",
				label, a.BestAccuracy, a.FinalAccuracy, b.BestAccuracy, b.FinalAccuracy)
		}
		if len(a.TrainLoss) != len(b.TrainLoss) {
			t.Fatalf("%s: loss trace lengths differ", label)
		}
		for i := range a.TrainLoss {
			if a.TrainLoss[i] != b.TrainLoss[i] {
				t.Fatalf("%s: round %d loss diverged", label, i)
			}
		}
	}
	same(rep.Results[0], rep.Results[1], "cell axis")

	// The execution-level override computes the SAME cells (same keys, so
	// cache-compatible) through the batched engine; results must not move.
	override := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 2, BatchClients: true},
		campaign.Spec{Name: "override", Cells: []campaign.Cell{cell}})
	same(rep.Results[0], override.Results[0], "engine override")

	// Fast mode trains and stays in the same accuracy regime without any
	// bitwise promise.
	fastCell := batchedCell
	fastCell.FastLocal = true
	fastRep := mustRun(t, &campaign.Engine{Registry: testRegistry()},
		campaign.Spec{Name: "fast", Cells: []campaign.Cell{fastCell}})
	if fastRep.Results[0].Diverged {
		t.Error("fast-kernel cell diverged")
	}
}

// TestValidateRejectsFastWithoutBatch: the fast kernels only exist inside
// the batched engine.
func TestValidateRejectsFastWithoutBatch(t *testing.T) {
	bad := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	bad.FastLocal = true
	if err := testRegistry().Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{bad}}); err == nil ||
		!strings.Contains(err.Error(), "FastLocal") {
		t.Errorf("FastLocal without BatchClients passed validation: %v", err)
	}
}
