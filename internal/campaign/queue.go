package campaign

import (
	"sort"
	"sync"
	"time"
)

// Queue is the lease-based cell scheduler shared by the in-process engine
// and the distributed coordinator (internal/campaign/dist). Pending cell
// keys are handed out in FIFO order as leases bound to a named worker;
// Complete retires a key, Heartbeat renews a worker's leases, and — when
// the queue was built with a nonzero TTL — leases whose holder stopped
// heartbeating expire and their keys return to the pending queue, so cells
// held by a crashed worker are re-executed elsewhere. The in-process engine
// is the degenerate case: TTL zero (leases never expire) and a failure
// aborting the whole run.
//
// All methods are safe for concurrent use.
type Queue struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time

	pending []string
	queued  map[string]bool // membership of pending
	leases  map[string]cellLease
	done    map[string]bool
	total   int
}

// cellLease records who holds a cell and until when (zero expiry = never).
type cellLease struct {
	worker string
	expiry time.Time
}

// NewQueue builds a queue over keys (deduplicated, FIFO in the given
// order). ttl == 0 disables lease expiry. now supplies the clock (nil =
// time.Now); it is injectable so failure-injection tests can expire leases
// by advancing a fake clock instead of sleeping.
func NewQueue(keys []string, ttl time.Duration, now func() time.Time) *Queue {
	if now == nil {
		now = time.Now
	}
	q := &Queue{
		ttl:    ttl,
		now:    now,
		queued: make(map[string]bool, len(keys)),
		leases: map[string]cellLease{},
		done:   map[string]bool{},
	}
	for _, k := range keys {
		if q.queued[k] {
			continue
		}
		q.queued[k] = true
		q.pending = append(q.pending, k)
	}
	q.total = len(q.pending)
	return q
}

// expireLocked requeues every lease past its expiry. Expired keys are
// re-appended in sorted order so recovery behavior does not depend on map
// iteration order. Callers hold q.mu.
func (q *Queue) expireLocked() {
	if q.ttl == 0 {
		return
	}
	now := q.now()
	var expired []string
	for k, l := range q.leases {
		if now.After(l.expiry) {
			expired = append(expired, k)
		}
	}
	sort.Strings(expired)
	for _, k := range expired {
		delete(q.leases, k)
		q.queued[k] = true
		q.pending = append(q.pending, k)
	}
}

// Lease hands worker up to max pending keys (FIFO), each leased for the
// queue's TTL. Expired leases are swept first, so a single polling worker
// is enough to recover a dead peer's cells. An empty result with Done()
// false means every remaining cell is currently leased elsewhere.
func (q *Queue) Lease(worker string, max int) []string {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	n := max
	if n > len(q.pending) {
		n = len(q.pending)
	}
	if n == 0 {
		return nil
	}
	var expiry time.Time
	if q.ttl > 0 {
		expiry = q.now().Add(q.ttl)
	}
	keys := make([]string, n)
	copy(keys, q.pending[:n])
	q.pending = q.pending[n:]
	for _, k := range keys {
		delete(q.queued, k)
		q.leases[k] = cellLease{worker: worker, expiry: expiry}
	}
	return keys
}

// Heartbeat renews every lease held by worker and reports how many it
// renewed. A zero return tells a live worker its leases already expired
// (and may be running elsewhere).
func (q *Queue) Heartbeat(worker string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	if q.ttl == 0 {
		// Leases never expire; count them anyway so callers see liveness.
		n := 0
		for _, l := range q.leases {
			if l.worker == worker {
				n++
			}
		}
		return n
	}
	expiry := q.now().Add(q.ttl)
	n := 0
	for k, l := range q.leases {
		if l.worker == worker {
			l.expiry = expiry
			q.leases[k] = l
			n++
		}
	}
	return n
}

// Complete retires key, whether it is currently pending, leased, or was
// leased by a worker presumed dead. The first call returns true; repeats
// (duplicate uploads after a lease expired and the cell ran twice) return
// false and change nothing — completion is idempotent. Keys the queue never
// held also return false.
func (q *Queue) Complete(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done[key] {
		return false
	}
	if _, leased := q.leases[key]; leased {
		delete(q.leases, key)
	} else if q.queued[key] {
		delete(q.queued, key)
		for i, k := range q.pending {
			if k == key {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
	} else {
		return false
	}
	q.done[key] = true
	return true
}

// Stats reports the queue's population: cells still pending, currently
// leased, completed, and the fixed total.
func (q *Queue) Stats() (pending, leased, done, total int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	return len(q.pending), len(q.leases), len(q.done), q.total
}

// Done reports whether every cell has completed.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.done) == q.total
}
