package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// indexName is the store's membership index file: a single small JSON
// document listing every stored cell key with a one-line summary, so
// `campaign status` answers membership queries from one read instead of
// probing (open + parse) every per-cell file.
const indexName = "index.json"

// IndexEntry is the per-cell summary kept in the store index.
type IndexEntry struct {
	// ID is the cell's human-readable identifier.
	ID string
	// Diverged and DurationMS mirror the stored result's summary fields.
	Diverged   bool  `json:",omitempty"`
	DurationMS int64 `json:",omitempty"`
}

// storeIndex is the on-disk index document.
type storeIndex struct {
	SchemaVersion int
	Cells         map[string]IndexEntry
}

// Store is a content-addressed on-disk result cache: one JSON file per
// cell, named by the cell's spec hash, plus a membership index. Writes are
// atomic (temp file + rename), so an interrupted campaign leaves only
// complete entries and can resume from whatever finished.
type Store struct {
	dir string

	// mu guards the cached index; result files themselves need no lock
	// (distinct keys, atomic renames).
	mu  sync.Mutex
	idx map[string]IndexEntry
	// dirty marks in-memory index updates not yet flushed to disk.
	dirty bool
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// storedResult is the on-disk envelope; SchemaVersion guards against
// format drift between builds sharing a cache directory.
type storedResult struct {
	SchemaVersion int
	Result        *CellResult
}

// Get loads the result stored under key. A missing, unreadable or
// schema-mismatched entry is reported as a miss, never an error: the engine
// recomputes and overwrites.
func (s *Store) Get(key string) (*CellResult, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env storedResult
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.SchemaVersion != specVersion || env.Result == nil || env.Result.Key != key {
		return nil, false
	}
	// Anything read back from the store is by definition a cached result;
	// Cached is never serialized, so stamp it here.
	env.Result.Cached = true
	return env.Result, true
}

// Has reports whether a valid entry exists under key, reading the entry
// itself. For membership-only queries over many keys prefer Contains,
// which answers from the index.
func (s *Store) Has(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Contains reports whether the index lists key. The first call loads (or
// rebuilds) the index once; every further call is a map lookup, so probing
// a whole campaign grid costs one file read instead of one per cell.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadIndexLocked(true); err != nil {
		return false
	}
	_, ok := s.idx[key]
	return ok
}

// Index returns a copy of the per-cell summaries the index holds.
func (s *Store) Index() (map[string]IndexEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadIndexLocked(true); err != nil {
		return nil, err
	}
	out := make(map[string]IndexEntry, len(s.idx))
	for k, v := range s.idx {
		out[k] = v
	}
	return out, nil
}

// resultKeys lists the keys of the per-cell result files (directory
// listing only — no file contents are read).
func (s *Store) resultKeys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == indexName || !strings.HasSuffix(name, ".json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	return keys, nil
}

// loadIndexLocked populates s.idx from the index file. When rebuild is
// true (the membership-query path) an absent, schema-stale or
// directory-inconsistent index is rebuilt from the stored results
// (one-time O(n) read) and persisted. When rebuild is false (the write
// path) whatever parses is used as the starting point and nothing is
// scanned — Put never pays a rebuild the next status query would redo
// anyway. Callers hold s.mu.
func (s *Store) loadIndexLocked(rebuild bool) error {
	if s.idx != nil {
		return nil
	}
	var fromFile map[string]IndexEntry
	if raw, err := os.ReadFile(filepath.Join(s.dir, indexName)); err == nil {
		var doc storeIndex
		if json.Unmarshal(raw, &doc) == nil && doc.SchemaVersion == specVersion && doc.Cells != nil {
			fromFile = doc.Cells
		}
	}
	if !rebuild {
		if fromFile == nil {
			fromFile = map[string]IndexEntry{}
		}
		s.idx = fromFile
		return nil
	}
	keys, err := s.resultKeys()
	if err != nil {
		return err
	}
	// Key-set check: drift from entries written by other processes or
	// deleted out of band forces a rebuild (count alone would miss a
	// delete+add pair).
	if fromFile != nil && len(fromFile) == len(keys) {
		fresh := true
		for _, k := range keys {
			if _, ok := fromFile[k]; !ok {
				fresh = false
				break
			}
		}
		if fresh {
			s.idx = fromFile
			return nil
		}
	}
	idx := make(map[string]IndexEntry, len(keys))
	for _, key := range keys {
		if res, ok := s.Get(key); ok {
			idx[key] = IndexEntry{ID: res.Cell.ID(), Diverged: res.Diverged, DurationMS: res.DurationMS}
		}
	}
	s.idx = idx
	return s.saveIndexLocked()
}

// saveIndexLocked atomically persists the cached index. Callers hold s.mu.
func (s *Store) saveIndexLocked() error {
	raw, err := json.Marshal(storeIndex{SchemaVersion: specVersion, Cells: s.idx})
	if err != nil {
		return fmt.Errorf("campaign: encoding index: %w", err)
	}
	if err := s.writeAtomic(indexName, raw); err != nil {
		return fmt.Errorf("campaign: storing index: %w", err)
	}
	s.dirty = false
	return nil
}

// Flush persists any in-memory index updates accumulated by Put. The
// engine flushes once per campaign; a crash before Flush merely leaves a
// stale index that the next membership query rebuilds.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	return s.saveIndexLocked()
}

// writeAtomic writes name under the store root via temp file + rename.
func (s *Store) writeAtomic(name string, raw []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Put atomically persists a result under its key and records it in the
// in-memory index (persisted by Flush — per-cell index rewrites would
// serialize the engine's parallel workers on O(store) writes).
func (s *Store) Put(r *CellResult) error {
	raw, err := json.Marshal(storedResult{SchemaVersion: specVersion, Result: r})
	if err != nil {
		return fmt.Errorf("campaign: encoding result %s: %w", r.Key, err)
	}
	if err := s.writeAtomic(r.Key+".json", raw); err != nil {
		return fmt.Errorf("campaign: storing result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadIndexLocked(false); err != nil {
		return err
	}
	s.idx[r.Key] = IndexEntry{ID: r.Cell.ID(), Diverged: r.Diverged, DurationMS: r.DurationMS}
	s.dirty = true
	return nil
}

// Delete removes the entry under key (missing entries are not an error).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadIndexLocked(false); err != nil {
		return err
	}
	if _, ok := s.idx[key]; ok {
		delete(s.idx, key)
		return s.saveIndexLocked()
	}
	return nil
}

// Keys lists every stored cell hash.
func (s *Store) Keys() ([]string, error) {
	return s.resultKeys()
}
