package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed on-disk result cache: one JSON file per
// cell, named by the cell's spec hash. Writes are atomic (temp file +
// rename), so an interrupted campaign leaves only complete entries and can
// resume from whatever finished.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// storedResult is the on-disk envelope; SchemaVersion guards against
// format drift between builds sharing a cache directory.
type storedResult struct {
	SchemaVersion int
	Result        *CellResult
}

// Get loads the result stored under key. A missing, unreadable or
// schema-mismatched entry is reported as a miss, never an error: the engine
// recomputes and overwrites.
func (s *Store) Get(key string) (*CellResult, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env storedResult
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.SchemaVersion != specVersion || env.Result == nil || env.Result.Key != key {
		return nil, false
	}
	// Anything read back from the store is by definition a cached result;
	// Cached is never serialized, so stamp it here.
	env.Result.Cached = true
	return env.Result, true
}

// Has reports whether a valid entry exists under key.
func (s *Store) Has(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Put atomically persists a result under its key.
func (s *Store) Put(r *CellResult) error {
	raw, err := json.Marshal(storedResult{SchemaVersion: specVersion, Result: r})
	if err != nil {
		return fmt.Errorf("campaign: encoding result %s: %w", r.Key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: storing result: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: storing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: storing result: %w", err)
	}
	if err := os.Rename(tmpName, s.path(r.Key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: storing result: %w", err)
	}
	return nil
}

// Delete removes the entry under key (missing entries are not an error).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys lists every stored cell hash.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	return keys, nil
}
